"""Setuptools shim.

The execution environment has no ``wheel`` package (offline), so PEP 660
editable installs cannot build an editable wheel.  This shim lets
``pip install -e . --no-use-pep517`` fall back to ``setup.py develop``.
All project metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
