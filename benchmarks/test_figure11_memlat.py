"""Figure 11: MemLat emulation error vs. concurrent pointer chains."""

from conftest import regenerate

from repro.validation.experiments import run_figure11


def test_figure11(benchmark):
    result = regenerate(benchmark, run_figure11, trials=3)
    # Paper: emulated and measured within 0.2%-4% for every chain count
    # on all three testbeds.
    for row in result.rows:
        assert row["error_pct"] < 4.5, row
    # All six chain counts on all three families present.
    assert len(result.rows) == 18
