"""Figure 15: KV-store (MassTree stand-in) validation errors."""

from conftest import regenerate

from repro.validation.experiments import run_figure15


def test_figure15(benchmark):
    result = regenerate(benchmark, run_figure15)
    # Paper: 2-8% on Sandy Bridge for put/s and get/s at 1-8 threads.
    for row in result.rows:
        assert row["put_error_pct"] < 8.0, row
        assert row["get_error_pct"] < 8.0, row
    assert [row["threads"] for row in result.rows] == [1, 2, 4, 8]
