"""Section 4.7: PageRank completion-time validation (paper: 2.9%)."""

from conftest import regenerate

from repro.validation.experiments import run_pagerank_validation
from repro.workloads.pagerank import PageRankConfig, default_graph

#: Scaled-down graph for the benchmark harness (full default is 600k).
BENCH_CONFIG = PageRankConfig(
    vertex_count=300_000, edges_per_vertex=6, max_iterations=15,
    tolerance=1e-15,
)


def test_pagerank_validation(benchmark):
    graph = default_graph(BENCH_CONFIG)
    result = regenerate(
        benchmark, run_pagerank_validation, workload=BENCH_CONFIG, graph=graph
    )
    row = result.rows[0]
    # Paper reports 2.9%; hold the reproduction under 5%.
    assert row["error_pct"] < 5.0, row
    assert row["iterations"] == BENCH_CONFIG.max_iterations
