"""Figure 13: Multi-Threaded benchmark accuracy vs. minimum epoch size."""

from conftest import regenerate

from repro.validation.experiments import run_figure13


def test_figure13(benchmark):
    result = regenerate(benchmark, run_figure13, sections=200)

    def rows(case, min_epoch):
        return [
            row
            for row in result.rows
            if row["case"] == case and row["min_epoch_ms"] == min_epoch
        ]

    # The no-propagation configuration (min == max == 10 ms) suffers
    # large error that grows with thread count (paper: up to 34%).
    for case in ("cs only", "with compute"):
        broken = rows(case, 10.0)
        assert max(row["error_pct"] for row in broken) > 12.0
    by_threads = {
        row["threads"]: row["error_pct"] for row in rows("cs only", 10.0)
        if row["processor"] == "IvyBridge"
    }
    assert by_threads[8] > by_threads[2]
    # CS-only with propagating min-epochs: the paper's <3% band (we allow
    # Sandy Bridge's counter bias a little slack).
    for min_epoch in (0.01, 0.1, 1.0):
        good = rows("cs only", min_epoch)
        assert max(row["error_pct"] for row in good) < 5.0, (min_epoch, good)
    # With-compute at the finest propagation granularity also accurate.
    finest = rows("with compute", 0.01)
    assert max(row["error_pct"] for row in finest) < 10.0
    # Emulated CT always within 2x of actual (sanity).
    for row in result.rows:
        assert 0.4 < row["ct_emulated_ms"] / row["ct_actual_ms"] < 2.0
