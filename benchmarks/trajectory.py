#!/usr/bin/env python
"""Validate and aggregate the committed ``BENCH_*.json`` trajectory.

Every ``BENCH_*.json`` at the repo root is a standard experiment-export
document (``repro.validation.export``): the digest-covered experiment
and manifest sections pin *results*, the telemetry section carries
*speed*.  This tool is the trajectory's gatekeeper:

* schema-checks each document (schema id, version, content digest —
  any post-export edit fails the digest check);
* requires the telemetry wall-time key the trajectory is built on;
* aggregates one summary line per document.

CI runs ``--check`` so a malformed or hand-edited BENCH file fails the
build.  Run from the repo root::

    PYTHONPATH=src python benchmarks/trajectory.py            # summarize
    PYTHONPATH=src python benchmarks/trajectory.py --check    # CI gate
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.errors import ValidationError
from repro.validation import export

#: Telemetry keys accepted as the document's headline wall time.
WALL_KEYS = ("driver_wall_s", "wall_s")


def validate_document(path: Path) -> tuple[dict, list[str]]:
    """Load one BENCH document; return (document, problems)."""
    problems: list[str] = []
    try:
        document = export.load_experiment_json(path)
    except ValidationError as error:
        return {}, [str(error)]
    experiment = document.get("experiment") or {}
    if not experiment.get("experiment_id"):
        problems.append("experiment section has no experiment_id")
    if not experiment.get("rows"):
        problems.append("experiment section has no rows")
    telemetry = document.get("telemetry")
    if not isinstance(telemetry, dict):
        problems.append("missing telemetry section")
    elif _wall_time(telemetry) is None:
        problems.append(
            "telemetry lacks a wall-time key (one of "
            f"{', '.join(WALL_KEYS)}, or per-scenario wall_s)"
        )
    return document, problems


def _wall_time(telemetry: dict):
    """Headline wall time: a top-level key, or summed scenario walls."""
    for key in WALL_KEYS:
        if isinstance(telemetry.get(key), (int, float)):
            return telemetry[key]
    scenarios = telemetry.get("scenarios")
    if isinstance(scenarios, dict) and scenarios:
        walls = [
            entry.get("wall_s")
            for entry in scenarios.values()
            if isinstance(entry, dict)
        ]
        if walls and all(isinstance(wall, (int, float)) for wall in walls):
            return sum(walls)
    return None


def summarize(path: Path, document: dict) -> str:
    experiment = document.get("experiment") or {}
    telemetry = document.get("telemetry") or {}
    wall = _wall_time(telemetry)
    wall_text = f"{wall:.2f}s" if isinstance(wall, (int, float)) else "n/a"
    digest = (document.get("manifest") or {}).get("content_digest", "")
    return (
        f"{path.name}: {experiment.get('experiment_id', '?')} — "
        f"{len(experiment.get('rows', []))} row(s), wall {wall_text}, "
        f"digest {digest[:12]}"
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "paths", nargs="*", metavar="bench.json",
        help="documents to check (default: BENCH_*.json in --root)",
    )
    parser.add_argument(
        "--root", default=".",
        help="directory scanned for BENCH_*.json (default: cwd)",
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero on any invalid or missing document (CI gate)",
    )
    args = parser.parse_args(argv)

    if args.paths:
        paths = [Path(path) for path in args.paths]
    else:
        paths = sorted(Path(args.root).glob("BENCH_*.json"))
    if not paths:
        print(f"no BENCH_*.json documents under {args.root}", file=sys.stderr)
        return 1 if args.check else 0

    failures = 0
    for path in paths:
        document, problems = validate_document(path)
        if problems:
            failures += 1
            for problem in problems:
                print(f"FAIL {path.name}: {problem}", file=sys.stderr)
            continue
        print(summarize(path, document))
    print(
        f"{len(paths) - failures}/{len(paths)} document(s) valid",
        file=sys.stderr if failures else sys.stdout,
    )
    return 1 if (failures and args.check) else 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
