"""Figure 2 quantified: Eq. (1) over-injects by the MLP factor."""

from conftest import regenerate

from repro.validation.experiments import run_model_ablation


def test_model_ablation(benchmark):
    result = regenerate(benchmark, run_model_ablation)
    stalls = {
        row["chains"]: row for row in result.rows if row["model"] == "stalls"
    }
    simple = {
        row["chains"]: row for row in result.rows if row["model"] == "simple"
    }
    # The stall-based model stays accurate at every parallelism degree.
    for row in stalls.values():
        assert row["error_pct"] < 2.0, row
    # The simple model matches at MLP=1 but over-injects ~MLP-fold beyond.
    assert simple[1]["error_pct"] < 5.0
    target = 600.0
    for chains in (2, 4, 8):
        # Measured latency blows up towards chains * target.
        assert simple[chains]["measured_ns"] > 0.6 * chains * target
    assert simple[8]["error_pct"] > simple[4]["error_pct"] > simple[2]["error_pct"]
