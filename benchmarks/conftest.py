"""Shared helpers for the per-figure benchmark harness.

Each benchmark module regenerates one table/figure of the paper (see
DESIGN.md's experiment index), asserts the paper's *shape* claims (who
wins, error bands, crossovers), prints the regenerated table, and records
wall time through pytest-benchmark.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from repro.validation.reporting import ExperimentResult, render_table
from repro.validation.runner import consume_run_stats, reset_run_stats


def regenerate(benchmark, driver, **kwargs) -> ExperimentResult:
    """Run one experiment driver under the benchmark timer (one round)."""
    reset_run_stats()
    result = benchmark.pedantic(
        lambda: driver(**kwargs), rounds=1, iterations=1, warmup_rounds=0
    )
    benchmark.extra_info["experiment"] = result.experiment_id
    benchmark.extra_info["rows"] = len(result.rows)
    stats = consume_run_stats()
    if stats is not None and stats.runs:
        benchmark.extra_info["runs"] = stats.runs
        benchmark.extra_info["events"] = stats.events
        benchmark.extra_info["calibration_cache_hits"] = stats.calib_hits
        benchmark.extra_info["calibration_measurements"] = (
            stats.calib_measurements
        )
    print("\n" + render_table(result))
    return result
