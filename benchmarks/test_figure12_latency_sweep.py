"""Figure 12: MemLat-measured latency vs. emulation target, per family."""

from conftest import regenerate

from repro.validation.experiments import run_figure12

#: The per-family error bands the paper reports.
PAPER_BANDS = {"SandyBridge": 9.0, "IvyBridge": 2.0, "Haswell": 6.0}


def test_figure12(benchmark):
    result = regenerate(benchmark, run_figure12, trials=5)
    worst: dict[str, float] = {}
    for row in result.rows:
        worst[row["processor"]] = max(
            worst.get(row["processor"], 0.0), row["error_pct"]
        )
        # Measured latency tracks the target.
        assert abs(row["measured_ns"] - row["target_ns"]) < 0.1 * row["target_ns"]
    for family, band in PAPER_BANDS.items():
        assert worst[family] < band, (family, worst[family])
    # Family ordering: Ivy Bridge most accurate, Sandy Bridge least
    # (footnote 6: counter reliability).
    assert worst["IvyBridge"] < worst["Haswell"] < worst["SandyBridge"]
