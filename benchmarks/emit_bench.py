#!/usr/bin/env python
"""Seed the perf trajectory: write ``BENCH_<experiment>.json`` documents.

Each file is a standard experiment-export document (see
``repro.validation.export``) whose telemetry carries the measured wall
time of one minimum-scale driver run, so successive commits can be
compared on both *results* (the digest-covered experiment/manifest
sections) and *speed* (the telemetry section).  Run from the repo root::

    PYTHONPATH=src python benchmarks/emit_bench.py                 # default set
    PYTHONPATH=src python benchmarks/emit_bench.py --all           # every driver
    PYTHONPATH=src python benchmarks/emit_bench.py figure12 table2 --out-dir .
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.validation import export
from repro.validation.experiments.fast import FAST_KWARGS, run_fast
from repro.validation.runner import consume_run_stats, reset_run_stats

#: The fast-and-representative default set: one microbenchmark, one
#: sweep, one application validation, one N-tier hybrid-memory sweep,
#: and the multi-tenant KV service.
DEFAULT_EXPERIMENTS = (
    "table2", "figure8", "pagerank-validation", "tier-sweep",
    "service-latency",
)

#: Experiment id -> BENCH file basename, where the historical file name
#: differs from the registry id (the digest-covered experiment_id inside
#: the document always stays the registry id).
BENCH_BASENAMES = {"service-latency": "kvservice"}


def emit_one(experiment: str, out_dir: Path, jobs: int) -> Path:
    """Run one fast experiment and write its BENCH document."""
    reset_run_stats()
    started = time.perf_counter()
    result = run_fast(experiment, jobs=jobs)
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    basename = BENCH_BASENAMES.get(experiment, experiment)
    path = out_dir / f"BENCH_{basename}.json"
    manifest = export.build_manifest(
        stats=stats,
        knobs={
            "command": "emit_bench",
            "experiment": experiment,
            "preset": "fast",
        },
    )
    telemetry = stats.telemetry() if stats is not None else {}
    telemetry["driver_wall_s"] = wall_s
    document = export.build_document(result, manifest, telemetry=telemetry)
    path.write_text(export.dumps_document(document), encoding="utf-8")
    return path


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "experiments",
        nargs="*",
        metavar="experiment",
        help=f"experiment ids (default: {' '.join(DEFAULT_EXPERIMENTS)})",
    )
    parser.add_argument(
        "--all", action="store_true", help="emit every experiment"
    )
    parser.add_argument(
        "--out-dir", default=".", help="directory for BENCH_*.json files"
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="runner worker processes (default 1: stable wall times)",
    )
    args = parser.parse_args(argv)
    if args.all:
        experiments = sorted(FAST_KWARGS)
    else:
        experiments = list(args.experiments) or list(DEFAULT_EXPERIMENTS)
    unknown = [name for name in experiments if name not in FAST_KWARGS]
    if unknown:
        parser.error(
            f"unknown experiment(s): {', '.join(unknown)} "
            f"(choose from {', '.join(sorted(FAST_KWARGS))})"
        )
    out_dir = Path(args.out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    for experiment in experiments:
        path = emit_one(experiment, out_dir, jobs=args.jobs)
        document = export.load_experiment_json(path)
        wall = document["telemetry"]["driver_wall_s"]
        print(f"{path}: {len(document['experiment']['rows'])} row(s), "
              f"{wall:.2f}s driver wall time")
    return 0


if __name__ == "__main__":
    sys.exit(main())
