"""Section 7: Graph500 BFS extended validation (paper: <12%)."""

from conftest import regenerate

from repro.validation.experiments import run_graph500_validation
from repro.workloads.graph500 import Graph500Config, default_graph

#: Scaled: 800k vertices with 32 B of BFS state still exceed the LLC.
BENCH_CONFIG = Graph500Config(
    vertex_count=800_000, edges_per_vertex=4, roots=1, bytes_per_vertex=32
)


def test_graph500_validation(benchmark):
    graph = default_graph(BENCH_CONFIG)
    result = regenerate(
        benchmark, run_graph500_validation, workload=BENCH_CONFIG, graph=graph
    )
    row = result.rows[0]
    assert row["error_pct"] < 12.0, row
    assert row["traversed_edges"] > graph.edge_count * 0.95
