"""Section 3.2: emulator overhead accounting and backend comparison."""

from conftest import regenerate

from repro.validation.experiments import run_overhead_study


def test_overhead_study(benchmark):
    result = regenerate(benchmark, run_overhead_study)
    rows = {row["quantity"]: row["value"] for row in result.rows}
    # The paper's constants.
    assert rows["thread registration (cycles)"] == 300_000
    assert 3500 <= rows["epoch processing, rdpmc (cycles)"] <= 4500
    assert 25_000 <= rows["counter read, PAPI-style (cycles)"] <= 35_000
    # Switched-off-injection overhead: <4% with rdpmc; PAPI much worse.
    rdpmc = rows["switched-off-injection overhead, rdpmc (%)"]
    papi = rows["switched-off-injection overhead, papi (%)"]
    assert rdpmc < 4.0
    assert papi > 3 * rdpmc
    # Overhead amortisation works.
    assert rows["overhead amortized into delays (%)"] > 90.0
