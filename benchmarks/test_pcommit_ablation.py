"""Section 6: the pcommit write model vs. pessimistic pflush."""

from conftest import regenerate

from repro.validation.experiments import run_pcommit_ablation

INDEPENDENT_WRITES = 16


def test_pcommit_ablation(benchmark):
    result = regenerate(
        benchmark, run_pcommit_ablation, independent_writes=INDEPENDENT_WRITES
    )
    by_model = {row["write_model"]: row["ns_per_barrier"] for row in result.rows}
    # pflush serialises: ~writes x write latency per barrier.
    assert by_model["pflush"] > 0.9 * INDEPENDENT_WRITES * 1000.0
    # pcommit overlaps independent writes: order one write latency.
    assert by_model["pcommit"] < 2_500.0
    speedup = by_model["pflush"] / by_model["pcommit"]
    assert speedup > INDEPENDENT_WRITES / 2
