"""Figure 8: STREAM bandwidth vs. thermal-control register (Sandy Bridge)."""

from conftest import regenerate

from repro.validation.experiments import run_figure8


def test_figure8(benchmark):
    result = regenerate(benchmark, run_figure8)
    registers = result.column("register")
    bandwidths = result.column("bandwidth_gbps")
    # Monotone non-decreasing in register value.
    assert all(b >= a - 1e-9 for a, b in zip(bandwidths, bandwidths[1:]))
    # Linear region: bandwidth proportional to register value at the low
    # end (compare the 2nd and 3rd points; the 1st is the near-zero floor).
    ratio = bandwidths[2] / bandwidths[1]
    expected = registers[2] / registers[1]
    assert abs(ratio - expected) / expected < 0.1
    # Plateau at the application's attainable maximum, below machine peak.
    assert bandwidths[-1] == bandwidths[-2] == bandwidths[-3]
    from repro.hw import SANDY_BRIDGE

    assert bandwidths[-1] < SANDY_BRIDGE.peak_bw_bytes_per_ns
