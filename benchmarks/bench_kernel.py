#!/usr/bin/env python
"""DES-kernel microbenchmark: events/sec on the kernel's hot paths.

Measures raw dispatch throughput of :class:`repro.sim.Simulator` across
the workload shapes that dominate real experiments, plus wall clock per
registry experiment (fast presets).  Results land in the perf trajectory
as ``BENCH_kernel.json`` — an export document whose digest-covered
``experiment`` section holds only deterministic facts (scenario names,
event counts, heap hygiene counters) while the measured throughput lives
in ``telemetry``, like every other ``BENCH_*.json``.

Scenarios:

* ``heap-drain``       — drain a large pre-seeded heap of no-op events:
  pure dispatch cost (heap comparisons, pop, fire) with no callback or
  scheduling work in the timed region.
* ``timer-chain``      — self-rescheduling callback chains: the pure
  schedule/dispatch cycle with no process machinery.
* ``process-timeouts`` — generator processes yielding ``Timeout``: the
  op-execution shape every workload drives.
* ``cancel-churn``     — cancel/reschedule-heavy deadlines (the
  ``PmWriteEmulator`` signal-interrupt pattern): lazy-cancellation
  hygiene and heap growth.
* ``observed-chain``   — ``timer-chain`` with a no-op dispatch observer
  armed: the fall-back observable path faults/invariants see.
* ``experiment:<id>``  — wall clock and events/sec of registry fast
  presets through the full stack.

Usage (repo root)::

    PYTHONPATH=src python benchmarks/bench_kernel.py                # run + print
    PYTHONPATH=src python benchmarks/bench_kernel.py --out BENCH_kernel.json
    PYTHONPATH=src python benchmarks/bench_kernel.py --baseline seed.json \
        --out BENCH_kernel.json                                     # stamp speedups
    PYTHONPATH=src python benchmarks/bench_kernel.py --check BENCH_kernel.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

from repro.sim import Simulator, Timeout

#: Registry experiments timed through the full stack (fast presets):
#: the two most event-heavy presets plus one cheap microbenchmark.
EXPERIMENT_IDS = ("model-ablation", "figure13", "table2")

#: Kernel scenarios gated by ``--check`` (experiment wall clock is too
#: machine-dependent to gate; it is recorded for the trajectory only).
GATED_SCENARIOS = ("heap-drain", "timer-chain", "process-timeouts",
                   "cancel-churn", "observed-chain")


# ----------------------------------------------------------------------
# Kernel scenarios
# ----------------------------------------------------------------------


def run_heap_drain(total_events: int = 300_000) -> dict:
    """Drain a large pre-seeded heap of no-op events: pure dispatch cost.

    With 300k live entries every pop sifts through ~18 comparison
    levels, so this isolates the heap machinery (entry comparisons, pop,
    fire) from callback and scheduling work — the shape of a fully
    loaded completion queue.  Seeding happens outside the timed region.
    """
    sim = Simulator(seed=1)

    def noop():
        pass

    # A fixed stride coprime with the count interleaves times so the
    # heap genuinely reorders (a monotone seed order would make every
    # pop trivially cheap).
    for index in range(total_events):
        sim.schedule(float((index * 7919) % total_events), noop)
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return _scenario_row("heap-drain", sim, wall)


def run_timer_chain(total_events: int = 400_000, chains: int = 64) -> dict:
    """Self-rescheduling timer chains: the bare schedule/dispatch cycle."""
    sim = Simulator(seed=1)
    remaining = [total_events]

    def make_chain(period: float):
        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(period, tick)
        return tick

    for chain in range(chains):
        sim.schedule(float(chain + 1), make_chain(float(chains + chain)))
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return _scenario_row("timer-chain", sim, wall)


def run_process_timeouts(processes: int = 32, timeouts: int = 6_000) -> dict:
    """Generator processes blocking on Timeouts (the op-execution shape)."""
    sim = Simulator(seed=1)

    def body(period: float):
        # One Timeout reused across yields: it is immutable, and reuse
        # keeps the measurement on the kernel/process machinery rather
        # than on waitable construction.
        wait = Timeout(period)
        for _ in range(timeouts):
            yield wait

    for index in range(processes):
        sim.spawn(body(float(index + 1)), name=f"proc{index}")
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    return _scenario_row("process-timeouts", sim, wall)


def run_cancel_churn(ticks: int = 2_000, slots: int = 128) -> dict:
    """Cancel/reschedule-heavy deadlines (PmWriteEmulator interrupts).

    Each tick cancels every armed deadline and re-arms it further out —
    under lazy cancellation the heap retains every cancelled entry until
    popped, so heap growth here is the leak the compactor bounds.
    """
    sim = Simulator(seed=1)
    deadlines = [None] * slots
    state = {"ticks": 0, "heap_peak": 0}

    def tick():
        state["ticks"] += 1
        for slot in range(slots):
            event = deadlines[slot]
            if event is not None and event.pending:
                event.cancel()
            deadlines[slot] = sim.schedule(
                10_000.0 + slot, lambda: None
            )
        heap_len = len(sim._heap)
        if heap_len > state["heap_peak"]:
            state["heap_peak"] = heap_len
        if state["ticks"] < ticks:
            sim.schedule(1.0, tick)

    sim.schedule(1.0, tick)
    started = time.perf_counter()
    sim.run(until_ns=float(ticks + 10))
    wall = time.perf_counter() - started
    row = _scenario_row("cancel-churn", sim, wall)
    row["heap_peak"] = state["heap_peak"]
    row["heap_final"] = len(sim._heap)
    row["compactions"] = getattr(sim, "compactions", 0)
    return row


def run_observed_chain(total_events: int = 400_000, chains: int = 64) -> dict:
    """timer-chain with a no-op dispatch observer armed (observable path)."""
    sim = Simulator(seed=1)
    remaining = [total_events]

    def make_chain(period: float):
        def tick():
            remaining[0] -= 1
            if remaining[0] > 0:
                sim.schedule(period, tick)
        return tick

    for chain in range(chains):
        sim.schedule(float(chain + 1), make_chain(float(chains + chain)))
    observed = [0]

    def observer(event):
        observed[0] += 1

    sim.dispatch_observer = observer
    started = time.perf_counter()
    sim.run()
    wall = time.perf_counter() - started
    row = _scenario_row("observed-chain", sim, wall)
    row["observed"] = observed[0]
    return row


def _scenario_row(name: str, sim: Simulator, wall_s: float) -> dict:
    events = sim.events_dispatched
    return {
        "scenario": name,
        "events": events,
        "wall_s": wall_s,
        "events_per_sec": events / wall_s if wall_s > 0 else 0.0,
    }


KERNEL_SCENARIOS = {
    "heap-drain": run_heap_drain,
    "timer-chain": run_timer_chain,
    "process-timeouts": run_process_timeouts,
    "cancel-churn": run_cancel_churn,
    "observed-chain": run_observed_chain,
}


# ----------------------------------------------------------------------
# Full-stack experiment timing
# ----------------------------------------------------------------------


def run_experiment_scenario(experiment: str) -> dict:
    """Wall clock + events/sec of one registry fast preset."""
    from repro.validation.experiments.fast import run_fast
    from repro.validation.runner import consume_run_stats, reset_run_stats

    reset_run_stats()
    started = time.perf_counter()
    run_fast(experiment, jobs=1)
    wall = time.perf_counter() - started
    stats = consume_run_stats()
    events = stats.events if stats is not None else 0
    return {
        "scenario": f"experiment:{experiment}",
        "events": events,
        "wall_s": wall,
        "events_per_sec": events / wall if wall > 0 else 0.0,
    }


# ----------------------------------------------------------------------
# Measurement / document assembly
# ----------------------------------------------------------------------


def measure(repeats: int = 3, experiments: bool = True) -> list[dict]:
    """Run every scenario; keep the best (min-wall) of *repeats*."""
    rows = []
    for name, runner in KERNEL_SCENARIOS.items():
        best = None
        for _ in range(repeats):
            row = runner()
            if best is None or row["wall_s"] < best["wall_s"]:
                best = row
        rows.append(best)
    if experiments:
        for experiment in EXPERIMENT_IDS:
            best = None
            # Repeats matter here too: the first run may pay cold
            # calibration-cache costs and the stack is noise-sensitive.
            for _ in range(repeats):
                row = run_experiment_scenario(experiment)
                if best is None or row["wall_s"] < best["wall_s"]:
                    best = row
            rows.append(best)
    return rows


def build_bench_document(rows: list[dict], baseline: dict | None) -> dict:
    """Assemble the BENCH_kernel export document.

    Deterministic facts (scenario names, event counts, heap hygiene)
    form the digest-covered ``experiment`` section; measured throughput
    and any seed-baseline comparison go to ``telemetry``.
    """
    from repro.validation import export
    from repro.validation.reporting import ExperimentResult

    result = ExperimentResult(
        experiment_id="kernel-bench",
        title="DES kernel dispatch throughput",
        columns=["scenario", "events", "heap_peak", "heap_final",
                 "compactions"],
    )
    for row in rows:
        result.add_row(
            scenario=row["scenario"],
            events=row["events"],
            heap_peak=row.get("heap_peak"),
            heap_final=row.get("heap_final"),
            compactions=row.get("compactions"),
        )
    result.note(
        "events are deterministic per scenario; throughput lives in "
        "telemetry.scenarios (events_per_sec, wall_s)"
    )
    telemetry: dict = {
        "scenarios": {
            row["scenario"]: {
                "wall_s": row["wall_s"],
                "events_per_sec": row["events_per_sec"],
            }
            for row in rows
        }
    }
    if baseline is not None:
        comparison = {}
        for row in rows:
            name = row["scenario"]
            base = baseline.get(name)
            if not base:
                continue
            comparison[name] = {
                "baseline_events_per_sec": base,
                "speedup": row["events_per_sec"] / base if base else None,
            }
        telemetry["seed_baseline"] = comparison
    manifest = export.build_manifest(
        knobs={"command": "bench_kernel", "gated": list(GATED_SCENARIOS)}
    )
    return export.build_document(result, manifest, telemetry=telemetry)


def load_baseline(path: Path) -> dict:
    """scenario -> events_per_sec from a prior bench document."""
    document = json.loads(path.read_text(encoding="utf-8"))
    scenarios = document.get("telemetry", {}).get("scenarios", {})
    return {
        name: payload.get("events_per_sec", 0.0)
        for name, payload in scenarios.items()
    }


def check_against(path: Path, rows: list[dict], tolerance: float) -> int:
    """CI gate: fail if any gated scenario regressed past *tolerance*."""
    committed = load_baseline(path)
    failures = []
    for row in rows:
        name = row["scenario"]
        if name not in GATED_SCENARIOS:
            continue
        base = committed.get(name)
        if not base:
            print(f"check: {name}: no committed baseline, skipping")
            continue
        ratio = row["events_per_sec"] / base
        verdict = "ok" if ratio >= 1.0 - tolerance else "REGRESSION"
        print(
            f"check: {name}: {row['events_per_sec']:,.0f} ev/s vs committed "
            f"{base:,.0f} ev/s ({ratio:.2f}x) {verdict}"
        )
        if ratio < 1.0 - tolerance:
            failures.append(name)
    if failures:
        print(
            f"kernel bench gate FAILED: >{tolerance:.0%} throughput "
            f"regression in {', '.join(failures)}"
        )
        return 1
    print("kernel bench gate passed")
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", help="write BENCH_kernel.json here")
    parser.add_argument(
        "--baseline",
        help="prior bench JSON whose throughput becomes telemetry."
             "seed_baseline (speedup ratios)",
    )
    parser.add_argument(
        "--check",
        help="committed bench JSON to gate against (CI mode)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.20,
        help="allowed fractional regression in --check mode (default 0.20)",
    )
    parser.add_argument(
        "--repeats", type=int, default=3,
        help="per-scenario repeats; best wall time wins (default 3)",
    )
    parser.add_argument(
        "--no-experiments", action="store_true",
        help="skip the full-stack registry experiment scenarios",
    )
    args = parser.parse_args(argv)

    rows = measure(repeats=args.repeats, experiments=not args.no_experiments)
    for row in rows:
        line = (
            f"{row['scenario']:24s} {row['events']:>9,d} events  "
            f"{row['wall_s']:7.3f}s  {row['events_per_sec']:>12,.0f} ev/s"
        )
        if "heap_peak" in row:
            line += (
                f"  heap peak {row['heap_peak']:,} final {row['heap_final']:,}"
                f" compactions {row['compactions']}"
            )
        print(line)

    if args.check:
        return check_against(Path(args.check), rows, args.tolerance)

    baseline = None
    if args.baseline:
        baseline = load_baseline(Path(args.baseline))
    if args.out:
        document = build_bench_document(rows, baseline)
        from repro.validation import export

        Path(args.out).write_text(
            export.dumps_document(document), encoding="utf-8"
        )
        print(f"written to {args.out}")
        if baseline is not None:
            for name, payload in (
                document["telemetry"].get("seed_baseline", {}).items()
            ):
                print(f"  {name}: {payload['speedup']:.2f}x vs baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
