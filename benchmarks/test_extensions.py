"""Extension benchmarks: the Section 6/7 agenda items we implemented."""

from conftest import regenerate

from repro.validation.experiments import (
    run_asymmetric_bandwidth,
    run_loaded_latency_study,
    run_parallel_pagerank,
    run_technology_comparison,
)
from repro.workloads.graphs import synthetic_power_law
from repro.workloads.pagerank import PageRankConfig

BENCH_BASE = PageRankConfig(
    vertex_count=200_000, edges_per_vertex=6, max_iterations=8,
    tolerance=1e-15,
)


def test_parallel_pagerank(benchmark):
    graph = synthetic_power_law(
        BENCH_BASE.vertex_count, BENCH_BASE.edges_per_vertex,
        seed=BENCH_BASE.seed,
    )
    result = regenerate(
        benchmark, run_parallel_pagerank, base=BENCH_BASE, graph=graph
    )
    by_threads = {row["threads"]: row for row in result.rows}
    # Emulation stays accurate through barrier synchronisation...
    for row in result.rows:
        assert row["error_pct"] < 5.0, row
    # ...and the workload genuinely scales.
    assert by_threads[8]["speedup_emulated"] > 3.0


def test_asymmetric_bandwidth(benchmark):
    result = regenerate(benchmark, run_asymmetric_bandwidth)
    for row in result.rows:
        # Writes track their target; reads stay near the (fixed) target.
        assert (
            abs(row["achieved_write_gbps"] - row["write_target_gbps"])
            / row["write_target_gbps"]
            < 0.15
        ), row
        assert row["achieved_read_gbps"] > 8.0


def test_loaded_latency_study(benchmark):
    result = regenerate(benchmark, run_loaded_latency_study)
    errors = result.column("error_pct")
    # Error grows with the loaded-latency coefficient (the open issue the
    # paper discusses in Section 6).
    assert errors == sorted(errors)
    assert errors[0] < 3.0
    assert errors[-1] > 20.0


def test_technology_comparison(benchmark):
    result = regenerate(benchmark, run_technology_comparison)
    gets = result.column("gets_rel")
    assert gets == sorted(gets, reverse=True)


def test_kv_write_models(benchmark):
    from repro.validation.experiments import run_kv_write_models

    result = regenerate(benchmark, run_kv_write_models)
    by_model = {row["write_model"]: row["puts_rel"] for row in result.rows}
    assert by_model["pflush"] < 0.4
    assert by_model["pcommit"] > 0.8
