"""Figure 14: MultiLat under the two-memory (DRAM + virtual NVM) mode."""

from conftest import regenerate

from repro.validation.experiments import run_figure14


def test_figure14(benchmark):
    result = regenerate(benchmark, run_figure14)
    # Completion time matches the closed form across patterns and
    # configurations.  Paper: <1.2% average; we allow the modelled
    # counter bias a little more (see EXPERIMENTS.md).
    for row in result.rows:
        assert row["avg_error_pct"] < 3.5, row
        assert row["max_error_pct"] < 6.0, row
    # Both capable families produced full sweeps (Sandy Bridge cannot:
    # no local/remote counter split).
    families = {row["processor"] for row in result.rows}
    assert families == {"IvyBridge", "Haswell"}
