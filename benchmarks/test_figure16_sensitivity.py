"""Figure 16: PageRank and KV-store sensitivity to NVM latency/bandwidth."""

from conftest import regenerate

from repro.validation.experiments import (
    run_figure16_bandwidth,
    run_figure16_latency,
)
from repro.workloads.pagerank import PageRankConfig

#: Fewer power iterations keep the sweep fast; sensitivity ratios are
#: per-iteration properties, so the shape is unchanged.
BENCH_PAGERANK = PageRankConfig(max_iterations=6, tolerance=1e-15)


def test_figure16_latency(benchmark):
    result = regenerate(
        benchmark, run_figure16_latency, pagerank=BENCH_PAGERANK
    )
    by_latency = {row["nvm_latency_ns"]: row for row in result.rows}
    # PageRank: mild at 200 ns, >5x at 2 us (non-linear degradation).
    assert by_latency[200.0]["pagerank_ct_rel"] < 1.35
    assert by_latency[2000.0]["pagerank_ct_rel"] > 4.5
    # KV store gets: roughly -15% at 200 ns, several-fold down at 2 us.
    assert 0.78 < by_latency[200.0]["kv_gets_rel"] < 0.95
    assert by_latency[2000.0]["kv_gets_rel"] < 0.35
    # Monotone worsening with latency.
    latencies = sorted(by_latency)
    pr = [by_latency[lat]["pagerank_ct_rel"] for lat in latencies]
    assert all(b >= a - 1e-9 for a, b in zip(pr, pr[1:]))


def test_figure16_bandwidth(benchmark):
    result = regenerate(
        benchmark, run_figure16_bandwidth, pagerank=BENCH_PAGERANK
    )
    by_bw = {row["nvm_bandwidth_gbps"]: row for row in result.rows}
    # Paper: PageRank only impacted below ~3 GB/s...
    assert by_bw[0.5]["pagerank_ct_rel"] > 2.0
    assert by_bw[3.0]["pagerank_ct_rel"] < 1.5
    assert by_bw[10.0]["pagerank_ct_rel"] < 1.1
    # ... and the KV store only below ~1.5 GB/s.
    assert by_bw[0.5]["kv_puts_rel"] < 0.9
    assert by_bw[5.0]["kv_puts_rel"] > 0.93
    assert by_bw[5.0]["kv_gets_rel"] > 0.93
