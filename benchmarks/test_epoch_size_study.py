"""Section 4.4 footnote 4: accuracy vs. maximum epoch size."""

from conftest import regenerate

from repro.validation.experiments import run_epoch_size_study


def test_epoch_size_study(benchmark):
    result = regenerate(benchmark, run_epoch_size_study)
    by_epoch = {row["max_epoch_ms"]: row["error_pct"] for row in result.rows}
    # 1 ms and 10 ms epochs hold accuracy; 100 ms degrades it badly on a
    # scaled-down run (the paper's second-long runs degrade more gently).
    assert by_epoch[1.0] < 6.0
    assert by_epoch[10.0] < 6.0
    assert by_epoch[100.0] > 3 * by_epoch[10.0]
