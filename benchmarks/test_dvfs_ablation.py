"""Section 6: why DVFS must be disabled for accurate emulation."""

from conftest import regenerate

from repro.validation.experiments import run_dvfs_ablation


def test_dvfs_ablation(benchmark):
    result = regenerate(benchmark, run_dvfs_ablation)
    by_state = {row["dvfs"]: row["error_pct"] for row in result.rows}
    assert by_state["disabled"] < 2.0
    # Frequency wander breaks the cycle<->ns translation.
    assert by_state["enabled"] > 2 * by_state["disabled"]
    assert by_state["enabled"] > 3.0
