"""Table 2: measured local/remote memory latencies on all testbeds."""

from conftest import regenerate

from repro.validation.experiments import run_table2


def test_table2(benchmark):
    result = regenerate(benchmark, run_table2)
    rows = {row["processor"]: row for row in result.rows}
    # Paper Table 2 averages, within measurement slack.
    for family, local, remote in [
        ("SandyBridge", 97.0, 163.0),
        ("IvyBridge", 87.0, 176.0),
        ("Haswell", 120.0, 175.0),
    ]:
        assert abs(rows[family]["avg_local"] - local) / local < 0.05
        assert abs(rows[family]["avg_remote"] - remote) / remote < 0.05
        # Remote latencies vary more than local ones.
        assert rows[family]["min_remote"] <= rows[family]["max_remote"]
        assert rows[family]["avg_local"] < rows[family]["avg_remote"]
