#!/usr/bin/env python
"""Benchmark the streaming sweep engine against the materializing runner.

Runs the same >=500-spec grid twice and emits ``BENCH_sweep.json``:

* **runner-materialized** — the pre-sweep interface: execute the whole
  grid through :func:`repro.validation.runner.run_specs`, hold every
  :class:`RunResult` in memory, then reduce to rows.  This is the
  chunked-map-era baseline the streaming engine replaces.
* **sweep-streaming** — :func:`repro.validation.sweep.run_sweep` with a
  journal: results are reduced to rows and journaled as they complete;
  only the out-of-order completion buffer is ever resident.

Each variant runs in a freshly spawned subprocess so its
``ru_maxrss`` is a clean per-variant peak, not a shared high-water
mark.  Deterministic facts (spec counts, row counts, the streaming
buffer peak) go to the digest-covered experiment section; wall times,
specs/sec, and peak RSS go to ``telemetry``, like every other
``BENCH_*.json``.  Run from the repo root::

    PYTHONPATH=src python benchmarks/bench_sweep.py --out BENCH_sweep.json
    PYTHONPATH=src python benchmarks/bench_sweep.py --scale small --jobs 1
"""

from __future__ import annotations

import argparse
import multiprocessing
import resource
import sys
import tempfile
import time
from pathlib import Path

from repro.validation import export
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import (
    consume_run_stats,
    reset_run_stats,
    run_specs,
)
from repro.validation.sweep import SweepJournal, run_sweep, spec_fingerprint
from repro.validation.experiments.sweeps import get_sweep_preset

#: The grid both variants execute (550 specs at the default scale).
PRESET = "latency-grid"


def _prewarm(scale: str) -> None:
    """Warm the calibration disk cache so neither variant measures it."""
    from repro.validation.runner import _prewarm_calibrations

    preset = get_sweep_preset(PRESET)
    _prewarm_calibrations(preset.build(scale))


def _peak_rss_mib() -> float:
    kib = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return kib / 1024.0


def bench_materialized(scale: str, jobs: int) -> dict:
    """Baseline: full-grid run_specs, rows reduced after the fact."""
    preset = get_sweep_preset(PRESET)
    specs = preset.build(scale)
    reset_run_stats()
    started = time.perf_counter()
    results = run_specs(specs, jobs=jobs)
    rows = [
        preset.row(spec, result) for spec, result in zip(specs, results)
    ]
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    return {
        "variant": "runner-materialized",
        "specs": len(specs),
        "rows": len(rows),
        "resident_rows": len(results),
        "wall_s": wall_s,
        "specs_per_s": len(specs) / wall_s if wall_s else 0.0,
        "peak_rss_mib": _peak_rss_mib(),
        "events": stats.events if stats is not None else 0,
    }


def bench_streaming(scale: str, jobs: int) -> dict:
    """Streaming: journaled run_sweep, rows consumed as they complete."""
    preset = get_sweep_preset(PRESET)
    specs = preset.build(scale)
    rows = []
    reset_run_stats()
    started = time.perf_counter()
    with tempfile.TemporaryDirectory(prefix="bench-sweep-") as tmp:
        journal = SweepJournal.create(
            tmp,
            [spec_fingerprint(spec) for spec in specs],
            name=PRESET,
            knobs={"preset": PRESET, "scale": scale},
        )
        run_sweep(
            specs,
            journal=journal,
            jobs=jobs,
            consume=lambda spec, result: rows.append(
                preset.row(spec, result)
            ),
        )
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    return {
        "variant": "sweep-streaming",
        "specs": len(specs),
        "rows": len(rows),
        "resident_rows": stats.stream_merge_peak_rows if stats else 0,
        "wall_s": wall_s,
        "specs_per_s": len(specs) / wall_s if wall_s else 0.0,
        "peak_rss_mib": _peak_rss_mib(),
        "events": stats.events if stats is not None else 0,
    }


def _in_subprocess(target, scale: str, jobs: int) -> dict:
    """Run one variant in a spawned child for an isolated RSS peak."""
    context = multiprocessing.get_context("spawn")
    with context.Pool(processes=1) as pool:
        return pool.apply(target, (scale, jobs))


def build_document(baseline: dict, streaming: dict, args, wall_s: float) -> dict:
    result = ExperimentResult(
        experiment_id="sweep-bench",
        title="Streaming sweep engine vs materializing runner",
        columns=["variant", "specs", "rows", "resident_rows", "events"],
    )
    for phase in (baseline, streaming):
        result.add_row(
            variant=phase["variant"],
            specs=phase["specs"],
            rows=phase["rows"],
            resident_rows=phase["resident_rows"],
            events=phase["events"],
        )
    result.note(
        "resident_rows: results held in memory at once — the full grid "
        "for the materializing baseline, the out-of-order merge buffer "
        "peak for the streaming engine; throughput and RSS live in "
        "telemetry"
    )
    manifest = export.build_manifest(
        stats=None,
        knobs={
            "command": "bench_sweep",
            "preset": PRESET,
            "scale": args.scale,
            "jobs": args.jobs,
        },
    )
    telemetry = {
        "driver_wall_s": wall_s,
        "baseline": {
            key: baseline[key]
            for key in ("wall_s", "specs_per_s", "peak_rss_mib")
        },
        "streaming": {
            key: streaming[key]
            for key in ("wall_s", "specs_per_s", "peak_rss_mib")
        },
        "throughput_ratio": (
            streaming["specs_per_s"] / baseline["specs_per_s"]
            if baseline["specs_per_s"]
            else None
        ),
    }
    return export.build_document(result, manifest, telemetry=telemetry)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--scale", default="large",
        help="latency-grid scale to run (default: large, 550 specs)",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="runner worker processes (default 1: stable wall times)",
    )
    parser.add_argument(
        "--out", default="BENCH_sweep.json", help="output document path"
    )
    args = parser.parse_args(argv)

    _prewarm(args.scale)
    started = time.perf_counter()
    baseline = _in_subprocess(bench_materialized, args.scale, args.jobs)
    streaming = _in_subprocess(bench_streaming, args.scale, args.jobs)
    wall_s = time.perf_counter() - started

    if baseline["rows"] != streaming["rows"]:
        print(
            f"error: row-count mismatch — baseline {baseline['rows']} vs "
            f"streaming {streaming['rows']}",
            file=sys.stderr,
        )
        return 1

    document = build_document(baseline, streaming, args, wall_s)
    Path(args.out).write_text(
        export.dumps_document(document), encoding="utf-8"
    )
    for phase in (baseline, streaming):
        print(
            f"{phase['variant']}: {phase['specs']} spec(s) in "
            f"{phase['wall_s']:.2f}s ({phase['specs_per_s']:.0f} specs/s), "
            f"{phase['resident_rows']} resident row(s), "
            f"peak RSS {phase['peak_rss_mib']:.1f} MiB"
        )
    print(f"written to {args.out}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
