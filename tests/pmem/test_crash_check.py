"""End-to-end crash-consistency checking: injector, oracle, determinism.

These are the subsystem's acceptance tests:

* the unmutated protocols recover from **every** enumerated crash point;
* each seeded mutant is caught (the regression oracle of
  ``repro.pmem.checker``);
* crash-point enumeration is deterministic per ``(plan seed, run seed)``
  and identical in every storage shard, so the merged experiment — and
  its export digest — cannot depend on ``--jobs``.
"""

import json

import pytest

from repro.hw.arch import IVY_BRIDGE
from repro.hw.machine import Machine
from repro.os.system import SimOS
from repro.pmem import MUTANTS, CrashPlan, build_recoverable, check_workload
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import QuartzConfig, WriteModel
from repro.quartz.emulator import Quartz
from repro.sim import Simulator
from repro.units import MICROSECOND
from repro.validation import export
from repro.validation.experiments.crash import run_crash_check
from repro.validation.runner import consume_run_stats, reset_run_stats
from repro.workloads.graph500 import Graph500Config
from repro.workloads.kvstore import KvStoreConfig

KV_CONFIG = KvStoreConfig(
    puts_per_thread=12, gets_per_thread=0, threads=2, batch_ops=4, seed=3
)
BFS_CONFIG = Graph500Config(vertex_count=300, edges_per_vertex=4, seed=2)
PLAN = CrashPlan(random_interval_ns=150 * MICROSECOND, seed=7, max_points=128)


def run_check(
    workload_id,
    config,
    mutant=None,
    seed=0,
    shard=0,
    shards=1,
    write_model=WriteModel.PCOMMIT,
    plan=PLAN,
):
    sim = Simulator(seed=seed)
    machine = Machine(sim, IVY_BRIDGE, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    quartz = Quartz(
        os,
        QuartzConfig(
            nvm_read_latency_ns=400.0,
            nvm_write_latency_ns=500.0,
            write_model=write_model,
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    report, result, _ = check_workload(
        os,
        quartz,
        workload_id,
        config,
        plan,
        run_seed=seed,
        shard=shard,
        shards=shards,
        mutant=mutant,
    )
    return report, result


@pytest.mark.parametrize(
    "workload_id,config",
    [("kvstore", KV_CONFIG), ("graph500", BFS_CONFIG)],
)
def test_correct_protocol_recovers_from_every_point(workload_id, config):
    report, result = run_check(workload_id, config)
    assert report.points > 0
    assert report.checked == report.points
    assert report.violation_total == 0
    assert result is not None


@pytest.mark.parametrize(
    "workload_id,config",
    [("kvstore", KV_CONFIG), ("graph500", BFS_CONFIG)],
)
@pytest.mark.parametrize("mutant", MUTANTS)
def test_mutants_are_caught(workload_id, config, mutant):
    report, _ = run_check(workload_id, config, mutant=mutant)
    assert report.violation_total >= 1
    assert report.violations, "violation records must accompany the count"
    record = report.violations[0]
    assert record["invariant"] in report.invariants
    assert record["trigger"]


@pytest.mark.parametrize("write_model", (WriteModel.PFLUSH, WriteModel.PCOMMIT))
def test_oracle_holds_under_both_write_models(write_model):
    clean, _ = run_check("kvstore", KV_CONFIG, write_model=write_model)
    broken, _ = run_check(
        "kvstore", KV_CONFIG, mutant="missing-flush", write_model=write_model
    )
    assert clean.violation_total == 0
    assert broken.violation_total >= 1


def test_enumeration_is_deterministic_per_seed():
    first, _ = run_check("kvstore", KV_CONFIG, seed=5)
    second, _ = run_check("kvstore", KV_CONFIG, seed=5)
    other, _ = run_check("kvstore", KV_CONFIG, seed=6)
    assert first.to_dict() == second.to_dict()
    # A different run seed perturbs machine jitter and the injector's
    # random stream: the report (times/points) must not be pinned by
    # accident.
    assert first.to_dict() != other.to_dict()


def test_shards_partition_the_identical_point_sequence():
    whole, _ = run_check("kvstore", KV_CONFIG, mutant="misordered-barrier")
    shard_reports = [
        run_check(
            "kvstore",
            KV_CONFIG,
            mutant="misordered-barrier",
            shard=shard,
            shards=3,
        )[0]
        for shard in range(3)
    ]
    assert {report.points for report in shard_reports} == {whole.points}
    assert sum(report.checked for report in shard_reports) == whole.checked
    merged = sorted(
        (record for report in shard_reports for record in report.violations),
        key=lambda record: record["crash_index"],
    )
    # Each run caps *stored* records (never counts); the single-shard
    # run's records are a prefix of the sharded union.
    assert merged[: len(whole.violations)] == whole.violations
    assert (
        sum(report.violation_total for report in shard_reports)
        == whole.violation_total
    )


def _run_injector(shard=0, shards=1):
    """Drive the kvstore workload keeping the injector (and its stored
    images) in hand — ``check_workload`` consumes images during recovery,
    so stride tests reach underneath it."""
    from repro.pmem.crash import CrashInjector
    from repro.pmem.domain import PersistenceDomain

    sim = Simulator(seed=0)
    machine = Machine(sim, IVY_BRIDGE, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    quartz = Quartz(
        os,
        QuartzConfig(
            nvm_read_latency_ns=400.0,
            nvm_write_latency_ns=500.0,
            write_model=WriteModel.PCOMMIT,
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    domain = PersistenceDomain()
    domain.install(os, quartz.write_emulator)
    injector = CrashInjector(
        domain, PLAN, run_seed=0, shard=shard, shards=shards
    )
    injector.install(sim, quartz.epoch_engine)
    workload = build_recoverable("kvstore", KV_CONFIG)
    out: dict = {}
    os.create_thread(workload.body_factory(domain, out), name="main")
    os.run_to_completion()
    return injector


@pytest.mark.parametrize("shards", (2, 3, 5))
def test_shard_strides_store_an_exact_partition(shards):
    """Stored crash-image *indices* form an exact partition of the point
    sequence — no duplicates, no gaps — and every stored image carries
    content identical to the unsharded run's image at the same index.
    """
    reference = _run_injector()
    by_index = {image.index: image for image in reference.images}
    assert sorted(by_index) == list(range(reference.points))
    stored: dict[int, object] = {}
    for shard in range(shards):
        injector = _run_injector(shard=shard, shards=shards)
        # Every shard enumerates the identical point sequence.
        assert injector.points == reference.points
        for image in injector.images:
            # No duplicates across shards.
            assert image.index not in stored
            stored[image.index] = image
            # The stride is exactly index % shards == shard.
            assert image.index % shards == shard
    # No gaps: the union covers every enumerated point.
    assert sorted(stored) == list(range(reference.points))
    for index, image in stored.items():
        twin = by_index[index]
        assert image.persisted == twin.persisted
        assert image.trigger == twin.trigger
        assert image.time_ns == twin.time_ns


def test_injector_never_perturbs_the_simulation():
    plain, result_plain = run_check(
        "kvstore", KV_CONFIG, plan=CrashPlan(max_points=1, on_epoch_close=False)
    )
    dense, result_dense = run_check(
        "kvstore",
        KV_CONFIG,
        plan=CrashPlan(
            random_interval_ns=20 * MICROSECOND, seed=9, max_points=256
        ),
    )
    # Same workload result whatever the crash plan: snapshots are free
    # in simulated time.
    assert result_plain == result_dense
    assert dense.points > plain.points


def test_build_recoverable_rejects_unknowns():
    from repro.errors import WorkloadError

    with pytest.raises(WorkloadError, match="no recoverable"):
        build_recoverable("stream", KV_CONFIG)
    with pytest.raises(WorkloadError, match="unknown mutant"):
        build_recoverable("kvstore", KV_CONFIG, mutant="bitflip")


# ----------------------------------------------------------------------
# The experiment driver and CLI
# ----------------------------------------------------------------------

DRIVER_KWARGS = dict(
    workload="kvstore",
    shards=2,
    config=KvStoreConfig(
        puts_per_thread=8, gets_per_thread=0, threads=2, batch_ops=4, seed=3
    ),
)


def _document(jobs):
    reset_run_stats()
    result = run_crash_check(jobs=jobs, **DRIVER_KWARGS)
    stats = consume_run_stats()
    return export.build_document(
        result,
        export.build_manifest(stats=stats, knobs={"command": "crash-check"}),
        telemetry=stats.telemetry() if stats is not None else None,
    )


def test_driver_rows_satisfy_the_oracle():
    document = _document(jobs=1)
    rows = {row["mutant"]: row for row in document["experiment"]["rows"]}
    assert rows["none"]["violations"] == 0 and rows["none"]["ok"]
    for mutant in MUTANTS:
        assert rows[mutant]["violations"] >= 1 and rows[mutant]["ok"]


def test_export_digest_is_jobs_invariant():
    serial = _document(jobs=1)
    parallel = _document(jobs=4)
    assert export.experiment_digest(serial) == export.experiment_digest(
        parallel
    )
    assert export.content_digest(serial) == export.content_digest(parallel)


def test_cli_crash_check(capsys, tmp_path):
    from repro.cli import main

    out_path = tmp_path / "crash.json"
    code = main(
        [
            "crash-check",
            "kvstore",
            "--shards",
            "2",
            "--jobs",
            "1",
            "--format",
            "json",
            "--out",
            str(out_path),
        ]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["manifest"]["crash"]["max_points"] > 0
    assert document["manifest"]["knobs"]["command"] == "crash-check"
    assert [row["ok"] for row in document["experiment"]["rows"]] == [True] * 3
    assert export.load_experiment_json(out_path)


def test_cli_crash_check_single_mutant_table(capsys):
    from repro.cli import main

    code = main(
        [
            "crash-check",
            "kvstore",
            "--mutant",
            "missing-flush",
            "--shards",
            "1",
            "--jobs",
            "1",
        ]
    )
    assert code == 0
    rendered = capsys.readouterr().out
    assert "missing-flush" in rendered
    assert ">=1" in rendered
