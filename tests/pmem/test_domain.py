"""Unit tests of the persistence-domain state machine.

The domain only reads ``thread.tid`` and op fields, so these tests drive
it directly with hand-built regions and a stub thread — the end-to-end
seams (dispatch observer, write-emulator hooks, crash injector) are
covered by ``test_crash_check.py``.
"""

import pytest

from repro.errors import WorkloadError
from repro.hw.topology import MemoryRegion
from repro.ops import Commit, Flush, FlushOpt
from repro.pmem import CrashPlan, PersistenceDomain
from repro.pmem.crash import CrashInjector
from repro.units import CACHE_LINE_BYTES


class StubThread:
    def __init__(self, tid, name="t"):
        self.tid = tid
        self.name = name


def pm_region(label="pm", lines=16, persistent=True):
    return MemoryRegion(
        node=0,
        size_bytes=lines * CACHE_LINE_BYTES,
        base=0,
        label=label,
        persistent=persistent,
    )


def test_store_flush_persists():
    domain = PersistenceDomain()
    region = pm_region()
    thread = StubThread(1)
    domain.record(region, 3, "hello")
    assert domain.dirty_line_count() == 1
    assert domain.persisted_image() == {"pm": {}}
    domain.observe_op(thread, Flush(region, lines=1, line=3))
    assert domain.dirty_line_count() == 0
    assert domain.persisted_image() == {"pm": {3: "hello"}}


def test_flushopt_needs_commit_to_persist():
    domain = PersistenceDomain()
    region = pm_region()
    thread = StubThread(1)
    domain.record(region, 0, "v0")
    domain.observe_op(thread, FlushOpt(region, lines=1, line=0))
    # Posted, not durable: a crash here loses the line.
    assert domain.posted_line_count() == 1
    assert domain.persisted_image() == {"pm": {}}
    domain.observe_op(thread, Commit())
    assert domain.posted_line_count() == 0
    assert domain.persisted_image() == {"pm": {0: "v0"}}


def test_commit_only_drains_own_threads_posts():
    domain = PersistenceDomain()
    region = pm_region()
    first, second = StubThread(1), StubThread(2)
    domain.record(region, 0, "a")
    domain.observe_op(first, FlushOpt(region, lines=1, line=0))
    domain.record(region, 1, "b")
    domain.observe_op(second, FlushOpt(region, lines=1, line=1))
    domain.observe_op(first, Commit())
    # Thread 2's in-flight writeback is untouched by thread 1's barrier.
    assert domain.persisted_image() == {"pm": {0: "a"}}
    assert domain.posted_line_count() == 1


def test_untargeted_flush_takes_oldest_dirty_first():
    domain = PersistenceDomain()
    region = pm_region()
    thread = StubThread(1)
    for line, payload in ((5, "first"), (2, "second"), (9, "third")):
        domain.record(region, line, payload)
    domain.observe_op(thread, Flush(region, lines=2))
    assert domain.persisted_image() == {"pm": {5: "first", 2: "second"}}
    assert domain.dirty_line_count() == 1


def test_clean_flush_is_counted_noop():
    domain = PersistenceDomain()
    region = pm_region()
    thread = StubThread(1)
    domain.observe_op(thread, Flush(region, lines=4, line=0))
    assert domain.clean_flushes == 1
    assert domain.persisted_image() == {"pm": {}}


def test_store_after_flushopt_redirties_without_losing_writeback():
    domain = PersistenceDomain()
    region = pm_region()
    thread = StubThread(1)
    domain.record(region, 0, "old")
    domain.observe_op(thread, FlushOpt(region, lines=1, line=0))
    domain.record(region, 0, "new")
    domain.observe_op(thread, Commit())
    # The in-flight writeback carried the flush-time payload; the later
    # store stays dirty.
    assert domain.persisted_image() == {"pm": {0: "old"}}
    assert domain.dirty_line_count() == 1


def test_volatile_regions_are_not_shadowed():
    domain = PersistenceDomain()
    region = pm_region(label="dram", persistent=False)
    thread = StubThread(1)
    domain.observe_op(thread, Flush(region, lines=1, line=0))
    assert domain.persisted_image() == {}
    with pytest.raises(WorkloadError, match="non-persistent"):
        domain.record(region, 0, "x")


def test_record_rejects_out_of_range_line():
    domain = PersistenceDomain()
    region = pm_region(lines=4)
    with pytest.raises(WorkloadError, match="outside region"):
        domain.record(region, 4, "x")


def test_duplicate_region_labels_rejected():
    domain = PersistenceDomain()
    domain.record(pm_region(label="same"), 0, "a")
    with pytest.raises(WorkloadError, match="unique labels"):
        domain.record(pm_region(label="same"), 0, "b")


def test_snapshot_freezes_the_image():
    domain = PersistenceDomain()
    region = pm_region()
    thread = StubThread(1)
    domain.record(region, 0, "v")
    domain.observe_op(thread, Flush(region, lines=1, line=0))
    image = domain.snapshot(index=0, time_ns=10.0, trigger="test")
    domain.record(region, 1, "later")
    domain.observe_op(thread, Flush(region, lines=1, line=1))
    # The earlier snapshot is unaffected by later persistence.
    assert image.lines("pm") == {0: "v"}
    assert image.dirty_lines == 0 and image.posted_lines == 0


def test_crash_plan_validation():
    with pytest.raises(WorkloadError):
        CrashPlan(random_interval_ns=-1.0)
    with pytest.raises(WorkloadError):
        CrashPlan(max_points=0)
    with pytest.raises(WorkloadError):
        CrashInjector(PersistenceDomain(), CrashPlan(), shard=2, shards=2)


def test_commit_observer_fires_after_drain():
    domain = PersistenceDomain()
    region = pm_region()
    thread = StubThread(1)
    seen = []
    domain.commit_observers.append(
        lambda t, op: seen.append(dict(domain.persisted_image()["pm"]))
    )
    domain.record(region, 0, "v")
    domain.observe_op(thread, FlushOpt(region, lines=1, line=0))
    domain.observe_op(thread, Commit())
    # The observer sees the post-drain image: the adversarial "power
    # fails as the barrier retires" point includes the drained line.
    assert seen == [{0: "v"}]
