"""Unit tests for the shared nearest-rank percentile helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.stats_util import nearest_rank_index, percentile


def test_nearest_rank_index_known_values():
    # Classic nearest-rank: rank = round(fraction * count), 1-based.
    assert nearest_rank_index(10, 0.50) == 4
    assert nearest_rank_index(10, 0.95) == 9
    assert nearest_rank_index(10, 0.99) == 9
    assert nearest_rank_index(100, 0.99) == 98
    assert nearest_rank_index(1, 0.999) == 0


def test_nearest_rank_index_clamps_to_sample():
    assert nearest_rank_index(5, 0.0) == 0
    assert nearest_rank_index(5, 1.0) == 4
    assert nearest_rank_index(3, 0.001) == 0


def test_nearest_rank_index_rejects_empty_sample():
    with pytest.raises(ValueError):
        nearest_rank_index(0, 0.5)
    with pytest.raises(ValueError):
        nearest_rank_index(-1, 0.5)


def test_percentile_empty_returns_none():
    assert percentile([], 0.5) is None


def test_percentile_sorts_a_copy():
    values = [3.0, 1.0, 2.0]
    assert percentile(values, 0.5) == 2.0
    assert values == [3.0, 1.0, 2.0]


def test_percentile_matches_runner_tail_convention():
    # 20 wall times 1..20: p50 -> rank 10 (value 10), p95 -> rank 19.
    values = [float(i) for i in range(1, 21)]
    assert percentile(values, 0.50) == 10.0
    assert percentile(values, 0.95) == 19.0
    assert percentile(values, 0.999) == 20.0


@given(
    st.lists(st.floats(0.0, 1e9), min_size=1, max_size=200),
    st.floats(0.0, 1.0),
)
def test_percentile_always_returns_an_observed_value(values, fraction):
    result = percentile(values, fraction)
    assert result in values


@given(st.lists(st.floats(0.0, 1e9), min_size=1, max_size=100))
def test_percentile_is_monotone_in_fraction(values):
    fractions = (0.0, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0)
    results = [percentile(values, fraction) for fraction in fractions]
    assert results == sorted(results)
