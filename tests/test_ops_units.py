"""Tests for the op definitions and unit conversions."""

import pytest

from repro.errors import WorkloadError
from repro.hw.topology import MemoryRegion
from repro.ops import (
    Compute,
    Flush,
    FlushOpt,
    MemBatch,
    PatternKind,
    Sleep,
    Spin,
)
from repro.units import (
    CACHE_LINE_BYTES,
    GIB,
    KIB,
    MIB,
    MICROSECOND,
    MILLISECOND,
    SECOND,
    ClockDomain,
    bytes_per_ns_to_gb_per_s,
    gb_per_s_to_bytes_per_ns,
    ns_to_ms,
    ns_to_s,
    ns_to_us,
)


def region(size=64 * MIB):
    return MemoryRegion(node=0, size_bytes=size, base=0)


# ----------------------------------------------------------------------
# Units
# ----------------------------------------------------------------------
def test_time_constants():
    assert MICROSECOND == 1e3
    assert MILLISECOND == 1e6
    assert SECOND == 1e9
    assert ns_to_us(1500.0) == 1.5
    assert ns_to_ms(2.5e6) == 2.5
    assert ns_to_s(3e9) == 3.0


def test_size_constants():
    assert KIB == 1024
    assert MIB == 1024 * KIB
    assert GIB == 1024 * MIB
    assert CACHE_LINE_BYTES == 64


def test_bandwidth_conversions_are_identity():
    assert gb_per_s_to_bytes_per_ns(12.5) == 12.5
    assert bytes_per_ns_to_gb_per_s(12.5) == 12.5


def test_clock_domain():
    clock = ClockDomain(2.0)
    assert clock.cycle_ns == 0.5
    assert clock.cycles_to_ns(10.0) == 5.0
    assert clock.ns_to_cycles(5.0) == 10.0
    with pytest.raises(ValueError):
        ClockDomain(0.0)


# ----------------------------------------------------------------------
# Op validation
# ----------------------------------------------------------------------
def test_compute_and_spin_reject_negative():
    with pytest.raises(WorkloadError):
        Compute(-1.0)
    with pytest.raises(WorkloadError):
        Spin(-1.0)
    with pytest.raises(WorkloadError):
        Sleep(-1.0)


def test_membatch_validation():
    r = region()
    with pytest.raises(WorkloadError):
        MemBatch(r, -1, PatternKind.CHASE)
    with pytest.raises(WorkloadError):
        MemBatch(r, 1, PatternKind.CHASE, parallelism=0)
    with pytest.raises(WorkloadError):
        MemBatch(r, 1, PatternKind.SEQUENTIAL, stride_bytes=0)
    with pytest.raises(WorkloadError):
        MemBatch(r, 1, PatternKind.CHASE, overlap=1.5)
    with pytest.raises(WorkloadError):
        MemBatch(r, 1, PatternKind.CHASE, footprint_bytes=0)
    with pytest.raises(WorkloadError):
        MemBatch(r, 1, PatternKind.CHASE, dram_bytes_multiplier=0.0)


def test_membatch_effective_footprint_defaults_to_region():
    r = region(128 * MIB)
    assert MemBatch(r, 1, PatternKind.CHASE).effective_footprint == 128 * MIB
    assert (
        MemBatch(r, 1, PatternKind.CHASE, footprint_bytes=MIB)
        .effective_footprint
        == MIB
    )


def test_membatch_split_remainder():
    r = region()
    batch = MemBatch(r, 1000, PatternKind.CHASE, parallelism=4)
    remainder = batch.split_remainder(0.25)
    assert remainder.accesses == 750
    assert remainder.parallelism == 4
    assert remainder.region is r
    assert batch.split_remainder(1.0) is None
    assert batch.split_remainder(0.9999) is not None


def test_flush_ops_validation():
    r = region()
    with pytest.raises(WorkloadError):
        Flush(r, lines=0)
    with pytest.raises(WorkloadError):
        FlushOpt(r, lines=-1)


def test_ops_are_frozen():
    batch = MemBatch(region(), 10, PatternKind.CHASE)
    with pytest.raises(Exception):
        batch.accesses = 20
