"""InvariantMonitor checks, and graceful degradation under faults.

The headline demonstration (the tentpole's acceptance criterion): a run
with delayed monitor signals grows its maximum epoch size — the monitor
notices late, so epochs run long — but delay conservation (injected ==
Eq. 2 target minus amortised overhead) still holds at every close.
"""

import pytest

from repro.errors import InvariantViolation
from repro.faults.invariants import InvariantMonitor
from repro.faults.plan import FaultPlan
from repro.hw import IVY_BRIDGE
from repro.quartz import QuartzConfig, calibrate_arch
from repro.quartz.epoch import EpochCloseInfo
from repro.quartz.stats import EpochTrigger
from repro.sim import Simulator
from repro.validation.configs import run_conf1
from repro.workloads.memlat import MemLatConfig, memlat_body


def factory(out):
    return memlat_body(MemLatConfig(iterations=80_000), out)


QUARTZ_CONFIG = QuartzConfig(nvm_read_latency_ns=500.0, max_epoch_ns=100_000.0)


def close_info(**overrides):
    """A consistent sync-close info; overrides poke holes in it."""
    base = dict(
        time_ns=1000.0,
        tid=1,
        thread_name="t",
        trigger=EpochTrigger.SYNC,
        epoch_length_ns=500.0,
        delay_computed_ns=100.0,
        injected_ns=80.0,
        amortized_ns=20.0,
        overhead_added_ns=15.0,
        pool_before_ns=5.0,
        pool_after_ns=0.0,
        cs_wall_ns=300.0,
        out_wall_ns=100.0,
        split_delay_ns=80.0,
        cs_share_ns=60.0,
        out_share_ns=20.0,
    )
    base.update(overrides)
    return EpochCloseInfo(**base)


# ----------------------------------------------------------------------
# Simulator-level invariants
# ----------------------------------------------------------------------

def test_clean_sim_run_passes_dispatch_checks():
    sim = Simulator(seed=0)
    monitor = InvariantMonitor()
    monitor.attach_sim(sim)
    for delay in (50.0, 10.0, 10.0, 0.0):
        sim.schedule(delay, lambda: None)
    sim.run()
    assert monitor.sim_checks == 4
    assert monitor.violations == []


def test_clock_monotonicity_violation_is_structured():
    monitor = InvariantMonitor()

    class FakeEvent:
        time = 100.0
        seq = 0

    class Earlier:
        time = 50.0
        seq = 1

    monitor._on_dispatch(FakeEvent())
    with pytest.raises(InvariantViolation) as excinfo:
        monitor._on_dispatch(Earlier())
    assert excinfo.value.invariant == "clock-monotonicity"
    assert excinfo.value.context["time_ns"] == 50.0
    assert "clock-monotonicity" in str(excinfo.value)


def test_fifo_tie_break_violation():
    monitor = InvariantMonitor(raise_on_violation=False)

    class Event:
        def __init__(self, time, seq):
            self.time = time
            self.seq = seq

    monitor._on_dispatch(Event(100.0, 5))
    monitor._on_dispatch(Event(100.0, 3))
    assert [v.invariant for v in monitor.violations] == ["fifo-tie-break"]


# ----------------------------------------------------------------------
# Epoch-close invariants
# ----------------------------------------------------------------------

def test_consistent_close_passes_all_checks():
    monitor = InvariantMonitor()
    monitor._on_close(close_info())
    assert monitor.epoch_checks == 1
    assert monitor.violations == []
    assert monitor.max_epoch_length_ns == 500.0


@pytest.mark.parametrize(
    "overrides, invariant",
    [
        ({"injected_ns": 90.0}, "delay-conservation"),
        ({"pool_after_ns": 3.0}, "pool-conservation"),
        (
            {"amortized_ns": 120.0, "injected_ns": -20.0, "pool_after_ns": -100.0},
            "pool-non-negative",
        ),
        ({"cs_share_ns": 70.0}, "split-conservation"),
        ({"cs_share_ns": 20.0, "out_share_ns": 60.0}, "split-proportionality"),
    ],
)
def test_each_accounting_invariant_fires(overrides, invariant):
    monitor = InvariantMonitor(raise_on_violation=False)
    monitor._on_close(close_info(**overrides))
    assert invariant in {v.invariant for v in monitor.violations}


def test_negative_share_is_a_past_schedule():
    monitor = InvariantMonitor(raise_on_violation=False)
    monitor._on_close(
        close_info(cs_share_ns=100.0, out_share_ns=-20.0)
    )
    assert "no-past-schedule" in {v.invariant for v in monitor.violations}


def test_monitor_close_has_no_split_to_check():
    monitor = InvariantMonitor()
    monitor._on_close(close_info(
        trigger=EpochTrigger.MONITOR,
        split_delay_ns=None, cs_share_ns=None, out_share_ns=None,
    ))
    assert monitor.violations == []


def test_report_shape():
    monitor = InvariantMonitor()
    monitor._on_close(close_info())
    report = monitor.report()
    assert report == {
        "sim_checks": 0,
        "epoch_checks": 1,
        "violations": 0,
        "max_epoch_length_ns": 500.0,
    }


# ----------------------------------------------------------------------
# Full-stack: clean runs hold every invariant
# ----------------------------------------------------------------------

def test_clean_conf1_run_reports_zero_violations():
    outcome = run_conf1(
        IVY_BRIDGE, factory, QUARTZ_CONFIG, seed=3,
        calibration=calibrate_arch(IVY_BRIDGE), check_invariants=True,
    )
    report = outcome.invariant_report
    assert report is not None
    assert report["violations"] == 0
    assert report["epoch_checks"] > 0
    assert report["sim_checks"] > 0
    assert outcome.fault_report is None  # no plan: clean run


# ----------------------------------------------------------------------
# Graceful degradation: delayed monitor signals
# ----------------------------------------------------------------------

def test_delayed_monitor_signals_grow_epochs_but_conserve_delay():
    calibration = calibrate_arch(IVY_BRIDGE)

    def run(plan):
        return run_conf1(
            IVY_BRIDGE, factory, QUARTZ_CONFIG, seed=3,
            calibration=calibration, fault_plan=plan, check_invariants=True,
        )

    baseline = run(None)
    faulted = run(FaultPlan(
        seed=1, signal_delay_ns=400_000.0, signal_delay_p=1.0,
    ))
    assert faulted.fault_report["injections"]["signal_delayed"] > 0
    # Epochs grow: the monitor's close signal lands well after the
    # max-epoch threshold...
    assert (
        faulted.invariant_report["max_epoch_length_ns"]
        > baseline.invariant_report["max_epoch_length_ns"]
    )
    # ...but every close still conserved delay (a violation would have
    # raised InvariantViolation mid-run).
    assert faulted.invariant_report["violations"] == 0
    assert baseline.invariant_report["violations"] == 0
