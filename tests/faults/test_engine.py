"""FaultEngine injector behaviour and determinism."""

import pytest

from repro.faults.engine import DROP_SIGNAL, FaultEngine
from repro.faults.plan import FaultPlan
from repro.hw import IVY_BRIDGE, Machine
from repro.ops import Compute
from repro.os import SimOS, Signal
from repro.quartz.calibration import calibrate_arch
from repro.sim import Simulator

SIGTEST = 40


def make_os(seed=1):
    sim = Simulator(seed=seed)
    machine = Machine(sim, IVY_BRIDGE)
    return SimOS(machine)


# ----------------------------------------------------------------------
# Timer jitter / drift
# ----------------------------------------------------------------------

def test_timer_drift_scales_scheduled_delays():
    sim = Simulator(seed=0)
    engine = FaultEngine(FaultPlan(timer_drift_rel=0.5))
    engine.install(sim=sim)
    fired = []
    sim.schedule(1000.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1500.0]
    assert engine.injections["timer_jitter"] == 1


def test_timer_jitter_stays_within_relative_bounds():
    sim = Simulator(seed=0)
    engine = FaultEngine(FaultPlan(timer_jitter_rel=0.1), run_seed=3)
    engine.install(sim=sim)
    perturbed = [engine._intercept_delay(1000.0) for _ in range(200)]
    assert all(900.0 <= value <= 1100.0 for value in perturbed)
    assert len(set(perturbed)) > 1  # actually jitters


def test_zero_delay_continuations_stay_immediate():
    engine = FaultEngine(FaultPlan(timer_jitter_rel=0.2, timer_drift_rel=0.1))
    assert engine._intercept_delay(0.0) == 0.0


def test_jitter_sequence_is_deterministic_per_seeds():
    def sequence(plan_seed, run_seed):
        engine = FaultEngine(FaultPlan(seed=plan_seed, timer_jitter_rel=0.1),
                             run_seed=run_seed)
        return [engine._intercept_delay(1000.0) for _ in range(50)]

    assert sequence(7, 1) == sequence(7, 1)
    assert sequence(7, 1) != sequence(7, 2)
    assert sequence(7, 1) != sequence(8, 1)


def test_uninstall_restores_clean_scheduling():
    sim = Simulator(seed=0)
    engine = FaultEngine(FaultPlan(timer_drift_rel=1.0))
    engine.install(sim=sim)
    engine.uninstall()
    fired = []
    sim.schedule(1000.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [1000.0]


# ----------------------------------------------------------------------
# Signal delay / drop
# ----------------------------------------------------------------------

def _delivery_probe(os):
    log = []

    def handler(thread, signal):
        log.append(os.sim.now)
        return
        yield  # pragma: no cover - generator marker

    os.signal_handlers[SIGTEST] = handler

    def body(ctx):
        yield Compute(2_200_000.0)

    thread = os.create_thread(body)
    return thread, log


def test_delayed_signal_arrives_late():
    os = make_os()
    engine = FaultEngine(
        FaultPlan(signal_delay_ns=500_000.0, signal_delay_p=1.0)
    )
    engine.install(machine=os.machine, os=os)
    thread, log = _delivery_probe(os)
    os.sim.schedule(100_000.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.run_to_completion()
    assert log == [600_000.0]
    assert engine.injections["signal_delayed"] == 1


def test_dropped_signal_never_delivers():
    os = make_os()
    engine = FaultEngine(FaultPlan(signal_drop_p=1.0))
    engine.install(machine=os.machine, os=os)
    thread, log = _delivery_probe(os)
    os.sim.schedule(100_000.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.run_to_completion()
    assert log == []
    assert engine.injections["signal_dropped"] == 1


def test_signal_interceptor_verdicts():
    engine = FaultEngine(FaultPlan(signal_drop_p=1.0))
    assert engine._intercept_signal(None, None) == DROP_SIGNAL
    engine = FaultEngine(
        FaultPlan(signal_delay_ns=123.0, signal_delay_p=1.0)
    )
    assert engine._intercept_signal(None, None) == 123.0
    engine = FaultEngine(FaultPlan())
    assert engine._intercept_signal(None, None) is None


# ----------------------------------------------------------------------
# Monitor misses
# ----------------------------------------------------------------------

def test_monitor_miss_probability_extremes():
    always = FaultEngine(FaultPlan(monitor_miss_p=1.0))
    assert all(always.monitor_skips_wakeup() for _ in range(10))
    assert always.injections["monitor_missed"] == 10
    never = FaultEngine(FaultPlan(monitor_miss_p=0.0))
    assert not any(never.monitor_skips_wakeup() for _ in range(10))
    assert "monitor_missed" not in never.injections


# ----------------------------------------------------------------------
# Counter faults
# ----------------------------------------------------------------------

def test_counter_wrap_reduces_modulo_register_width():
    engine = FaultEngine(FaultPlan(counter_wrap_bits=8))
    assert engine._intercept_counter_read(0, "e", 300.0) == 300.0 % 256
    assert engine.injections["counter_wrapped"] == 1
    # Values inside the register width pass through unchanged.
    assert engine._intercept_counter_read(0, "e", 200.0) == 200.0
    assert engine.injections["counter_wrapped"] == 1


def test_counter_stale_returns_previous_observation():
    engine = FaultEngine(FaultPlan(counter_stale_p=1.0))
    assert engine._intercept_counter_read(0, "e", 100.0) == 100.0
    assert engine._intercept_counter_read(0, "e", 150.0) == 100.0
    assert engine.injections["counter_stale"] == 1
    # Other (core, event) keys have their own staleness state.
    assert engine._intercept_counter_read(1, "e", 400.0) == 400.0


def test_counter_faults_install_on_every_pmc():
    os = make_os()
    engine = FaultEngine(FaultPlan(counter_stale_p=0.5))
    engine.install(machine=os.machine, os=os)
    assert all(
        pmc.read_interceptor == engine._intercept_counter_read
        for pmc in os.machine.pmcs
    )
    engine.uninstall()
    assert all(pmc.read_interceptor is None for pmc in os.machine.pmcs)


# ----------------------------------------------------------------------
# Calibration perturbation
# ----------------------------------------------------------------------

def test_perturb_calibration_bounds_and_determinism():
    calibration = calibrate_arch(IVY_BRIDGE)
    plan = FaultPlan(seed=3, calib_perturb_rel=0.05)
    perturbed = FaultEngine(plan, run_seed=1).perturb_calibration(calibration)
    again = FaultEngine(plan, run_seed=1).perturb_calibration(calibration)
    assert perturbed == again
    assert perturbed != calibration
    assert perturbed.dram_local_ns == pytest.approx(
        calibration.dram_local_ns, rel=0.06
    )
    assert perturbed.dram_local_ns < perturbed.dram_remote_ns
    assert len(perturbed.bandwidth_table) == len(calibration.bandwidth_table)


def test_perturb_calibration_noop_without_the_fault():
    calibration = calibrate_arch(IVY_BRIDGE)
    engine = FaultEngine(FaultPlan(signal_drop_p=0.5))
    assert engine.perturb_calibration(calibration) is calibration


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------

def test_report_carries_plan_and_injections():
    plan = FaultPlan(seed=2, signal_drop_p=1.0)
    engine = FaultEngine(plan)
    engine._intercept_signal(None, None)
    report = engine.report()
    assert report["plan"] == plan.to_dict()
    assert report["injections"] == {"signal_dropped": 1}
