"""FaultPlan validation, serialization, and the --faults spec grammar."""

import pytest

from repro.errors import FaultPlanError
from repro.faults.plan import FaultPlan


def test_default_plan_is_empty():
    plan = FaultPlan()
    assert plan.is_empty
    assert plan.to_dict() == {"seed": 0}


def test_seed_alone_is_still_empty():
    assert FaultPlan(seed=99).is_empty


def test_any_injector_makes_plan_non_empty():
    assert not FaultPlan(timer_jitter_rel=0.01).is_empty
    assert not FaultPlan(signal_delay_ns=1e6).is_empty
    assert not FaultPlan(signal_drop_p=0.1).is_empty
    assert not FaultPlan(monitor_miss_p=0.1).is_empty
    assert not FaultPlan(counter_stale_p=0.1).is_empty
    assert not FaultPlan(counter_wrap_bits=32).is_empty
    assert not FaultPlan(calib_perturb_rel=0.1).is_empty


def test_signal_delay_with_zero_probability_is_empty():
    assert FaultPlan(signal_delay_ns=1e6, signal_delay_p=0.0).is_empty


@pytest.mark.parametrize(
    "kwargs",
    [
        {"signal_drop_p": 1.5},
        {"signal_drop_p": -0.1},
        {"monitor_miss_p": 2.0},
        {"timer_jitter_rel": 1.0},
        {"timer_jitter_rel": -0.2},
        {"timer_drift_rel": -1.0},
        {"signal_delay_ns": -5.0},
        {"counter_wrap_bits": 4},
        {"counter_wrap_bits": 128},
        {"calib_perturb_rel": 0.5},
    ],
)
def test_invalid_plans_raise(kwargs):
    with pytest.raises(FaultPlanError):
        FaultPlan(**kwargs)


def test_to_dict_roundtrip():
    plan = FaultPlan(
        seed=7,
        timer_jitter_rel=0.02,
        signal_delay_ns=2e6,
        signal_delay_p=0.5,
        monitor_miss_p=0.25,
        counter_wrap_bits=32,
    )
    assert FaultPlan.from_dict(plan.to_dict()) == plan


def test_from_dict_rejects_unknown_fields():
    with pytest.raises(FaultPlanError, match="unknown fault-plan fields"):
        FaultPlan.from_dict({"seed": 1, "bogus": 2})


def test_parse_full_spec():
    plan = FaultPlan.parse(
        "seed(7); signal-delay(ns=2e6, p=0.5); timer-jitter(rel=0.01, "
        "drift=0.001); signal-drop(p=0.05); monitor-miss(p=0.1); "
        "counter-stale(p=0.2); counter-wrap(bits=48); calib-perturb(rel=0.03)"
    )
    assert plan.seed == 7
    assert plan.signal_delay_ns == 2e6
    assert plan.signal_delay_p == 0.5
    assert plan.timer_jitter_rel == 0.01
    assert plan.timer_drift_rel == 0.001
    assert plan.signal_drop_p == 0.05
    assert plan.monitor_miss_p == 0.1
    assert plan.counter_stale_p == 0.2
    assert plan.counter_wrap_bits == 48
    assert plan.calib_perturb_rel == 0.03


def test_parse_seed_keyword_form():
    assert FaultPlan.parse("seed(value=3)").seed == 3


def test_parse_error_names_unknown_kind_and_lists_supported():
    with pytest.raises(FaultPlanError) as excinfo:
        FaultPlan.parse("bogus(x=1)")
    message = str(excinfo.value)
    assert "bogus" in message
    assert "supported kinds" in message
    assert "signal-delay" in message


def test_parse_error_names_unknown_parameter():
    with pytest.raises(FaultPlanError, match="unknown parameter"):
        FaultPlan.parse("signal-delay(nanoseconds=5)")


def test_parse_error_on_non_numeric_value():
    with pytest.raises(FaultPlanError, match="is not a number"):
        FaultPlan.parse("signal-delay(ns=soon)")


def test_parse_error_on_empty_spec():
    with pytest.raises(FaultPlanError, match="empty --faults spec"):
        FaultPlan.parse("  ;  ")


def test_parse_error_on_missing_parameters():
    with pytest.raises(FaultPlanError, match="needs parameters"):
        FaultPlan.parse("signal-delay")


def test_parse_propagates_validation_errors():
    with pytest.raises(FaultPlanError, match="invalid --faults spec"):
        FaultPlan.parse("signal-drop(p=1.5)")


def test_parsed_plan_survives_manifest_roundtrip():
    plan = FaultPlan.parse("seed(5); monitor-miss(p=0.5)")
    assert FaultPlan.from_dict(plan.to_dict()) == plan
