"""Tests for the parallel experiment runner.

The load-bearing property is determinism: a grid's results — and
therefore every rendered table — must be byte-identical whatever the
job count, because each run builds its own simulator from its own seed.
"""

import pytest

from repro.errors import ValidationError
from repro.hw import IVY_BRIDGE
from repro.quartz.config import QuartzConfig
from repro.units import MILLISECOND
from repro.validation import runner as runner_module
from repro.validation.experiments import run_figure12
from repro.validation.reporting import render_table
from repro.validation.runner import (
    RunSpec,
    consume_run_stats,
    default_cli_jobs,
    reset_run_stats,
    resolve_jobs,
    run_specs,
)
from repro.workloads.memlat import MemLatConfig


def _memlat_spec(seed: int, target_ns: float = 400.0) -> RunSpec:
    return RunSpec(
        workload="memlat",
        config=MemLatConfig(iterations=50_000),
        arch_name=IVY_BRIDGE.name,
        mode="conf1",
        seed=seed,
        quartz=QuartzConfig(
            nvm_read_latency_ns=target_ns, max_epoch_ns=1.0 * MILLISECOND
        ),
    )


# ----------------------------------------------------------------------
# RunSpec validation
# ----------------------------------------------------------------------


def test_unknown_workload_rejected():
    with pytest.raises(ValidationError):
        RunSpec(workload="nope", config=None, arch_name=IVY_BRIDGE.name)


def test_unknown_mode_rejected():
    with pytest.raises(ValidationError):
        RunSpec(
            workload="memlat", config=MemLatConfig(), arch_name=IVY_BRIDGE.name,
            mode="conf3",
        )


def test_conf1_requires_quartz_config():
    with pytest.raises(ValidationError):
        RunSpec(
            workload="memlat", config=MemLatConfig(), arch_name=IVY_BRIDGE.name,
            mode="conf1",
        )


# ----------------------------------------------------------------------
# Sequential execution and observability
# ----------------------------------------------------------------------


def test_run_specs_returns_submitted_order_with_observability():
    reset_run_stats()
    specs = [_memlat_spec(seed) for seed in (1, 2, 3)]
    results = run_specs(specs, jobs=1)
    assert [r.index for r in results] == [0, 1, 2]
    for result in results:
        assert result.workload_result.measured_latency_ns > 0
        assert result.events > 0
        assert result.wall_s > 0
        assert result.quartz_stats is not None
    stats = consume_run_stats()
    assert stats.runs == 3
    assert stats.jobs == 1
    assert stats.events == sum(r.events for r in results)
    # Second consume yields nothing: the window was cleared.
    assert consume_run_stats() is None


def test_same_seed_same_result():
    a, b = run_specs([_memlat_spec(9), _memlat_spec(9)], jobs=1)
    assert (
        a.workload_result.measured_latency_ns
        == b.workload_result.measured_latency_ns
    )
    assert a.elapsed_ns == b.elapsed_ns
    assert a.events == b.events


# ----------------------------------------------------------------------
# Determinism across job counts (the acceptance criterion)
# ----------------------------------------------------------------------


def test_parallel_matches_sequential_exactly():
    specs = [_memlat_spec(seed) for seed in (1, 2, 3, 4)]
    sequential = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=4)
    assert [r.index for r in parallel] == [0, 1, 2, 3]
    for seq, par in zip(sequential, parallel):
        assert (
            seq.workload_result.measured_latency_ns
            == par.workload_result.measured_latency_ns
        )
        assert seq.elapsed_ns == par.elapsed_ns
        assert seq.events == par.events


def test_figure12_table_byte_identical_across_job_counts():
    kwargs = dict(
        archs=[IVY_BRIDGE], target_latencies_ns=(300.0,),
        iterations=60_000, trials=2,
    )
    table_seq = render_table(run_figure12(jobs=1, **kwargs))
    table_par = render_table(run_figure12(jobs=4, **kwargs))
    assert table_seq == table_par


# ----------------------------------------------------------------------
# Graceful degradation
# ----------------------------------------------------------------------


def test_pool_unavailable_falls_back_in_process(monkeypatch, capsys):
    def broken_pool(*args, **kwargs):
        raise OSError("no processes for you")

    monkeypatch.setattr(
        runner_module, "ProcessPoolExecutor", broken_pool
    )
    reset_run_stats()
    specs = [_memlat_spec(seed) for seed in (5, 6)]
    results = run_specs(specs, jobs=4)
    assert len(results) == 2
    assert "process pool unavailable" in capsys.readouterr().err
    stats = consume_run_stats()
    assert stats.jobs == 1  # fell back
    assert stats.runs == 2


def test_single_spec_grid_stays_in_process():
    reset_run_stats()
    results = run_specs([_memlat_spec(7)], jobs=8)
    assert len(results) == 1
    assert consume_run_stats().jobs == 1


# ----------------------------------------------------------------------
# Interrupt handling
# ----------------------------------------------------------------------


def test_sequential_interrupt_reports_partial_stats(monkeypatch):
    from repro.errors import RunInterrupted

    real_run_one = runner_module._run_one
    calls = {"n": 0}

    def interrupting_run_one(payload):
        calls["n"] += 1
        if calls["n"] == 3:
            raise KeyboardInterrupt
        return real_run_one(payload)

    monkeypatch.setattr(runner_module, "_run_one", interrupting_run_one)
    reset_run_stats()
    specs = [_memlat_spec(seed) for seed in (1, 2, 3, 4)]
    with pytest.raises(RunInterrupted) as excinfo:
        run_specs(specs, jobs=1)
    assert excinfo.value.completed == 2
    assert excinfo.value.total == 4
    assert [r.index for r in excinfo.value.results] == [0, 1]
    stats = consume_run_stats()
    assert stats.stop_reason == "interrupted"
    assert stats.runs == 2
    assert "stopped: interrupted" in stats.summary()
    assert stats.telemetry()["stop_reason"] == "interrupted"


def test_parallel_interrupt_cancels_and_reports(monkeypatch):
    """A worker-pool collapse surfaces as RunInterrupted with partial
    stats, not a traceback from the pool internals."""
    from concurrent.futures.process import BrokenProcessPool

    from repro.errors import RunInterrupted

    class CollapsingPool:
        def __init__(self, *args, **kwargs):
            pass

        def submit(self, *args, **kwargs):
            raise BrokenProcessPool("worker died")

        def shutdown(self, *args, **kwargs):
            pass

    monkeypatch.setattr(
        runner_module, "ProcessPoolExecutor", CollapsingPool
    )
    reset_run_stats()
    specs = [_memlat_spec(seed) for seed in (1, 2, 3)]
    with pytest.raises(RunInterrupted) as excinfo:
        run_specs(specs, jobs=3)
    assert excinfo.value.completed == 0
    assert consume_run_stats().stop_reason == "interrupted"


# ----------------------------------------------------------------------
# Wall-time percentiles
# ----------------------------------------------------------------------


def test_wall_percentiles_nearest_rank():
    stats = runner_module.RunnerStats(jobs=1)
    stats.run_wall_times = [0.040, 0.010, 0.030, 0.020]
    assert stats.wall_percentile(0.50) == 0.020
    assert stats.wall_percentile(0.99) == 0.040
    assert stats.wall_p50_s == 0.020
    assert stats.wall_p99_s == 0.040


def test_wall_percentiles_empty_window():
    stats = runner_module.RunnerStats(jobs=1)
    assert stats.wall_p50_s is None
    assert stats.wall_p99_s is None
    assert "per-run wall" not in stats.summary()


def test_stats_summary_and_telemetry_carry_percentiles():
    reset_run_stats()
    run_specs([_memlat_spec(seed) for seed in (1, 2)], jobs=1)
    stats = consume_run_stats()
    assert len(stats.run_wall_times) == 2
    assert "per-run wall p50/p99" in stats.summary()
    telemetry = stats.telemetry()
    assert telemetry["wall_p50_s"] > 0
    assert telemetry["wall_p99_s"] >= telemetry["wall_p50_s"]


def test_prewarm_dedupes_by_fingerprint():
    specs = [_memlat_spec(seed) for seed in (1, 2, 3)]
    # Three specs, one (arch, calibration seed) pair: one warm-up.
    assert runner_module._prewarm_calibrations(specs) == 1


# ----------------------------------------------------------------------
# Job-count resolution
# ----------------------------------------------------------------------


def test_resolve_jobs_defaults_to_one(monkeypatch):
    monkeypatch.delenv("QUARTZ_REPRO_JOBS", raising=False)
    assert resolve_jobs(None) == 1
    assert resolve_jobs(0) == 1
    assert resolve_jobs(3) == 3


def test_resolve_jobs_honours_environment(monkeypatch):
    monkeypatch.setenv("QUARTZ_REPRO_JOBS", "6")
    assert resolve_jobs(None) == 6
    assert resolve_jobs(2) == 2  # explicit wins
    assert default_cli_jobs() == 6


def test_default_cli_jobs_uses_every_core(monkeypatch):
    monkeypatch.delenv("QUARTZ_REPRO_JOBS", raising=False)
    assert default_cli_jobs() >= 1
