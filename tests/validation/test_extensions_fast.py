"""Fast-variant runs of the extension experiment drivers."""

import pytest

from repro.validation.experiments import (
    run_asymmetric_bandwidth,
    run_loaded_latency_study,
    run_parallel_pagerank,
    run_technology_comparison,
)
from repro.workloads.kvstore import KvStoreConfig
from repro.workloads.pagerank import PageRankConfig


def test_parallel_pagerank_fast():
    # Working set must exceed the LLC for the run to exercise emulation;
    # 256 B vertex records keep that true at this reduced vertex count.
    base = PageRankConfig(
        vertex_count=100_000, edges_per_vertex=4, max_iterations=5,
        tolerance=1e-15, bytes_per_vertex=256,
    )
    from repro.workloads.graphs import synthetic_power_law

    graph = synthetic_power_law(100_000, 4, seed=2)
    result = run_parallel_pagerank(
        thread_counts=(1, 4), base=base, graph=graph
    )
    by_threads = {row["threads"]: row for row in result.rows}
    assert by_threads[4]["speedup_emulated"] > 2.0
    for row in result.rows:
        assert row["error_pct"] < 8.0


def test_asymmetric_bandwidth_fast():
    from repro.units import MIB

    result = run_asymmetric_bandwidth(
        write_bandwidths_gbps=(2.0,), stream_bytes=32 * MIB
    )
    row = result.rows[0]
    assert row["achieved_write_gbps"] == pytest.approx(2.0, rel=0.15)
    assert row["achieved_read_gbps"] > 3 * row["achieved_write_gbps"]


def test_loaded_latency_study_fast():
    result = run_loaded_latency_study(alphas=(0.0, 0.5), iterations=60_000)
    by_alpha = {row["alpha"]: row["error_pct"] for row in result.rows}
    # Unloaded calibration cannot track load-inflated latency.
    assert by_alpha[0.5] > 10 * max(by_alpha[0.0], 0.5)


def test_kv_write_models_fast():
    from repro.validation.experiments import run_kv_write_models

    kv = KvStoreConfig(
        puts_per_thread=5_000, gets_per_thread=1, flush_writes=True
    )
    result = run_kv_write_models(kv=kv)
    by_model = {row["write_model"]: row["puts_rel"] for row in result.rows}
    # Pessimistic per-line stalls devastate put throughput; the pcommit
    # model recovers most of it (Section 6's argument, application-level).
    assert by_model["pflush"] < 0.5
    assert by_model["pcommit"] > 0.8
    assert by_model["pcommit"] > 2 * by_model["pflush"]


def test_technology_comparison_fast():
    # 4 KiB values keep the heap larger than the LLC at this scale.
    kv = KvStoreConfig(
        puts_per_thread=8_000, gets_per_thread=8_000, value_bytes=4096
    )
    result = run_technology_comparison(kv=kv)
    gets = result.column("gets_rel")
    # Ordered fast-to-slow technologies: monotone throughput decline.
    assert gets == sorted(gets, reverse=True)
    assert gets[0] > 0.85  # STT-MRAM barely hurts
    assert gets[-1] < 0.7  # slow NVM clearly hurts
