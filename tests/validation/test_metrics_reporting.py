"""Tests for validation metrics and result reporting."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.validation.metrics import relative_error, summarize
from repro.validation.reporting import ExperimentResult, render_table


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------
def test_relative_error_basics():
    assert relative_error(110.0, 100.0) == pytest.approx(0.1)
    assert relative_error(90.0, 100.0) == pytest.approx(0.1)
    assert relative_error(100.0, 100.0) == 0.0


def test_relative_error_zero_reference_rejected():
    with pytest.raises(ValidationError):
        relative_error(1.0, 0.0)


def test_summarize():
    stats = summarize([1.0, 2.0, 3.0, 4.0])
    assert stats.count == 4
    assert stats.mean == pytest.approx(2.5)
    assert stats.minimum == 1.0 and stats.maximum == 4.0
    assert stats.spread == pytest.approx(3.0)
    # Sample standard deviation (n - 1), not population: sqrt(5/3).
    assert stats.std == pytest.approx(1.2910, rel=1e-3)


def test_summarize_single_trial_has_zero_std():
    stats = summarize([7.5])
    assert stats.count == 1
    assert stats.mean == 7.5
    assert stats.std == 0.0
    assert stats.spread == 0.0


def test_summarize_empty_rejected():
    with pytest.raises(ValidationError):
        summarize([])


@given(st.lists(st.floats(-1e6, 1e6), min_size=1, max_size=50))
def test_property_summarize_bounds(values):
    stats = summarize(values)
    # One ulp of slack: summing identical floats can round the mean just
    # past the endpoints.
    slack = 1e-9 * max(1.0, abs(stats.mean))
    assert stats.minimum - slack <= stats.mean <= stats.maximum + slack
    assert stats.std >= 0
    assert stats.spread >= 0


@given(
    st.floats(0.1, 1e6),
    st.floats(0.1, 1e6),
)
def test_property_relative_error_symmetry_in_sign(measured, reference):
    assert relative_error(measured, reference) >= 0
    assert relative_error(reference, reference) == 0


# ----------------------------------------------------------------------
# Reporting
# ----------------------------------------------------------------------
def make_result():
    result = ExperimentResult(
        experiment_id="test-exp",
        title="A test experiment",
        columns=["name", "value"],
    )
    result.add_row(name="alpha", value=1.5)
    result.add_row(name="beta", value=20_000.0)
    return result


def test_add_row_requires_all_columns():
    result = make_result()
    with pytest.raises(ValidationError, match="missing columns"):
        result.add_row(name="gamma")


def test_add_row_rejects_unknown_keys():
    """Stray keys would silently leak into the JSON export."""
    result = make_result()
    with pytest.raises(ValidationError, match="not in columns"):
        result.add_row(name="gamma", value=1.0, extra=42)
    # Nothing was appended by the failed call.
    assert len(result.rows) == 2


def test_column_extraction():
    result = make_result()
    assert result.column("name") == ["alpha", "beta"]
    with pytest.raises(ValidationError):
        result.column("nonexistent")


def test_render_table_contains_everything():
    result = make_result()
    result.note("a scaling note")
    text = render_table(result)
    assert "test-exp" in text
    assert "A test experiment" in text
    assert "alpha" in text and "beta" in text
    assert "1.5" in text
    assert "2e+04" in text  # large values in compact form
    assert "note: a scaling note" in text


def test_render_table_aligns_columns():
    text = render_table(make_result())
    lines = text.splitlines()
    header, separator = lines[1], lines[2]
    assert len(header) == len(separator)
    assert "|" in header and "+" in separator


def test_format_cell_normalizes_negative_zero():
    from repro.validation.reporting import _format_cell

    assert _format_cell(-0.0) == "0"
    assert _format_cell(0.0) == "0"
    # Negative near-zero values keep a real magnitude, never "-0".
    assert _format_cell(-0.0004) == "-0.0004"
    for value in (-0.0, -1e-300, -0.0004, -0.004):
        assert _format_cell(value) != "-0"


def test_render_table_zero_rows_marks_empty_body():
    result = ExperimentResult(
        experiment_id="empty-exp",
        title="No rows produced",
        columns=["a", "b"],
    )
    result.note("explains why")
    text = render_table(result)
    assert "(no rows)" in text
    assert "note: explains why" in text


# ----------------------------------------------------------------------
# Serialization
# ----------------------------------------------------------------------
def test_to_dict_roundtrip():
    result = make_result()
    result.note("a note")
    payload = result.to_dict()
    rebuilt = ExperimentResult.from_dict(payload)
    assert rebuilt == result
    assert payload["columns"] == ["name", "value"]
    assert payload["rows"][0] == {"name": "alpha", "value": 1.5}
    assert payload["notes"] == ["a note"]


def test_to_dict_coerces_numpy_scalars():
    import json

    import numpy as np

    result = ExperimentResult(
        experiment_id="np-exp", title="numpy cells", columns=["n", "x"]
    )
    result.add_row(n=np.int64(3), x=np.float64(1.25))
    payload = result.to_dict()
    assert type(payload["rows"][0]["n"]) is int
    assert type(payload["rows"][0]["x"]) is float
    json.dumps(payload)  # must not raise


def test_to_json_is_deterministic():
    import json

    result = make_result()
    text = result.to_json()
    assert text == make_result().to_json()
    assert json.loads(text)["experiment_id"] == "test-exp"


def test_from_dict_rejects_malformed_payloads():
    with pytest.raises(ValidationError):
        ExperimentResult.from_dict({"title": "missing id"})
    with pytest.raises(ValidationError, match="not in columns"):
        ExperimentResult.from_dict(
            {
                "experiment_id": "x",
                "title": "t",
                "columns": ["a"],
                "rows": [{"a": 1, "stray": 2}],
            }
        )
