"""Tests for the Conf_1/Conf_2 validation runners (Section 4.3)."""

import pytest

from repro.hw import IVY_BRIDGE
from repro.quartz import QuartzConfig, calibrate_arch
from repro.validation.configs import run_conf1, run_conf2, run_native
from repro.workloads.memlat import MemLatConfig, memlat_body


def factory(out):
    return memlat_body(MemLatConfig(iterations=20_000), out)


def test_conf2_is_physically_remote():
    outcome = run_conf2(IVY_BRIDGE, factory, seed=3)
    latency = outcome.workload_result.measured_latency_ns
    assert latency == pytest.approx(IVY_BRIDGE.dram_remote.avg_ns, rel=0.05)
    assert outcome.quartz_stats is None  # no emulator in Conf_2


def test_native_is_local_and_unemulated():
    outcome = run_native(IVY_BRIDGE, factory, seed=3)
    latency = outcome.workload_result.measured_latency_ns
    assert latency == pytest.approx(IVY_BRIDGE.dram_local.avg_ns, rel=0.05)


def test_conf1_emulates_and_reports_stats():
    calibration = calibrate_arch(IVY_BRIDGE)
    config = QuartzConfig(
        nvm_read_latency_ns=500.0, max_epoch_ns=100_000.0
    )

    def bigger_factory(out):
        return memlat_body(MemLatConfig(iterations=80_000), out)

    outcome = run_conf1(
        IVY_BRIDGE, bigger_factory, config, seed=3, calibration=calibration
    )
    latency = outcome.workload_result.measured_latency_ns
    assert latency == pytest.approx(500.0, rel=0.05)
    assert outcome.quartz_stats is not None
    assert outcome.quartz_stats.epochs_total > 0


def test_runs_are_deterministic_per_seed():
    first = run_conf2(IVY_BRIDGE, factory, seed=9)
    second = run_conf2(IVY_BRIDGE, factory, seed=9)
    assert (
        first.workload_result.elapsed_ns == second.workload_result.elapsed_ns
    )


def test_different_seeds_jitter_the_machine():
    latencies = {
        round(run_conf2(IVY_BRIDGE, factory, seed=seed).workload_result
              .measured_latency_ns, 6)
        for seed in range(4)
    }
    # Ivy Bridge remote latency has a real measured range (Table 2).
    assert len(latencies) > 1


def test_each_run_gets_a_fresh_machine():
    outcome_a = run_native(IVY_BRIDGE, factory, seed=1)
    outcome_b = run_native(IVY_BRIDGE, factory, seed=1)
    assert outcome_a.machine is not outcome_b.machine
