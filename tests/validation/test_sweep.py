"""Tests for the streaming, checkpointed sweep engine.

The load-bearing properties, in order:

* **Digest stability** — an interrupted-then-resumed sweep exports the
  same bytes (content digest) as an uninterrupted one, and only the
  unfinished specs are re-executed on resume.
* **Streaming** — a large grid is merged through a bounded out-of-order
  buffer; the full result list is never resident.
* **Integrity** — checkpointed records are digest-verified before
  reuse; a tampered shard record is silently re-executed, never
  trusted.
"""

import json

import pytest

from repro.errors import RunInterrupted, ValidationError
from repro.hw import IVY_BRIDGE
from repro.quartz.config import QuartzConfig
from repro.units import MILLISECOND
from repro.validation import export
from repro.validation.experiments.sweeps import (
    SWEEP_PRESETS,
    get_sweep_preset,
    resume_sweep,
    start_sweep,
    sweep_status,
)
from repro.validation.runner import (
    RunSpec,
    consume_run_stats,
    reset_run_stats,
    run_specs,
)
from repro.validation.sweep import (
    SweepJournal,
    canonical_spec,
    grid_digest,
    run_sweep,
    spec_fingerprint,
)
from repro.workloads.memlat import MemLatConfig


def _memlat_spec(seed: int, target_ns: float = 400.0) -> RunSpec:
    return RunSpec(
        workload="memlat",
        config=MemLatConfig(iterations=20_000),
        arch_name=IVY_BRIDGE.name,
        mode="conf1",
        seed=seed,
        quartz=QuartzConfig(
            nvm_read_latency_ns=target_ns, max_epoch_ns=1.0 * MILLISECOND
        ),
    )


# ----------------------------------------------------------------------
# Fingerprints and canonical form
# ----------------------------------------------------------------------


def test_fingerprint_is_stable_across_instances():
    assert spec_fingerprint(_memlat_spec(1)) == spec_fingerprint(_memlat_spec(1))


def test_fingerprint_sees_every_knob():
    base = spec_fingerprint(_memlat_spec(1))
    assert spec_fingerprint(_memlat_spec(2)) != base
    assert spec_fingerprint(_memlat_spec(1, target_ns=500.0)) != base


def test_canonical_spec_is_json_stable():
    spec = _memlat_spec(3)
    text = json.dumps(canonical_spec(spec), sort_keys=True)
    assert text == json.dumps(canonical_spec(_memlat_spec(3)), sort_keys=True)


def test_grid_digest_is_order_sensitive():
    prints = [spec_fingerprint(_memlat_spec(seed)) for seed in (1, 2)]
    assert grid_digest(prints) != grid_digest(list(reversed(prints)))


# ----------------------------------------------------------------------
# Journal round-trip and durability
# ----------------------------------------------------------------------


def _fresh_journal(tmp_path, specs, name="test"):
    return SweepJournal.create(
        tmp_path / name,
        [spec_fingerprint(spec) for spec in specs],
        name=name,
        knobs={"suite": "test"},
    )


def test_journal_roundtrip_reloads_results(tmp_path):
    specs = [_memlat_spec(seed) for seed in (1, 2)]
    results = run_specs(specs, jobs=1)
    journal = _fresh_journal(tmp_path, specs)
    for spec, result in zip(specs, results):
        journal.record_result(result.index, spec_fingerprint(spec), result)
    journal.close()

    reopened = SweepJournal.open(tmp_path / "test")
    assert len(reopened.completed) == 2
    for spec, result in zip(specs, results):
        record = reopened.completed[spec_fingerprint(spec)]
        assert reopened.verify(record)
        loaded = reopened.load_result(record)
        assert (
            loaded.workload_result.measured_latency_ns
            == result.workload_result.measured_latency_ns
        )
        assert loaded.events == result.events
    reopened.close()


def test_journal_refuses_to_clobber(tmp_path):
    specs = [_memlat_spec(1)]
    _fresh_journal(tmp_path, specs).close()
    with pytest.raises(ValidationError, match="already exists"):
        _fresh_journal(tmp_path, specs)


def test_journal_tolerates_torn_trailing_record(tmp_path):
    specs = [_memlat_spec(seed) for seed in (1, 2)]
    results = run_specs(specs, jobs=1)
    journal = _fresh_journal(tmp_path, specs)
    journal.record_result(0, spec_fingerprint(specs[0]), results[0])
    journal.close()
    # A crash mid-append leaves a torn final line.
    with open(journal.journal_path, "a", encoding="utf-8") as handle:
        handle.write('{"type": "done", "index": 1, "finge')

    reopened = SweepJournal.open(tmp_path / "test")
    assert len(reopened.completed) == 1
    assert spec_fingerprint(specs[0]) in reopened.completed
    reopened.close()


def test_run_sweep_rejects_mismatched_journal(tmp_path):
    journal = _fresh_journal(tmp_path, [_memlat_spec(1)])
    with pytest.raises(ValidationError, match="does not match this grid"):
        run_sweep([_memlat_spec(2)], journal=journal, jobs=1)


# ----------------------------------------------------------------------
# Streaming merge semantics
# ----------------------------------------------------------------------


def test_consume_sees_submission_order_for_any_job_count():
    specs = [_memlat_spec(seed) for seed in (1, 2, 3, 4, 5)]

    def rows_at(jobs):
        rows = []
        run_sweep(
            specs, jobs=jobs,
            consume=lambda spec, result: rows.append(
                (result.index, spec.seed,
                 result.workload_result.measured_latency_ns)
            ),
        )
        return rows

    sequential = rows_at(1)
    assert [row[0] for row in sequential] == [0, 1, 2, 3, 4]
    assert rows_at(3) == sequential


def test_report_counts_and_peak_buffer():
    specs = [_memlat_spec(seed) for seed in (1, 2, 3)]
    reset_run_stats()
    report = run_sweep(specs, jobs=1)
    assert (report.total, report.executed, report.skipped) == (3, 3, 0)
    # Sequential execution merges every result immediately.
    assert report.peak_buffered <= 1
    stats = consume_run_stats()
    assert stats.queue_depth == 3
    assert stats.telemetry()["sweep"]["stream_merge_peak_rows"] <= 1


def test_large_grid_streams_through_bounded_buffer():
    """The >=500-spec acceptance criterion: the engine never holds the
    grid's results in memory — the out-of-order merge buffer stays far
    below the grid size, and telemetry records its high-water mark."""
    preset = get_sweep_preset("latency-grid")
    specs = preset.build("large")
    assert len(specs) >= 500
    seen = []
    reset_run_stats()
    report = run_sweep(
        specs, jobs=2,
        consume=lambda spec, result: seen.append(result.index),
    )
    assert seen == list(range(len(specs)))
    assert report.executed == len(specs)
    assert 1 <= report.peak_buffered <= 64 < len(specs)
    telemetry = consume_run_stats().telemetry()
    assert telemetry["sweep"]["stream_merge_peak_rows"] == report.peak_buffered


# ----------------------------------------------------------------------
# Checkpoint / resume (the digest acceptance criterion)
# ----------------------------------------------------------------------


def _export_digest(run):
    stats = consume_run_stats()
    document = export.build_document(
        run.result,
        export.build_manifest(
            stats=stats,
            knobs={
                "command": "sweep",
                "preset": run.preset,
                "scale": run.scale,
            },
        ),
        telemetry=stats.telemetry() if stats is not None else None,
    )
    return export.content_digest(document), document


def test_interrupted_then_resumed_sweep_exports_identical_digest(tmp_path):
    """>=100-spec grid: crash deterministically partway, resume, and the
    merged export digest is byte-identical to the uninterrupted run's —
    with only the unfinished specs re-executed."""
    preset, scale = "latency-grid", "small"
    total = len(get_sweep_preset(preset).build(scale))
    assert total >= 100
    crash_after = 40

    reset_run_stats()
    reference = start_sweep(preset, scale, tmp_path / "ref", jobs=1)
    assert reference.report.executed == total
    reference_digest, reference_doc = _export_digest(reference)

    reset_run_stats()
    with pytest.raises(RunInterrupted) as excinfo:
        start_sweep(
            preset, scale, tmp_path / "crashed", jobs=1,
            interrupt_after=crash_after,
        )
    assert excinfo.value.completed == crash_after
    assert excinfo.value.total == total
    assert consume_run_stats().stop_reason == "interrupted"

    status = sweep_status(tmp_path / "crashed")
    assert status["done"] == crash_after
    assert status["remaining"] == total - crash_after

    reset_run_stats()
    resumed = resume_sweep(tmp_path / "crashed", jobs=1)
    # Only the unfinished specs ran; the rest came from checkpoints.
    assert resumed.report.executed == total - crash_after
    assert resumed.report.skipped == crash_after
    assert resumed.report.tampered == 0
    resumed_digest, resumed_doc = _export_digest(resumed)

    assert resumed_digest == reference_digest
    assert export.experiment_digest(resumed_doc) == export.experiment_digest(
        reference_doc
    )
    assert resumed_doc["experiment"] == reference_doc["experiment"]


def test_tampered_checkpoint_is_reexecuted_not_trusted(tmp_path):
    specs = [_memlat_spec(seed) for seed in (1, 2, 3, 4)]
    rows = []
    journal = _fresh_journal(tmp_path, specs)
    run_sweep(
        specs, journal=journal, jobs=1,
        consume=lambda spec, result: rows.append(
            result.workload_result.measured_latency_ns
        ),
    )

    # Corrupt the payload byte of one checkpointed shard record.
    shard_path = tmp_path / "test" / "results.jsonl"
    lines = shard_path.read_text(encoding="utf-8").splitlines()
    record = json.loads(lines[1])
    record["payload"] = record["payload"][:-4] + (
        "AAAA" if not record["payload"].endswith("AAAA") else "BBBB"
    )
    lines[1] = json.dumps(record, sort_keys=True)
    shard_path.write_text("\n".join(lines) + "\n", encoding="utf-8")

    resumed_rows = []
    journal = SweepJournal.open(tmp_path / "test")
    report = run_sweep(
        specs, journal=journal, jobs=1,
        consume=lambda spec, result: resumed_rows.append(
            result.workload_result.measured_latency_ns
        ),
    )
    assert report.tampered == 1
    assert report.executed == 1  # the tampered spec, nothing else
    assert report.skipped == 3
    assert resumed_rows == rows


def test_resume_with_nothing_left_reuses_everything(tmp_path):
    preset, scale = "latency-grid", "smoke"
    reset_run_stats()
    first = start_sweep(preset, scale, tmp_path / "done", jobs=1)
    first_digest, _ = _export_digest(first)

    reset_run_stats()
    again = resume_sweep(tmp_path / "done", jobs=1)
    assert again.report.executed == 0
    assert again.report.skipped == again.report.total
    assert _export_digest(again)[0] == first_digest


def test_interrupt_in_parallel_mode_checkpoints_completed_specs(tmp_path):
    preset, scale = "latency-grid", "smoke"
    with pytest.raises(RunInterrupted):
        start_sweep(
            preset, scale, tmp_path / "par", jobs=2, interrupt_after=2,
        )
    consume_run_stats()
    status = sweep_status(tmp_path / "par")
    assert status["done"] >= 2
    reset_run_stats()
    resumed = resume_sweep(tmp_path / "par", jobs=2)
    assert resumed.report.total == status["done"] + resumed.report.executed
    consume_run_stats()


# ----------------------------------------------------------------------
# Presets
# ----------------------------------------------------------------------


def test_every_preset_builds_every_scale_with_unique_fingerprints():
    for name, preset in SWEEP_PRESETS.items():
        for scale in preset.scales:
            specs = preset.build(scale)
            prints = [spec_fingerprint(spec) for spec in specs]
            assert len(set(prints)) == len(prints), (name, scale)


def test_preset_scales_are_ordered_by_size():
    for preset in SWEEP_PRESETS.values():
        sizes = [len(preset.build(scale)) for scale in ("smoke", "small")]
        assert sizes[0] < sizes[1]
        assert "large" in preset.scales


def test_unknown_scale_rejected():
    with pytest.raises(ValidationError, match="unknown scale"):
        get_sweep_preset("latency-grid").build("galactic")
