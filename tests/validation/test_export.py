"""Tests for the machine-readable experiment export layer."""

import json

import pytest

from repro.errors import ValidationError
from repro.validation import export
from repro.validation.experiments import REGISTRY
from repro.validation.experiments.fast import FAST_KWARGS, run_fast
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import consume_run_stats, reset_run_stats


def make_result():
    result = ExperimentResult(
        experiment_id="test-exp",
        title="A test experiment",
        columns=["name", "value"],
    )
    result.add_row(name="alpha", value=1.5)
    result.add_row(name="beta", value=-2.0)
    result.note("a note")
    return result


# ----------------------------------------------------------------------
# Document mechanics
# ----------------------------------------------------------------------
def test_document_roundtrip_through_file(tmp_path):
    path = tmp_path / "exp.json"
    written = export.write_experiment_json(path, make_result())
    loaded = export.load_experiment_json(path)
    assert loaded == written
    rebuilt = export.result_from_document(loaded)
    assert rebuilt == make_result()
    manifest = export.manifest_from_document(loaded)
    assert manifest.package_version == written["manifest"]["package_version"]


def test_document_schema_versioned(tmp_path):
    path = tmp_path / "exp.json"
    document = export.write_experiment_json(path, make_result())
    assert document["schema"] == export.EXPORT_SCHEMA
    assert document["schema_version"] == export.EXPORT_SCHEMA_VERSION
    raw = json.loads(path.read_text())
    assert raw["schema_version"] == export.EXPORT_SCHEMA_VERSION


def test_load_rejects_wrong_schema(tmp_path):
    path = tmp_path / "bad.json"
    path.write_text(json.dumps({"schema": "something-else"}))
    with pytest.raises(ValidationError, match="not a"):
        export.load_experiment_json(path)
    path.write_text(
        json.dumps({"schema": export.EXPORT_SCHEMA, "schema_version": 999})
    )
    with pytest.raises(ValidationError, match="unsupported schema version"):
        export.load_experiment_json(path)


def test_load_detects_tampering(tmp_path):
    path = tmp_path / "exp.json"
    document = export.write_experiment_json(path, make_result())
    document["experiment"]["rows"][0]["value"] = 99.0
    path.write_text(export.dumps_document(document))
    with pytest.raises(ValidationError, match="digest mismatch"):
        export.load_experiment_json(path)


def test_telemetry_excluded_from_digest():
    manifest = export.build_manifest()
    with_telemetry = export.build_document(
        make_result(), manifest, telemetry={"wall_s": 1.23, "jobs": 4}
    )
    without = export.build_document(make_result(), manifest, telemetry=None)
    assert with_telemetry["telemetry"] != without["telemetry"]
    assert (
        with_telemetry["manifest"]["content_digest"]
        == without["manifest"]["content_digest"]
    )
    assert export.canonical_json(with_telemetry) == export.canonical_json(without)


def test_digest_covers_rows_and_manifest():
    manifest = export.build_manifest(knobs={"x": 1})
    document = export.build_document(make_result(), manifest)
    changed_rows = make_result()
    changed_rows.rows[0]["value"] = 9.9
    assert (
        export.build_document(changed_rows, manifest)["manifest"]["content_digest"]
        != document["manifest"]["content_digest"]
    )
    other_manifest = export.build_manifest(knobs={"x": 2})
    assert (
        export.build_document(make_result(), other_manifest)["manifest"][
            "content_digest"
        ]
        != document["manifest"]["content_digest"]
    )


def test_manifest_carries_environment():
    manifest = export.build_manifest()
    assert manifest.package_version
    assert manifest.python_version.count(".") == 2
    # Inside this repository the SHA resolves; the field is best-effort.
    assert manifest.git_sha is None or len(manifest.git_sha) == 40


# ----------------------------------------------------------------------
# Round-trip of every registered experiment (fast presets)
# ----------------------------------------------------------------------
def test_fast_presets_cover_registry():
    assert set(FAST_KWARGS) == set(REGISTRY)


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
def test_every_experiment_roundtrips(experiment_id, tmp_path):
    reset_run_stats()
    result = run_fast(experiment_id, jobs=1)
    stats = consume_run_stats()
    path = tmp_path / f"{experiment_id}.json"
    written = export.write_experiment_json(
        path, result, stats=stats, knobs={"experiment": experiment_id}
    )
    loaded = export.load_experiment_json(path)
    assert loaded["schema_version"] == export.EXPORT_SCHEMA_VERSION
    # Rows, notes, and manifest survive the disk round-trip unchanged.
    assert loaded["experiment"] == written["experiment"]
    assert loaded["manifest"] == written["manifest"]
    assert loaded["experiment"]["experiment_id"] == experiment_id
    rebuilt = export.result_from_document(loaded)
    assert rebuilt.columns == result.columns
    assert rebuilt.notes == result.notes
    assert len(rebuilt.rows) == len(result.rows)
    # The manifest names every testbed the grid touched.
    if stats is not None and stats.arch_names:
        assert set(loaded["manifest"]["archs"]) == stats.arch_names


def test_jobs_count_does_not_change_canonical_export(tmp_path):
    """--jobs 1 vs --jobs 4: identical canonical bytes and digest."""
    documents = []
    for jobs in (1, 4):
        reset_run_stats()
        result = run_fast("figure12", jobs=jobs)
        stats = consume_run_stats()
        documents.append(
            export.write_experiment_json(
                tmp_path / f"jobs{jobs}.json",
                result,
                stats=stats,
                knobs={"experiment": "figure12"},
            )
        )
    one, four = documents
    assert export.canonical_json(one) == export.canonical_json(four)
    assert (
        one["manifest"]["content_digest"] == four["manifest"]["content_digest"]
    )
    # Only telemetry (wall time, jobs, cache counters) may differ.
    assert one["experiment"] == four["experiment"]
    assert one["manifest"] == four["manifest"]
