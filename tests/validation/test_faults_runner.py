"""Faulted runs through the experiment runner.

Two guarantees beyond the clean-path runner tests:

* **Faulted jobs-invariance** — a faulted grid is byte-identical for
  ``--jobs 1`` and ``--jobs N``: each worker re-derives the same
  :class:`FaultEngine` from ``(plan seed, run seed)``, so parallelism
  never changes which faults fire or what they do.
* **Registry acceptance** — every registered experiment runs to
  completion under a light fault plan with invariant checking on, and no
  run violates a single invariant: the model degrades gracefully, it
  does not silently corrupt its accounting.
"""

import pytest

from repro.faults import FaultPlan, active_faults
from repro.hw import IVY_BRIDGE
from repro.quartz.config import QuartzConfig
from repro.units import MILLISECOND
from repro.validation.experiments import REGISTRY
from repro.validation.experiments.fast import run_fast
from repro.validation.runner import (
    RunSpec,
    consume_run_stats,
    reset_run_stats,
    run_specs,
)
from repro.workloads.memlat import MemLatConfig

LIGHT_PLAN = FaultPlan(
    seed=11,
    timer_jitter_rel=0.01,
    signal_delay_ns=20_000.0,
    signal_delay_p=0.25,
    monitor_miss_p=0.1,
    counter_stale_p=0.05,
    calib_perturb_rel=0.02,
)

# The registry sweep leaves calibration alone: experiments that pin
# their target at DRAM speed rightly *reject* a perturbed calibration
# (the emulator can only slow DRAM down), which is a different guarantee
# than graceful degradation under runtime faults.
SWEEP_PLAN = FaultPlan(
    seed=11,
    timer_jitter_rel=0.01,
    signal_delay_ns=20_000.0,
    signal_delay_p=0.25,
    monitor_miss_p=0.1,
    counter_stale_p=0.05,
)


def _memlat_spec(seed: int) -> RunSpec:
    return RunSpec(
        workload="memlat",
        config=MemLatConfig(iterations=50_000),
        arch_name=IVY_BRIDGE.name,
        mode="conf1",
        seed=seed,
        quartz=QuartzConfig(
            nvm_read_latency_ns=400.0, max_epoch_ns=1.0 * MILLISECOND
        ),
    )


# ----------------------------------------------------------------------
# Faulted jobs-invariance
# ----------------------------------------------------------------------


def test_faulted_runs_are_job_count_invariant():
    specs = [_memlat_spec(seed) for seed in (1, 2, 3, 4)]
    with active_faults(LIGHT_PLAN, check_invariants=True):
        sequential = run_specs(specs, jobs=1)
        parallel = run_specs(specs, jobs=4)
    assert [r.index for r in parallel] == [0, 1, 2, 3]
    for seq, par in zip(sequential, parallel):
        assert (
            seq.workload_result.measured_latency_ns
            == par.workload_result.measured_latency_ns
        )
        assert seq.elapsed_ns == par.elapsed_ns
        assert seq.events == par.events
        # The *same* faults fired, not just equally many.
        assert seq.fault_injections == par.fault_injections
        assert seq.invariant_epoch_checks == par.invariant_epoch_checks
        assert seq.invariant_sim_checks == par.invariant_sim_checks
        assert seq.max_epoch_length_ns == par.max_epoch_length_ns
    assert any(seq.fault_injections for seq in sequential)
    assert all(r.invariant_violations == 0 for r in sequential + parallel)


def test_fault_context_reaches_workers_and_stats():
    reset_run_stats()
    with active_faults(LIGHT_PLAN, check_invariants=True):
        results = run_specs([_memlat_spec(5), _memlat_spec(6)], jobs=2)
    stats = consume_run_stats()
    assert stats.faults_injected == sum(
        sum(r.fault_injections.values()) for r in results
    )
    assert stats.faults_injected > 0
    assert stats.invariant_epoch_checks > 0
    assert stats.invariant_violations == 0
    assert "faults" in stats.summary()
    assert "invariants" in stats.summary()


def test_runs_outside_the_context_stay_clean():
    with active_faults(LIGHT_PLAN, check_invariants=True):
        pass  # context opened and closed: nothing may leak out
    results = run_specs([_memlat_spec(7)], jobs=1)
    assert results[0].fault_injections == {}
    assert results[0].invariant_epoch_checks == 0


def test_per_run_seeding_differs_between_runs():
    # Two specs differing only by seed draw different fault decisions —
    # per-run derivation, not one shared stream (which job scheduling
    # could reorder).
    with active_faults(LIGHT_PLAN, check_invariants=False):
        a, b = run_specs([_memlat_spec(1), _memlat_spec(2)], jobs=1)
    assert a.fault_injections or b.fault_injections
    assert (a.fault_injections, a.elapsed_ns) != (b.fault_injections, b.elapsed_ns)


# ----------------------------------------------------------------------
# Registry acceptance: all experiments survive a light fault plan
# ----------------------------------------------------------------------


@pytest.mark.parametrize("experiment_id", sorted(REGISTRY))
def test_registry_experiment_runs_faulted_without_violations(experiment_id):
    reset_run_stats()
    with active_faults(SWEEP_PLAN, check_invariants=True):
        result = run_fast(experiment_id, jobs=1)
    assert result.rows, f"{experiment_id}: no rows produced under faults"
    stats = consume_run_stats()
    if stats is not None:
        assert stats.invariant_violations == 0, (
            f"{experiment_id}: invariant violation(s) under light faults"
        )
