"""Fast-variant runs of every experiment driver.

These are integration tests of the drivers themselves (wiring, row
schemas, note generation) at minimum scale; the full-scale shape
assertions live in ``benchmarks/``.
"""

import pytest

from repro.hw import HASWELL, IVY_BRIDGE
from repro.validation.experiments import (
    REGISTRY,
    run_dvfs_ablation,
    run_epoch_size_study,
    run_figure8,
    run_figure11,
    run_figure12,
    run_figure13,
    run_figure14,
    run_figure15,
    run_figure16_bandwidth,
    run_figure16_latency,
    run_graph500_validation,
    run_model_ablation,
    run_overhead_study,
    run_pagerank_validation,
    run_pcommit_ablation,
    run_table2,
)
from repro.workloads.graph500 import Graph500Config
from repro.workloads.graphs import synthetic_scale_free
from repro.workloads.kvstore import KvStoreConfig
from repro.workloads.pagerank import PageRankConfig


def test_registry_covers_every_paper_artefact():
    expected = {
        # The paper's tables and figures.
        "table2", "figure8", "figure11", "figure12", "figure13", "figure14",
        "figure15", "figure16-latency", "figure16-bandwidth",
        "pagerank-validation", "graph500-validation", "overhead-study",
        "epoch-size-study", "pcommit-ablation", "dvfs-ablation",
        "model-ablation",
        # Section 7 / Section 6 extensions.
        "parallel-pagerank", "asymmetric-bandwidth", "loaded-latency-study",
        "technology-comparison", "kv-write-models",
        # Crash-consistency checking (repro.pmem).
        "crash-check",
        # Systematic interleaving + crash-point exploration (repro.explore).
        "explore-check",
        # The N-tier hybrid-memory generalization.
        "tier-sweep", "migration-policy",
        # The trace-driven multi-tenant KV service (repro.service).
        "service-latency", "cache-policy",
        # Streaming sweep grids (repro.validation.sweep presets).
        "sweep-latency-grid", "sweep-tier-grid", "sweep-migration-grid",
        "sweep-service-grid",
    }
    assert set(REGISTRY) == expected


def test_table2_fast():
    result = run_table2(archs=[IVY_BRIDGE], trials=2, iterations=10_000)
    assert len(result.rows) == 1
    assert result.rows[0]["avg_local"] < result.rows[0]["avg_remote"]


def test_figure8_fast():
    from repro.workloads.stream import StreamConfig
    from repro.units import MIB

    result = run_figure8(
        register_points=4,
        stream_config=StreamConfig(
            threads=1, array_bytes=32 * MIB, compute_cycles_per_element=2.5
        ),
    )
    bandwidths = result.column("bandwidth_gbps")
    assert bandwidths == sorted(bandwidths)


def test_figure11_fast():
    result = run_figure11(
        archs=[HASWELL], chain_counts=(1, 4), iterations=120_000, trials=1
    )
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["error_pct"] < 8.0


def test_figure12_fast():
    result = run_figure12(
        archs=[IVY_BRIDGE], target_latencies_ns=(300.0,),
        iterations=120_000, trials=2,
    )
    row = result.rows[0]
    assert row["measured_ns"] == pytest.approx(300.0, rel=0.05)


def test_figure13_fast():
    result = run_figure13(
        archs=[IVY_BRIDGE], thread_counts=(2,), min_epochs_ms=(0.01, 10.0),
        sections=100, with_compute=False,
    )
    errors = {row["min_epoch_ms"]: row["error_pct"] for row in result.rows}
    assert errors[0.01] < errors[10.0]


def test_figure14_fast():
    result = run_figure14(
        archs=[IVY_BRIDGE],
        target_latencies_ns=(400.0,),
        configurations={"small": (30_000, 30_000)},
        patterns={"p": (300, 150)},
    )
    # Tiny scale inflates the epoch-tail error; the full-scale band is
    # asserted in benchmarks/test_figure14_multilat.py.
    assert result.rows[0]["avg_error_pct"] < 8.0


def test_figure14_skips_targets_below_remote_latency():
    result = run_figure14(
        archs=[IVY_BRIDGE],
        target_latencies_ns=(150.0,),  # below remote DRAM: unemulatable
        configurations={"small": (10_000, 10_000)},
        patterns={"p": (200, 100)},
    )
    assert result.rows == []


def test_figure15_fast():
    result = run_figure15(
        thread_counts=(1, 2), puts_per_thread=3_000, gets_per_thread=3_000
    )
    assert [row["threads"] for row in result.rows] == [1, 2]


def test_pagerank_validation_fast():
    graph = synthetic_scale_free(3_000, 5, seed=1)
    workload = PageRankConfig(
        vertex_count=3_000, edges_per_vertex=5, max_iterations=5,
        tolerance=1e-15,
    )
    result = run_pagerank_validation(workload=workload, graph=graph)
    assert result.rows[0]["iterations"] == 5


def test_graph500_validation_fast():
    graph = synthetic_scale_free(3_000, 5, seed=1)
    workload = Graph500Config(vertex_count=3_000, edges_per_vertex=5, roots=1)
    result = run_graph500_validation(workload=workload, graph=graph)
    assert result.rows[0]["traversed_edges"] > 0


def test_figure16_fast():
    # Inflated per-record sizes keep the working sets beyond the LLC at
    # this reduced scale (the full scale runs in benchmarks/).
    pagerank = PageRankConfig(
        vertex_count=200_000, edges_per_vertex=4, max_iterations=2,
        tolerance=1e-15, bytes_per_vertex=256,
    )
    kv = KvStoreConfig(
        puts_per_thread=5_000, gets_per_thread=5_000, value_bytes=8192
    )
    latency = run_figure16_latency(
        target_latencies_ns=(500.0,), pagerank=pagerank, kv=kv
    )
    assert latency.rows[0]["pagerank_ct_rel"] > 1.1
    assert latency.rows[0]["kv_gets_rel"] < 0.95
    bandwidth = run_figure16_bandwidth(
        bandwidths_gbps=(1.0, 20.0), pagerank=pagerank, kv=kv
    )
    by_bw = {row["nvm_bandwidth_gbps"]: row for row in bandwidth.rows}
    assert by_bw[1.0]["pagerank_ct_rel"] > by_bw[20.0]["pagerank_ct_rel"]


def test_overhead_study_fast():
    result = run_overhead_study(iterations=120_000)
    quantities = result.column("quantity")
    assert "thread registration (cycles)" in quantities
    assert any("switched-off" in quantity for quantity in quantities)


def test_epoch_size_study_fast():
    result = run_epoch_size_study(
        max_epochs_ms=(1.0, 100.0), iterations=200_000, trials=1
    )
    errors = {row["max_epoch_ms"]: row["error_pct"] for row in result.rows}
    assert errors[100.0] > errors[1.0]


def test_pcommit_ablation_fast():
    result = run_pcommit_ablation(independent_writes=8, barriers=50)
    by_model = {row["write_model"]: row["ns_per_barrier"] for row in result.rows}
    assert by_model["pflush"] > 2 * by_model["pcommit"]


def test_dvfs_ablation_fast():
    result = run_dvfs_ablation(iterations=150_000)
    by_state = {row["dvfs"]: row["error_pct"] for row in result.rows}
    assert by_state["enabled"] > by_state["disabled"]


def test_model_ablation_fast():
    result = run_model_ablation(chain_counts=(1, 4), iterations=100_000)
    simple4 = [
        row for row in result.rows
        if row["model"] == "simple" and row["chains"] == 4
    ][0]
    assert simple4["error_pct"] > 100.0
