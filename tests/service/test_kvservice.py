"""The KV service end-to-end: histograms, runner integration, faults."""

import json

import pytest

from repro.errors import WorkloadError
from repro.faults import FaultPlan, active_faults
from repro.hw import IVY_BRIDGE
from repro.quartz.config import QuartzConfig
from repro.service import CacheConfig, LatencyHistogram, ServiceConfig, TraceConfig
from repro.service.kvservice import HISTOGRAM_BOUNDS, REPORTED_PERCENTILES
from repro.units import MILLISECOND
from repro.validation.runner import RunSpec, reset_run_stats, run_specs

SMALL_TRACE = TraceConfig(
    tenants=2, ops_per_tenant=150, keys_per_tenant=2_000, mix="ycsb-a", seed=5
)
SMALL_SERVICE = ServiceConfig(
    trace=SMALL_TRACE, cache=CacheConfig(capacity=128), clients_per_tenant=2
)


def _spec(config: ServiceConfig = SMALL_SERVICE, seed: int = 9) -> RunSpec:
    return RunSpec(
        workload="kvservice",
        config=config,
        arch_name=IVY_BRIDGE.name,
        mode="service",
        seed=seed,
        quartz=QuartzConfig(
            nvm_read_latency_ns=400.0,
            nvm_write_latency_ns=800.0,
            max_epoch_ns=1.0 * MILLISECOND,
        ),
    )


# ----------------------------------------------------------------------
# Histogram
# ----------------------------------------------------------------------


def test_histogram_bounds_are_increasing_integers():
    assert all(isinstance(bound, int) for bound in HISTOGRAM_BOUNDS)
    assert list(HISTOGRAM_BOUNDS) == sorted(set(HISTOGRAM_BOUNDS))
    assert HISTOGRAM_BOUNDS[0] == 16
    assert HISTOGRAM_BOUNDS[-1] >= 1e8


def test_histogram_percentiles_are_bucket_bounds():
    histogram = LatencyHistogram()
    for latency in (10.0, 100.0, 1_000.0, 10_000.0):
        histogram.record(latency)
    assert histogram.count == 4
    for _name, fraction in REPORTED_PERCENTILES:
        value = histogram.percentile(fraction)
        assert value in [float(bound) for bound in HISTOGRAM_BOUNDS]
    # Percentiles never decrease in the fraction.
    ladder = [histogram.percentile(f) for f in (0.1, 0.5, 0.9, 0.999)]
    assert ladder == sorted(ladder)


def test_histogram_saturates_and_merges():
    histogram = LatencyHistogram()
    histogram.record(9e99)  # beyond the last bound: clamps, never raises
    assert histogram.percentile(0.5) == float(HISTOGRAM_BOUNDS[-1])
    other = LatencyHistogram()
    other.record(20.0)
    other.record(20.0)
    histogram.merge(other)
    assert histogram.count == 3
    assert histogram.percentile(0.5) == pytest.approx(20.0, abs=5.0)
    payload = histogram.to_dict()
    assert payload["count"] == 3
    assert sum(payload["buckets"].values()) == 3  # sparse: only non-empty


def test_histogram_empty_percentile_is_none():
    assert LatencyHistogram().percentile(0.99) is None


def test_service_config_validation():
    with pytest.raises(WorkloadError):
        ServiceConfig(clients_per_tenant=0)
    with pytest.raises(WorkloadError):
        ServiceConfig(compute_cycles_per_op=-1.0)
    with pytest.raises(WorkloadError):
        ServiceConfig(compute_cycles_per_level=-1.0)


# ----------------------------------------------------------------------
# End-to-end through the runner
# ----------------------------------------------------------------------


def test_service_run_reports_per_tenant_tails():
    reset_run_stats()
    [run] = run_specs([_spec()], jobs=1)
    report = run.service_report
    assert set(report) == {"duration_ns", "tenants", "overall", "cache"}
    assert sorted(report["tenants"]) == ["t0", "t1"]
    for summary in report["tenants"].values():
        assert summary["ops"] == SMALL_TRACE.ops_per_tenant
        assert summary["throughput_ops_s"] > 0
        tail = [summary[name] for name, _ in REPORTED_PERCENTILES]
        assert all(value is not None for value in tail)
        assert tail == sorted(tail)
    overall = report["overall"]
    assert overall["ops"] == SMALL_TRACE.tenants * SMALL_TRACE.ops_per_tenant
    totals = report["cache"]["totals"]
    assert totals["hits"] + totals["misses"] == totals["lookups"]
    assert report["cache"]["resident"] <= SMALL_SERVICE.cache.capacity


def test_service_report_is_byte_identical_across_worker_counts():
    reset_run_stats()
    specs = [_spec(seed=seed) for seed in (1, 2, 3)]
    sequential = run_specs(specs, jobs=1)
    parallel = run_specs(specs, jobs=3)
    for seq, par in zip(sequential, parallel):
        assert json.dumps(seq.service_report, sort_keys=True) == json.dumps(
            par.service_report, sort_keys=True
        )


def test_service_accounting_holds_under_faults():
    # kvservice_main_body calls verify_accounting() on every completed
    # run, so a clean exit *is* the invariant check; arming
    # check_invariants additionally turns any breakage into a hard
    # InvariantViolation rather than a logged warning.
    plan = FaultPlan(
        seed=11,
        timer_jitter_rel=0.01,
        signal_delay_ns=20_000.0,
        signal_delay_p=0.25,
        monitor_miss_p=0.1,
        counter_stale_p=0.05,
    )
    reset_run_stats()
    with active_faults(plan, check_invariants=True):
        [run] = run_specs([_spec()], jobs=1)
    assert run.invariant_violations == 0
    totals = run.service_report["cache"]["totals"]
    assert totals["hits"] + totals["misses"] == totals["lookups"]


def test_reads_verify_against_authoritative_store():
    # Every cache hit and every PM read is checked against the
    # authoritative version map inside the run; verified_reads counts
    # the PM-side checks, so a nonzero value proves coherence was
    # actually exercised.
    reset_run_stats()
    [run] = run_specs([_spec()], jobs=1)
    verified = sum(
        summary["verified_reads"]
        for summary in run.service_report["tenants"].values()
    )
    assert verified > 0


def test_higher_nvm_latency_slows_the_service():
    reset_run_stats()
    fast_spec = _spec()
    slow_spec = RunSpec(
        workload="kvservice",
        config=SMALL_SERVICE,
        arch_name=IVY_BRIDGE.name,
        mode="service",
        seed=9,
        quartz=QuartzConfig(
            nvm_read_latency_ns=1_600.0,
            nvm_write_latency_ns=3_200.0,
            max_epoch_ns=1.0 * MILLISECOND,
        ),
    )
    fast_run, slow_run = run_specs([fast_spec, slow_spec], jobs=1)
    assert (
        slow_run.service_report["overall"]["p99_ns"]
        > fast_run.service_report["overall"]["p99_ns"]
    )
    assert (
        slow_run.service_report["overall"]["throughput_ops_s"]
        < fast_run.service_report["overall"]["throughput_ops_s"]
    )
