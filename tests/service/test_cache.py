"""Policy behaviour and conservation laws of the DRAM cache tier."""

import pytest

from repro.errors import InvariantViolation, WorkloadError
from repro.service import CacheConfig, DramCache


def _filled(config: CacheConfig, tenants: int = 1, keys: int = 0) -> DramCache:
    cache = DramCache(config, tenants)
    for key in range(keys):
        cache.insert(0, key, f"v{key}")
    return cache


# ----------------------------------------------------------------------
# Eviction policies
# ----------------------------------------------------------------------


def test_lru_evicts_least_recently_touched():
    cache = _filled(CacheConfig(capacity=3, eviction="lru"), keys=3)
    cache.lookup(0, 0)  # 0 is now the most recent; 1 is the LRU
    evicted = cache.insert(0, 99, "new")
    assert [e.key for e in evicted] == [1]
    assert cache.lookup(0, 0)[0] is True


def test_lfu_keeps_frequent_entries():
    cache = _filled(CacheConfig(capacity=3, eviction="lfu"), keys=3)
    for _ in range(5):
        cache.lookup(0, 0)
        cache.lookup(0, 2)
    evicted = cache.insert(0, 99, "new")
    assert [e.key for e in evicted] == [1]


def test_segmented_protects_rereferenced_entries():
    # One-hit wonders (inserted, never touched again) must be displaced
    # before entries that earned protection by a second reference.
    cache = _filled(
        CacheConfig(capacity=4, eviction="segmented", protected_fraction=0.5),
        keys=2,
    )
    cache.lookup(0, 0)
    cache.lookup(0, 1)  # keys 0 and 1 promoted to the protected segment
    cache.insert(0, 2, "wonder-a")
    cache.insert(0, 3, "wonder-b")
    victims = [cache.insert(0, 10 + i, "x")[0].key for i in range(2)]
    assert victims == [2, 3]
    assert cache.lookup(0, 0)[0] and cache.lookup(0, 1)[0]


def test_segmented_protected_segment_is_bounded():
    config = CacheConfig(
        capacity=4, eviction="segmented", protected_fraction=0.5
    )
    cache = _filled(config, keys=4)
    for key in range(4):  # try to promote everything
        cache.lookup(0, key)
    # Protection is capped at capacity * protected_fraction = 2, so an
    # insert still finds a probationary victim.
    assert len(cache.insert(0, 99, "new")) == 1


# ----------------------------------------------------------------------
# Admission
# ----------------------------------------------------------------------


def test_probabilistic_admission_rejects_some_offers():
    config = CacheConfig(
        capacity=1_000, admission="probabilistic", admit_p=0.5, seed=3
    )
    cache = DramCache(config, 1)
    for key in range(400):
        cache.insert(0, key, key)
    stats = cache.stats[0]
    assert stats.admitted + stats.rejected == 400
    assert 0 < stats.rejected < 400
    assert stats.admitted == pytest.approx(200, abs=60)
    cache.verify_accounting()


def test_admission_stream_is_seed_deterministic():
    def admitted(seed: int) -> list:
        config = CacheConfig(
            capacity=100, admission="probabilistic", admit_p=0.5, seed=seed
        )
        cache = DramCache(config, 1)
        return [bool(cache.insert(0, key, key) is not None
                     and cache.lookup(0, key)[0]) for key in range(50)]

    assert admitted(7) == admitted(7)
    assert admitted(7) != admitted(8)


def test_resident_reinsert_folds_instead_of_double_admitting():
    cache = _filled(CacheConfig(capacity=4), keys=1)
    assert cache.insert(0, 0, "newer", dirty=True) == []
    assert cache.stats[0].admitted == 1
    assert cache.lookup(0, 0) == (True, "newer")
    assert len(cache.drain_dirty()) == 1  # the fold kept the dirty bit
    cache.verify_accounting()


# ----------------------------------------------------------------------
# Write-back semantics
# ----------------------------------------------------------------------


def test_write_hit_dirties_and_eviction_writes_back():
    cache = _filled(CacheConfig(capacity=2), keys=2)
    assert cache.write(0, 0, "updated") is True
    cache.lookup(0, 1)  # key 0 becomes the LRU victim
    evicted = cache.insert(0, 9, "x")
    assert len(evicted) == 1
    assert (evicted[0].key, evicted[0].value, evicted[0].dirty) == (
        0, "updated", True,
    )
    assert cache.stats[0].writebacks == 1


def test_write_miss_is_counted_and_changes_nothing():
    cache = DramCache(CacheConfig(capacity=2), 1)
    assert cache.write(0, 5, "v") is False
    assert cache.stats[0].misses == 1
    assert len(cache) == 0


def test_drain_flushes_dirty_entries_once():
    cache = DramCache(CacheConfig(capacity=8), 1)
    cache.insert(0, 0, "a", dirty=True)
    cache.insert(0, 1, "b")
    cache.insert(0, 2, "c", dirty=True)
    flushed = cache.drain_dirty()
    assert sorted(e.key for e in flushed) == [0, 2]
    assert cache.stats[0].writebacks == 2
    assert cache.drain_dirty() == []  # now clean; entries stay resident
    assert len(cache) == 3
    cache.verify_accounting()


# ----------------------------------------------------------------------
# Accounting invariants
# ----------------------------------------------------------------------


@pytest.mark.parametrize("eviction", ["lru", "lfu", "segmented"])
@pytest.mark.parametrize("admission", ["always", "probabilistic"])
def test_accounting_conserves_under_mixed_traffic(eviction, admission):
    import random

    config = CacheConfig(
        capacity=32, eviction=eviction, admission=admission, admit_p=0.6,
        seed=1,
    )
    cache = DramCache(config, tenants=2)
    rng = random.Random(42)
    for _ in range(2_000):
        tenant = rng.randrange(2)
        key = rng.randrange(100)
        action = rng.random()
        if action < 0.5:
            hit, _value = cache.lookup(tenant, key)
            if not hit:
                cache.insert(tenant, key, key)
        elif action < 0.8:
            if not cache.write(tenant, key, key + 1):
                cache.insert(tenant, key, key + 1)
        else:
            cache.insert(tenant, key, key, dirty=True)
    cache.drain_dirty()
    cache.verify_accounting()
    for tenant in range(2):
        stats = cache.stats[tenant]
        assert stats.hits + stats.misses == stats.lookups
        assert stats.admitted == stats.evictions + cache.residency(tenant)


def test_residency_never_exceeds_capacity():
    cache = DramCache(CacheConfig(capacity=4), 2)
    for key in range(50):
        cache.insert(key % 2, key, key)
        assert len(cache) <= 4
    assert cache.residency(0) + cache.residency(1) == len(cache)
    cache.verify_accounting()


def test_verify_accounting_detects_tampering():
    cache = _filled(CacheConfig(capacity=8), keys=4)
    cache.lookup(0, 0)
    cache.stats[0].hits += 1  # corrupt the ledger
    with pytest.raises(InvariantViolation) as excinfo:
        cache.verify_accounting()
    assert excinfo.value.invariant == "cache-lookup-conservation"

    cache2 = _filled(CacheConfig(capacity=8), keys=4)
    cache2._residency[0] -= 1
    with pytest.raises(InvariantViolation) as excinfo:
        cache2.verify_accounting()
    assert excinfo.value.invariant == "cache-residency-ledger"

    cache3 = _filled(CacheConfig(capacity=8), keys=4)
    cache3.stats[0].admitted += 1
    with pytest.raises(InvariantViolation) as excinfo:
        cache3.verify_accounting()
    assert excinfo.value.invariant == "cache-admission-conservation"


def test_report_totals_match_per_tenant_sums():
    cache = DramCache(CacheConfig(capacity=8), tenants=2)
    for key in range(6):
        cache.insert(key % 2, key, key)
        cache.lookup(key % 2, key)
    report = cache.report()
    per_tenant = report["tenants"]
    assert report["totals"]["lookups"] == sum(
        t["lookups"] for t in per_tenant.values()
    )
    assert report["resident"] == 6


def test_config_validation():
    with pytest.raises(WorkloadError):
        CacheConfig(capacity=0)
    with pytest.raises(WorkloadError):
        CacheConfig(eviction="mru")
    with pytest.raises(WorkloadError):
        CacheConfig(admission="tinylfu")
    with pytest.raises(WorkloadError):
        CacheConfig(admit_p=1.5)
    with pytest.raises(WorkloadError):
        CacheConfig(protected_fraction=1.0)
    with pytest.raises(WorkloadError):
        DramCache(CacheConfig(), tenants=0)
