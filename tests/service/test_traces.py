"""Determinism and distribution properties of the trace generator."""

import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.service import TraceConfig, operation_stream, rank_probability, stream_digest
from repro.service.traces import MIXES, OP_KINDS, client_ops

SRC = str(Path(__file__).resolve().parents[2] / "src")


# ----------------------------------------------------------------------
# Byte-identity
# ----------------------------------------------------------------------


def test_same_seed_is_byte_identical():
    config = TraceConfig(tenants=2, ops_per_tenant=500, keys_per_tenant=10_000)
    assert stream_digest(config) == stream_digest(config)


def test_digest_moves_with_seed_and_skew():
    base = TraceConfig(tenants=1, ops_per_tenant=400, keys_per_tenant=5_000)
    digests = {
        stream_digest(base),
        stream_digest(TraceConfig(
            tenants=1, ops_per_tenant=400, keys_per_tenant=5_000, seed=1
        )),
        stream_digest(TraceConfig(
            tenants=1, ops_per_tenant=400, keys_per_tenant=5_000,
            zipf_theta=0.5,
        )),
        stream_digest(TraceConfig(
            tenants=1, ops_per_tenant=400, keys_per_tenant=5_000,
            distribution="uniform",
        )),
    }
    assert len(digests) == 4


def test_digest_survives_hash_randomisation():
    # Seeds are derived arithmetically, never from hashing strings, so
    # the stream must be identical under a different PYTHONHASHSEED —
    # the same property that makes --jobs N workers agree byte-for-byte.
    script = (
        "from repro.service import TraceConfig, stream_digest\n"
        "print(stream_digest(TraceConfig(tenants=2, ops_per_tenant=200,"
        " keys_per_tenant=3_000, seed=7), clients_per_tenant=2))\n"
    )
    digests = set()
    for hashseed in ("1", "4242"):
        env = dict(os.environ, PYTHONPATH=SRC, PYTHONHASHSEED=hashseed)
        out = subprocess.run(
            [sys.executable, "-c", script],
            env=env, capture_output=True, text=True, check=True,
        )
        digests.add(out.stdout.strip())
    assert len(digests) == 1


def test_client_split_conserves_tenant_budget():
    config = TraceConfig(tenants=1, ops_per_tenant=1_003, keys_per_tenant=100)
    for clients in (1, 2, 3, 7):
        shares = [client_ops(config, clients, c) for c in range(clients)]
        assert sum(shares) == config.ops_per_tenant
        # Remainder goes to the first clients: shares are non-increasing.
        assert shares == sorted(shares, reverse=True)


def test_per_client_streams_are_independent_of_split():
    # Client c's stream depends only on (seed, tenant, c) — never on how
    # many siblings it has — so any split replays the same operations.
    config = TraceConfig(tenants=1, ops_per_tenant=600, keys_per_tenant=2_000)
    solo = list(operation_stream(config, 0, client=1, ops=100))
    again = list(operation_stream(config, 0, client=1, ops=100))
    assert solo == again


# ----------------------------------------------------------------------
# Stream contents
# ----------------------------------------------------------------------


def test_tenant_key_spaces_are_disjoint():
    config = TraceConfig(tenants=3, ops_per_tenant=300, keys_per_tenant=1_000)
    for tenant in range(config.tenants):
        lo = tenant * config.keys_per_tenant
        for op in operation_stream(config, tenant):
            assert lo <= op.key < lo + config.keys_per_tenant
            assert op.tenant == tenant
            assert op.kind in OP_KINDS


def test_mix_ratios_roughly_match_preset():
    config = TraceConfig(
        tenants=1, ops_per_tenant=4_000, keys_per_tenant=1_000, mix="ycsb-b"
    )
    kinds = [op.kind for op in operation_stream(config, 0)]
    reads = kinds.count("read") / len(kinds)
    assert reads == pytest.approx(0.95, abs=0.03)
    config_c = TraceConfig(
        tenants=1, ops_per_tenant=500, keys_per_tenant=1_000, mix="ycsb-c"
    )
    assert all(op.kind == "read" for op in operation_stream(config_c, 0))


def test_scans_bounded_and_point_ops_have_length_one():
    config = TraceConfig(
        tenants=1, ops_per_tenant=1_000, keys_per_tenant=1_000,
        mix="ycsb-e", max_scan_len=16,
    )
    saw_scan = False
    for op in operation_stream(config, 0):
        if op.kind == "scan":
            saw_scan = True
            assert 1 <= op.scan_len <= 16
        else:
            assert op.scan_len == 1
    assert saw_scan


def test_arrival_pacing_emits_positive_gaps():
    closed = TraceConfig(tenants=1, ops_per_tenant=200, keys_per_tenant=100)
    assert all(op.gap_ns == 0.0 for op in operation_stream(closed, 0))
    open_loop = TraceConfig(
        tenants=1, ops_per_tenant=200, keys_per_tenant=100,
        arrival_rate_ops_s=50_000.0,
    )
    gaps = [op.gap_ns for op in operation_stream(open_loop, 0)]
    assert all(gap >= 0.0 for gap in gaps)
    assert sum(gaps) > 0.0


def test_higher_skew_concentrates_on_hot_keys():
    def hot_share(theta: float) -> float:
        config = TraceConfig(
            tenants=1, ops_per_tenant=3_000, keys_per_tenant=10_000,
            zipf_theta=theta,
        )
        hot = config.keys_per_tenant // 100  # top 1% of the key space
        ops = list(operation_stream(config, 0))
        return sum(1 for op in ops if op.key < hot) / len(ops)

    assert hot_share(0.99) > hot_share(0.6) > hot_share(0.2)


# ----------------------------------------------------------------------
# Analytic zipfian mass function (hypothesis)
# ----------------------------------------------------------------------


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 2_000),
    theta=st.floats(0.0, 0.99),
    rank=st.integers(0, 1_998),
)
def test_property_rank_probability_decreases_in_rank(n, theta, rank):
    rank = min(rank, n - 2)
    assert rank_probability(rank, n, theta) >= rank_probability(rank + 1, n, theta)


@settings(max_examples=60, deadline=None)
@given(
    n=st.integers(2, 2_000),
    lo=st.floats(0.0, 0.98),
    step=st.floats(0.005, 0.5),
)
def test_property_hot_key_mass_increases_in_theta(n, lo, step):
    hi = min(0.99, lo + step)
    assert rank_probability(0, n, hi) >= rank_probability(0, n, lo)


@settings(max_examples=30, deadline=None)
@given(n=st.integers(1, 300), theta=st.floats(0.0, 0.99))
def test_property_rank_probabilities_sum_to_one(n, theta):
    total = sum(rank_probability(rank, n, theta) for rank in range(n))
    assert total == pytest.approx(1.0, rel=1e-9)


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------


def test_config_validation():
    with pytest.raises(WorkloadError):
        TraceConfig(tenants=0)
    with pytest.raises(WorkloadError):
        TraceConfig(ops_per_tenant=0)
    with pytest.raises(WorkloadError):
        TraceConfig(distribution="latest")
    with pytest.raises(WorkloadError):
        TraceConfig(zipf_theta=1.0)
    with pytest.raises(WorkloadError):
        TraceConfig(mix="ycsb-z")
    with pytest.raises(WorkloadError):
        TraceConfig(arrival_rate_ops_s=0.0)
    with pytest.raises(WorkloadError):
        next(operation_stream(TraceConfig(tenants=2), tenant=2))
    with pytest.raises(WorkloadError):
        client_ops(TraceConfig(), clients_per_tenant=2, client=2)
    assert sorted(MIXES) == [f"ycsb-{x}" for x in "abcdef"]
