"""The exhaustive mutant-oracle regression suite (model-checking mode).

Every seeded mutant of every explorable recoverable workload must be
caught deterministically by exploration, with a replayable minimal
failing interleaving; every unmutated protocol must survive the full
(schedule x crash point) cross product uncapped.
"""

import pytest

from repro.errors import WorkloadError
from repro.explore import (
    Explorer,
    ExplorePlan,
    LitmusConfig,
    build_explorable,
    merge_shard_reports,
)
from repro.hw import IVY_BRIDGE
from repro.pmem.checker import MUTANTS
from repro.validation.experiments.explore import default_explore_config

#: Every explorable workload with a persist protocol to mutate.
ORACLE_WORKLOADS = ("mutex-log", "kvstore", "graph500")


def _explore(workload, mutant, prune=True, shard=0, shards=1, config=None):
    return Explorer(
        IVY_BRIDGE,
        workload,
        config if config is not None else default_explore_config(workload),
        ExplorePlan(prune=prune),
        mutant=mutant,
        shard=shard,
        shards=shards,
    )


# ----------------------------------------------------------------------
# The oracle: clean survives, every mutant is caught
# ----------------------------------------------------------------------
@pytest.mark.parametrize("workload", ORACLE_WORKLOADS)
def test_unmutated_protocol_survives_full_exploration(workload):
    report = _explore(workload, None).run()
    assert report.violation_total == 0
    assert report.violations == []
    assert report.minimal_trace is None
    assert report.deadlocks == 0
    assert not report.capped, "capped exploration is not exhaustive"
    assert report.schedules >= 1
    assert report.executions >= report.schedules


@pytest.mark.parametrize("workload", ORACLE_WORKLOADS)
@pytest.mark.parametrize("mutant", MUTANTS)
def test_every_mutant_is_caught_with_a_replayable_trace(workload, mutant):
    explorer = _explore(workload, mutant)
    report = explorer.run()
    assert report.violation_total >= 1, f"{mutant} escaped on {workload}"
    assert not report.capped
    trace = report.minimal_trace
    assert trace is not None
    # The minimal failing interleaving replays to the same violations.
    record = explorer.replay(trace["choices"])
    replayed = sorted(
        f"{invariant}: {detail}" for invariant, detail in record.violations
    )
    assert replayed == trace["violations"]
    assert len(trace["steps"]) == len(trace["choices"])
    for step in trace["steps"]:
        assert step["thread"] in step["candidates"]


@pytest.mark.parametrize("mutant", MUTANTS)
def test_mutant_verdicts_are_deterministic(mutant):
    first = _explore("mutex-log", mutant).run()
    second = _explore("mutex-log", mutant).run()
    assert first.to_dict() == second.to_dict()


# ----------------------------------------------------------------------
# Sharding: disjoint subtrees, identical merged verdict
# ----------------------------------------------------------------------
@pytest.mark.parametrize("mutant", (None, "misordered-barrier"))
def test_shard_reports_merge_to_the_unsharded_whole(mutant):
    whole = _explore("mutex-log", mutant).run()
    merged = merge_shard_reports(
        [
            _explore("mutex-log", mutant, shard=shard, shards=3)
            .run()
            .to_dict()
            for shard in range(3)
        ]
    )
    assert merged["violation_total"] == whole.violation_total
    assert {
        (record["invariant"], record["detail"])
        for record in merged["violations"]
    } == {
        (record["invariant"], record["detail"])
        for record in whole.violations
    }
    if whole.minimal_trace is None:
        assert merged["minimal_trace"] is None
    else:
        assert merged["minimal_trace"]["choices"] == (
            whole.minimal_trace["choices"]
        )
    assert merged["schedules"] >= whole.schedules


def test_merge_rejects_inconsistent_shard_sets():
    reports = [
        _explore("mutex-log", None, shard=shard, shards=2).run().to_dict()
        for shard in range(2)
    ]
    with pytest.raises(WorkloadError):
        merge_shard_reports(reports[:1])
    with pytest.raises(WorkloadError):
        merge_shard_reports([])


# ----------------------------------------------------------------------
# Replay and guard rails
# ----------------------------------------------------------------------
def test_strict_replay_rejects_divergent_schedules():
    explorer = _explore("mutex-log", None)
    with pytest.raises(WorkloadError, match="diverged"):
        explorer.replay([99])
    longest = _explore("mutex-log", None).run()
    with pytest.raises(WorkloadError, match="diverged"):
        explorer.replay([0] * (longest.decisions_max + 5))


def test_execution_budget_caps_the_report():
    explorer = _explore(
        "mutex-log",
        None,
        config=LitmusConfig(threads=3, entries_per_thread=1),
    )
    explorer.plan = ExplorePlan(max_executions=5)
    capped = explorer.run()
    assert capped.capped
    assert capped.executions == 5


def test_unknown_workload_and_mutant_are_rejected_eagerly():
    with pytest.raises(WorkloadError):
        _explore("no-such-workload", None, config=LitmusConfig())
    with pytest.raises(WorkloadError):
        _explore("mutex-log", "no-such-mutant")
    with pytest.raises(WorkloadError):
        build_explorable("disjoint-locks", LitmusConfig(), "missing-flush")


def test_deadlock_is_reported_as_a_violation():
    """Lock-order inversion: exploration finds the deadlocked schedule."""
    from repro.explore.litmus import LITMUS_WORKLOADS, LitmusDisjointLocks
    from repro.ops import JoinThread, MutexLock, MutexUnlock, SpawnThread
    from repro.os.sync import Mutex

    class DeadlockProne(LitmusDisjointLocks):
        workload_id = "deadlock-prone"

        def body_factory(self, domain, out):
            def worker(ctx, first, second):
                yield MutexLock(first)
                yield MutexLock(second)
                yield MutexUnlock(second)
                yield MutexUnlock(first)

            def body(ctx):
                a = Mutex(ctx.os, name="dp-a")
                b = Mutex(ctx.os, name="dp-b")
                one = yield SpawnThread(worker, name="dp0", args=(a, b))
                two = yield SpawnThread(worker, name="dp1", args=(b, a))
                yield JoinThread(one)
                yield JoinThread(two)
                out["result"] = {"ok": True}

            return body

    LITMUS_WORKLOADS["deadlock-prone"] = DeadlockProne
    try:
        report = _explore(
            "deadlock-prone", None, config=LitmusConfig()
        ).run()
    finally:
        del LITMUS_WORKLOADS["deadlock-prone"]
    assert report.deadlocks >= 1
    assert any(
        record["invariant"] == "deadlock-free"
        for record in report.violations
    )
    trace = report.minimal_trace
    assert trace is not None and trace["outcome"] == "deadlock"
