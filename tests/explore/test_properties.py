"""Property-based tests (hypothesis): schedule replay is deterministic.

The explorer's correctness rests on stateless re-execution: a schedule
is nothing but a list of choice indices, and running the workload under
the same choices must reproduce the same execution bit for bit.  These
properties drive arbitrary choice sequences through the clamped
executor and assert that replaying what was recorded reproduces the
identical event order (the op-trace digest covers thread, op type, and
sim timestamp of every executed op), the identical simulated clock, and
the identical oracle verdict.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.explore import Explorer, ExplorePlan, LitmusConfig
from repro.hw import IVY_BRIDGE

CHOICES = st.lists(st.integers(min_value=0, max_value=7), max_size=10)
MUTANTS = st.sampled_from([None, "missing-flush", "misordered-barrier"])


def _explorer(mutant=None):
    return Explorer(
        IVY_BRIDGE,
        "mutex-log",
        LitmusConfig(threads=2, entries_per_thread=1),
        ExplorePlan(),
        mutant=mutant,
    )


@settings(max_examples=25, deadline=None)
@given(choices=CHOICES, mutant=MUTANTS)
def test_property_any_choice_sequence_executes_deterministically(
    choices, mutant
):
    explorer = _explorer(mutant)
    first = explorer._execute(choices)
    second = explorer._execute(choices)
    assert first.trace_digest == second.trace_digest
    assert first.elapsed_ns == second.elapsed_ns
    assert first.choices == second.choices
    assert first.violations == second.violations
    assert [node.candidates for node in first.decisions] == [
        node.candidates for node in second.decisions
    ]


@settings(max_examples=25, deadline=None)
@given(choices=CHOICES, mutant=MUTANTS)
def test_property_recorded_schedules_replay_strictly(choices, mutant):
    """Clamping resolves arbitrary ints to a valid schedule; replaying
    that recorded schedule strictly (no clamping allowed) reproduces the
    identical execution."""
    explorer = _explorer(mutant)
    recorded = explorer._execute(choices)
    replayed = explorer.replay(recorded.choices)
    assert replayed.choices == recorded.choices
    assert replayed.trace_digest == recorded.trace_digest
    assert replayed.elapsed_ns == recorded.elapsed_ns
    assert replayed.outcome == recorded.outcome
    assert replayed.violations == recorded.violations
    assert replayed.ops_granted == recorded.ops_granted
    assert [node.labels for node in replayed.decisions] == [
        node.labels for node in recorded.decisions
    ]


@settings(max_examples=15, deadline=None)
@given(choices=CHOICES)
def test_property_workload_result_is_schedule_independent(choices):
    """The correct protocol computes the same result on every schedule —
    the functional face of race freedom."""
    explorer = _explorer(None)
    record = explorer._execute(choices)
    assert record.outcome == "completed"
    assert record.result == {"appended": 2, "mutant": None}
    assert record.violations == set()
