"""Wiring: explore mode through the runner, exports, and the CLI gate."""

import json

import pytest

from repro.errors import ValidationError
from repro.explore import DEFAULT_EXPLORE_CRASH_PLAN, ExplorePlan, LitmusConfig
from repro.hw.arch import IVY_BRIDGE
from repro.validation import export
from repro.validation.runner import (
    RunSpec,
    consume_run_stats,
    reset_run_stats,
    run_specs,
)

PLAN = ExplorePlan()
CONFIG = LitmusConfig(threads=2, entries_per_thread=1, seed=0)


def _spec(mutant=None, shard=0, shards=1):
    return RunSpec(
        workload="mutex-log",
        config=CONFIG,
        arch_name=IVY_BRIDGE.name,
        mode="explore",
        extras={
            "explore_plan": PLAN,
            "shard": shard,
            "shards": shards,
            "mutant": mutant,
        },
    )


def test_explore_spec_requires_a_plan():
    with pytest.raises(ValidationError, match="ExplorePlan"):
        RunSpec(
            workload="mutex-log",
            config=CONFIG,
            arch_name=IVY_BRIDGE.name,
            mode="explore",
        )


def test_runner_carries_the_explore_report_and_stats():
    reset_run_stats()
    (result,) = run_specs([_spec(mutant="missing-flush")], jobs=1)
    report = result.explore_report
    assert report is not None
    assert report["schedules"] >= 1
    assert report["violation_total"] >= 1
    assert report["minimal_trace"] is not None
    stats = consume_run_stats()
    assert stats is not None
    assert "explore:" in stats.summary()
    telemetry = stats.telemetry()
    assert telemetry["explore"]["schedules"] == report["schedules"]
    assert telemetry["explore"]["violations"] == report["violation_total"]


def test_manifest_explore_section_round_trips():
    manifest = export.build_manifest(
        knobs={"command": "explore"}, explore=PLAN.to_dict()
    )
    assert manifest.explore == PLAN.to_dict()
    assert manifest.explore["crash_plan"] == (
        DEFAULT_EXPLORE_CRASH_PLAN.to_dict()
    )
    restored = export.RunManifest.from_dict(manifest.to_dict())
    assert restored.explore == manifest.explore


def test_cli_explore_json_export(capsys, tmp_path):
    from repro.cli import main

    out_path = tmp_path / "explore.json"
    code = main(
        [
            "explore",
            "mutex-log",
            "--mutant",
            "missing-flush",
            "--shards",
            "2",
            "--jobs",
            "1",
            "--format",
            "json",
            "-o",
            str(out_path),
        ]
    )
    assert code == 0
    document = json.loads(capsys.readouterr().out)
    assert document["manifest"]["knobs"]["command"] == "explore"
    assert document["manifest"]["explore"]["max_executions"] > 0
    rows = document["experiment"]["rows"]
    assert [row["ok"] for row in rows] == [True] * len(rows)
    assert rows[0]["mutant"] == "missing-flush"
    assert rows[0]["minimal_trace_len"] >= 1
    assert export.load_experiment_json(out_path)


def test_cli_explore_exits_4_when_an_expectation_fails(capsys, monkeypatch):
    from repro.cli import main
    from repro.validation.experiments import explore as explore_module
    from repro.validation.reporting import ExperimentResult

    def broken_check(**kwargs):
        result = ExperimentResult(
            experiment_id="explore-check",
            title="stub",
            columns=[
                "workload", "mutant", "schedules", "executions", "pruned",
                "deadlocks", "images_checked", "violations",
                "first_violation", "minimal_trace_len", "expected", "ok",
            ],
        )
        result.add_row(
            workload="mutex-log", mutant="missing-flush", schedules=38,
            executions=40, pruned=2, deadlocks=0, images_checked=0,
            violations=0, first_violation="", minimal_trace_len=0,
            expected=">=1", ok=False,
        )
        return result

    monkeypatch.setattr(explore_module, "run_explore_check", broken_check)
    code = main(
        ["explore", "mutex-log", "--mutant", "missing-flush", "--jobs", "1"]
    )
    assert code == 4
    captured = capsys.readouterr()
    assert "expectation failed" in captured.err
    assert "mutex-log/missing-flush" in captured.err
