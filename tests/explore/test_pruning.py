"""Pruning soundness: sleep sets change cost, never the verdict.

Every test explores one litmus workload twice — with sleep-set pruning
and with the full DFS — and asserts the canonical oracle-violation sets
are identical.  Schedule counts are pinned as goldens: a pruning change
that silently explores fewer (or more) schedules fails here before it
can corrupt a verdict.  The litmus configs run three simulated threads
(main plus two workers); the 3-worker pruned golden guards the larger
tree where sleep sets matter most.
"""

import pytest

from repro.explore import Explorer, ExplorePlan, LitmusConfig
from repro.hw import IVY_BRIDGE

#: (workload, mutant) -> (pruned schedules, unpruned schedules) at the
#: default 2-worker litmus size.  Regenerate by running this file with
#: the asserts printed — counts move only when the explorer, the
#: independence relation, or the litmus bodies change.
SCHEDULE_GOLDENS = {
    ("mutex-log", None): (66, 269),
    ("mutex-log", "missing-flush"): (38, 118),
    ("mutex-log", "misordered-barrier"): (66, 269),
    ("disjoint-locks", None): (16, 69),
}


def _report(workload, mutant, prune):
    return Explorer(
        IVY_BRIDGE,
        workload,
        LitmusConfig(threads=2, entries_per_thread=1),
        ExplorePlan(prune=prune, max_executions=50_000),
        mutant=mutant,
    ).run()


def _violation_set(report):
    return {
        (record["invariant"], record["detail"])
        for record in report.violations
    }


@pytest.mark.parametrize("workload,mutant", sorted(
    SCHEDULE_GOLDENS, key=lambda key: (key[0], key[1] or "")
))
def test_pruned_and_unpruned_agree_on_the_violation_set(workload, mutant):
    pruned = _report(workload, mutant, prune=True)
    full = _report(workload, mutant, prune=False)
    assert not pruned.capped and not full.capped
    # Soundness: the exact same canonical violations, not just counts.
    assert _violation_set(pruned) == _violation_set(full)
    assert pruned.violation_total == full.violation_total
    # Minimality is schedule-order-free, so the minimal trace agrees too.
    if full.minimal_trace is None:
        assert pruned.minimal_trace is None
    else:
        assert pruned.minimal_trace["choices"] == full.minimal_trace["choices"]
    # Pruning only removes redundant schedules.
    assert pruned.schedules <= full.schedules
    assert full.pruned == 0
    assert (pruned.schedules, full.schedules) == SCHEDULE_GOLDENS[
        (workload, mutant)
    ]


def test_pruning_wins_strictly_on_independent_locks():
    """Fully independent threads are where sleep sets must collapse."""
    pruned = _report("disjoint-locks", None, prune=True)
    full = _report("disjoint-locks", None, prune=False)
    assert pruned.schedules < full.schedules
    assert pruned.pruned > 0
    # No persists ever happen, so the oracle holds trivially in both.
    assert pruned.violation_total == full.violation_total == 0
    assert pruned.images_checked == full.images_checked == 0


def test_three_worker_pruned_golden():
    """The larger tree: 3 workers, pruned count pinned (full DFS would
    walk 25k+ schedules — the win pruning exists for)."""
    report = Explorer(
        IVY_BRIDGE,
        "disjoint-locks",
        LitmusConfig(threads=3, entries_per_thread=1),
        ExplorePlan(prune=True, max_executions=50_000),
    ).run()
    assert not report.capped
    assert report.violation_total == 0
    assert report.schedules == 1000
    assert report.pruned > 0
