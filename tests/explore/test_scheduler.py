"""Unit tests of the controlled scheduler and its independence relation."""

import pytest

from repro.errors import WorkloadError
from repro.explore import (
    ControlledScheduler,
    boundary_footprint,
    describe_boundary,
    independent,
)
from repro.explore.scheduler import GLOBAL, PERSIST, START, SYNC
from repro.hw import IVY_BRIDGE
from repro.hw.machine import Machine
from repro.hw.topology import PageSize
from repro.ops import Commit, JoinThread, MutexLock, MutexUnlock, SpawnThread
from repro.os.sync import Mutex
from repro.os.system import SimOS
from repro.sim import Simulator
from repro.units import MIB


def _os():
    sim = Simulator(seed=1)
    machine = Machine(sim, IVY_BRIDGE, latency_jitter=False)
    return SimOS(machine, default_cpu_node=0)


# ----------------------------------------------------------------------
# Footprints and independence
# ----------------------------------------------------------------------
def test_footprints_classify_ops():
    os = _os()
    mutex_a = Mutex(os, name="a")
    mutex_b = Mutex(os, name="b")
    lock_a = boundary_footprint(MutexLock(mutex_a))
    unlock_a = boundary_footprint(MutexUnlock(mutex_a))
    lock_b = boundary_footprint(MutexLock(mutex_b))
    assert lock_a[0] == SYNC and lock_a == unlock_a
    assert boundary_footprint(None) == (START, ())
    assert boundary_footprint(Commit())[0] == PERSIST
    assert boundary_footprint(SpawnThread(lambda ctx: iter(())))[0] == GLOBAL

    # Same mutex: dependent.  Different mutexes: independent.
    assert not independent(lock_a, unlock_a)
    assert independent(lock_a, lock_b)
    # Persists never commute (crash images see the global persist order).
    assert not independent(
        boundary_footprint(Commit()), boundary_footprint(Commit())
    )
    # Spawn/join are dependent with everything.
    spawn = boundary_footprint(SpawnThread(lambda ctx: iter(())))
    assert not independent(spawn, lock_a)
    assert not independent(spawn, boundary_footprint(None))
    # Thread starts are independent of unrelated sync ops.
    assert independent(boundary_footprint(None), lock_a)


def test_describe_boundary_labels():
    os = _os()
    mutex = Mutex(os, name="m")
    assert describe_boundary(MutexLock(mutex)) == "lock:m"
    assert describe_boundary(MutexUnlock(mutex)) == "unlock:m"
    assert describe_boundary(Commit()) == "commit"
    assert describe_boundary(None) == "start"


def test_unknown_boundary_op_is_rejected():
    with pytest.raises(WorkloadError):
        boundary_footprint(object())


# ----------------------------------------------------------------------
# Gate mechanics
# ----------------------------------------------------------------------
def test_scheduler_parks_and_grants_threads():
    os = _os()
    scheduler = ControlledScheduler(os)
    mutex = Mutex(os, name="m")
    order = []

    def worker(ctx, tag):
        yield MutexLock(mutex)
        order.append(tag)
        yield MutexUnlock(mutex)

    def main(ctx):
        first = yield SpawnThread(worker, name="w0", args=("w0",))
        second = yield SpawnThread(worker, name="w1", args=("w1",))
        yield JoinThread(first)
        yield JoinThread(second)

    os.create_thread(main, name="main")
    # Steer w1 into the critical section first: hold every MutexLock
    # grant until both workers are parked at it, then release w1's.
    granted = 0
    steered = False
    while True:
        os.sim.run()
        if not scheduler.unfinished():
            break
        candidates = scheduler.enabled()
        assert candidates, f"deadlock: {scheduler.blocked_summary()}"
        at_lock = [
            entry for entry in candidates if type(entry.op) is MutexLock
        ]
        if not steered and len(at_lock) == 2:
            entry = next(e for e in at_lock if e.thread.name == "w1")
            steered = True
        elif not steered and at_lock and len(candidates) > len(at_lock):
            entry = next(
                e for e in candidates if type(e.op) is not MutexLock
            )
        else:
            entry = candidates[0]
        granted += 1
        scheduler.grant(entry)
    assert steered
    assert order == ["w1", "w0"]
    assert scheduler.ops_granted == granted
    # Every granted boundary op was observed by the trace digest; the
    # three thread-start gates (main, w0, w1) are grants without ops.
    assert scheduler.ops_granted == scheduler.ops_observed + 3


def test_lock_enabledness_tracks_owner():
    os = _os()
    scheduler = ControlledScheduler(os)
    mutex = Mutex(os, name="m")

    def holder(ctx):
        yield MutexLock(mutex)
        yield MutexUnlock(mutex)

    def contender(ctx):
        yield MutexLock(mutex)
        yield MutexUnlock(mutex)

    def main(ctx):
        a = yield SpawnThread(holder, name="holder")
        b = yield SpawnThread(contender, name="contender")
        yield JoinThread(a)
        yield JoinThread(b)

    os.create_thread(main, name="main")
    # Drive until both workers are parked at their MutexLock ops,
    # granting only non-lock boundaries on the way there.
    while True:
        os.sim.run()
        at_lock = {
            entry.thread.name
            for entry in scheduler._parked.values()
            if type(entry.op) is MutexLock
        }
        if at_lock == {"holder", "contender"}:
            break
        non_lock = [
            entry
            for entry in scheduler.enabled()
            if type(entry.op) is not MutexLock
        ]
        assert non_lock, f"stuck: {scheduler.blocked_summary()}"
        scheduler.grant(non_lock[0])
    # Grant the holder's lock: the contender's acquire becomes disabled.
    holder_entry = next(
        entry
        for entry in scheduler.enabled()
        if entry.thread.name == "holder"
    )
    scheduler.grant(holder_entry)
    os.sim.run()
    assert mutex.owner is not None
    enabled_names = {entry.thread.name for entry in scheduler.enabled()}
    assert "contender" not in enabled_names
    assert scheduler.parked_count() >= 1


def test_double_gate_install_is_rejected():
    os = _os()
    ControlledScheduler(os)
    with pytest.raises(WorkloadError):
        ControlledScheduler(os)


def test_observer_chains_to_prior_dispatch_observer():
    os = _os()
    seen = []
    os.interpose.dispatch_observer = lambda thread, op: seen.append(type(op))
    scheduler = ControlledScheduler(os)

    def main(ctx):
        region = ctx.pmalloc(MIB, page_size=PageSize.HUGE_2M, label="pm")
        yield from ctx.pflush(region, lines=1, line=0)

    os.create_thread(main, name="main")
    while True:
        os.sim.run()
        if not scheduler.unfinished():
            break
        candidates = scheduler.enabled()
        assert candidates
        scheduler.grant(candidates[0])
    assert seen, "chained observer never fired"
    assert scheduler.ops_observed == len(seen)
