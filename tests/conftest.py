"""Suite-wide fixtures."""

import os

import pytest


@pytest.fixture(autouse=True, scope="session")
def _isolated_calibration_cache(tmp_path_factory):
    """Keep the persistent calibration cache out of the real home dir.

    Tests still exercise both cache layers — they just do it against a
    per-session sandbox instead of ``~/.cache/quartz-repro``.
    """
    sandbox = tmp_path_factory.mktemp("quartz-cache")
    previous = os.environ.get("QUARTZ_REPRO_CACHE_DIR")
    os.environ["QUARTZ_REPRO_CACHE_DIR"] = str(sandbox)
    yield
    if previous is None:
        os.environ.pop("QUARTZ_REPRO_CACHE_DIR", None)
    else:
        os.environ["QUARTZ_REPRO_CACHE_DIR"] = previous
