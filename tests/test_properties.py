"""Cross-cutting property-based tests (hypothesis) on core invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE
from repro.hw.cache import AnalyticCacheModel
from repro.hw.memory import MemoryController
from repro.hw.topology import MemoryRegion, PageSize
from repro.ops import MemBatch, PatternKind
from repro.quartz.epoch import EpochEngine, ThreadEpochState
from repro.quartz.model import (
    eq1_simple_delay,
    eq2_delay_from_stalls,
    eq3_ldm_stall,
    eq4_remote_stall_split,
)
from repro.sim import Simulator


# ----------------------------------------------------------------------
# Simulator kernel
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.floats(0.0, 1e6), st.booleans()),
        min_size=1,
        max_size=60,
    )
)
def test_property_kernel_dispatch_is_time_ordered(entries):
    sim = Simulator()
    fired: list[float] = []
    events = []
    for delay, cancel in entries:
        events.append(
            (sim.schedule(delay, lambda d=delay: fired.append(d)), cancel)
        )
    for event, cancel in events:
        if cancel:
            event.cancel()
    sim.run()
    assert fired == sorted(fired)
    expected = sorted(d for (d, c) in entries if not c)
    assert sorted(fired) == expected


# ----------------------------------------------------------------------
# Memory controller flows
# ----------------------------------------------------------------------
@settings(max_examples=40, deadline=None)
@given(
    st.lists(
        st.tuples(
            st.floats(1.0, 1e5),    # bytes
            st.floats(0.01, 100.0),  # rate cap
            st.sampled_from(["read", "write"]),
        ),
        min_size=1,
        max_size=12,
    ),
    st.floats(0.5, 50.0),  # controller capacity
)
def test_property_flows_conserve_bytes_and_respect_capacity(flows, capacity):
    sim = Simulator()
    controller = MemoryController(
        sim, node=0, peak_bw_bytes_per_ns=capacity, channels=4
    )
    submitted = [
        controller.submit(nbytes, cap, kind=kind)
        for nbytes, cap, kind in flows
    ]
    sim.run()
    assert all(flow.done.fired for flow in submitted)
    total = sum(nbytes for nbytes, _, _ in flows)
    assert controller.total_bytes_served == pytest.approx(total, rel=1e-6)
    # No flow finished faster than its own rate cap allows.
    for flow, (nbytes, cap, _) in zip(submitted, flows):
        assert sim.now >= nbytes / cap * 0.999 or nbytes / cap <= sim.now
    # The whole batch respected the controller capacity.
    assert sim.now >= total / capacity * 0.999


@settings(max_examples=40, deadline=None)
@given(
    st.lists(st.floats(0.1, 50.0), min_size=1, max_size=10),
    st.floats(0.5, 100.0),
)
def test_property_water_fill_is_max_min_fair(caps, capacity):
    sim = Simulator()
    controller = MemoryController(
        sim, node=0, peak_bw_bytes_per_ns=capacity, channels=4
    )
    flows = [controller.submit(1e9, cap) for cap in caps]
    rates = {flow.flow_id: flow.assigned_rate for flow in flows}
    # Feasibility.
    assert sum(rates.values()) <= capacity * (1 + 1e-9)
    for flow, cap in zip(flows, caps):
        assert rates[flow.flow_id] <= cap * (1 + 1e-9)
    # Max-min fairness: an unsatisfied flow gets at least as much as any
    # other flow.
    for flow, cap in zip(flows, caps):
        if rates[flow.flow_id] < cap * (1 - 1e-9):
            assert all(
                rates[flow.flow_id] >= rate * (1 - 1e-9)
                for rate in rates.values()
            )
    for flow in flows:
        controller.withdraw(flow)


# ----------------------------------------------------------------------
# Analytic cache model
# ----------------------------------------------------------------------
def region(size_bytes):
    return MemoryRegion(
        node=0, size_bytes=size_bytes, base=0, page_size=PageSize.HUGE_2M
    )


@settings(max_examples=60, deadline=None)
@given(
    st.integers(1, 200_000),           # accesses
    st.integers(1, 1 << 34),           # footprint
    st.integers(1, 32),                # parallelism
    st.sampled_from([PatternKind.CHASE, PatternKind.RANDOM]),
)
def test_property_cache_hits_partition_accesses(
    accesses, footprint, parallelism, pattern
):
    model = AnalyticCacheModel(IVY_BRIDGE)
    batch = MemBatch(
        region(max(footprint, 64)), accesses, pattern, parallelism=parallelism
    )
    profile = model.resolve(batch)
    total = (
        profile.l1_hits + profile.l2_hits + profile.l3_hits
        + profile.demand_dram_loads
    )
    assert total == pytest.approx(accesses)
    assert 0 <= profile.demand_dram_loads <= accesses
    assert 1 <= profile.effective_mlp <= IVY_BRIDGE.mshr_count
    assert profile.serialized_dram_accesses <= profile.demand_dram_loads + 1e-9
    assert profile.dram_bytes >= 0


@settings(max_examples=30, deadline=None)
@given(st.integers(64, 1 << 30), st.integers(1, 8))
def test_property_bigger_footprints_never_hit_more(footprint, factor):
    model = AnalyticCacheModel(IVY_BRIDGE)
    small = model.resolve(
        MemBatch(region(footprint), 10_000, PatternKind.RANDOM)
    )
    large = model.resolve(
        MemBatch(region(footprint * factor), 10_000, PatternKind.RANDOM)
    )
    assert large.demand_dram_loads >= small.demand_dram_loads - 1e-6


# ----------------------------------------------------------------------
# The Quartz model equations
# ----------------------------------------------------------------------
@settings(max_examples=80, deadline=None)
@given(
    st.floats(0.0, 1e9),   # stall cycles
    st.floats(0.0, 1e6),   # hits
    st.floats(0.0, 1e6),   # misses
    st.floats(1.0, 50.0),  # W
)
def test_property_eq3_bounded_by_total_stalls(stalls, hits, misses, w):
    if hits + w * misses <= 0 and stalls > 0:
        # Positive stalls with zero LLC references is an inconsistent
        # counter feed: Eq. (3) refuses instead of silently dropping it.
        with pytest.raises(QuartzError, match=r"Eq. \(3\)"):
            eq3_ldm_stall(stalls, hits, misses, w)
        return
    estimate = eq3_ldm_stall(stalls, hits, misses, w)
    assert 0.0 <= estimate <= stalls * (1 + 1e-12)


@settings(max_examples=80, deadline=None)
@given(
    st.floats(0.0, 1e9),
    st.floats(0.0, 1e6),
    st.floats(0.0, 1e6),
    st.floats(10.0, 500.0),
    st.floats(10.0, 500.0),
)
def test_property_eq4_split_partitions_stalls(
    total, local, remote, lat_local, lat_remote
):
    remote_share = eq4_remote_stall_split(
        total, local, remote, lat_local, lat_remote
    )
    local_share = total - remote_share
    assert -1e-6 <= remote_share <= total + 1e-6
    assert local_share >= -1e-6
    if local + remote > 0:
        # Symmetry: swapping roles swaps the shares (undefined when the
        # epoch had no references at all — both splits are then zero).
        swapped = eq4_remote_stall_split(
            total, remote, local, lat_remote, lat_local
        )
        assert swapped == pytest.approx(local_share, abs=1e-6 * (1 + total))


@settings(max_examples=60, deadline=None)
@given(
    st.floats(0.0, 1e8),
    st.floats(100.0, 2000.0),
    st.floats(50.0, 99.0),
)
def test_property_eq2_delay_nonnegative_and_linear(stall_ns, nvm, dram):
    delay = eq2_delay_from_stalls(stall_ns, nvm, dram)
    assert delay >= 0
    double = eq2_delay_from_stalls(2 * stall_ns, nvm, dram)
    assert double == pytest.approx(2 * delay, rel=1e-9)


@settings(max_examples=60, deadline=None)
@given(st.integers(0, 10_000), st.floats(100.0, 2000.0), st.floats(50.0, 99.0))
def test_property_eq1_upper_bounds_eq2_for_serialized_runs(
    references, nvm, dram
):
    """With MLP >= 1, stall time <= references * dram, so Eq. 2's delay
    never exceeds Eq. 1's."""
    stall_ns = references * dram  # fully serialized
    assert eq2_delay_from_stalls(stall_ns, nvm, dram) == pytest.approx(
        eq1_simple_delay(references, nvm, dram), rel=1e-9
    )
    partial = eq2_delay_from_stalls(stall_ns / 2, nvm, dram)
    assert partial <= eq1_simple_delay(references, nvm, dram) + 1e-9


# ----------------------------------------------------------------------
# Epoch delay splitting
# ----------------------------------------------------------------------
@settings(max_examples=60, deadline=None)
@given(
    st.floats(0.0, 1e7),  # delay
    st.floats(0.0, 1e7),  # cs wall
    st.floats(0.0, 1e7),  # out wall
)
def test_property_split_delay_partitions_exactly(delay, cs_wall, out_wall):
    state = ThreadEpochState(start_ns=0.0, counter_base={})
    state.cs_wall_ns = cs_wall
    state.out_wall_ns = out_wall
    cs_share, out_share = EpochEngine._split_delay(state, delay)
    assert cs_share >= 0 and out_share >= 0
    assert cs_share + out_share == pytest.approx(delay, abs=1e-9 * (1 + delay))
    if cs_wall + out_wall > 0 and delay > 1e-6:
        assert cs_share / delay == pytest.approx(
            cs_wall / (cs_wall + out_wall), abs=1e-6
        )
