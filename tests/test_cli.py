"""Tests for the command-line interface."""

import pytest

from repro.cli import main


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "figure12" in output
    assert "pagerank-validation" in output


def test_calibrate_command(capsys):
    assert main(["calibrate", "--arch", "ivy-bridge"]) == 0
    output = capsys.readouterr().out
    assert "local DRAM latency" in output
    assert "bandwidth table" in output


def test_run_command_with_arch_and_trials(capsys):
    assert main(["run", "table2", "--arch", "ivy-bridge", "--trials", "1"]) == 0
    output = capsys.readouterr().out
    assert "IvyBridge" in output
    assert "SandyBridge" not in output


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "table.txt"
    assert main(["run", "table2", "--arch", "haswell", "--trials", "1",
                 "-o", str(target)]) == 0
    capsys.readouterr()
    assert "Haswell" in target.read_text()


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "figure99"])


def test_unknown_arch_rejected():
    with pytest.raises(KeyError):
        main(["run", "table2", "--arch", "skylake"])
