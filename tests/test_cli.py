"""Tests for the command-line interface."""

import pytest

from repro.cli import main
from repro.validation.experiments import REGISTRY
from repro.validation.reporting import ExperimentResult


def test_list_command(capsys):
    assert main(["list"]) == 0
    output = capsys.readouterr().out
    assert "figure12" in output
    assert "pagerank-validation" in output


def test_calibrate_command(capsys):
    assert main(["calibrate", "--arch", "ivy-bridge"]) == 0
    output = capsys.readouterr().out
    assert "local DRAM latency" in output
    assert "bandwidth table" in output


def test_run_command_with_arch_and_trials(capsys):
    assert main(["run", "table2", "--arch", "ivy-bridge", "--trials", "1"]) == 0
    output = capsys.readouterr().out
    assert "IvyBridge" in output
    assert "SandyBridge" not in output


def test_run_writes_output_file(tmp_path, capsys):
    target = tmp_path / "table.txt"
    assert main(["run", "table2", "--arch", "haswell", "--trials", "1",
                 "-o", str(target)]) == 0
    capsys.readouterr()
    assert "Haswell" in target.read_text()


def test_unknown_experiment_rejected():
    with pytest.raises(SystemExit):
        main(["run", "figure99"])


def test_unknown_arch_rejected():
    with pytest.raises(KeyError):
        main(["run", "table2", "--arch", "skylake"])


def _stub_driver():
    result = ExperimentResult(
        experiment_id="stub", title="Stub experiment", columns=["x"]
    )
    result.add_row(x=1)
    return result


def test_unsupported_flags_note_instead_of_crashing(monkeypatch, capsys):
    """Flags a driver has no parameter for are noted, never a TypeError."""
    monkeypatch.setitem(REGISTRY, "stub-exp", lambda: _stub_driver())
    assert main([
        "run", "stub-exp",
        "--arch", "ivy-bridge", "--trials", "2", "--jobs", "2",
    ]) == 0
    captured = capsys.readouterr()
    assert "Stub experiment" in captured.out
    assert "does not take an architecture" in captured.err
    assert "does not take --trials" in captured.err
    assert "does not take --jobs" in captured.err


def test_jobs_flag_forwarded(monkeypatch, capsys):
    seen = {}

    def driver(jobs=None):
        seen["jobs"] = jobs
        return _stub_driver()

    monkeypatch.setitem(REGISTRY, "stub-exp", driver)
    assert main(["run", "stub-exp", "--jobs", "3"]) == 0
    assert seen["jobs"] == 3
    # Without the flag the CLI default (env override, else all cores)
    # is resolved and passed along.
    monkeypatch.setenv("QUARTZ_REPRO_JOBS", "5")
    assert main(["run", "stub-exp"]) == 0
    assert seen["jobs"] == 5
    capsys.readouterr()


def test_run_prints_runner_summary(capsys):
    assert main(["run", "table2", "--arch", "ivy-bridge", "--trials", "1",
                 "--jobs", "1"]) == 0
    output = capsys.readouterr().out
    assert "runner:" in output
    assert "calibration cache:" in output


def test_calibrate_refresh(capsys):
    from repro.quartz.calibration import cache_counters

    before = cache_counters.measurements
    assert main(["calibrate", "--arch", "ivy-bridge", "--refresh"]) == 0
    assert cache_counters.measurements == before + 1
    assert "local DRAM latency" in capsys.readouterr().out


# ----------------------------------------------------------------------
# JSON export and trace streaming
# ----------------------------------------------------------------------
def test_run_format_json_stdout_is_pure_document(capsys):
    import json

    from repro.validation import export

    assert main(["run", "table2", "--arch", "ivy-bridge", "--trials", "1",
                 "--jobs", "1", "--format", "json"]) == 0
    captured = capsys.readouterr()
    # stdout parses as exactly one JSON document; chatter is on stderr.
    document = json.loads(captured.out)
    assert document["schema"] == export.EXPORT_SCHEMA
    assert document["experiment"]["experiment_id"] == "table2"
    assert document["manifest"]["content_digest"]
    assert document["manifest"]["knobs"]["experiment"] == "table2"
    assert document["telemetry"]["jobs"] == 1
    assert "completed in" in captured.err
    assert "runner:" in captured.err


def test_run_format_json_out_file_validates(tmp_path, capsys):
    from repro.validation import export

    target = tmp_path / "table2.json"
    assert main(["run", "table2", "--arch", "ivy-bridge", "--trials", "1",
                 "--jobs", "1", "--format", "json", "--out", str(target)]) == 0
    capsys.readouterr()
    # The file passes full schema + digest validation on reload.
    document = export.load_experiment_json(target)
    rebuilt = export.result_from_document(document)
    assert rebuilt.experiment_id == "table2"
    assert rebuilt.rows
    manifest = export.manifest_from_document(document)
    assert "ivy-bridge" in manifest.archs


def test_trace_out_and_summarize_roundtrip(tmp_path, capsys):
    trace_file = tmp_path / "epochs.jsonl"
    assert main(["run", "figure12", "--arch", "ivy-bridge", "--trials", "1",
                 "--trace-out", str(trace_file)]) == 0
    captured = capsys.readouterr()
    assert "epoch trace:" in captured.out
    assert trace_file.exists()
    assert main(["trace", "summarize", str(trace_file)]) == 0
    summary = capsys.readouterr().out
    assert "epochs over" in summary
    assert "runs traced:" in summary
    assert "overhead fully amortized:" in summary


def test_trace_out_forces_single_job(tmp_path, capsys):
    trace_file = tmp_path / "epochs.jsonl"
    assert main(["run", "figure12", "--arch", "ivy-bridge", "--trials", "1",
                 "--jobs", "4", "--trace-out", str(trace_file)]) == 0
    captured = capsys.readouterr()
    assert "forcing --jobs 1" in captured.err
    assert trace_file.exists()


def test_trace_summarize_bad_file_errors(tmp_path, capsys):
    bogus = tmp_path / "not-a-trace.jsonl"
    bogus.write_text("{}\n")
    assert main(["trace", "summarize", str(bogus)]) == 1
    assert "error:" in capsys.readouterr().err


# ----------------------------------------------------------------------
# Fault injection and invariant checking
# ----------------------------------------------------------------------
def test_run_with_faults_records_plan_in_manifest(capsys):
    import json

    assert main([
        "run", "figure12", "--arch", "ivy-bridge", "--trials", "1",
        "--jobs", "1", "--format", "json",
        "--faults", "signal-delay(ns=400000,p=1.0); seed(3)",
        "--check-invariants",
    ]) == 0
    captured = capsys.readouterr()
    document = json.loads(captured.out)
    faults = document["manifest"]["faults"]
    assert faults["signal_delay_ns"] == 400000.0
    assert faults["seed"] == 3
    assert document["manifest"]["knobs"]["check_invariants"] is True
    assert document["telemetry"]["faults"]["injections"]
    assert document["telemetry"]["invariants"]["violations"] == 0
    assert "faults:" in captured.err
    assert "invariants:" in captured.err


def test_malformed_faults_spec_exits_2_with_guidance(capsys):
    assert main(["run", "table2", "--faults", "bogus(x=1)"]) == 2
    captured = capsys.readouterr()
    assert "error: unknown fault kind 'bogus'" in captured.err
    assert "supported kinds:" in captured.err
    assert "Traceback" not in captured.err
    assert captured.out == ""


def test_malformed_fault_parameter_exits_2(capsys):
    assert main([
        "run", "table2", "--faults", "timer-jitter(nope=1)",
    ]) == 2
    captured = capsys.readouterr()
    assert "unknown parameter 'nope'" in captured.err
    assert "expected: drift, rel" in captured.err


def test_invariant_violation_exits_3_without_traceback(monkeypatch, capsys):
    from repro.quartz import epoch as epoch_module

    real = epoch_module.amortize_delay

    def corrupt(pool_ns, overhead_ns, delay_ns):
        injected, amortized, new_pool = real(pool_ns, overhead_ns, delay_ns)
        return injected + 1000.0, amortized, new_pool

    monkeypatch.setattr(epoch_module, "amortize_delay", corrupt)
    assert main([
        "run", "figure12", "--arch", "ivy-bridge", "--trials", "1",
        "--jobs", "1", "--check-invariants",
    ]) == 3
    captured = capsys.readouterr()
    assert "invariant 'delay-conservation' violated" in captured.err
    assert "re-run without --check-invariants" in captured.err
    assert "Traceback" not in captured.err


def test_without_check_invariants_corruption_passes_silently(monkeypatch, capsys):
    # The raw (faulted) behaviour remains observable: without the flag
    # the same corrupted accounting completes with exit code 0.
    from repro.quartz import epoch as epoch_module

    real = epoch_module.amortize_delay

    def corrupt(pool_ns, overhead_ns, delay_ns):
        injected, amortized, new_pool = real(pool_ns, overhead_ns, delay_ns)
        return injected + 1000.0, amortized, new_pool

    monkeypatch.setattr(epoch_module, "amortize_delay", corrupt)
    assert main([
        "run", "figure12", "--arch", "ivy-bridge", "--trials", "1",
        "--jobs", "1",
    ]) == 0


# ----------------------------------------------------------------------
# The sweep subcommand family
# ----------------------------------------------------------------------


def test_sweep_run_smoke_exits_zero(tmp_path, capsys):
    assert main([
        "sweep", "run", "latency-grid", "--scale", "smoke",
        "--dir", str(tmp_path / "grid"), "--jobs", "1",
    ]) == 0
    captured = capsys.readouterr()
    assert "4 spec(s), 4 executed" in captured.out
    assert (tmp_path / "grid" / "journal.jsonl").exists()
    assert (tmp_path / "grid" / "results.jsonl").exists()


def test_sweep_interrupt_status_resume_roundtrip(tmp_path, capsys):
    """The CI smoke in miniature: crash deterministically, inspect,
    resume, and the resumed JSON document matches a fresh reference."""
    import json

    sweep_dir = str(tmp_path / "grid")
    assert main([
        "sweep", "run", "latency-grid", "--scale", "smoke",
        "--dir", sweep_dir, "--jobs", "1", "--interrupt-after", "2",
    ]) == 130
    captured = capsys.readouterr()
    assert "sweep interrupted" in captured.err
    assert "sweep resume --dir" in captured.err

    assert main(["sweep", "status", "--dir", sweep_dir]) == 0
    assert "2/4 spec(s) checkpointed" in capsys.readouterr().out

    resumed_path = tmp_path / "resumed.json"
    assert main([
        "sweep", "resume", "--dir", sweep_dir, "--jobs", "1",
        "--format", "json", "-o", str(resumed_path),
    ]) == 0
    assert "2 reused from checkpoints" in capsys.readouterr().err

    reference_path = tmp_path / "reference.json"
    assert main([
        "sweep", "run", "latency-grid", "--scale", "smoke",
        "--dir", str(tmp_path / "ref"), "--jobs", "1",
        "--format", "json", "-o", str(reference_path),
    ]) == 0
    capsys.readouterr()
    resumed = json.loads(resumed_path.read_text())
    reference = json.loads(reference_path.read_text())
    assert (
        resumed["manifest"]["content_digest"]
        == reference["manifest"]["content_digest"]
    )


def test_sweep_run_refuses_existing_journal(tmp_path, capsys):
    sweep_dir = str(tmp_path / "grid")
    assert main([
        "sweep", "run", "latency-grid", "--scale", "smoke",
        "--dir", sweep_dir, "--jobs", "1",
    ]) == 0
    capsys.readouterr()
    assert main([
        "sweep", "run", "latency-grid", "--scale", "smoke",
        "--dir", sweep_dir, "--jobs", "1",
    ]) == 2
    assert "already exists" in capsys.readouterr().err


def test_sweep_status_missing_directory_exits_two(tmp_path, capsys):
    assert main(["sweep", "status", "--dir", str(tmp_path / "nope")]) == 2
    assert "error:" in capsys.readouterr().err


def test_sweep_unknown_preset_rejected(tmp_path):
    with pytest.raises(SystemExit):
        main(["sweep", "run", "no-such-grid", "--dir", str(tmp_path / "x")])
