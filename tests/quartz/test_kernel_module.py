"""Tests for the privileged kernel-module analogue."""

import pytest

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.quartz.kernel_module import QuartzKernelModule
from repro.sim import Simulator


def make_module():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE)
    return machine, QuartzKernelModule(machine)


def test_load_and_unload():
    _, module = make_module()
    assert not module.loaded
    module.load()
    assert module.loaded
    module.unload()
    assert not module.loaded


def test_double_load_rejected():
    _, module = make_module()
    module.load()
    with pytest.raises(QuartzError):
        module.load()


def test_operations_require_loaded_module():
    _, module = make_module()
    with pytest.raises(QuartzError, match="not loaded"):
        module.setup_counters()
    with pytest.raises(QuartzError, match="not loaded"):
        module.set_throttle_register(0, 100)
    with pytest.raises(QuartzError, match="not loaded"):
        module.unload()


def test_setup_counters_programs_table1_events_on_every_core():
    machine, module = make_module()
    module.load()
    module.setup_counters()
    expected = frozenset(IVY_BRIDGE.counter_events.all_events())
    for pmc in machine.pmcs:
        assert pmc.programmed_events == expected
    assert module.user_rdpmc_enabled


def test_throttle_register_programming_and_reset():
    machine, module = make_module()
    module.load()
    module.set_throttle_register(0, 100)
    assert machine.controller(0).throttle_register == 100
    module.reset_throttle(0)
    assert machine.controller(0).throttle_register == THROTTLE_REGISTER_MAX


def test_throttle_value_range_checked():
    _, module = make_module()
    module.load()
    with pytest.raises(QuartzError):
        module.set_throttle_register(0, THROTTLE_REGISTER_MAX + 1)


def test_unload_restores_throttle_registers():
    machine, module = make_module()
    module.load()
    module.set_throttle_register(0, 50)
    module.set_throttle_register(1, 60)
    module.unload()
    assert machine.controller(0).throttle_register == THROTTLE_REGISTER_MAX
    assert machine.controller(1).throttle_register == THROTTLE_REGISTER_MAX
