"""End-to-end tests of the Quartz emulator on the simulated machine."""

import pytest

from repro.errors import QuartzError, UnsupportedFeatureError
from repro.hw import HASWELL, IVY_BRIDGE, SANDY_BRIDGE, Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.hw.topology import PageSize
from repro.ops import (
    Commit,
    JoinThread,
    MemBatch,
    MutexLock,
    MutexUnlock,
    PatternKind,
    SpawnThread,
)
from repro.os import Mutex, SimOS
from repro.quartz import (
    EmulationMode,
    Quartz,
    QuartzConfig,
    WriteModel,
    calibrate_arch,
)
from repro.sim import Simulator
from repro.units import GIB, MIB, MILLISECOND


def make_stack(arch=IVY_BRIDGE, seed=3):
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch)
    return machine, SimOS(machine)


def chase_body(out, accesses=300_000, size=4 * GIB, persistent=False):
    def body(ctx):
        if persistent:
            region = ctx.pmalloc(size, page_size=PageSize.HUGE_2M)
        else:
            region = ctx.malloc(size, page_size=PageSize.HUGE_2M)
        start = ctx.now_ns
        yield MemBatch(region, accesses, PatternKind.CHASE)
        out["latency"] = (ctx.now_ns - start) / accesses

    return body


def run_emulated_chase(arch, target_ns, seed=3, accesses=300_000, **config_kwargs):
    machine, osys = make_stack(arch, seed)
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=target_ns, **config_kwargs),
        calibration=calibrate_arch(arch),
    )
    quartz.attach()
    out = {}
    osys.create_thread(chase_body(out, accesses=accesses))
    osys.run_to_completion()
    return out["latency"], quartz


# ----------------------------------------------------------------------
# Attach/detach and validation
# ----------------------------------------------------------------------
def test_attach_detach_lifecycle():
    machine, osys = make_stack()
    quartz = Quartz(osys, QuartzConfig(), calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()
    assert quartz.attached
    assert quartz.kernel_module.loaded
    with pytest.raises(QuartzError):
        quartz.attach()
    quartz.detach()
    assert not quartz.attached
    with pytest.raises(QuartzError):
        quartz.detach()


def test_emulating_faster_than_dram_rejected():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=50.0),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    with pytest.raises(QuartzError, match="slowed down"):
        quartz.attach()


def test_two_memory_mode_rejected_on_sandy_bridge():
    """Sandy Bridge lacks local/remote LLC-miss counters (Table 1)."""
    machine, osys = make_stack(arch=SANDY_BRIDGE)
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=400.0, mode=EmulationMode.TWO_MEMORY),
        calibration=calibrate_arch(SANDY_BRIDGE),
    )
    with pytest.raises(UnsupportedFeatureError):
        quartz.attach()


def test_mismatched_calibration_rejected():
    machine, osys = make_stack(arch=IVY_BRIDGE)
    quartz = Quartz(osys, QuartzConfig(), calibration=calibrate_arch(HASWELL))
    with pytest.raises(QuartzError, match="calibration"):
        quartz.attach()


def test_detach_restores_throttle_registers():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=200.0, nvm_bandwidth_gbps=10.0),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    assert machine.controller(0).throttle_register < THROTTLE_REGISTER_MAX
    quartz.detach()
    assert machine.controller(0).throttle_register == THROTTLE_REGISTER_MAX


# ----------------------------------------------------------------------
# Latency emulation accuracy (the Figure 12 property, scaled down)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("target", [200.0, 500.0, 1000.0])
def test_emulated_latency_matches_target_on_ivy_bridge(target):
    latency, _ = run_emulated_chase(IVY_BRIDGE, target)
    assert abs(latency - target) / target < 0.02  # paper: <2% on Ivy Bridge


def test_emulated_latency_on_haswell_within_6_percent():
    latency, _ = run_emulated_chase(HASWELL, 600.0)
    assert abs(latency - 600.0) / 600.0 < 0.06


def test_emulated_latency_on_sandy_bridge_within_9_percent():
    latency, _ = run_emulated_chase(SANDY_BRIDGE, 600.0)
    assert abs(latency - 600.0) / 600.0 < 0.09


def test_switched_off_injection_mode_keeps_native_speed():
    """Section 3.2: the 'switched-off delay injection' diagnostic mode
    processes epochs but injects nothing."""
    latency, quartz = run_emulated_chase(
        IVY_BRIDGE, 1000.0, injection_enabled=False
    )
    assert latency == pytest.approx(87.0, rel=0.05)
    assert quartz.stats.delay_injected_ns == 0.0
    assert quartz.stats.delay_computed_ns > 0.0
    assert quartz.stats.epochs_total > 0


def test_epoch_overhead_under_4_percent_with_default_settings():
    """Section 3.2: epoch-creation overhead <4% for most experiments."""
    base, _ = run_emulated_chase(IVY_BRIDGE, 1000.0, injection_enabled=False)
    assert base <= 87.0 * 1.04


def test_stats_report_epoch_activity():
    _, quartz = run_emulated_chase(IVY_BRIDGE, 500.0)
    stats = quartz.stats
    assert stats.threads_registered == 1
    assert stats.epochs_total >= 5
    assert stats.signals_posted > 0
    assert stats.delay_injected_ns > 0
    assert "amortized" in stats.feedback()


def test_monitor_closes_epochs_at_max_epoch_granularity():
    _, quartz = run_emulated_chase(IVY_BRIDGE, 500.0, max_epoch_ns=MILLISECOND)
    # ~26 ms of native chase work split into >= max-epoch-sized chunks
    # (wall epochs stretch by the injected delay between them).
    per_thread = quartz.stats.thread(
        next(iter(quartz.stats.per_thread))
    )
    assert per_thread.epochs_monitor > 15


# ----------------------------------------------------------------------
# Multithreaded: sync-triggered closes and delay propagation
# ----------------------------------------------------------------------
def test_unlock_closes_epoch_and_propagates_delay():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=800.0, min_epoch_ns=0.0),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    mutex = Mutex(osys)
    acquired = {}

    def holder(ctx):
        region = ctx.malloc(4 * GIB, page_size=PageSize.HUGE_2M)
        yield MutexLock(mutex)
        yield MemBatch(region, 20_000, PatternKind.CHASE)
        yield MutexUnlock(mutex)

    def waiter(ctx):
        yield MutexLock(mutex)
        acquired["at"] = ctx.now_ns
        yield MutexUnlock(mutex)

    def main(ctx):
        h = yield SpawnThread(holder, name="holder")
        w = yield SpawnThread(waiter, name="waiter")
        yield JoinThread(h)
        yield JoinThread(w)

    osys.create_thread(main)
    osys.run_to_completion()
    # The holder's critical section runs 20k chase accesses; under
    # emulation the waiter must see them at ~800 ns each, not ~87 ns.
    assert acquired["at"] >= 20_000 * 800.0 * 0.9
    tids = [
        tid
        for tid, stats in quartz.stats.per_thread.items()
        if stats.name == "holder"
    ]
    assert quartz.stats.thread(tids[0]).epochs_sync >= 1


def test_min_epoch_suppresses_frequent_sync_closes():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=400.0, min_epoch_ns=10.0 * MILLISECOND),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    mutex = Mutex(osys)

    def body(ctx):
        region = ctx.malloc(256 * MIB, page_size=PageSize.HUGE_2M)
        for _ in range(50):
            yield MutexLock(mutex)
            yield MemBatch(region, 100, PatternKind.CHASE)
            yield MutexUnlock(mutex)

    osys.create_thread(body)
    osys.run_to_completion()
    per_thread = next(iter(quartz.stats.per_thread.values()))
    assert per_thread.closes_skipped_min_epoch >= 49
    assert per_thread.epochs_sync == 0


def test_registered_threads_tracked_and_deregistered():
    machine, osys = make_stack()
    quartz = Quartz(
        osys, QuartzConfig(nvm_read_latency_ns=200.0),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()

    def child(ctx):
        region = ctx.malloc(256 * MIB, page_size=PageSize.HUGE_2M)
        yield MemBatch(region, 1000, PatternKind.CHASE)

    def main(ctx):
        threads = []
        for index in range(3):
            threads.append((yield SpawnThread(child, name=f"c{index}")))
        for t in threads:
            yield JoinThread(t)

    osys.create_thread(main)
    osys.run_to_completion()
    assert quartz.stats.threads_registered == 4  # main + 3 children
    assert quartz.registered_thread_count == 0  # all exited and drained


def test_monitor_thread_itself_not_emulated():
    _, quartz = run_emulated_chase(IVY_BRIDGE, 300.0)
    names = {stats.name for stats in quartz.stats.per_thread.values()}
    assert "quartz-monitor" not in names


# ----------------------------------------------------------------------
# Write emulation
# ----------------------------------------------------------------------
def test_pflush_injects_write_latency():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=200.0, nvm_write_latency_ns=500.0),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    timing = {}

    def body(ctx):
        region = ctx.pmalloc(MIB)
        start = ctx.now_ns
        for _ in range(10):
            yield from ctx.pflush(region, lines=1)
        timing["per_flush"] = (ctx.now_ns - start) / 10

    osys.create_thread(body)
    osys.run_to_completion()
    # Hardware clflush 87 ns + injected (500 - 87) ns = 500 ns total.
    assert timing["per_flush"] == pytest.approx(500.0, rel=0.05)
    assert quartz.write_emulator.flushes_emulated == 10


def test_pcommit_model_overlaps_independent_writes():
    def run(write_model):
        machine, osys = make_stack()
        quartz = Quartz(
            osys,
            QuartzConfig(
                nvm_read_latency_ns=200.0,
                nvm_write_latency_ns=1000.0,
                write_model=write_model,
            ),
            calibration=calibrate_arch(IVY_BRIDGE),
        )
        quartz.attach()
        timing = {}

        def body(ctx):
            region = ctx.pmalloc(MIB)
            start = ctx.now_ns
            for _ in range(10):
                yield from ctx.pflush(region, lines=1)
            yield Commit()
            timing["elapsed"] = ctx.now_ns - start

        osys.create_thread(body)
        osys.run_to_completion()
        return timing["elapsed"]

    serial = run(WriteModel.PFLUSH)
    parallel = run(WriteModel.PCOMMIT)
    # pflush serializes: ~10 x 1000 ns.  pcommit overlaps: ~1 x 1000 ns.
    assert serial == pytest.approx(10_000.0, rel=0.1)
    assert parallel < serial / 4


def test_pcommit_discounts_elapsed_program_time():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(
            nvm_read_latency_ns=200.0,
            nvm_write_latency_ns=1000.0,
            write_model=WriteModel.PCOMMIT,
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    timing = {}

    def body(ctx):
        from repro.ops import Compute

        region = ctx.pmalloc(MIB)
        yield from ctx.pflush(region, lines=1)
        # 2 us of compute: by the barrier the emulated write is done.
        yield Compute(2.2 * 2000.0)
        start = ctx.now_ns
        yield Commit()
        timing["commit_wait"] = ctx.now_ns - start

    osys.create_thread(body)
    osys.run_to_completion()
    assert timing["commit_wait"] < 100.0


# ----------------------------------------------------------------------
# Two-memory mode basics
# ----------------------------------------------------------------------
def test_two_memory_pmalloc_lands_on_sibling_socket():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=400.0, mode=EmulationMode.TWO_MEMORY),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    regions = {}

    def body(ctx):
        regions["volatile"] = ctx.malloc(MIB)
        regions["nvm"] = ctx.pmalloc(MIB)
        yield MemBatch(regions["nvm"], 100, PatternKind.CHASE)
        ctx.pfree(regions["nvm"])

    osys.create_thread(body)
    osys.run_to_completion()
    assert regions["volatile"].node == 0
    assert regions["nvm"].node == 1
    assert regions["nvm"].persistent
    assert regions["nvm"].freed


def test_two_memory_slows_only_nvm_accesses():
    machine, osys = make_stack()
    target = 600.0
    quartz = Quartz(
        osys,
        QuartzConfig(
            nvm_read_latency_ns=target,
            mode=EmulationMode.TWO_MEMORY,
            max_epoch_ns=MILLISECOND,
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    out = {}

    def body(ctx):
        dram = ctx.malloc(2 * GIB, page_size=PageSize.HUGE_2M)
        nvm = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        accesses = 100_000
        start = ctx.now_ns
        for _ in range(10):
            yield MemBatch(dram, accesses // 10, PatternKind.CHASE)
            yield MemBatch(nvm, accesses // 10, PatternKind.CHASE)
        out["elapsed"] = ctx.now_ns - start
        out["expected"] = accesses * 87.0 + accesses * target

    osys.create_thread(body)
    osys.run_to_completion()
    assert out["elapsed"] == pytest.approx(out["expected"], rel=0.03)
