"""Tests for the bandwidth throttler's node targeting and reset."""

import pytest

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.quartz.bandwidth import BandwidthThrottler
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import EmulationMode, QuartzConfig
from repro.quartz.kernel_module import QuartzKernelModule
from repro.sim import Simulator


def make_throttler(config, rw=False):
    machine = Machine(Simulator(seed=1), IVY_BRIDGE, rw_throttle_supported=rw)
    module = QuartzKernelModule(machine)
    module.load()
    throttler = BandwidthThrottler(
        module, calibrate_arch(IVY_BRIDGE), config, nvm_node=1
    )
    return machine, throttler


def test_unthrottled_config_touches_nothing():
    machine, throttler = make_throttler(
        QuartzConfig(nvm_read_latency_ns=200.0)
    )
    throttler.apply()
    assert throttler.applied_register is None
    for controller in machine.controllers:
        assert controller.throttle_register == THROTTLE_REGISTER_MAX


def test_pm_mode_throttles_every_node():
    machine, throttler = make_throttler(
        QuartzConfig(nvm_read_latency_ns=200.0, nvm_bandwidth_gbps=8.0)
    )
    throttler.apply()
    assert throttler.applied_register is not None
    for controller in machine.controllers:
        assert controller.throttle_register < THROTTLE_REGISTER_MAX


def test_two_memory_mode_throttles_only_the_nvm_node():
    machine, throttler = make_throttler(
        QuartzConfig(
            nvm_read_latency_ns=250.0,
            nvm_bandwidth_gbps=8.0,
            mode=EmulationMode.TWO_MEMORY,
        )
    )
    throttler.apply()
    assert machine.controller(0).throttle_register == THROTTLE_REGISTER_MAX
    assert machine.controller(1).throttle_register < THROTTLE_REGISTER_MAX


def test_reset_restores_full_bandwidth():
    machine, throttler = make_throttler(
        QuartzConfig(nvm_read_latency_ns=200.0, nvm_bandwidth_gbps=5.0)
    )
    throttler.apply()
    throttler.reset()
    assert throttler.applied_register is None
    for controller in machine.controllers:
        assert controller.throttle_register == THROTTLE_REGISTER_MAX


def test_unattainable_bandwidth_rejected():
    machine, throttler = make_throttler(
        QuartzConfig(nvm_read_latency_ns=200.0, nvm_bandwidth_gbps=500.0)
    )
    with pytest.raises(QuartzError, match="exceeds attainable"):
        throttler.apply()


def test_register_tracks_target_roughly_linearly():
    def register_for(target):
        machine, throttler = make_throttler(
            QuartzConfig(nvm_read_latency_ns=200.0, nvm_bandwidth_gbps=target)
        )
        throttler.apply()
        return throttler.applied_register

    low, high = register_for(5.0), register_for(30.0)
    assert low < high
    assert high / low == pytest.approx(30.0 / 5.0, rel=0.25)


def test_asymmetric_targets_program_rw_registers():
    machine, throttler = make_throttler(
        QuartzConfig(
            nvm_read_latency_ns=200.0,
            nvm_read_bandwidth_gbps=20.0,
            nvm_write_bandwidth_gbps=5.0,
        ),
        rw=True,
    )
    throttler.apply()
    for controller in machine.controllers:
        read_register, write_register = controller.rw_throttle_registers
        assert read_register > write_register
