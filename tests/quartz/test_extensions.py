"""Tests for Quartz extensions: NVM presets and asymmetric bandwidth."""

import pytest

from repro.errors import QuartzError, UnsupportedFeatureError
from repro.hw import IVY_BRIDGE, Machine
from repro.ops import JoinThread, MemBatch, PatternKind, SpawnThread
from repro.os import SimOS
from repro.quartz import EmulationMode, Quartz, QuartzConfig, calibrate_arch
from repro.quartz.presets import (
    ALL_TECHNOLOGIES,
    MEMRISTOR,
    PCM,
    SLOW_NVM,
    STT_MRAM,
    NvmTechnology,
    technology_by_name,
)
from repro.sim import Simulator
from repro.units import MIB


# ----------------------------------------------------------------------
# NVM technology presets
# ----------------------------------------------------------------------
def test_presets_ordered_fast_to_slow():
    reads = [technology.read_latency_ns for technology in ALL_TECHNOLOGIES]
    assert reads == sorted(reads)


def test_preset_lookup():
    assert technology_by_name("pcm") is PCM
    assert technology_by_name("STT-MRAM") is STT_MRAM
    with pytest.raises(QuartzError):
        technology_by_name("optane")


def test_every_preset_writes_slower_than_reads():
    for technology in ALL_TECHNOLOGIES:
        assert technology.write_latency_ns >= technology.read_latency_ns


def test_preset_to_quartz_config():
    config = PCM.quartz_config()
    assert config.nvm_read_latency_ns == 300.0
    assert config.nvm_write_latency_ns == 1000.0
    assert config.nvm_bandwidth_gbps == 5.0
    assert config.mode is EmulationMode.PM


def test_preset_config_accepts_overrides():
    config = MEMRISTOR.quartz_config(max_epoch_ns=500_000.0)
    assert config.max_epoch_ns == 500_000.0
    assert config.nvm_read_latency_ns == MEMRISTOR.read_latency_ns


def test_preset_config_override_validation():
    with pytest.raises(QuartzError):
        SLOW_NVM.quartz_config(max_epoch_ns=-1.0)


def test_invalid_technology_rejected():
    with pytest.raises(QuartzError):
        NvmTechnology("x", "bad", read_latency_ns=0.0,
                      write_latency_ns=1.0, bandwidth_gbps=1.0)


def test_preset_runs_end_to_end():
    sim = Simulator(seed=5)
    machine = Machine(sim, IVY_BRIDGE)
    os = SimOS(machine)
    quartz = Quartz(
        os,
        PCM.quartz_config(max_epoch_ns=100_000.0),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    out = {}

    def body(ctx):
        from repro.hw.topology import PageSize
        from repro.units import GIB

        region = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        start = ctx.now_ns
        yield MemBatch(region, 100_000, PatternKind.CHASE)
        out["latency"] = (ctx.now_ns - start) / 100_000

    os.create_thread(body)
    os.run_to_completion()
    assert out["latency"] == pytest.approx(PCM.read_latency_ns, rel=0.05)


# ----------------------------------------------------------------------
# Asymmetric bandwidth configuration
# ----------------------------------------------------------------------
def test_asymmetric_config_validation():
    with pytest.raises(QuartzError, match="both read and write"):
        QuartzConfig(nvm_read_bandwidth_gbps=10.0)
    with pytest.raises(QuartzError):
        QuartzConfig(nvm_read_bandwidth_gbps=10.0,
                     nvm_write_bandwidth_gbps=0.0)


def _stream_bandwidths(rw_supported: bool):
    """Achieved read and write stream bandwidths under asymmetric NVM."""
    sim = Simulator(seed=6)
    machine = Machine(sim, IVY_BRIDGE, rw_throttle_supported=rw_supported)
    os = SimOS(machine)
    quartz = Quartz(
        os,
        QuartzConfig(
            nvm_read_latency_ns=200.0,
            nvm_read_bandwidth_gbps=10.0,
            nvm_write_bandwidth_gbps=2.0,
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    results = {}

    def reader(ctx, region, nbytes):
        start = ctx.now_ns
        yield MemBatch(
            region, nbytes // 8, PatternKind.SEQUENTIAL, stride_bytes=8,
            footprint_bytes=nbytes,
        )
        results["read"] = nbytes / (ctx.now_ns - start)

    def writer(ctx, region, nbytes):
        start = ctx.now_ns
        yield MemBatch(
            region, nbytes // 8, PatternKind.SEQUENTIAL, stride_bytes=8,
            is_store=True, non_temporal=True, footprint_bytes=nbytes,
        )
        results["write"] = nbytes / (ctx.now_ns - start)

    def main(ctx):
        nbytes = 128 * MIB
        read_region = ctx.pmalloc(nbytes, label="reads")
        write_region = ctx.pmalloc(nbytes, label="writes")
        r = yield SpawnThread(reader, args=(read_region, nbytes))
        w = yield SpawnThread(writer, args=(write_region, nbytes))
        yield JoinThread(r)
        yield JoinThread(w)

    os.create_thread(main)
    os.run_to_completion()
    return results


def test_asymmetric_throttling_on_capable_hardware():
    results = _stream_bandwidths(rw_supported=True)
    # Reads near 10 GB/s (sequential-read demand misses stay visible),
    # writes pinned at ~2 GB/s.
    assert results["write"] == pytest.approx(2.0, rel=0.15)
    assert results["read"] > 3 * results["write"]


def test_asymmetric_throttling_rejected_on_paper_hardware():
    """The footnote-2 outcome: registers present but non-functional."""
    with pytest.raises(UnsupportedFeatureError):
        _stream_bandwidths(rw_supported=False)
