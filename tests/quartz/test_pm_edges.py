"""Edge cases of the persistent-write emulator (``repro.quartz.pm``).

Focus: the PCOMMIT model's pending-deadline bookkeeping — barrier with
nothing posted, delays fully hidden by program progress, multi-line
flush accounting, and the deadline-lifetime regression (a thread exiting
with posted-but-uncommitted flushes must not leak its deadlines to a
later thread reusing the tid).
"""

from repro.hw import IVY_BRIDGE, Machine
from repro.ops import Commit, JoinThread, MemBatch, PatternKind, SpawnThread
from repro.os import SimOS
from repro.quartz import Quartz, QuartzConfig, WriteModel, calibrate_arch
from repro.sim import Simulator
from repro.units import MIB


def make_quartz(write_model=WriteModel.PCOMMIT, nvm_write_latency_ns=700.0):
    sim = Simulator(seed=11)
    machine = Machine(sim, IVY_BRIDGE)
    osys = SimOS(machine)
    quartz = Quartz(
        osys,
        QuartzConfig(
            nvm_read_latency_ns=400.0,
            nvm_write_latency_ns=nvm_write_latency_ns,
            write_model=write_model,
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    return osys, quartz


def test_pcommit_with_nothing_pending_injects_no_delay():
    osys, quartz = make_quartz()
    out = {}

    def body(ctx):
        ctx.pmalloc(MIB, label="pm")
        before = ctx.now_ns
        yield Commit()
        out["barrier_ns"] = ctx.now_ns - before

    osys.create_thread(body)
    osys.run_to_completion()
    emulator = quartz.write_emulator
    assert emulator.commits_emulated == 1
    assert emulator.flushes_emulated == 0
    # Only the hardware drain cost, never an emulated-write delay.
    assert out["barrier_ns"] < quartz.config.nvm_write_latency_ns


def test_pcommit_delay_fully_hidden_by_program_progress():
    osys, quartz = make_quartz()
    out = {}

    def body(ctx):
        region = ctx.pmalloc(4 * MIB, label="pm")
        yield from ctx.pflush(region, lines=1)
        # Program work longer than the NVM write latency: the posted
        # deadline passes before the barrier, so nothing remains to
        # inject (Section 6's discounting).
        yield MemBatch(region, 2_000, PatternKind.SEQUENTIAL)
        before = ctx.now_ns
        yield Commit()
        out["barrier_ns"] = ctx.now_ns - before

    osys.create_thread(body)
    osys.run_to_completion()
    assert out["barrier_ns"] < quartz.config.nvm_write_latency_ns


def test_multi_line_flush_accounting():
    osys, quartz = make_quartz()

    def body(ctx):
        region = ctx.pmalloc(MIB, label="pm")
        yield from ctx.pflush(region, lines=5)
        yield from ctx.pflush(region, lines=3)
        yield Commit()

    osys.create_thread(body)
    osys.run_to_completion()
    # Per-line accounting: two pflush calls covering 8 lines total.
    assert quartz.write_emulator.flushes_emulated == 8
    assert quartz.write_emulator.commits_emulated == 1


def test_pending_counts_are_exposed():
    osys, quartz = make_quartz()
    observed = {}

    def body(ctx):
        region = ctx.pmalloc(MIB, label="pm")
        yield from ctx.pflush(region, lines=2)
        yield from ctx.pflush(region, lines=1)
        observed["pending"] = quartz.write_emulator.total_pending_flushes()
        yield Commit()
        observed["after"] = quartz.write_emulator.total_pending_flushes()

    osys.create_thread(body)
    osys.run_to_completion()
    # Two pflush *calls* posted two deadlines; the barrier drains both.
    assert observed["pending"] == 2
    assert observed["after"] == 0


def test_thread_exit_discards_pending_deadlines():
    osys, quartz = make_quartz()

    def leaker(ctx):
        region = ctx.pmalloc(MIB, label="pm-leak")
        yield from ctx.pflush(region, lines=4)
        # Exits without ever committing.

    def main(ctx):
        worker = yield SpawnThread(leaker, name="leaker")
        yield JoinThread(worker)
        # The dead thread's posted deadlines must be gone: a tid reused
        # by a later thread would otherwise inherit them and stall its
        # first pcommit on writes it never issued.
        assert quartz.write_emulator.total_pending_flushes() == 0
        yield Commit()

    osys.create_thread(main, name="main")
    osys.run_to_completion()
    assert quartz.write_emulator.total_pending_flushes() == 0


def test_detach_unregisters_the_exit_callback():
    osys, quartz = make_quartz()

    def body(ctx):
        region = ctx.pmalloc(MIB, label="pm")
        yield from ctx.pflush(region, lines=1)
        yield Commit()

    osys.create_thread(body)
    osys.run_to_completion()
    assert quartz.write_emulator.discard_thread in osys.thread_finished_callbacks
    quartz.detach()
    assert (
        quartz.write_emulator.discard_thread
        not in osys.thread_finished_callbacks
    )


def test_pflush_model_keeps_no_deadlines():
    osys, quartz = make_quartz(write_model=WriteModel.PFLUSH)

    def body(ctx):
        region = ctx.pmalloc(MIB, label="pm")
        yield from ctx.pflush(region, lines=3)
        assert quartz.write_emulator.total_pending_flushes() == 0

    osys.create_thread(body)
    osys.run_to_completion()
    # Stall-waited synchronously: per-line accounting, nothing posted.
    assert quartz.write_emulator.flushes_emulated == 3
