"""Unit tests for Quartz statistics, PM write emulation, virtual topology."""

import pytest

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE, SANDY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import QuartzConfig, WriteModel
from repro.quartz.pm import PmWriteEmulator
from repro.quartz.stats import QuartzStats, ThreadQuartzStats
from repro.quartz.virtual_topology import VirtualTopology
from repro.sim import Simulator
from repro.units import MIB


# ----------------------------------------------------------------------
# Statistics (Section 3.2 feedback)
# ----------------------------------------------------------------------
def make_stats(**thread_kwargs) -> QuartzStats:
    stats = QuartzStats()
    stats.per_thread[1] = ThreadQuartzStats(
        tid=1, name="t", registered_at_ns=0.0, **thread_kwargs
    )
    return stats


def test_aggregates_sum_over_threads():
    stats = QuartzStats()
    for tid in (1, 2):
        stats.per_thread[tid] = ThreadQuartzStats(
            tid=tid, name=f"t{tid}", registered_at_ns=0.0,
            epochs_monitor=3, delay_injected_ns=100.0, overhead_ns=10.0,
        )
    assert stats.epochs_total == 6
    assert stats.delay_injected_ns == 200.0
    assert stats.overhead_ns == 20.0


def test_feedback_no_epochs():
    assert "nothing to report" in QuartzStats().feedback()


def test_feedback_fully_amortized():
    stats = make_stats(
        epochs_monitor=10, overhead_ns=100.0, overhead_amortized_ns=100.0,
        overhead_residual_ns=0.0,
    )
    assert stats.fully_amortized
    assert "fully amortized" in stats.feedback()


def test_feedback_recommends_larger_epochs():
    stats = make_stats(
        epochs_monitor=10, overhead_ns=100.0, overhead_amortized_ns=40.0,
        overhead_residual_ns=60.0,
    )
    assert not stats.fully_amortized
    assert "60%" in stats.feedback()
    assert "larger epoch" in stats.feedback()


def test_epochs_total_counts_all_triggers():
    stats = make_stats(epochs_monitor=2, epochs_sync=3, epochs_exit=1)
    assert stats.thread(1).epochs_total == 6


# ----------------------------------------------------------------------
# PM write emulation internals
# ----------------------------------------------------------------------
def make_pm(write_model=WriteModel.PFLUSH, write_latency=800.0):
    sim = Simulator(seed=1)
    machine = Machine(sim, IVY_BRIDGE)
    config = QuartzConfig(
        nvm_read_latency_ns=200.0,
        nvm_write_latency_ns=write_latency,
        write_model=write_model,
    )
    return machine, PmWriteEmulator(
        machine, config, calibrate_arch(IVY_BRIDGE)
    )


def test_pm_requires_write_latency():
    sim = Simulator(seed=1)
    machine = Machine(sim, IVY_BRIDGE)
    config = QuartzConfig(nvm_read_latency_ns=200.0)
    with pytest.raises(QuartzError, match="write"):
        PmWriteEmulator(machine, config, calibrate_arch(IVY_BRIDGE))


def test_extra_write_delay_subtracts_hardware_latency():
    machine, pm = make_pm(write_latency=800.0)
    from types import SimpleNamespace

    from repro.ops import Flush

    region = machine.allocate(MIB, node=0, persistent=True)
    thread = SimpleNamespace(core=machine.core(0), tid=1)
    delay = pm._extra_write_delay_ns(thread, Flush(region, lines=1))
    # Hardware clflush already costs the local DRAM latency (87 ns).
    assert delay == pytest.approx(800.0 - 87.0)


def test_extra_write_delay_never_negative():
    machine, pm = make_pm(write_latency=50.0)
    from types import SimpleNamespace

    from repro.ops import Flush

    region = machine.allocate(MIB, node=0, persistent=True)
    thread = SimpleNamespace(core=machine.core(0), tid=1)
    assert pm._extra_write_delay_ns(thread, Flush(region, lines=1)) == 0.0


# ----------------------------------------------------------------------
# Virtual topology (Section 3.3)
# ----------------------------------------------------------------------
def test_sibling_sets_pair_sockets():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE)
    vt = VirtualTopology(machine)
    assert vt.sibling_sets == ((0, 1),)
    assert vt.compute_sockets == (0,)
    assert vt.nvm_node_for(0) == 1


def test_nvm_socket_cannot_compute():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE)
    vt = VirtualTopology(machine)
    with pytest.raises(QuartzError, match="virtual-NVM socket"):
        vt.nvm_node_for(1)


def test_virtual_topology_needs_split_counters():
    machine = Machine(Simulator(seed=1), SANDY_BRIDGE)
    from repro.errors import UnsupportedFeatureError

    with pytest.raises(UnsupportedFeatureError):
        VirtualTopology(machine)


def test_pmalloc_hook_allocates_on_sibling():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE)
    vt = VirtualTopology(machine)
    from types import SimpleNamespace

    thread = SimpleNamespace(core=machine.core(0))
    region = vt.pmalloc_hook(thread, MIB, PageSize.SMALL_4K, "x")
    assert region.node == 1
    assert region.persistent
    assert vt.pmalloc_count == 1
    vt.pfree_hook(thread, region)
    assert region.freed


def test_pfree_rejects_volatile_region():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE)
    vt = VirtualTopology(machine)
    from types import SimpleNamespace

    thread = SimpleNamespace(core=machine.core(0))
    volatile = machine.allocate(MIB, node=0)
    with pytest.raises(QuartzError, match="non-persistent"):
        vt.pfree_hook(thread, volatile)
