"""The N-tier hybrid-memory model: equations, directory, policies, wiring."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.os import SimOS
from repro.quartz import EmulationMode, Quartz, QuartzConfig, calibrate_arch
from repro.quartz.model import (
    eq1_simple_delay,
    eq2_delay_from_stalls,
    eq3_ldm_stall,
    eq4_remote_stall_split,
    eqN_tier_stall_split,
    tier_direction_delay,
)
from repro.quartz.tiers import (
    HotPromotePlacement,
    MemoryTier,
    RoundRobinPlacement,
    StaticPlacement,
    TierDirectory,
    build_policy,
    validate_tier_list,
)
from repro.sim import Simulator
from repro.units import GIB, MIB, MILLISECOND

# ----------------------------------------------------------------------
# The generalized Eq. (4)
# ----------------------------------------------------------------------
positive_latency = st.floats(1.0, 2000.0)
reference_count = st.floats(0.0, 1e9)


@settings(max_examples=120, deadline=None)
@given(
    st.floats(0.0, 1e9),
    reference_count,
    reference_count,
    positive_latency,
    positive_latency,
)
def test_property_eqN_two_tiers_bit_identical_to_eq4(
    total, local, remote, lat_local, lat_remote
):
    """For 2 tiers the remote share must equal Eq. (4) *bit for bit* —
    this is what keeps the two-memory golden digests frozen."""
    shares = eqN_tier_stall_split(
        total, (local, remote), (lat_local, lat_remote)
    )
    expected = eq4_remote_stall_split(total, local, remote, lat_local, lat_remote)
    assert shares[1] == expected  # exact equality, not approx


@settings(max_examples=120, deadline=None)
@given(
    st.floats(0.0, 1e9),
    st.lists(reference_count, min_size=2, max_size=6),
    st.data(),
)
def test_property_eqN_conserves_and_bounds(total, references, data):
    latencies = [
        data.draw(positive_latency) for _ in references
    ]
    shares = eqN_tier_stall_split(total, references, latencies)
    assert len(shares) == len(references)
    for share in shares:
        assert 0.0 <= share <= total * (1 + 1e-12)
    if sum(references) > 0 and total > 0:
        assert math.isclose(sum(shares), total, rel_tol=1e-9, abs_tol=1e-6)


def test_eqN_survives_subnormal_reference_counts():
    tiny = 5e-324  # the smallest positive subnormal
    total = 1000.0
    shares = eqN_tier_stall_split(
        total, (tiny, tiny, tiny), (100.0, 200.0, 300.0)
    )
    assert all(0.0 <= share <= total for share in shares)
    assert math.isclose(sum(shares), total, rel_tol=1e-9)


def test_eqN_validates_inputs():
    with pytest.raises(QuartzError, match="mismatch"):
        eqN_tier_stall_split(1.0, (1.0, 2.0), (100.0,))
    with pytest.raises(QuartzError, match="at least one"):
        eqN_tier_stall_split(1.0, (), ())
    with pytest.raises(QuartzError, match="negative stall"):
        eqN_tier_stall_split(-1.0, (1.0,), (100.0,))
    with pytest.raises(QuartzError, match="negative reference"):
        eqN_tier_stall_split(1.0, (-1.0,), (100.0,))
    with pytest.raises(QuartzError, match="positive"):
        eqN_tier_stall_split(1.0, (1.0,), (0.0,))


def test_eqN_zero_references_give_zero_shares():
    assert eqN_tier_stall_split(100.0, (0.0, 0.0), (100.0, 200.0)) == (0.0, 0.0)


# ----------------------------------------------------------------------
# Per-direction (read/write) delay
# ----------------------------------------------------------------------
def test_tier_direction_delay_splits_by_reference_proportion():
    read_delay, write_delay = tier_direction_delay(
        300.0, 200.0, 100.0, 400.0, 800.0, 200.0
    )
    # 2/3 of the stall is reads at (400-200)/200 = 1x; 1/3 writes at 3x.
    assert read_delay == pytest.approx(200.0)
    assert write_delay == pytest.approx(300.0)


def test_tier_direction_delay_defaults_to_reads():
    read_delay, write_delay = tier_direction_delay(
        100.0, 0.0, 0.0, 400.0, 800.0, 200.0
    )
    assert read_delay == pytest.approx(100.0)
    assert write_delay == 0.0


@settings(max_examples=80, deadline=None)
@given(
    st.floats(0.0, 1e7),
    reference_count,
    reference_count,
    st.floats(200.0, 2000.0),
    st.floats(200.0, 2000.0),
)
def test_property_tier_direction_delay_non_negative(
    stall, reads, writes, read_lat, write_lat
):
    read_delay, write_delay = tier_direction_delay(
        stall, reads, writes, read_lat, write_lat, 200.0
    )
    assert read_delay >= 0.0 and write_delay >= 0.0


# ----------------------------------------------------------------------
# Satellite fixes: Eq. (3) raise, equal-latency gate
# ----------------------------------------------------------------------
def test_eq3_raises_on_stalls_without_references():
    with pytest.raises(QuartzError) as excinfo:
        eq3_ldm_stall(500.0, 0.0, 0.0, 10.0)
    message = str(excinfo.value)
    assert "Eq. (3)" in message and "500" in message and "hits=0" in message


def test_eq3_zero_stalls_zero_references_is_zero():
    assert eq3_ldm_stall(0.0, 0.0, 0.0, 10.0) == 0.0


@pytest.mark.parametrize("eq", [eq1_simple_delay, eq2_delay_from_stalls])
def test_equal_latencies_explicitly_allowed(eq):
    assert eq(1000.0, 150.0, 150.0) == 0.0


def test_latency_gate_error_names_equation_and_values():
    with pytest.raises(QuartzError) as excinfo:
        eq2_delay_from_stalls(1000.0, 90.0, 150.0)
    message = str(excinfo.value)
    assert "Eq. (2)" in message
    assert "90.0" in message and "150.0" in message
    assert "equal latencies are allowed" in message


# ----------------------------------------------------------------------
# Tier specs, directory, policies
# ----------------------------------------------------------------------
def _tiers(count=3):
    ladder = [MemoryTier("dram", 87.0, 87.0)]
    for index in range(1, count):
        ladder.append(
            MemoryTier(
                f"tier{index}", 200.0 * index + 100, 300.0 * index + 100,
                capacity_bytes=GIB,
            )
        )
    return tuple(ladder)


class _Region:
    _next_id = 1000

    def __init__(self, size_bytes):
        _Region._next_id += 1
        self.region_id = _Region._next_id
        self.size_bytes = size_bytes


def test_memory_tier_validation():
    with pytest.raises(QuartzError, match="name"):
        MemoryTier("", 100.0, 100.0)
    with pytest.raises(QuartzError, match="read latency"):
        MemoryTier("x", 0.0, 100.0)
    with pytest.raises(QuartzError, match="write latency"):
        MemoryTier("x", 100.0, -1.0)
    with pytest.raises(QuartzError, match="bandwidth"):
        MemoryTier("x", 100.0, 100.0, bandwidth_gbps=0.0)
    with pytest.raises(QuartzError, match="capacity"):
        MemoryTier("x", 100.0, 100.0, capacity_bytes=0)


def test_tier_list_validation():
    with pytest.raises(QuartzError, match="at least 2"):
        validate_tier_list(_tiers()[:1])
    duplicate = (_tiers()[0], _tiers()[0])
    with pytest.raises(QuartzError, match="unique"):
        validate_tier_list(duplicate)


def test_directory_tracks_occupancy_and_migrations():
    directory = TierDirectory(tiers=_tiers(3))
    region = _Region(256 * MIB)
    directory.register(region, 2)
    assert directory.tier_of(region.region_id) == 2
    assert directory.allocated_bytes[2] == 256 * MIB
    directory.migrate(region.region_id, 1)
    assert directory.tier_of(region.region_id) == 1
    assert directory.allocated_bytes[2] == 0
    assert directory.migrations == 1
    assert directory.migrated_bytes == 256 * MIB
    directory.unregister(region)
    assert directory.tier_of(region.region_id) is None
    report = directory.report()
    assert report["migrations"] == 1


def test_directory_rejects_dram_tier_placement():
    directory = TierDirectory(tiers=_tiers(3))
    with pytest.raises(QuartzError, match="tier 0"):
        directory.register(_Region(MIB), 0)


def test_static_placement_defaults_to_slowest_tier():
    directory = TierDirectory(tiers=_tiers(4))
    policy = StaticPlacement()
    assert policy.place(MIB, directory) == 3


def test_static_placement_cycles_declared_order():
    directory = TierDirectory(tiers=_tiers(4))
    policy = StaticPlacement(order=(1, 3))
    picks = [policy.place(MIB, directory) for _ in range(4)]
    assert picks == [1, 3, 1, 3]


def test_round_robin_spreads_across_tiers():
    directory = TierDirectory(tiers=_tiers(4))
    policy = RoundRobinPlacement()
    picks = [policy.place(MIB, directory) for _ in range(5)]
    assert picks == [1, 2, 3, 1, 2]


def test_capacity_pressure_degrades_to_next_tier():
    tiers = (
        MemoryTier("dram", 87.0, 87.0),
        MemoryTier("small", 300.0, 400.0, capacity_bytes=MIB),
        MemoryTier("big", 600.0, 900.0),
    )
    directory = TierDirectory(tiers=tiers)
    policy = StaticPlacement(order=(1,))
    first = policy.place(MIB, directory)
    assert first == 1
    directory.register(_Region(MIB), first)
    # Tier 1 is now full: the next allocation overflows to tier 2.
    assert policy.place(MIB, directory) == 2


def test_hot_promote_promotes_after_threshold():
    directory = TierDirectory(tiers=_tiers(3))
    policy = HotPromotePlacement(threshold_accesses=100)
    region = _Region(MIB)
    directory.register(region, 2)
    assert policy.maybe_promote(region.region_id, 50, directory) is None
    assert policy.maybe_promote(region.region_id, 150, directory) == 1
    directory.migrate(region.region_id, 1)
    # Already in the fastest emulated tier: no further promotion.
    assert policy.maybe_promote(region.region_id, 500, directory) is None


def test_build_policy_validates():
    assert build_policy("static").name == "static"
    assert build_policy("round-robin").name == "round-robin"
    assert build_policy("hot-promote", promote_threshold_accesses=5).name == (
        "hot-promote"
    )
    with pytest.raises(QuartzError, match="promote_threshold"):
        build_policy("hot-promote")
    with pytest.raises(QuartzError, match="unknown placement"):
        build_policy("lru")


# ----------------------------------------------------------------------
# Config validation
# ----------------------------------------------------------------------
def test_config_rejects_tiers_outside_multi_tier_mode():
    with pytest.raises(QuartzError, match="multi-tier"):
        QuartzConfig(tiers=_tiers())


def test_config_requires_tiers_in_multi_tier_mode():
    with pytest.raises(QuartzError, match="tier list"):
        QuartzConfig(mode=EmulationMode.MULTI_TIER)


def test_config_validates_placement_order_indices():
    with pytest.raises(QuartzError, match="placement order"):
        QuartzConfig(
            mode=EmulationMode.MULTI_TIER, tiers=_tiers(3),
            placement_order=(3,),
        )


# ----------------------------------------------------------------------
# End-to-end wiring
# ----------------------------------------------------------------------
def _make_stack(seed=3):
    sim = Simulator(seed=seed)
    machine = Machine(sim, IVY_BRIDGE)
    return machine, SimOS(machine)


def _run_mixed_chase(config):
    machine, osys = _make_stack()
    quartz = Quartz(osys, config, calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()
    out = {}

    def body(ctx):
        dram = ctx.malloc(2 * GIB, page_size=PageSize.HUGE_2M)
        nvm = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        n = 40_000
        start = ctx.now_ns
        for _ in range(5):
            yield MemBatch(dram, n // 5, PatternKind.CHASE)
            yield MemBatch(nvm, n // 5, PatternKind.CHASE)
        out["elapsed"] = ctx.now_ns - start

    osys.create_thread(body)
    osys.run_to_completion()
    return out["elapsed"], quartz


def test_two_tier_multi_tier_equals_two_memory_exactly():
    """The DRAM+NVM special case must reproduce two-memory mode bit for
    bit — the acceptance criterion behind the frozen golden digests."""
    elapsed_two, _ = _run_mixed_chase(
        QuartzConfig(
            nvm_read_latency_ns=600.0, mode=EmulationMode.TWO_MEMORY,
            max_epoch_ns=MILLISECOND,
        )
    )
    elapsed_multi, _ = _run_mixed_chase(
        QuartzConfig(
            mode=EmulationMode.MULTI_TIER,
            tiers=(
                MemoryTier("dram", 87.0, 87.0),
                MemoryTier("nvm", 600.0, 600.0),
            ),
            max_epoch_ns=MILLISECOND,
        )
    )
    assert elapsed_multi == elapsed_two  # exact, not approx


def test_three_tier_latencies_hit_targets():
    machine, osys = _make_stack()
    config = QuartzConfig(
        mode=EmulationMode.MULTI_TIER,
        tiers=(
            MemoryTier("dram", 87.0, 87.0),
            MemoryTier("fast", 300.0, 400.0),
            MemoryTier("slow", 600.0, 900.0),
        ),
        placement_policy="static",
        placement_order=(1, 2),
        max_epoch_ns=MILLISECOND,
    )
    quartz = Quartz(osys, config, calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()
    out = {}

    def body(ctx):
        fast = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        slow = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        n = 50_000
        start = ctx.now_ns
        yield MemBatch(fast, n, PatternKind.CHASE)
        mid = ctx.now_ns
        yield MemBatch(slow, n, PatternKind.CHASE)
        out["fast"] = (mid - start) / n
        out["slow"] = (ctx.now_ns - mid) / n

    osys.create_thread(body)
    osys.run_to_completion()
    assert out["fast"] == pytest.approx(300.0, rel=0.03)
    assert out["slow"] == pytest.approx(600.0, rel=0.03)
    assert quartz.stats.tier_report["placements"] == {"1": 1, "2": 1}


def test_multi_tier_rejects_target_below_backing():
    machine, osys = _make_stack()
    config = QuartzConfig(
        mode=EmulationMode.MULTI_TIER,
        tiers=(
            MemoryTier("dram", 87.0, 87.0),
            MemoryTier("toofast", 100.0, 500.0),
        ),
    )
    quartz = Quartz(osys, config, calibration=calibrate_arch(IVY_BRIDGE))
    with pytest.raises(QuartzError, match="toofast.*read"):
        quartz.attach()


def test_per_tier_write_latency_prices_pflush():
    machine, osys = _make_stack()
    config = QuartzConfig(
        mode=EmulationMode.MULTI_TIER,
        tiers=(
            MemoryTier("dram", 87.0, 87.0),
            MemoryTier("fast", 300.0, 500.0),
            MemoryTier("slow", 600.0, 1500.0),
        ),
        placement_policy="static",
        placement_order=(1, 2),
    )
    quartz = Quartz(osys, config, calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()
    timing = {}

    def body(ctx):
        fast = ctx.pmalloc(MIB)
        slow = ctx.pmalloc(MIB)
        start = ctx.now_ns
        for _ in range(10):
            yield from ctx.pflush(fast, lines=1)
        timing["fast"] = (ctx.now_ns - start) / 10
        start = ctx.now_ns
        for _ in range(10):
            yield from ctx.pflush(slow, lines=1)
        timing["slow"] = (ctx.now_ns - start) / 10

    osys.create_thread(body)
    osys.run_to_completion()
    # Each tier's flush pays its own write latency, not a global one.
    assert timing["fast"] == pytest.approx(500.0, rel=0.05)
    assert timing["slow"] == pytest.approx(1500.0, rel=0.05)


def test_tier_delay_conservation_invariant_holds():
    from repro.faults.invariants import InvariantMonitor

    machine, osys = _make_stack()
    config = QuartzConfig(
        mode=EmulationMode.MULTI_TIER,
        tiers=(
            MemoryTier("dram", 87.0, 87.0),
            MemoryTier("fast", 300.0, 400.0),
            MemoryTier("slow", 600.0, 900.0),
        ),
        placement_policy="round-robin",
        max_epoch_ns=MILLISECOND,
    )
    quartz = Quartz(osys, config, calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()
    monitor = InvariantMonitor()
    monitor.attach_quartz(quartz)

    def body(ctx):
        a = ctx.pmalloc(GIB, page_size=PageSize.HUGE_2M)
        b = ctx.pmalloc(GIB, page_size=PageSize.HUGE_2M)
        for _ in range(4):
            yield MemBatch(a, 10_000, PatternKind.CHASE)
            yield MemBatch(b, 10_000, PatternKind.CHASE)

    osys.create_thread(body)
    osys.run_to_completion()
    assert monitor.epoch_checks > 0
    assert not monitor.violations


def test_tiered_bandwidth_programs_tightest_register():
    machine, osys = _make_stack()
    config = QuartzConfig(
        mode=EmulationMode.MULTI_TIER,
        tiers=(
            MemoryTier("dram", 87.0, 87.0),
            MemoryTier("fast", 300.0, 400.0, bandwidth_gbps=20.0),
            MemoryTier("slow", 600.0, 900.0, bandwidth_gbps=5.0),
        ),
    )
    quartz = Quartz(osys, config, calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()
    throttler = quartz._throttler
    assert set(throttler.tier_registers) == {"fast", "slow"}
    # The sibling node has one physical register: the tightest target wins.
    assert throttler.applied_register == throttler.tier_registers["slow"]
    quartz.detach()
