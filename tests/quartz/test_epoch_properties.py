"""Hypothesis property tests for the EpochEngine accounting primitives.

The three satellite properties from the fault-injection issue:

* CS + out-of-CS delay shares always sum to the computed (split) delay;
* the amortisation carry (overhead pool) is never negative;
* an epoch close never schedules into the past (no negative delay,
  share, or pool emerges from any input sequence).
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.quartz.epoch import EpochEngine, ThreadEpochState, amortize_delay

# Finite, non-negative ns quantities at realistic epoch scales.
ns = st.floats(min_value=0.0, max_value=1e12, allow_nan=False,
               allow_infinity=False)


@settings(max_examples=200, deadline=None)
@given(pool=ns, overhead=ns, delay=ns)
def test_property_amortize_conserves_delay(pool, overhead, delay):
    injected, amortized, new_pool = amortize_delay(pool, overhead, delay)
    assert math.isclose(
        injected + amortized, delay, rel_tol=1e-12, abs_tol=1e-9
    )
    assert 0.0 <= injected <= delay


@settings(max_examples=200, deadline=None)
@given(pool=ns, overhead=ns, delay=ns)
def test_property_amortize_carry_never_negative(pool, overhead, delay):
    _, _, new_pool = amortize_delay(pool, overhead, delay)
    assert new_pool >= 0.0


@settings(max_examples=100, deadline=None)
@given(
    st.lists(st.tuples(ns, ns), min_size=1, max_size=50)
)
def test_property_amortize_sequences_stay_consistent(epochs):
    """Folding any (overhead, delay) sequence through the amortiser keeps
    the pool non-negative and conserves the running totals exactly."""
    pool = 0.0
    total_injected = total_amortized = total_overhead = total_delay = 0.0
    for overhead, delay in epochs:
        injected, amortized, pool = amortize_delay(pool, overhead, delay)
        assert pool >= 0.0
        assert injected >= 0.0
        assert amortized >= 0.0
        total_injected += injected
        total_amortized += amortized
        total_overhead += overhead
        total_delay += delay
    # The running sums themselves accumulate rounding (and their
    # difference cancels catastrophically at 1e11+ magnitudes), so the
    # tolerance scales with the summed magnitudes rather than the result.
    tol = 1e-9 * max(total_overhead, total_delay, 1.0)
    assert math.isclose(
        total_injected + total_amortized, total_delay,
        rel_tol=1e-9, abs_tol=tol,
    )
    # Whatever was amortised came out of real overhead; the rest is
    # still carried in the pool.
    assert total_amortized <= total_overhead + tol
    assert abs(pool - (total_overhead - total_amortized)) <= tol


@settings(max_examples=200, deadline=None)
@given(cs_wall=ns, out_wall=ns, delay=ns)
def test_property_split_shares_sum_to_delay(cs_wall, out_wall, delay):
    state = ThreadEpochState(
        start_ns=0.0, counter_base={}, cs_wall_ns=cs_wall, out_wall_ns=out_wall
    )
    cs_share, out_share = EpochEngine._split_delay(state, delay)
    assert cs_share >= 0.0
    assert out_share >= 0.0  # an epoch close never schedules into the past
    assert math.isclose(
        cs_share + out_share, delay, rel_tol=1e-12, abs_tol=1e-9
    )


@settings(max_examples=200, deadline=None)
@given(cs_wall=ns, out_wall=ns, delay=ns)
def test_property_split_is_proportional_to_wall_time(cs_wall, out_wall, delay):
    total_wall = cs_wall + out_wall
    state = ThreadEpochState(
        start_ns=0.0, counter_base={}, cs_wall_ns=cs_wall, out_wall_ns=out_wall
    )
    cs_share, _ = EpochEngine._split_delay(state, delay)
    # Subnormal delays (e.g. 5e-324) round to zero under any multiply, so
    # the ratio is only meaningful at normal float scales.
    if total_wall > 0.0 and delay > 1e-300:
        assert math.isclose(
            cs_share / delay, cs_wall / total_wall,
            rel_tol=1e-9, abs_tol=1e-9,
        )
    elif total_wall <= 0.0:
        # No attribution data: everything goes to the (conservative)
        # in-CS share, which is injected before any lock release.
        assert cs_share == delay
