"""Tests for Quartz configuration and counter backends."""

import pytest

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE
from repro.hw.pmc import PmcFile
from repro.quartz.config import EmulationMode, QuartzConfig, WriteModel
from repro.quartz.counters import PAPI_BACKEND, RDPMC_BACKEND, backend_by_name
from repro.sim import Simulator
from repro.units import MILLISECOND


def test_default_config_is_valid():
    config = QuartzConfig()
    assert config.mode is EmulationMode.PM
    assert config.write_model is WriteModel.PFLUSH
    assert config.max_epoch_ns == 10 * MILLISECOND


def test_monitor_interval_defaults_to_tenth_of_max_epoch():
    config = QuartzConfig(max_epoch_ns=10 * MILLISECOND)
    assert config.effective_monitor_interval_ns == MILLISECOND
    explicit = QuartzConfig(monitor_interval_ns=0.5 * MILLISECOND)
    assert explicit.effective_monitor_interval_ns == 0.5 * MILLISECOND


@pytest.mark.parametrize(
    "kwargs",
    [
        {"nvm_read_latency_ns": 0.0},
        {"nvm_read_latency_ns": -5.0},
        {"nvm_bandwidth_gbps": 0.0},
        {"nvm_write_latency_ns": -1.0},
        {"max_epoch_ns": 0.0},
        {"min_epoch_ns": -1.0},
        {"min_epoch_ns": 20 * MILLISECOND},  # exceeds max
        {"monitor_interval_ns": 0.0},
        {"counter_backend": "perf"},
        {"epoch_signal": 0},
        {"epoch_signal": 99},
    ],
)
def test_invalid_configs_rejected(kwargs):
    with pytest.raises(QuartzError):
        QuartzConfig(**kwargs)


def test_backend_lookup():
    assert backend_by_name("rdpmc") is RDPMC_BACKEND
    assert backend_by_name("papi") is PAPI_BACKEND
    with pytest.raises(QuartzError):
        backend_by_name("likwid")


def _read_cost(backend):
    sim = Simulator(seed=1)
    pmc = PmcFile(sim, IVY_BRIDGE, core_id=0)
    pmc.program(IVY_BRIDGE.counter_events.all_events(), privileged=True)
    _, cost = backend.read_all(pmc, IVY_BRIDGE.counter_events)
    return cost


def test_rdpmc_read_cost_about_2000_cycles():
    """Section 3.2: counter reading is roughly half the ~4000-cycle epoch."""
    assert 1500 <= _read_cost(RDPMC_BACKEND) <= 2500


def test_papi_read_cost_about_30000_cycles_8x_epoch_processing():
    """Section 3.2: PAPI costs ~30,000 cycles — about 8x the full
    ~4000-cycle rdpmc-based epoch processing."""
    from repro.quartz.config import EPOCH_BASE_COST_CYCLES

    papi = _read_cost(PAPI_BACKEND)
    rdpmc_epoch = _read_cost(RDPMC_BACKEND) + EPOCH_BASE_COST_CYCLES
    assert 25_000 <= papi <= 35_000
    assert 3500 <= rdpmc_epoch <= 4500
    assert 6 <= papi / rdpmc_epoch <= 10


def test_backends_read_identical_values():
    sim = Simulator(seed=1)
    pmc = PmcFile(sim, IVY_BRIDGE, core_id=0)
    events = IVY_BRIDGE.counter_events
    pmc.program(events.all_events(), privileged=True)
    pmc.increment(events.l2_stalls, 1_000_000.0)
    values_rdpmc, _ = RDPMC_BACKEND.read_all(pmc, events)
    pmc2 = PmcFile(Simulator(seed=1), IVY_BRIDGE, core_id=0)
    pmc2.program(events.all_events(), privileged=True)
    pmc2.increment(events.l2_stalls, 1_000_000.0)
    values_papi, _ = PAPI_BACKEND.read_all(pmc2, events)
    assert values_rdpmc == values_papi
