"""Direct unit tests for the epoch engine internals."""

import pytest

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE, Machine
from repro.ops import Compute, Spin
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import QuartzConfig
from repro.quartz.counters import RDPMC_BACKEND
from repro.quartz.epoch import EpochEngine, ThreadEpochState
from repro.quartz.stats import EpochTrigger, QuartzStats
from repro.sim import Simulator
from repro.os import SimOS


def make_engine(seed=1, **config_kwargs):
    sim = Simulator(seed=seed)
    machine = Machine(sim, IVY_BRIDGE)
    os = SimOS(machine)
    config = QuartzConfig(nvm_read_latency_ns=500.0, **config_kwargs)
    engine = EpochEngine(
        machine, config, calibrate_arch(IVY_BRIDGE), RDPMC_BACKEND,
        QuartzStats(),
    )
    machine.pmcs[0].program(
        IVY_BRIDGE.counter_events.all_events(), privileged=True
    )
    return sim, machine, os, engine


def _idle_body(ctx):
    return
    yield  # pragma: no cover - makes this a generator


def make_registered_thread(os, engine):
    thread = os.create_thread(_idle_body, name="t")
    cost = engine.open_initial(thread)
    assert cost > 0
    return thread


def drain(generator):
    """Collect the ops an engine generator yields (no time advance)."""
    return list(generator)


def test_open_initial_creates_state_and_stats():
    sim, machine, os, engine = make_engine()
    thread = make_registered_thread(os, engine)
    state = thread.library_state
    assert isinstance(state, ThreadEpochState)
    assert state.start_ns == sim.now
    assert engine.stats.threads_registered == 1
    assert engine.stats.thread(thread.tid).name == "t"


def test_epoch_elapsed_tracks_clock():
    sim, machine, os, engine = make_engine()
    thread = make_registered_thread(os, engine)
    sim.run(until_ns=sim.now + 12_345.0)
    assert engine.epoch_elapsed_ns(thread) == pytest.approx(12_345.0)


def test_close_without_state_raises():
    sim, machine, os, engine = make_engine()
    thread = os.create_thread(_idle_body, name="unregistered")
    with pytest.raises(QuartzError, match="no open epoch"):
        drain(engine.close_and_reopen(thread, EpochTrigger.MONITOR))


def test_close_with_stalls_yields_compute_and_spin():
    sim, machine, os, engine = make_engine()
    thread = make_registered_thread(os, engine)
    events = IVY_BRIDGE.counter_events
    pmc = machine.pmcs[thread.core.core_id]
    # Simulate an epoch with 1000 serialized DRAM accesses.
    pmc.increment(events.l2_stalls, 1000 * 87.0 * IVY_BRIDGE.freq_ghz)
    pmc.increment(events.l3_miss_local, 1000.0)
    sim.run(until_ns=sim.now + 100_000.0)
    ops = drain(engine.close_and_reopen(thread, EpochTrigger.MONITOR))
    assert isinstance(ops[0], Compute)
    assert isinstance(ops[1], Spin)
    # Delay ~= 1000 * (500 - 87) ns, minus the amortized overhead.
    assert ops[1].duration_ns == pytest.approx(1000 * 413.0, rel=0.05)
    stats = engine.stats.thread(thread.tid)
    assert stats.epochs_monitor == 1
    assert stats.delay_computed_ns > 0


def test_empty_epoch_injects_nothing():
    sim, machine, os, engine = make_engine()
    thread = make_registered_thread(os, engine)
    sim.run(until_ns=sim.now + 50_000.0)
    ops = drain(engine.close_and_reopen(thread, EpochTrigger.MONITOR))
    assert len(ops) == 1  # only the processing Compute
    assert isinstance(ops[0], Compute)


def test_injection_disabled_mode_suppresses_spin():
    sim, machine, os, engine = make_engine(injection_enabled=False)
    thread = make_registered_thread(os, engine)
    events = IVY_BRIDGE.counter_events
    machine.pmcs[thread.core.core_id].increment(
        events.l2_stalls, 1_000_000.0
    )
    machine.pmcs[thread.core.core_id].increment(events.l3_miss_local, 5000.0)
    ops = drain(engine.close_and_reopen(thread, EpochTrigger.MONITOR))
    assert all(isinstance(op, Compute) for op in ops)
    assert engine.stats.delay_computed_ns > 0
    assert engine.stats.delay_injected_ns == 0


def test_overhead_pool_carries_over_small_epochs():
    sim, machine, os, engine = make_engine()
    thread = make_registered_thread(os, engine)
    # Several zero-delay closes accumulate overhead in the pool.
    for _ in range(3):
        drain(engine.close_and_reopen(thread, EpochTrigger.MONITOR))
    state = thread.library_state
    assert state.overhead_pool_ns > 0
    pool_before = state.overhead_pool_ns
    # A large-delay epoch then amortizes the pool away.
    events = IVY_BRIDGE.counter_events
    machine.pmcs[thread.core.core_id].increment(events.l2_stalls, 2_000_000.0)
    machine.pmcs[thread.core.core_id].increment(events.l3_miss_local, 10_000.0)
    drain(engine.close_and_reopen(thread, EpochTrigger.MONITOR))
    assert state.overhead_pool_ns == pytest.approx(0.0, abs=1e-6)
    stats = engine.stats.thread(thread.tid)
    assert stats.overhead_amortized_ns >= pool_before


def test_exit_close_clears_state_and_records_residual():
    sim, machine, os, engine = make_engine()
    thread = make_registered_thread(os, engine)
    drain(engine.close_and_reopen(thread, EpochTrigger.MONITOR))
    drain(engine.close_and_reopen(thread, EpochTrigger.EXIT))
    assert thread.library_state is None
    stats = engine.stats.thread(thread.tid)
    assert stats.epochs_exit == 1
    assert stats.overhead_residual_ns > 0  # nothing amortized it


def test_sync_boundary_min_epoch_gate():
    sim, machine, os, engine = make_engine(min_epoch_ns=1_000_000.0)
    thread = make_registered_thread(os, engine)
    sim.run(until_ns=sim.now + 10_000.0)  # well under min epoch
    plan = engine.sync_boundary(thread, "release")
    assert plan is None
    assert engine.stats.thread(thread.tid).closes_skipped_min_epoch == 1


def test_sync_boundary_split_honours_cs_attribution():
    sim, machine, os, engine = make_engine(min_epoch_ns=0.0)
    thread = make_registered_thread(os, engine)
    events = IVY_BRIDGE.counter_events
    pmc = machine.pmcs[thread.core.core_id]
    # 30 us outside the lock...
    sim.run(until_ns=sim.now + 30_000.0)
    pmc.increment(events.l2_stalls, 30_000.0 * IVY_BRIDGE.freq_ghz)
    pmc.increment(events.l3_miss_local, 30_000.0 / 87.0)
    engine.sync_boundary(thread, "acquire")  # closes: all outside
    engine.finish_boundary(thread, "acquire")
    engine.mark_epoch_start(thread)
    # ...then 10 us inside.
    sim.run(until_ns=sim.now + 10_000.0)
    pmc.increment(events.l2_stalls, 10_000.0 * IVY_BRIDGE.freq_ghz)
    pmc.increment(events.l3_miss_local, 10_000.0 / 87.0)
    plan = engine.sync_boundary(thread, "release")
    assert plan is not None
    # Everything since the acquire is in-CS: injected before the release.
    assert plan.pre_spin_ns > 0
    assert plan.post_spin_ns == pytest.approx(0.0, abs=1.0)


def test_sync_boundary_mixed_epoch_splits_proportionally():
    sim, machine, os, engine = make_engine(
        min_epoch_ns=10_000_000.0, max_epoch_ns=10_000_000.0  # gate all
    )
    thread = make_registered_thread(os, engine)
    events = IVY_BRIDGE.counter_events
    pmc = machine.pmcs[thread.core.core_id]
    # 30 us outside (gated at acquire), then 10 us inside: the release
    # close (force by dropping the gate) splits 3:1 outside:inside.
    sim.run(until_ns=sim.now + 30_000.0)
    engine.sync_boundary(thread, "acquire")  # gated: bookkeeping only
    engine.finish_boundary(thread, "acquire")
    sim.run(until_ns=sim.now + 10_000.0)
    pmc.increment(events.l2_stalls, 40_000.0 * IVY_BRIDGE.freq_ghz)
    pmc.increment(events.l3_miss_local, 40_000.0 / 87.0)
    engine.config.min_epoch_ns = 0.0
    plan = engine.sync_boundary(thread, "release")
    assert plan is not None
    total = plan.pre_spin_ns + plan.post_spin_ns
    assert plan.pre_spin_ns == pytest.approx(total * 0.25, rel=0.05)
    assert plan.post_spin_ns == pytest.approx(total * 0.75, rel=0.05)


def test_notify_plan_injects_everything_before():
    sim, machine, os, engine = make_engine(min_epoch_ns=0.0)
    thread = make_registered_thread(os, engine)
    events = IVY_BRIDGE.counter_events
    pmc = machine.pmcs[thread.core.core_id]
    sim.run(until_ns=sim.now + 10_000.0)
    pmc.increment(events.l2_stalls, 10_000.0 * IVY_BRIDGE.freq_ghz)
    pmc.increment(events.l3_miss_local, 10_000.0 / 87.0)
    plan = engine.sync_boundary(thread, "notify")
    assert plan is not None
    assert plan.post_spin_ns == 0.0
    assert plan.pre_spin_ns > 0
