"""Tests for the calibration pass (latencies + bandwidth table)."""

import pytest

from repro.errors import CalibrationError
from repro.hw import ALL_ARCHS, HASWELL, IVY_BRIDGE, SANDY_BRIDGE
from repro.quartz import calibration as calibration_module
from repro.quartz.calibration import (
    arch_fingerprint,
    cache_counters,
    calibrate_arch,
    reset_cache_counters,
)


@pytest.fixture(scope="module")
def ivy_calibration():
    return calibrate_arch(IVY_BRIDGE)


def test_measured_latencies_near_table2(ivy_calibration):
    """The chase measurement should land close to the Table 2 values."""
    assert ivy_calibration.dram_local_ns == pytest.approx(87.0, rel=0.03)
    assert ivy_calibration.dram_remote_ns == pytest.approx(176.0, rel=0.03)


def test_l3_latency_plausible(ivy_calibration):
    assert ivy_calibration.l3_ns == pytest.approx(IVY_BRIDGE.l3_lat_ns, rel=0.1)


def test_w_ratio(ivy_calibration):
    assert ivy_calibration.w_local == pytest.approx(
        ivy_calibration.dram_local_ns / ivy_calibration.l3_ns
    )
    assert ivy_calibration.w_remote > ivy_calibration.w_local


def test_bandwidth_table_monotonic_then_saturating(ivy_calibration):
    rates = [rate for _, rate in ivy_calibration.bandwidth_table]
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert ivy_calibration.peak_bandwidth <= IVY_BRIDGE.peak_bw_bytes_per_ns * 1.01
    assert ivy_calibration.peak_bandwidth >= IVY_BRIDGE.peak_bw_bytes_per_ns * 0.5


def test_register_for_bandwidth_inverts_table(ivy_calibration):
    for target in [2.0, 10.0, 30.0]:
        register = ivy_calibration.register_for_bandwidth(target)
        assert 0 <= register <= 4095
    low = ivy_calibration.register_for_bandwidth(2.0)
    high = ivy_calibration.register_for_bandwidth(30.0)
    assert low < high


def test_register_for_unattainable_bandwidth_returns_max(ivy_calibration):
    assert ivy_calibration.register_for_bandwidth(10_000.0) == 4095


def test_register_for_bandwidth_rejects_nonpositive(ivy_calibration):
    with pytest.raises(CalibrationError):
        ivy_calibration.register_for_bandwidth(0.0)


def test_calibration_cached_per_arch_and_seed():
    first = calibrate_arch(IVY_BRIDGE, seed=5)
    second = calibrate_arch(IVY_BRIDGE, seed=5)
    assert first is second
    uncached = calibrate_arch(IVY_BRIDGE, seed=5, use_cache=False)
    assert uncached is not first
    assert uncached.dram_local_ns == first.dram_local_ns


@pytest.mark.parametrize("arch", ALL_ARCHS, ids=lambda a: a.name)
def test_all_testbeds_calibrate(arch):
    data = calibrate_arch(arch)
    assert data.arch_name == arch.name
    assert data.dram_local_ns == pytest.approx(arch.dram_local.avg_ns, rel=0.05)
    assert data.dram_remote_ns == pytest.approx(arch.dram_remote.avg_ns, rel=0.05)
    assert data.dram_local_ns < data.dram_remote_ns


def test_sandy_bridge_local_remote_distinct():
    data = calibrate_arch(SANDY_BRIDGE)
    assert data.dram_remote_ns / data.dram_local_ns == pytest.approx(
        163.0 / 97.0, rel=0.05
    )


# ----------------------------------------------------------------------
# The persistent on-disk cache
# ----------------------------------------------------------------------


@pytest.fixture
def disk_cache(tmp_path, monkeypatch):
    """Point the disk cache at a sandbox and evict the test key."""
    monkeypatch.setenv("QUARTZ_REPRO_CACHE_DIR", str(tmp_path))
    key = (IVY_BRIDGE.name, 91, 3)
    calibration_module._CACHE.pop(key, None)
    reset_cache_counters()
    yield tmp_path
    calibration_module._CACHE.pop(key, None)


def _calibrate91():
    return calibrate_arch(IVY_BRIDGE, seed=91, bandwidth_points=3)


def test_disk_cache_round_trip(disk_cache):
    first = _calibrate91()
    assert cache_counters.measurements == 1
    files = list(disk_cache.glob("calibration-*.json"))
    assert len(files) == 1
    assert arch_fingerprint(IVY_BRIDGE) in files[0].name

    # Evict the memory layer: the next call must be a disk hit that
    # round-trips to exactly the measured values, with no re-measure.
    calibration_module._CACHE.pop((IVY_BRIDGE.name, 91, 3))
    second = _calibrate91()
    assert cache_counters.disk_hits == 1
    assert cache_counters.measurements == 1
    assert second == first

    # The disk hit repopulated the memory layer.
    third = _calibrate91()
    assert third is second
    assert cache_counters.memory_hits == 1


def test_corrupted_cache_file_is_a_clean_miss(disk_cache):
    _calibrate91()
    (path,) = disk_cache.glob("calibration-*.json")
    path.write_text("{not json", encoding="utf-8")
    calibration_module._CACHE.pop((IVY_BRIDGE.name, 91, 3))
    data = _calibrate91()
    assert cache_counters.rejected_files == 1
    assert cache_counters.measurements == 2  # re-measured, no crash
    assert data.dram_local_ns > 0
    # The re-measure overwrote the corrupt file with a valid one.
    calibration_module._CACHE.pop((IVY_BRIDGE.name, 91, 3))
    _calibrate91()
    assert cache_counters.disk_hits == 1


def test_schema_or_fingerprint_mismatch_rejected(disk_cache):
    import json

    _calibrate91()
    (path,) = disk_cache.glob("calibration-*.json")
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["fingerprint"] = "0" * 16
    path.write_text(json.dumps(payload), encoding="utf-8")
    calibration_module._CACHE.pop((IVY_BRIDGE.name, 91, 3))
    _calibrate91()
    assert cache_counters.rejected_files == 1
    assert cache_counters.measurements == 2


def test_refresh_remeasures_despite_warm_caches(disk_cache):
    first = _calibrate91()
    refreshed = calibrate_arch(
        IVY_BRIDGE, seed=91, bandwidth_points=3, refresh=True
    )
    assert cache_counters.measurements == 2
    assert refreshed is not first
    assert refreshed == first  # same seed, same measurement


def test_fingerprint_distinguishes_architectures():
    assert arch_fingerprint(IVY_BRIDGE) != arch_fingerprint(HASWELL)
    assert arch_fingerprint(IVY_BRIDGE) == arch_fingerprint(IVY_BRIDGE)
