"""Tests for the calibration pass (latencies + bandwidth table)."""

import pytest

from repro.errors import CalibrationError
from repro.hw import ALL_ARCHS, IVY_BRIDGE, SANDY_BRIDGE
from repro.quartz.calibration import CalibrationData, calibrate_arch


@pytest.fixture(scope="module")
def ivy_calibration():
    return calibrate_arch(IVY_BRIDGE)


def test_measured_latencies_near_table2(ivy_calibration):
    """The chase measurement should land close to the Table 2 values."""
    assert ivy_calibration.dram_local_ns == pytest.approx(87.0, rel=0.03)
    assert ivy_calibration.dram_remote_ns == pytest.approx(176.0, rel=0.03)


def test_l3_latency_plausible(ivy_calibration):
    assert ivy_calibration.l3_ns == pytest.approx(IVY_BRIDGE.l3_lat_ns, rel=0.1)


def test_w_ratio(ivy_calibration):
    assert ivy_calibration.w_local == pytest.approx(
        ivy_calibration.dram_local_ns / ivy_calibration.l3_ns
    )
    assert ivy_calibration.w_remote > ivy_calibration.w_local


def test_bandwidth_table_monotonic_then_saturating(ivy_calibration):
    rates = [rate for _, rate in ivy_calibration.bandwidth_table]
    assert all(b >= a - 1e-9 for a, b in zip(rates, rates[1:]))
    assert ivy_calibration.peak_bandwidth <= IVY_BRIDGE.peak_bw_bytes_per_ns * 1.01
    assert ivy_calibration.peak_bandwidth >= IVY_BRIDGE.peak_bw_bytes_per_ns * 0.5


def test_register_for_bandwidth_inverts_table(ivy_calibration):
    for target in [2.0, 10.0, 30.0]:
        register = ivy_calibration.register_for_bandwidth(target)
        assert 0 <= register <= 4095
    low = ivy_calibration.register_for_bandwidth(2.0)
    high = ivy_calibration.register_for_bandwidth(30.0)
    assert low < high


def test_register_for_unattainable_bandwidth_returns_max(ivy_calibration):
    assert ivy_calibration.register_for_bandwidth(10_000.0) == 4095


def test_register_for_bandwidth_rejects_nonpositive(ivy_calibration):
    with pytest.raises(CalibrationError):
        ivy_calibration.register_for_bandwidth(0.0)


def test_calibration_cached_per_arch_and_seed():
    first = calibrate_arch(IVY_BRIDGE, seed=5)
    second = calibrate_arch(IVY_BRIDGE, seed=5)
    assert first is second
    uncached = calibrate_arch(IVY_BRIDGE, seed=5, use_cache=False)
    assert uncached is not first
    assert uncached.dram_local_ns == first.dram_local_ns


@pytest.mark.parametrize("arch", ALL_ARCHS, ids=lambda a: a.name)
def test_all_testbeds_calibrate(arch):
    data = calibrate_arch(arch)
    assert data.arch_name == arch.name
    assert data.dram_local_ns == pytest.approx(arch.dram_local.avg_ns, rel=0.05)
    assert data.dram_remote_ns == pytest.approx(arch.dram_remote.avg_ns, rel=0.05)
    assert data.dram_local_ns < data.dram_remote_ns


def test_sandy_bridge_local_remote_distinct():
    data = calibrate_arch(SANDY_BRIDGE)
    assert data.dram_remote_ns / data.dram_local_ns == pytest.approx(
        163.0 / 97.0, rel=0.05
    )
