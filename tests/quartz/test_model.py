"""Tests for the analytic model equations (Section 2.2 / 3.3)."""

import pytest

from repro.errors import QuartzError
from repro.quartz.model import (
    eq1_simple_delay,
    eq2_delay_from_stalls,
    eq3_ldm_stall,
    eq4_remote_stall_split,
)


# ----------------------------------------------------------------------
# Eq. (1): the naive serial model
# ----------------------------------------------------------------------
def test_eq1_counts_every_reference():
    # 100 references, NVM 300 ns vs DRAM 100 ns -> 20,000 ns extra.
    assert eq1_simple_delay(100, 300.0, 100.0) == pytest.approx(20_000.0)


def test_eq1_zero_when_latencies_equal():
    assert eq1_simple_delay(100, 100.0, 100.0) == 0.0


def test_eq1_overestimates_parallel_accesses_by_mlp_factor():
    """The Figure 2 example: 3 parallel loads need 1x the delta, not 3x."""
    nvm, dram = 300.0, 100.0
    parallel_loads = 3
    simple = eq1_simple_delay(parallel_loads, nvm, dram)
    # With MLP=3 the stall time is one serialized access: dram ns.
    correct = eq2_delay_from_stalls(dram, nvm, dram)
    assert simple == pytest.approx(3 * correct)


def test_eq1_input_validation():
    with pytest.raises(QuartzError):
        eq1_simple_delay(-1, 300.0, 100.0)
    with pytest.raises(QuartzError):
        eq1_simple_delay(1, 50.0, 100.0)  # NVM faster than DRAM
    with pytest.raises(QuartzError):
        eq1_simple_delay(1, 300.0, 0.0)


# ----------------------------------------------------------------------
# Eq. (2): stall-based delay
# ----------------------------------------------------------------------
def test_eq2_scales_stall_by_latency_ratio():
    # 1000 ns stalled at 100 ns/access = 10 serialized accesses; each
    # needs 200 ns more.
    assert eq2_delay_from_stalls(1000.0, 300.0, 100.0) == pytest.approx(2000.0)


def test_eq2_zero_stall_zero_delay():
    assert eq2_delay_from_stalls(0.0, 300.0, 100.0) == 0.0


def test_eq2_equal_latencies_need_no_delay():
    assert eq2_delay_from_stalls(12345.0, 100.0, 100.0) == 0.0


def test_eq2_negative_stall_rejected():
    with pytest.raises(QuartzError):
        eq2_delay_from_stalls(-1.0, 300.0, 100.0)


# ----------------------------------------------------------------------
# Eq. (3): stall apportioning between LLC hits and misses
# ----------------------------------------------------------------------
def test_eq3_all_misses_attributes_all_stalls():
    assert eq3_ldm_stall(10_000.0, 0.0, 500.0, 6.0) == pytest.approx(10_000.0)


def test_eq3_all_hits_attributes_nothing():
    assert eq3_ldm_stall(10_000.0, 500.0, 0.0, 6.0) == 0.0


def test_eq3_weighted_split():
    # W=6, hits=600, misses=100: weighted misses 600 -> half the stalls.
    assert eq3_ldm_stall(10_000.0, 600.0, 100.0, 6.0) == pytest.approx(5_000.0)


def test_eq3_is_exact_for_the_hardware_truth():
    """If stalls really are hits*L3 + misses*DRAM, Eq. (3) recovers the
    memory part exactly — the property making the model work."""
    l3, dram = 15.0, 90.0
    hits, misses = 700.0, 300.0
    w = dram / l3
    stall = hits * l3 + misses * dram
    assert eq3_ldm_stall(stall, hits, misses, w) == pytest.approx(misses * dram)


def test_eq3_empty_epoch():
    assert eq3_ldm_stall(0.0, 0.0, 0.0, 6.0) == 0.0


def test_eq3_input_validation():
    with pytest.raises(QuartzError):
        eq3_ldm_stall(-1.0, 0.0, 0.0, 6.0)
    with pytest.raises(QuartzError):
        eq3_ldm_stall(1.0, -1.0, 0.0, 6.0)
    with pytest.raises(QuartzError):
        eq3_ldm_stall(1.0, 0.0, 0.0, 0.0)


# ----------------------------------------------------------------------
# Eq. (4): local/remote stall split
# ----------------------------------------------------------------------
def test_eq4_paper_worked_example():
    """Section 3.3: 3000 ns stall, 10x100ns local + 10x200ns remote
    references -> 2000 ns attributed to remote."""
    assert eq4_remote_stall_split(3000.0, 10, 10, 100.0, 200.0) == pytest.approx(
        2000.0
    )


def test_eq4_no_remote_references():
    assert eq4_remote_stall_split(3000.0, 10, 0, 100.0, 200.0) == 0.0


def test_eq4_all_remote_references():
    assert eq4_remote_stall_split(3000.0, 0, 10, 100.0, 200.0) == pytest.approx(
        3000.0
    )


def test_eq4_empty_epoch():
    assert eq4_remote_stall_split(0.0, 0, 0, 100.0, 200.0) == 0.0


def test_eq4_input_validation():
    with pytest.raises(QuartzError):
        eq4_remote_stall_split(-1.0, 1, 1, 100.0, 200.0)
    with pytest.raises(QuartzError):
        eq4_remote_stall_split(1.0, -1, 1, 100.0, 200.0)
    with pytest.raises(QuartzError):
        eq4_remote_stall_split(1.0, 1, 1, 0.0, 200.0)
