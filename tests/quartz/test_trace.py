"""Tests for the epoch-trace instrumentation."""

import pytest

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.ops import MemBatch, MutexLock, MutexUnlock, PatternKind
from repro.os import Mutex, SimOS
from repro.quartz import Quartz, QuartzConfig, calibrate_arch
from repro.quartz.stats import EpochTrigger
from repro.quartz.trace import EpochRecord, EpochTrace, attach_trace
from repro.sim import Simulator
from repro.units import GIB, MILLISECOND


def run_traced(body, config=None, seed=2):
    sim = Simulator(seed=seed)
    machine = Machine(sim, IVY_BRIDGE)
    osys = SimOS(machine)
    quartz = Quartz(
        osys,
        config or QuartzConfig(
            nvm_read_latency_ns=500.0, max_epoch_ns=0.2 * MILLISECOND
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    trace = attach_trace(quartz)
    osys.create_thread(body, name="traced")
    osys.run_to_completion()
    return trace, quartz


def chase_body(ctx):
    region = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
    yield MemBatch(region, 80_000, PatternKind.CHASE)


def test_trace_requires_attached_emulator():
    sim = Simulator(seed=1)
    machine = Machine(sim, IVY_BRIDGE)
    quartz = Quartz(
        SimOS(machine), QuartzConfig(), calibration=calibrate_arch(IVY_BRIDGE)
    )
    with pytest.raises(QuartzError, match="attach the emulator"):
        attach_trace(quartz)


def test_trace_records_monitor_epochs():
    trace, quartz = run_traced(chase_body)
    assert len(trace) == quartz.stats.epochs_total
    monitor_records = trace.by_trigger(EpochTrigger.MONITOR)
    assert len(monitor_records) > 5
    assert trace.by_trigger(EpochTrigger.EXIT)
    # Epoch lengths cluster around the configured maximum.
    stats = trace.epoch_length_stats()
    assert 0.15e6 < stats.mean < 0.5e6


def test_trace_records_sync_epochs():
    def body(ctx):
        mutex = Mutex(ctx.os)
        region = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        for _ in range(5):
            yield MutexLock(mutex)
            yield MemBatch(region, 5_000, PatternKind.CHASE)
            yield MutexUnlock(mutex)

    trace, _ = run_traced(
        body,
        config=QuartzConfig(nvm_read_latency_ns=500.0, min_epoch_ns=0.0),
    )
    assert len(trace.by_trigger(EpochTrigger.SYNC)) >= 5


def test_trace_totals_track_stats():
    trace, quartz = run_traced(chase_body)
    computed = sum(r.delay_computed_ns for r in trace.records)
    assert computed == pytest.approx(quartz.stats.delay_computed_ns, rel=1e-6)
    assert 0.9 <= trace.injection_ratio() <= 1.0


def test_trace_by_thread_filters():
    trace, _ = run_traced(chase_body)
    tids = {r.tid for r in trace.records}
    assert len(tids) == 1
    tid = tids.pop()
    assert len(trace.by_thread(tid)) == len(trace)
    assert trace.by_thread(tid + 99) == []


def test_trace_summary_renders():
    trace, _ = run_traced(chase_body)
    text = trace.summary()
    assert "epochs over 1 thread" in text
    assert "monitor=" in text
    assert "delay injected" in text


def test_empty_trace_summary_and_stats():
    trace = EpochTrace()
    assert trace.summary() == "epoch trace: empty"
    with pytest.raises(QuartzError):
        trace.epoch_length_stats()
    assert trace.injection_ratio() == 1.0


def test_trace_ring_buffer_caps_records():
    trace = EpochTrace(max_records=3)
    for index in range(6):
        trace.record(
            EpochRecord(
                time_ns=float(index), tid=1, thread_name="t",
                trigger=EpochTrigger.MONITOR, epoch_length_ns=1.0,
                delay_computed_ns=0.0, delay_injected_ns=0.0,
            )
        )
    assert len(trace) == 3
    assert [r.time_ns for r in trace.records] == [3.0, 4.0, 5.0]


def test_trace_eviction_is_constant_time():
    """The cap evicts O(1) per record (a bounded deque, not list deletes)."""
    import time

    def fill(trace, count):
        record = EpochRecord(
            time_ns=0.0, tid=1, thread_name="t",
            trigger=EpochTrigger.MONITOR, epoch_length_ns=1.0,
            delay_computed_ns=0.0, delay_injected_ns=0.0,
        )
        start = time.perf_counter()
        for _ in range(count):
            trace.record(record)
        return time.perf_counter() - start

    # Warm-up, then: appending past a saturated large cap must not cost
    # meaningfully more than appending below an unreached cap (the old
    # list implementation paid an O(cap) front-delete per record once
    # saturated: ~4e8 pointer moves for this workload).
    fill(EpochTrace(max_records=10), 1_000)
    saturated = fill(EpochTrace(max_records=20_000), 40_000)
    unsaturated = fill(EpochTrace(max_records=200_000), 40_000)
    assert saturated < 20 * max(unsaturated, 1e-4)


def test_trace_accepts_preexisting_records():
    record = EpochRecord(
        time_ns=1.0, tid=1, thread_name="t",
        trigger=EpochTrigger.MONITOR, epoch_length_ns=1.0,
        delay_computed_ns=0.0, delay_injected_ns=0.0,
    )
    trace = EpochTrace(records=[record, record, record], max_records=2)
    assert len(trace) == 2  # the cap applies at construction too


# ----------------------------------------------------------------------
# JSONL streaming
# ----------------------------------------------------------------------
def test_epoch_record_dict_roundtrip():
    from repro.quartz.trace import EpochRecord

    record = EpochRecord(
        time_ns=12.5, tid=3, thread_name="worker",
        trigger=EpochTrigger.SYNC, epoch_length_ns=1000.0,
        delay_computed_ns=40.0, delay_injected_ns=35.0,
    )
    assert EpochRecord.from_dict(record.to_dict()) == record
    assert record.to_dict()["trigger"] == "sync"


def test_jsonl_sink_streams_past_the_memory_cap(tmp_path):
    """The file keeps full history even when the in-memory trace drops it."""
    from repro.quartz.trace import JsonlTraceWriter, read_trace_jsonl

    path = tmp_path / "trace.jsonl"
    with JsonlTraceWriter(path) as sink:
        trace = EpochTrace(max_records=3, sink=sink)
        for index in range(10):
            trace.record(
                EpochRecord(
                    time_ns=float(index), tid=1, thread_name="t",
                    trigger=EpochTrigger.MONITOR, epoch_length_ns=1.0,
                    delay_computed_ns=2.0, delay_injected_ns=1.0,
                )
            )
    assert len(trace) == 3  # memory capped...
    reloaded = read_trace_jsonl(path)
    assert len(reloaded.trace) == 10  # ...disk is not
    assert [r.time_ns for r in reloaded.trace.records] == [
        float(index) for index in range(10)
    ]
    # Applying the same cap on reload reproduces the in-memory view.
    capped = read_trace_jsonl(path, max_records=3)
    assert list(capped.trace.records) == list(trace.records)
    assert capped.trace.summary() == trace.summary()


def test_live_run_jsonl_roundtrip_reproduces_summary(tmp_path):
    """A sink-attached run reloads to the exact in-memory summary."""
    from repro.quartz.trace import JsonlTraceWriter, read_trace_jsonl

    path = tmp_path / "run.jsonl"
    sim = Simulator(seed=2)
    machine = Machine(sim, IVY_BRIDGE)
    osys = SimOS(machine)
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=500.0, max_epoch_ns=0.2 * MILLISECOND),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    with JsonlTraceWriter(path) as sink:
        trace = attach_trace(quartz, sink=sink)
        osys.create_thread(chase_body, name="traced")
        osys.run_to_completion()
        sink.write_stats(quartz.stats)
    assert len(trace) > 5
    reloaded = read_trace_jsonl(path)
    assert len(reloaded.trace) == len(trace)
    assert reloaded.trace.summary() == trace.summary()
    assert reloaded.stats[0]["epochs_total"] == quartz.stats.epochs_total


def test_summarize_trace_jsonl_matches_in_memory_summary(tmp_path):
    from repro.quartz.trace import (
        JsonlTraceWriter,
        summarize_trace_jsonl,
    )

    path = tmp_path / "cap.jsonl"
    with JsonlTraceWriter(path) as sink:
        trace = EpochTrace(max_records=4, sink=sink)
        for index in range(12):
            trace.record(
                EpochRecord(
                    time_ns=float(index), tid=1, thread_name="t",
                    trigger=EpochTrigger.MONITOR,
                    epoch_length_ns=100.0 * (index + 1),
                    delay_computed_ns=10.0, delay_injected_ns=10.0,
                )
            )
    text = summarize_trace_jsonl(path, max_records=4)
    assert text.startswith(trace.summary())


def test_read_trace_jsonl_rejects_bad_files(tmp_path):
    from repro.quartz.trace import read_trace_jsonl

    missing = tmp_path / "missing.jsonl"
    with pytest.raises(QuartzError, match="cannot open"):
        read_trace_jsonl(missing)

    empty = tmp_path / "empty.jsonl"
    empty.write_text("")
    with pytest.raises(QuartzError, match="empty trace file"):
        read_trace_jsonl(empty)

    not_ours = tmp_path / "other.jsonl"
    not_ours.write_text('{"kind": "header", "schema": "other"}\n')
    with pytest.raises(QuartzError, match="not a"):
        read_trace_jsonl(not_ours)

    future = tmp_path / "future.jsonl"
    future.write_text(
        '{"kind": "header", "schema": "quartz-repro/epoch-trace", '
        '"schema_version": 999}\n'
    )
    with pytest.raises(QuartzError, match="unsupported trace schema"):
        read_trace_jsonl(future)

    garbage = tmp_path / "garbage.jsonl"
    garbage.write_text(
        '{"kind": "header", "schema": "quartz-repro/epoch-trace", '
        '"schema_version": 1}\nnot-json\n'
    )
    with pytest.raises(QuartzError, match="not valid JSON"):
        read_trace_jsonl(garbage)


def test_read_trace_jsonl_skips_unknown_kinds(tmp_path):
    from repro.quartz.trace import JsonlTraceWriter, read_trace_jsonl

    path = tmp_path / "mixed.jsonl"
    with JsonlTraceWriter(path) as sink:
        sink.begin_run(index=0, workload="memlat")
    with open(path, "a", encoding="utf-8") as handle:
        handle.write('{"kind": "future-extension", "x": 1}\n')
    reloaded = read_trace_jsonl(path)
    assert len(reloaded.trace) == 0
    assert reloaded.runs[0]["workload"] == "memlat"


def test_writer_is_idempotent_on_close(tmp_path):
    from repro.quartz.trace import JsonlTraceWriter

    writer = JsonlTraceWriter(tmp_path / "t.jsonl")
    writer.close()
    writer.close()  # second close is a no-op
    with pytest.raises(QuartzError, match="already closed"):
        writer.begin_run(index=0)
