"""Tests for the epoch-trace instrumentation."""

import pytest

from repro.errors import QuartzError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.ops import MemBatch, MutexLock, MutexUnlock, PatternKind
from repro.os import Mutex, SimOS
from repro.quartz import Quartz, QuartzConfig, calibrate_arch
from repro.quartz.stats import EpochTrigger
from repro.quartz.trace import EpochRecord, EpochTrace, attach_trace
from repro.sim import Simulator
from repro.units import GIB, MILLISECOND


def run_traced(body, config=None, seed=2):
    sim = Simulator(seed=seed)
    machine = Machine(sim, IVY_BRIDGE)
    osys = SimOS(machine)
    quartz = Quartz(
        osys,
        config or QuartzConfig(
            nvm_read_latency_ns=500.0, max_epoch_ns=0.2 * MILLISECOND
        ),
        calibration=calibrate_arch(IVY_BRIDGE),
    )
    quartz.attach()
    trace = attach_trace(quartz)
    osys.create_thread(body, name="traced")
    osys.run_to_completion()
    return trace, quartz


def chase_body(ctx):
    region = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
    yield MemBatch(region, 80_000, PatternKind.CHASE)


def test_trace_requires_attached_emulator():
    sim = Simulator(seed=1)
    machine = Machine(sim, IVY_BRIDGE)
    quartz = Quartz(
        SimOS(machine), QuartzConfig(), calibration=calibrate_arch(IVY_BRIDGE)
    )
    with pytest.raises(QuartzError, match="attach the emulator"):
        attach_trace(quartz)


def test_trace_records_monitor_epochs():
    trace, quartz = run_traced(chase_body)
    assert len(trace) == quartz.stats.epochs_total
    monitor_records = trace.by_trigger(EpochTrigger.MONITOR)
    assert len(monitor_records) > 5
    assert trace.by_trigger(EpochTrigger.EXIT)
    # Epoch lengths cluster around the configured maximum.
    stats = trace.epoch_length_stats()
    assert 0.15e6 < stats.mean < 0.5e6


def test_trace_records_sync_epochs():
    def body(ctx):
        mutex = Mutex(ctx.os)
        region = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        for _ in range(5):
            yield MutexLock(mutex)
            yield MemBatch(region, 5_000, PatternKind.CHASE)
            yield MutexUnlock(mutex)

    trace, _ = run_traced(
        body,
        config=QuartzConfig(nvm_read_latency_ns=500.0, min_epoch_ns=0.0),
    )
    assert len(trace.by_trigger(EpochTrigger.SYNC)) >= 5


def test_trace_totals_track_stats():
    trace, quartz = run_traced(chase_body)
    computed = sum(r.delay_computed_ns for r in trace.records)
    assert computed == pytest.approx(quartz.stats.delay_computed_ns, rel=1e-6)
    assert 0.9 <= trace.injection_ratio() <= 1.0


def test_trace_by_thread_filters():
    trace, _ = run_traced(chase_body)
    tids = {r.tid for r in trace.records}
    assert len(tids) == 1
    tid = tids.pop()
    assert len(trace.by_thread(tid)) == len(trace)
    assert trace.by_thread(tid + 99) == []


def test_trace_summary_renders():
    trace, _ = run_traced(chase_body)
    text = trace.summary()
    assert "epochs over 1 thread" in text
    assert "monitor=" in text
    assert "delay injected" in text


def test_empty_trace_summary_and_stats():
    trace = EpochTrace()
    assert trace.summary() == "epoch trace: empty"
    with pytest.raises(QuartzError):
        trace.epoch_length_stats()
    assert trace.injection_ratio() == 1.0


def test_trace_ring_buffer_caps_records():
    trace = EpochTrace(max_records=3)
    for index in range(6):
        trace.record(
            EpochRecord(
                time_ns=float(index), tid=1, thread_name="t",
                trigger=EpochTrigger.MONITOR, epoch_length_ns=1.0,
                delay_computed_ns=0.0, delay_injected_ns=0.0,
            )
        )
    assert len(trace) == 3
    assert [r.time_ns for r in trace.records] == [3.0, 4.0, 5.0]


def test_trace_eviction_is_constant_time():
    """The cap evicts O(1) per record (a bounded deque, not list deletes)."""
    import time

    def fill(trace, count):
        record = EpochRecord(
            time_ns=0.0, tid=1, thread_name="t",
            trigger=EpochTrigger.MONITOR, epoch_length_ns=1.0,
            delay_computed_ns=0.0, delay_injected_ns=0.0,
        )
        start = time.perf_counter()
        for _ in range(count):
            trace.record(record)
        return time.perf_counter() - start

    # Warm-up, then: appending past a saturated large cap must not cost
    # meaningfully more than appending below an unreached cap (the old
    # list implementation paid an O(cap) front-delete per record once
    # saturated: ~4e8 pointer moves for this workload).
    fill(EpochTrace(max_records=10), 1_000)
    saturated = fill(EpochTrace(max_records=20_000), 40_000)
    unsaturated = fill(EpochTrace(max_records=200_000), 40_000)
    assert saturated < 20 * max(unsaturated, 1e-4)


def test_trace_accepts_preexisting_records():
    record = EpochRecord(
        time_ns=1.0, tid=1, thread_name="t",
        trigger=EpochTrigger.MONITOR, epoch_length_ns=1.0,
        delay_computed_ns=0.0, delay_injected_ns=0.0,
    )
    trace = EpochTrace(records=[record, record, record], max_records=2)
    assert len(trace) == 2  # the cap applies at construction too
