"""Tests for the emulation report renderer."""

from repro.hw import IVY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.os import SimOS
from repro.quartz import Quartz, QuartzConfig, calibrate_arch
from repro.quartz.report import render_report
from repro.quartz.stats import QuartzStats
from repro.sim import Simulator
from repro.units import GIB, MILLISECOND


def test_report_on_empty_stats():
    text = render_report(QuartzStats())
    assert "threads registered: 0" in text
    assert "feedback:" in text


def test_report_after_a_real_run():
    sim = Simulator(seed=4)
    machine = Machine(sim, IVY_BRIDGE)
    osys = SimOS(machine)
    config = QuartzConfig(
        nvm_read_latency_ns=450.0,
        nvm_bandwidth_gbps=12.0,
        nvm_write_latency_ns=900.0,
        max_epoch_ns=0.2 * MILLISECOND,
    )
    quartz = Quartz(osys, config, calibration=calibrate_arch(IVY_BRIDGE))
    quartz.attach()

    def body(ctx):
        region = ctx.pmalloc(2 * GIB, page_size=PageSize.HUGE_2M)
        yield MemBatch(region, 60_000, PatternKind.CHASE)

    osys.create_thread(body, name="app")
    osys.run_to_completion()
    text = render_report(quartz.stats, config)
    assert "450 ns read latency" in text
    assert "12.0 GB/s bandwidth" in text
    assert "900 ns write latency" in text
    assert "rdpmc counters" in text
    assert "app" in text  # per-thread table
    assert "injected" in text
    assert "feedback:" in text
    # Report lines are parseable: epochs closed appears with the count.
    assert f"epochs closed: {quartz.stats.epochs_total}" in text
