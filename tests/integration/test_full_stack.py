"""Full-stack integration tests: emulator + OS + workloads together."""

import pytest

from repro.errors import HardwareError, OsError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.ops import (
    Commit,
    JoinThread,
    MemBatch,
    MutexLock,
    MutexUnlock,
    PatternKind,
    Sleep,
    SpawnThread,
)
from repro.os import Mutex, SimOS
from repro.quartz import (
    EmulationMode,
    Quartz,
    QuartzConfig,
    WriteModel,
    calibrate_arch,
)
from repro.sim import Simulator
from repro.units import GIB, MIB, MILLISECOND


def make_stack(arch=IVY_BRIDGE, seed=7, **machine_kwargs):
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, **machine_kwargs)
    return machine, SimOS(machine)


CALIBRATION = None


def calibration():
    global CALIBRATION
    if CALIBRATION is None:
        CALIBRATION = calibrate_arch(IVY_BRIDGE)
    return CALIBRATION


def test_everything_at_once():
    """Two-memory mode + multithreading + write emulation + bandwidth."""
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(
            nvm_read_latency_ns=500.0,
            nvm_write_latency_ns=900.0,
            nvm_bandwidth_gbps=10.0,
            mode=EmulationMode.TWO_MEMORY,
            write_model=WriteModel.PCOMMIT,
            max_epoch_ns=0.5 * MILLISECOND,
        ),
        calibration=calibration(),
    )
    quartz.attach()
    mutex = Mutex(osys)
    timings = {}

    def worker(ctx, tag):
        dram = ctx.malloc(1 * GIB, page_size=PageSize.HUGE_2M)
        nvm = ctx.pmalloc(1 * GIB, page_size=PageSize.HUGE_2M)
        for _ in range(20):
            yield MemBatch(dram, 2_000, PatternKind.CHASE)
            yield MutexLock(mutex)
            yield MemBatch(nvm, 1_000, PatternKind.CHASE)
            yield from ctx.pflush(nvm, lines=8)
            yield Commit()
            yield MutexUnlock(mutex)
        ctx.pfree(nvm)

    def main(ctx):
        start = ctx.now_ns
        workers = []
        for tag in range(3):
            workers.append((yield SpawnThread(worker, args=(tag,))))
        for w in workers:
            yield JoinThread(w)
        timings["elapsed"] = ctx.now_ns - start

    osys.create_thread(main)
    osys.run_to_completion()
    # Sanity on magnitude: DRAM work at ~87 ns, NVM chase at ~500 ns,
    # flushes at ~900 ns with pcommit overlap, serialized via the lock.
    dram_part = 3 * 20 * 2_000 * 87.0
    nvm_part = 3 * 20 * 1_000 * 500.0
    assert timings["elapsed"] > (dram_part / 3 + nvm_part) * 0.8
    stats = quartz.stats
    assert stats.threads_registered == 4
    assert stats.delay_injected_ns > 0
    assert quartz.write_emulator.commits_emulated == 60
    assert quartz.virtual_topology.pmalloc_count == 3


def test_workload_exception_propagates_cleanly():
    """Failure injection: a crash inside an emulated thread surfaces."""
    machine, osys = make_stack()
    quartz = Quartz(
        osys, QuartzConfig(nvm_read_latency_ns=300.0),
        calibration=calibration(),
    )
    quartz.attach()

    def buggy(ctx):
        region = ctx.pmalloc(256 * MIB, page_size=PageSize.HUGE_2M)
        yield MemBatch(region, 1_000, PatternKind.CHASE)
        raise RuntimeError("injected workload bug")

    osys.create_thread(buggy)
    with pytest.raises(RuntimeError, match="injected workload bug"):
        osys.run_to_completion()


def test_use_after_pfree_detected_under_emulation():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=300.0, mode=EmulationMode.TWO_MEMORY),
        calibration=calibration(),
    )
    quartz.attach()

    def buggy(ctx):
        region = ctx.pmalloc(MIB)
        ctx.pfree(region)
        yield MemBatch(region, 100, PatternKind.CHASE)

    osys.create_thread(buggy)
    with pytest.raises(HardwareError, match="use after free"):
        osys.run_to_completion()


def test_detach_then_reattach():
    machine, osys = make_stack()
    first = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=300.0, max_epoch_ns=0.2 * MILLISECOND),
        calibration=calibration(),
    )
    first.attach()
    out = {}

    def body(ctx, key):
        region = ctx.malloc(4 * GIB, page_size=PageSize.HUGE_2M)
        start = ctx.now_ns
        yield MemBatch(region, 80_000, PatternKind.CHASE)
        out[key] = (ctx.now_ns - start) / 80_000

    osys.create_thread(body, args=("emulated",))
    osys.run_to_completion()
    first.detach()

    osys.create_thread(body, args=("native",))
    osys.run_to_completion()
    assert out["emulated"] == pytest.approx(300.0, rel=0.1)
    assert out["native"] == pytest.approx(87.0, rel=0.05)

    second = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=600.0, max_epoch_ns=0.2 * MILLISECOND),
        calibration=calibration(),
    )
    second.attach()
    osys.create_thread(body, args=("reattached",))
    osys.run_to_completion()
    assert out["reattached"] == pytest.approx(600.0, rel=0.1)


def test_emulated_socket_exhaustion_still_raises():
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(nvm_read_latency_ns=300.0, monitor_socket=1),
        calibration=calibration(),
    )
    quartz.attach()

    def sleeper(ctx):
        yield Sleep(1e9)

    slots = machine.logical_cores_per_socket
    for _ in range(slots):
        osys.create_thread(sleeper, cpu_node=0)
    with pytest.raises(OsError, match="no free logical cores"):
        osys.create_thread(sleeper, cpu_node=0)


def test_determinism_of_the_full_stack():
    def run_once():
        machine, osys = make_stack(seed=123)
        quartz = Quartz(
            osys,
            QuartzConfig(
                nvm_read_latency_ns=400.0, nvm_write_latency_ns=700.0
            ),
            calibration=calibration(),
        )
        quartz.attach()
        out = {}

        def body(ctx):
            region = ctx.pmalloc(1 * GIB, page_size=PageSize.HUGE_2M)
            yield MemBatch(region, 30_000, PatternKind.CHASE)
            yield from ctx.pflush(region, lines=16)
            out["end"] = ctx.now_ns

        osys.create_thread(body)
        osys.run_to_completion()
        return out["end"], quartz.stats.delay_injected_ns

    assert run_once() == run_once()


def test_latency_and_bandwidth_combined():
    """Both knobs at once: chase honours latency, stream honours bandwidth."""
    machine, osys = make_stack()
    quartz = Quartz(
        osys,
        QuartzConfig(
            nvm_read_latency_ns=400.0,
            nvm_bandwidth_gbps=4.0,
            max_epoch_ns=0.2 * MILLISECOND,
        ),
        calibration=calibration(),
    )
    quartz.attach()
    out = {}

    def body(ctx):
        chase_region = ctx.pmalloc(1 * GIB, page_size=PageSize.HUGE_2M)
        stream_region = ctx.pmalloc(128 * MIB)
        start = ctx.now_ns
        yield MemBatch(chase_region, 50_000, PatternKind.CHASE)
        out["latency"] = (ctx.now_ns - start) / 50_000
        start = ctx.now_ns
        yield MemBatch(
            stream_region, stream_region.size_bytes // 8,
            PatternKind.SEQUENTIAL, stride_bytes=8, is_store=True,
            non_temporal=True,
        )
        out["bandwidth"] = stream_region.size_bytes / (ctx.now_ns - start)

    osys.create_thread(body)
    osys.run_to_completion()
    assert out["latency"] == pytest.approx(400.0, rel=0.1)
    assert out["bandwidth"] == pytest.approx(4.0, rel=0.1)


def test_commit_without_write_emulation_is_plain_hardware():
    machine, osys = make_stack()
    quartz = Quartz(
        osys, QuartzConfig(nvm_read_latency_ns=300.0),
        calibration=calibration(),
    )
    quartz.attach()
    assert quartz.write_emulator is None

    def body(ctx):
        yield Commit()  # no posted flushes, no hook: instantaneous

    osys.create_thread(body)
    osys.run_to_completion()
    # Only the library's registration cost (~300k cycles) elapsed; the
    # barrier itself was free.
    assert osys.sim.now < 200_000.0
