"""Golden determinism regression: pinned experiment digests.

``experiment_digest`` hashes only the ``experiment`` section of an export
document (rows, columns, notes) — the manifest's git SHA and versions are
deliberately excluded — so these digests move if and only if simulated
results move.  Any change to the simulator's event ordering, the epoch
engine's accounting, or the model equations shows up here immediately.

To regenerate after an *intentional* behaviour change::

    PYTHONPATH=src python - <<'PY'
    import json
    from repro.validation.experiments.fast import run_fast
    from repro.validation.runner import reset_run_stats
    from repro.validation import export
    digests = {}
    for eid in ("figure12", "figure14", "table2", "epoch-size-study",
                "figure16-latency", "crash-check", "tier-sweep",
                "migration-policy", "explore-check", "service-latency",
                "cache-policy"):
        reset_run_stats()
        result = run_fast(eid, jobs=1)
        digests[eid] = export.experiment_digest(
            {"experiment": result.to_dict()})
    with open("tests/golden/experiment_digests.json", "w") as fh:
        json.dump(digests, fh, indent=2, sort_keys=True)
        fh.write("\n")
    PY

and explain the move in the commit message.
"""

import json
from pathlib import Path

import pytest

from repro.validation import export
from repro.validation.experiments.fast import run_fast
from repro.validation.runner import reset_run_stats

GOLDEN_PATH = Path(__file__).parent.parent / "golden" / "experiment_digests.json"
GOLDEN = json.loads(GOLDEN_PATH.read_text())


def _digest(experiment_id: str) -> str:
    reset_run_stats()
    result = run_fast(experiment_id, jobs=1)
    return export.experiment_digest({"experiment": result.to_dict()})


@pytest.mark.parametrize("experiment_id", sorted(GOLDEN))
def test_experiment_digest_matches_golden(experiment_id):
    actual = _digest(experiment_id)
    expected = GOLDEN[experiment_id]
    assert actual == expected, (
        f"{experiment_id}: experiment digest moved "
        f"({actual[:12]}... != pinned {expected[:12]}...). Simulated "
        "results changed; if intentional, regenerate "
        "tests/golden/experiment_digests.json (recipe in this module's "
        "docstring) and justify the move in the commit message."
    )


def test_digest_is_stable_within_a_process():
    # Re-running in the same interpreter must not perturb global state
    # (caches, stats accumulators) in a digest-visible way.
    assert _digest("figure12") == _digest("figure12")


def test_digest_identical_with_dispatch_hooks_armed():
    # The kernel dispatches through a fast path when no hooks are armed
    # and an observable path when they are.  Arming invariant checking
    # installs a dispatch observer on every run, forcing the observable
    # path — the digest must not move by a byte.
    from repro.faults import active_faults

    fast_path = _digest("figure12")
    with active_faults(check_invariants=True):
        observed_path = _digest("figure12")
    assert observed_path == fast_path, (
        "experiment digest differs between the no-hooks fast path and "
        "the observed path; the two dispatch loops have diverged"
    )


def test_digest_identical_across_worker_counts():
    # Parallel sweep execution must not leak into results: the digest
    # with --jobs 2 must equal the pinned single-worker digest.
    reset_run_stats()
    result = run_fast("figure12", jobs=2)
    digest = export.experiment_digest({"experiment": result.to_dict()})
    assert digest == GOLDEN["figure12"]


def test_tier_sweep_digest_identical_across_worker_counts():
    # The N-tier sweep fans out one spec per (arch, tier set) through the
    # same parallel runner: its export must also be worker-count blind.
    reset_run_stats()
    result = run_fast("tier-sweep", jobs=2)
    digest = export.experiment_digest({"experiment": result.to_dict()})
    assert digest == GOLDEN["tier-sweep"]


def test_service_latency_digest_identical_across_worker_counts():
    # The KV service fans out one spec per NVM latency pair; shared
    # Python state (cache, ledgers) lives inside each run's simulator,
    # so worker count must not be able to reach the rows.
    reset_run_stats()
    result = run_fast("service-latency", jobs=2)
    digest = export.experiment_digest({"experiment": result.to_dict()})
    assert digest == GOLDEN["service-latency"]


def test_golden_file_is_well_formed():
    assert GOLDEN, "golden digest file is empty"
    for experiment_id, digest in GOLDEN.items():
        assert isinstance(digest, str) and len(digest) == 64, (
            f"{experiment_id}: pinned value is not a SHA-256 hex digest"
        )
