"""Tests for NUMA memory regions and the node address space."""

import pytest

from repro.errors import HardwareError
from repro.hw.topology import MemoryRegion, NodeAddressSpace, PageSize
from repro.units import MIB


def make_space(node=0, capacity=1024 * MIB):
    return NodeAddressSpace(node, capacity)


def test_allocation_is_line_aligned_and_node_tagged():
    space = make_space(node=1)
    region = space.allocate(1000, label="x")
    assert region.node == 1
    assert region.base % 64 == 0
    assert NodeAddressSpace.node_of_address(region.base) == 1


def test_allocations_do_not_overlap():
    space = make_space()
    a = space.allocate(100)
    b = space.allocate(100)
    assert a.end <= b.base


def test_hugepage_allocation_is_page_aligned():
    space = make_space()
    space.allocate(100)
    region = space.allocate(4 * MIB, page_size=PageSize.HUGE_2M)
    assert region.base % int(PageSize.HUGE_2M) == 0
    assert region.pages() == 2


def test_out_of_memory():
    space = make_space(capacity=1 * MIB)
    space.allocate(MIB // 2)
    with pytest.raises(HardwareError, match="out of memory"):
        space.allocate(MIB)


def test_free_returns_capacity_accounting():
    space = make_space(capacity=1 * MIB)
    region = space.allocate(MIB // 2)
    space.free(region)
    assert space.allocated_bytes == 0
    space.allocate(MIB // 2)  # fits again


def test_double_free_rejected():
    space = make_space()
    region = space.allocate(128)
    space.free(region)
    with pytest.raises(HardwareError, match="double free"):
        space.free(region)


def test_use_after_free_detected():
    space = make_space()
    region = space.allocate(128)
    space.free(region)
    with pytest.raises(HardwareError, match="use after free"):
        region.require_live()


def test_free_on_wrong_node_rejected():
    space0 = make_space(node=0)
    space1 = make_space(node=1)
    region = space0.allocate(128)
    with pytest.raises(HardwareError):
        space1.free(region)


def test_zero_and_negative_sizes_rejected():
    space = make_space()
    with pytest.raises(HardwareError):
        space.allocate(0)
    with pytest.raises(HardwareError):
        space.allocate(-5)


def test_region_line_count_rounds_up():
    region = MemoryRegion(node=0, size_bytes=65, base=0)
    assert region.lines == 2


def test_addresses_of_distinct_nodes_never_collide():
    a = make_space(node=0).allocate(MIB)
    b = make_space(node=1).allocate(MIB)
    assert a.end <= b.base or b.end <= a.base
