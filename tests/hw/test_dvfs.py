"""Tests for the DVFS governor."""

import pytest

from repro.errors import HardwareError
from repro.hw.dvfs import DvfsGovernor


def test_disabled_governor_pins_nominal_frequency():
    governor = DvfsGovernor(nominal_ghz=2.2)
    governor.disable()
    for t in [0.0, 1e6, 5e7]:
        assert governor.frequency_ghz(0, t) == 2.2


def test_enabled_governor_wanders_below_nominal():
    governor = DvfsGovernor(nominal_ghz=2.2, depth=0.2, period_ns=1000.0)
    governor.enable()
    samples = [governor.frequency_ghz(0, t) for t in range(0, 2000, 50)]
    assert all(2.2 * 0.8 - 1e-9 <= f <= 2.2 + 1e-9 for f in samples)
    assert min(samples) < 2.2 * 0.9  # actually dips


def test_phases_differ_per_core():
    governor = DvfsGovernor(nominal_ghz=2.0, depth=0.2, period_ns=1000.0)
    governor.enable()
    assert governor.frequency_ghz(0, 100.0) != governor.frequency_ghz(1, 100.0)


def test_deterministic():
    a = DvfsGovernor(2.0, depth=0.1)
    b = DvfsGovernor(2.0, depth=0.1)
    a.enable()
    b.enable()
    assert a.frequency_ghz(3, 12345.0) == b.frequency_ghz(3, 12345.0)


def test_parameter_validation():
    with pytest.raises(HardwareError):
        DvfsGovernor(2.0, depth=1.0)
    with pytest.raises(HardwareError):
        DvfsGovernor(2.0, period_ns=0.0)
