"""Tests for hardware extensions: asymmetric throttling, loaded latency."""

import pytest

from repro.errors import HardwareError, UnsupportedFeatureError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX, MemoryController
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.os import SimOS
from repro.sim import Simulator
from repro.units import GIB, MIB


# ----------------------------------------------------------------------
# Asymmetric read/write throttling
# ----------------------------------------------------------------------
def make_controller(rw=True, peak=10.0):
    sim = Simulator(seed=1)
    return sim, MemoryController(
        sim, node=0, peak_bw_bytes_per_ns=peak, channels=4,
        rw_throttle_supported=rw,
    )


def test_rw_registers_unavailable_on_paper_era_parts():
    """Footnote 2: the registers exist in the manuals but do not work."""
    _, ctrl = make_controller(rw=False)
    with pytest.raises(UnsupportedFeatureError, match="footnote 2"):
        ctrl.program_rw_throttle_registers(100, 100, privileged=True)


def test_rw_registers_require_privilege():
    _, ctrl = make_controller(rw=True)
    with pytest.raises(HardwareError, match="privileged"):
        ctrl.program_rw_throttle_registers(100, 100, privileged=False)


def test_rw_registers_range_checked():
    _, ctrl = make_controller(rw=True)
    with pytest.raises(HardwareError):
        ctrl.program_rw_throttle_registers(
            THROTTLE_REGISTER_MAX + 1, 0, privileged=True
        )


def test_read_flows_capped_by_read_register():
    sim, ctrl = make_controller(rw=True, peak=10.0)
    half = (THROTTLE_REGISTER_MAX + 1) // 2 - 1
    ctrl.program_rw_throttle_registers(half, THROTTLE_REGISTER_MAX,
                                       privileged=True)
    read = ctrl.submit(1000.0, rate_cap=100.0, kind="read")
    sim.run_until_condition(lambda: read.done.fired)
    assert sim.now == pytest.approx(200.0)  # 5 B/ns read cap


def test_write_flows_capped_by_write_register():
    sim, ctrl = make_controller(rw=True, peak=10.0)
    quarter = (THROTTLE_REGISTER_MAX + 1) // 4 - 1
    ctrl.program_rw_throttle_registers(THROTTLE_REGISTER_MAX, quarter,
                                       privileged=True)
    write = ctrl.submit(1000.0, rate_cap=100.0, kind="write")
    sim.run_until_condition(lambda: write.done.fired)
    assert sim.now == pytest.approx(400.0)  # 2.5 B/ns write cap


def test_reads_and_writes_share_within_combined_cap():
    sim, ctrl = make_controller(rw=True, peak=10.0)
    # Read register allows 8, write allows 8, combined allows 10.
    register_80 = round((THROTTLE_REGISTER_MAX + 1) * 0.8) - 1
    ctrl.program_rw_throttle_registers(register_80, register_80,
                                       privileged=True)
    read = ctrl.submit(2000.0, rate_cap=100.0, kind="read")
    write = ctrl.submit(2000.0, rate_cap=100.0, kind="write")
    sim.run_until_condition(lambda: read.done.fired and write.done.fired)
    # Combined 10 B/ns binds: 4000 bytes -> 400 ns.
    assert sim.now == pytest.approx(400.0, rel=0.02)


def test_asymmetric_read_faster_than_write():
    """The Section 2.1 motivation: NVM reads outpace writes."""
    sim, ctrl = make_controller(rw=True, peak=10.0)
    read_register = round((THROTTLE_REGISTER_MAX + 1) * 0.6) - 1   # 6 B/ns
    write_register = round((THROTTLE_REGISTER_MAX + 1) * 0.2) - 1  # 2 B/ns
    ctrl.program_rw_throttle_registers(read_register, write_register,
                                       privileged=True)
    read = ctrl.submit(3000.0, rate_cap=100.0, kind="read")
    write = ctrl.submit(3000.0, rate_cap=100.0, kind="write")
    sim.run_until_condition(lambda: read.done.fired)
    read_done = sim.now
    sim.run_until_condition(lambda: write.done.fired)
    write_done = sim.now
    assert read_done < write_done
    assert write_done == pytest.approx(1500.0, rel=0.02)  # 3000 B at 2 B/ns


def test_flow_kind_validation():
    sim, ctrl = make_controller()
    with pytest.raises(HardwareError):
        ctrl.submit(10.0, rate_cap=1.0, kind="readwrite")


def test_default_registers_leave_behavior_unchanged():
    sim, ctrl = make_controller(rw=True, peak=10.0)
    flow = ctrl.submit(1000.0, rate_cap=100.0, kind="read")
    sim.run_until_condition(lambda: flow.done.fired)
    assert sim.now == pytest.approx(100.0)


# ----------------------------------------------------------------------
# Loaded latency (Section 6 discussion)
# ----------------------------------------------------------------------
def chase_latency(machine):
    os = SimOS(machine)
    out = {}

    def body(ctx):
        region = ctx.malloc(4 * GIB, page_size=PageSize.HUGE_2M)
        start = ctx.now_ns
        yield MemBatch(region, 20_000, PatternKind.CHASE)
        out["latency"] = (ctx.now_ns - start) / 20_000

    def streamer(ctx):
        region = ctx.malloc(512 * MIB)
        while True:
            yield MemBatch(
                region,
                accesses=region.size_bytes // 8,
                pattern=PatternKind.SEQUENTIAL,
                stride_bytes=8,
                is_store=True,
                non_temporal=True,
            )

    os.create_thread(streamer, name="background-load", daemon=True)
    os.create_thread(body, name="probe")
    os.run_to_completion()
    return out["latency"]


def test_loaded_latency_disabled_by_default():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE)
    assert machine.loaded_latency_alpha == 0.0
    assert chase_latency(machine) == pytest.approx(87.0, rel=0.02)


def test_loaded_latency_rises_under_contention():
    loaded = Machine(Simulator(seed=1), IVY_BRIDGE, loaded_latency_alpha=0.5)
    latency = chase_latency(loaded)
    # The saturating streamer drives utilization toward 1: latency should
    # approach 87 * 1.5.
    assert latency > 87.0 * 1.3


def test_loaded_latency_unloaded_machine_unchanged():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE, loaded_latency_alpha=0.5)
    os = SimOS(machine)
    out = {}

    def body(ctx):
        region = ctx.malloc(4 * GIB, page_size=PageSize.HUGE_2M)
        start = ctx.now_ns
        yield MemBatch(region, 20_000, PatternKind.CHASE)
        out["latency"] = (ctx.now_ns - start) / 20_000

    os.create_thread(body)
    os.run_to_completion()
    # A lone latency-bound chase barely utilizes the controller.
    assert out["latency"] == pytest.approx(87.0, rel=0.1)


def test_negative_alpha_rejected():
    with pytest.raises(HardwareError):
        Machine(Simulator(seed=1), IVY_BRIDGE, loaded_latency_alpha=-1.0)
