"""Tests for the memory controller: throttling and fluid flow sharing."""

import pytest

from repro.errors import HardwareError
from repro.hw.memory import (
    THROTTLE_REGISTER_MAX,
    MemoryController,
    MemoryFlow,
)
from repro.sim import Simulator


def make_controller(sim=None, peak=10.0, channels=4):
    sim = sim or Simulator()
    return sim, MemoryController(sim, node=0, peak_bw_bytes_per_ns=peak, channels=channels)


def run_flow(sim, flow):
    sim.run_until_condition(lambda: flow.done.fired)
    return sim.now


def test_single_flow_capped_by_its_rate_cap():
    sim, ctrl = make_controller(peak=10.0)
    # 1000 bytes at cap 2 B/ns -> 500 ns even though controller could do 10.
    flow = ctrl.submit(1000.0, rate_cap=2.0)
    assert run_flow(sim, flow) == pytest.approx(500.0)


def test_single_flow_capped_by_controller_bandwidth():
    sim, ctrl = make_controller(peak=10.0)
    flow = ctrl.submit(1000.0, rate_cap=100.0)
    assert run_flow(sim, flow) == pytest.approx(100.0)


def test_throttle_register_scales_bandwidth_linearly():
    sim, ctrl = make_controller(peak=8.0)
    ctrl.program_throttle_register(THROTTLE_REGISTER_MAX, privileged=True)
    assert ctrl.effective_bandwidth == pytest.approx(8.0)
    ctrl.program_throttle_register((THROTTLE_REGISTER_MAX + 1) // 2 - 1, privileged=True)
    assert ctrl.effective_bandwidth == pytest.approx(4.0)
    ctrl.program_throttle_register((THROTTLE_REGISTER_MAX + 1) // 4 - 1, privileged=True)
    assert ctrl.effective_bandwidth == pytest.approx(2.0)


def test_throttle_register_requires_privilege():
    _, ctrl = make_controller()
    with pytest.raises(HardwareError, match="privileged"):
        ctrl.program_throttle_register(100, privileged=False)


def test_throttle_register_range_checked():
    _, ctrl = make_controller()
    with pytest.raises(HardwareError):
        ctrl.program_throttle_register(THROTTLE_REGISTER_MAX + 1, privileged=True)
    with pytest.raises(HardwareError):
        ctrl.program_throttle_register(-1, privileged=True)


def test_two_equal_flows_share_bandwidth_fairly():
    sim, ctrl = make_controller(peak=10.0)
    a = ctrl.submit(1000.0, rate_cap=100.0, label="a")
    b = ctrl.submit(1000.0, rate_cap=100.0, label="b")
    sim.run_until_condition(lambda: a.done.fired and b.done.fired)
    # Both uncapped: 5 B/ns each -> 200 ns.
    assert sim.now == pytest.approx(200.0)


def test_capped_flow_leaves_bandwidth_to_others():
    sim, ctrl = make_controller(peak=10.0)
    slow = ctrl.submit(100.0, rate_cap=1.0, label="latency-bound")
    fast = ctrl.submit(1800.0, rate_cap=100.0, label="streaming")
    sim.run_until_condition(lambda: slow.done.fired)
    assert sim.now == pytest.approx(100.0)  # slow ran at its 1 B/ns cap
    sim.run_until_condition(lambda: fast.done.fired)
    # Fast flow got 9 B/ns while slow was active (900 B in 100 ns), then
    # 10 B/ns for the remaining 900 B.
    assert sim.now == pytest.approx(190.0)


def test_flow_completion_after_membership_change_is_exact():
    sim, ctrl = make_controller(peak=10.0)
    a = ctrl.submit(500.0, rate_cap=100.0, label="a")  # alone: 50 ns
    fired_at = {}
    a.done._add_waiter  # silence lint; we observe via condition below
    sim.run(until_ns=10.0)  # a has moved 100 bytes
    b = ctrl.submit(400.0, rate_cap=100.0, label="b")
    sim.run_until_condition(lambda: a.done.fired)
    # After t=10: both at 5 B/ns. a needs 400/5 = 80 more ns.
    assert sim.now == pytest.approx(90.0)
    sim.run_until_condition(lambda: b.done.fired)
    # b: 400 bytes; 80ns at 5 => done at same instant as a... b finished 400 at t=90 too.
    assert sim.now == pytest.approx(90.0)
    assert fired_at == {}


def test_withdraw_returns_remaining_bytes():
    sim, ctrl = make_controller(peak=10.0)
    flow = ctrl.submit(1000.0, rate_cap=10.0)
    sim.run(until_ns=30.0)
    remaining = ctrl.withdraw(flow)
    assert remaining == pytest.approx(700.0)
    assert flow.withdrawn
    assert not flow.done.fired
    sim.run()
    assert not flow.done.fired  # withdrawn flows never complete


def test_withdraw_unknown_flow_rejected():
    sim, ctrl = make_controller()
    flow = ctrl.submit(10.0, rate_cap=1.0)
    sim.run()
    with pytest.raises(HardwareError):
        ctrl.withdraw(flow)


def test_zero_byte_flow_completes_immediately():
    sim, ctrl = make_controller()
    flow = ctrl.submit(0.0, rate_cap=1.0)
    assert flow.done.fired
    assert ctrl.active_flow_count == 0


def test_total_bytes_served_accounting():
    sim, ctrl = make_controller(peak=10.0)
    flow = ctrl.submit(1000.0, rate_cap=100.0)
    run_flow(sim, flow)
    assert ctrl.total_bytes_served == pytest.approx(1000.0)


def test_utilization_reporting():
    sim, ctrl = make_controller(peak=10.0)
    assert ctrl.utilization == 0.0
    ctrl.submit(10_000.0, rate_cap=2.0)
    assert ctrl.utilization == pytest.approx(0.2)
    ctrl.submit(10_000.0, rate_cap=100.0)
    assert ctrl.utilization == pytest.approx(1.0)


def test_invalid_flow_parameters_rejected():
    sim = Simulator()
    with pytest.raises(HardwareError):
        MemoryFlow(sim, total_bytes=-1.0, rate_cap=1.0)
    with pytest.raises(HardwareError):
        MemoryFlow(sim, total_bytes=10.0, rate_cap=0.0)


def test_invalid_controller_parameters_rejected():
    sim = Simulator()
    with pytest.raises(HardwareError):
        MemoryController(sim, 0, peak_bw_bytes_per_ns=0.0, channels=4)
    with pytest.raises(HardwareError):
        MemoryController(sim, 0, peak_bw_bytes_per_ns=1.0, channels=0)
