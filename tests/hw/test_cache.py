"""Tests for the detailed and analytic cache models."""

import pytest

from repro.errors import HardwareError
from repro.hw import IVY_BRIDGE, SANDY_BRIDGE
from repro.hw.cache import AnalyticCacheModel, CacheHierarchySim, SetAssociativeCache
from repro.hw.topology import MemoryRegion, PageSize
from repro.ops import MemBatch, PatternKind
from repro.units import CACHE_LINE_BYTES, KIB, MIB


def region(size, node=0, page=PageSize.SMALL_4K):
    return MemoryRegion(node=node, size_bytes=size, base=0, page_size=page)


# ----------------------------------------------------------------------
# Detailed set-associative simulator
# ----------------------------------------------------------------------
def test_cache_repeated_access_hits():
    cache = SetAssociativeCache(4 * KIB, ways=4)
    assert cache.access(0) is False  # cold miss
    assert cache.access(0) is True
    assert cache.access(32) is True  # same line
    assert cache.access(64) is False  # next line


def test_cache_capacity_eviction():
    cache = SetAssociativeCache(4 * KIB, ways=4)  # 64 lines
    for address in range(0, 8 * KIB, CACHE_LINE_BYTES):  # 128 lines
        cache.access(address)
    cache.reset_stats()
    # First lines were evicted.
    assert cache.access(0) is False


def test_cache_lru_within_set():
    # 2-way, 2-set cache: lines with same set index conflict.
    cache = SetAssociativeCache(4 * CACHE_LINE_BYTES, ways=2)
    sets = cache.sets
    a, b, c = 0, sets * CACHE_LINE_BYTES, 2 * sets * CACHE_LINE_BYTES
    cache.access(a)
    cache.access(b)
    cache.access(a)  # a is MRU
    cache.access(c)  # evicts b (LRU)
    assert cache.access(a) is True
    assert cache.access(b) is False


def test_cache_working_set_within_capacity_fully_hits():
    cache = SetAssociativeCache(64 * KIB, ways=8)
    addresses = list(range(0, 32 * KIB, CACHE_LINE_BYTES))
    for address in addresses:
        cache.access(address)
    cache.reset_stats()
    for _ in range(4):
        for address in addresses:
            cache.access(address)
    assert cache.hit_rate == 1.0


def test_cache_invalid_geometry_rejected():
    with pytest.raises(HardwareError):
        SetAssociativeCache(0, ways=4)
    with pytest.raises(HardwareError):
        SetAssociativeCache(100 * CACHE_LINE_BYTES, ways=7)


def test_hierarchy_serves_from_first_fitting_level():
    hierarchy = CacheHierarchySim(IVY_BRIDGE)
    assert hierarchy.access(0) == "dram"
    assert hierarchy.access(0) == "l1"


# ----------------------------------------------------------------------
# Analytic model
# ----------------------------------------------------------------------
def model(arch=IVY_BRIDGE):
    return AnalyticCacheModel(arch)


def test_chase_over_huge_array_all_misses():
    # The MemLat property (Section 4.4): array >> LLC => every access a miss.
    from repro.units import GIB

    r = region(8 * GIB)
    batch = MemBatch(r, accesses=10_000, pattern=PatternKind.CHASE)
    profile = model().resolve(batch)
    assert profile.demand_dram_loads / batch.accesses > 0.99
    assert profile.effective_mlp == 1.0
    assert profile.dram_bytes == pytest.approx(
        profile.demand_dram_loads * CACHE_LINE_BYTES
    )


def test_chase_within_l1_all_hits():
    r = region(16 * KIB)
    batch = MemBatch(r, accesses=1000, pattern=PatternKind.CHASE)
    profile = model().resolve(batch)
    assert profile.l1_hits == 1000
    assert profile.demand_dram_loads == 0


def test_multiple_chains_raise_mlp_up_to_mshr_limit():
    r = region(512 * MIB)
    for chains, expected in [(1, 1), (4, 4), (8, 8), (32, IVY_BRIDGE.mshr_count)]:
        batch = MemBatch(r, accesses=1000, pattern=PatternKind.CHASE, parallelism=chains)
        assert model().resolve(batch).effective_mlp == expected


def test_serialized_accesses_scale_inversely_with_mlp():
    r = region(512 * MIB)
    one = model().resolve(MemBatch(r, 1000, PatternKind.CHASE, parallelism=1))
    four = model().resolve(MemBatch(r, 1000, PatternKind.CHASE, parallelism=4))
    assert one.serialized_dram_accesses == pytest.approx(
        4 * four.serialized_dram_accesses
    )


def test_hit_fractions_sum_to_accesses():
    r = region(40 * MIB)  # straddles LLC capacity
    batch = MemBatch(r, accesses=10_000, pattern=PatternKind.RANDOM)
    profile = model().resolve(batch)
    total = (
        profile.l1_hits + profile.l2_hits + profile.l3_hits + profile.demand_dram_loads
    )
    assert total == pytest.approx(batch.accesses)


def test_footprint_override_controls_hit_rate():
    r = region(512 * MIB)
    hot = MemBatch(r, 1000, PatternKind.RANDOM, footprint_bytes=8 * KIB)
    profile = model().resolve(hot)
    assert profile.l1_hits == 1000


def test_sequential_prefetch_covers_most_misses():
    from repro.units import GIB

    r = region(8 * GIB)  # LLC-resident fraction negligible
    batch = MemBatch(r, accesses=80_000, pattern=PatternKind.SEQUENTIAL, stride_bytes=8)
    profile = model().resolve(batch)
    lines = 80_000 / 8
    assert profile.prefetched_lines == pytest.approx(
        lines * IVY_BRIDGE.prefetch_coverage, rel=0.01
    )
    assert profile.demand_dram_loads == pytest.approx(
        lines * (1 - IVY_BRIDGE.prefetch_coverage), rel=0.02
    )
    # All traffic still reaches DRAM.
    assert profile.dram_bytes == pytest.approx(lines * CACHE_LINE_BYTES, rel=0.01)
    # Within-line accesses hit L1.
    assert profile.l1_hits == pytest.approx(80_000 - lines)


def test_prefetched_lines_retire_as_l3_hits_in_pmc_view():
    r = region(512 * MIB)
    batch = MemBatch(r, accesses=8_000, pattern=PatternKind.SEQUENTIAL, stride_bytes=8)
    profile = model().resolve(batch)
    assert profile.pmc_l3_hits == pytest.approx(
        profile.l3_hits + profile.prefetched_lines
    )


def test_store_batch_charges_rfo_and_writeback_traffic():
    r = region(512 * MIB)
    load = model().resolve(MemBatch(r, 1000, PatternKind.RANDOM))
    store = model().resolve(MemBatch(r, 1000, PatternKind.RANDOM, is_store=True))
    assert store.dram_bytes == pytest.approx(2 * load.dram_bytes)
    assert store.pmc_l3_hits == 0.0  # load events do not count stores
    assert store.pmc_dram_loads == 0.0


def test_non_temporal_store_bypasses_cache_and_rfo():
    r = region(512 * MIB)
    batch = MemBatch(
        r, accesses=8_000, pattern=PatternKind.SEQUENTIAL, stride_bytes=8,
        is_store=True, non_temporal=True,
    )
    profile = model().resolve(batch)
    lines = 8_000 / 8
    assert profile.dram_bytes == pytest.approx(lines * CACHE_LINE_BYTES)
    assert profile.demand_dram_loads == 0.0


def test_non_temporal_load_rejected():
    r = region(MIB)
    batch = MemBatch(r, 10, PatternKind.SEQUENTIAL, non_temporal=True)
    with pytest.raises(HardwareError):
        model().resolve(batch)


def test_llc_sharing_reduces_effective_capacity():
    r = region(20 * MIB)
    alone = AnalyticCacheModel(IVY_BRIDGE)
    shared = AnalyticCacheModel(IVY_BRIDGE)
    shared.llc_sharers = 8
    p_alone = alone.resolve(MemBatch(r, 10_000, PatternKind.RANDOM))
    p_shared = shared.resolve(MemBatch(r, 10_000, PatternKind.RANDOM))
    assert p_shared.demand_dram_loads > p_alone.demand_dram_loads


def test_hugepages_eliminate_tlb_walks_for_memlat_sized_arrays():
    # Section 4.4: MemLat uses 2 MB hugepages to minimise TLB misses.
    small = region(512 * MIB, page=PageSize.SMALL_4K)
    huge = region(512 * MIB, page=PageSize.HUGE_2M)
    walks_small = model().resolve(MemBatch(small, 10_000, PatternKind.CHASE)).tlb_walks
    walks_huge = model().resolve(MemBatch(huge, 10_000, PatternKind.CHASE)).tlb_walks
    assert walks_small > 1000
    assert walks_huge == 0.0


def test_empty_batch_resolves_to_zeroes():
    r = region(MIB)
    profile = model().resolve(MemBatch(r, 0, PatternKind.RANDOM))
    assert profile.accesses == 0
    assert profile.dram_bytes == 0.0


def test_freed_region_rejected():
    r = region(MIB)
    r.freed = True
    with pytest.raises(HardwareError, match="use after free"):
        model().resolve(MemBatch(r, 10, PatternKind.RANDOM))


# ----------------------------------------------------------------------
# Cross-validation: analytic vs detailed simulator
# ----------------------------------------------------------------------
@pytest.mark.parametrize("footprint_mib", [1, 8, 64])
def test_analytic_matches_detailed_for_random_access(footprint_mib):
    """The capacity heuristic should track the functional LRU simulator."""
    import random as stdlib_random

    arch = SANDY_BRIDGE
    footprint = footprint_mib * MIB
    hierarchy = CacheHierarchySim(arch)
    rng = stdlib_random.Random(42)
    addresses = [
        rng.randrange(0, footprint // CACHE_LINE_BYTES) * CACHE_LINE_BYTES
        for _ in range(20_000)
    ]
    # Deterministic warmup: touch every line once so the steady state the
    # analytic model assumes (no cold misses) is reached.
    for line_base in range(0, footprint, CACHE_LINE_BYTES):
        hierarchy.access(line_base)
    served = {"l1": 0, "l2": 0, "l3": 0, "dram": 0}
    for address in addresses:
        served[hierarchy.access(address)] += 1
    measured_miss_rate = served["dram"] / 20_000

    r = region(footprint)
    profile = AnalyticCacheModel(arch).resolve(
        MemBatch(r, 20_000, PatternKind.RANDOM)
    )
    analytic_miss_rate = profile.demand_dram_loads / 20_000
    assert analytic_miss_rate == pytest.approx(measured_miss_rate, abs=0.08)
