"""Tests for machine assembly and topology wiring."""

import pytest

from repro.errors import HardwareError
from repro.hw import ALL_ARCHS, IVY_BRIDGE, SANDY_BRIDGE, Machine
from repro.sim import Simulator
from repro.units import GIB, MIB


def make_machine(arch=IVY_BRIDGE, **kwargs):
    return Machine(Simulator(seed=5), arch, **kwargs)


@pytest.mark.parametrize("arch", ALL_ARCHS, ids=lambda a: a.name)
def test_logical_core_inventory(arch):
    machine = Machine(Simulator(seed=1), arch)
    expected = arch.sockets * arch.cores_per_socket * arch.smt
    assert len(machine.cores) == expected
    assert len(machine.pmcs) == expected
    assert machine.logical_cores_per_socket == arch.cores_per_socket * arch.smt


def test_core_socket_assignment():
    machine = make_machine()
    per_socket = machine.logical_cores_per_socket
    assert machine.core(0).socket == 0
    assert machine.core(per_socket - 1).socket == 0
    assert machine.core(per_socket).socket == 1


def test_physical_core_mapping_wraps_hyperthreads():
    machine = make_machine()
    physical = IVY_BRIDGE.cores_per_socket
    assert machine.physical_core_of(0) == 0
    assert machine.physical_core_of(physical) == 0  # second HT context
    assert machine.physical_core_of(1) == 1
    # Second socket restarts the mapping.
    assert machine.physical_core_of(machine.logical_cores_per_socket) == 0


def test_cores_of_socket_partition():
    machine = make_machine()
    socket0 = machine.cores_of_socket(0)
    socket1 = machine.cores_of_socket(1)
    assert len(socket0) == len(socket1) == machine.logical_cores_per_socket
    assert not set(id(c) for c in socket0) & set(id(c) for c in socket1)


def test_one_controller_and_node_per_socket():
    machine = make_machine()
    assert len(machine.controllers) == IVY_BRIDGE.sockets
    assert len(machine.nodes) == IVY_BRIDGE.sockets
    assert machine.controller(1).node == 1


def test_allocate_validates_node():
    machine = make_machine()
    with pytest.raises(HardwareError, match="no such NUMA node"):
        machine.allocate(MIB, node=7)


def test_allocate_and_free_roundtrip():
    machine = make_machine()
    region = machine.allocate(MIB, node=1, label="x")
    assert region.node == 1
    machine.free(region)
    assert region.freed


def test_latency_without_jitter_is_table2_average():
    machine = make_machine()
    assert machine.dram_latency_ns(0, 0) == IVY_BRIDGE.dram_local.avg_ns
    assert machine.dram_latency_ns(0, 1) == IVY_BRIDGE.dram_remote.avg_ns
    assert machine.dram_latency_ns(1, 1) == IVY_BRIDGE.dram_local.avg_ns


def test_latency_jitter_stays_inside_table2_ranges():
    for seed in range(10):
        machine = Machine(Simulator(seed=seed), SANDY_BRIDGE,
                          latency_jitter=True)
        local = machine.dram_latency_ns(0, 0)
        remote = machine.dram_latency_ns(0, 1)
        assert SANDY_BRIDGE.dram_local.min_ns <= local <= SANDY_BRIDGE.dram_local.max_ns
        assert SANDY_BRIDGE.dram_remote.min_ns <= remote <= SANDY_BRIDGE.dram_remote.max_ns


def test_dvfs_starts_disabled():
    machine = make_machine()
    assert machine.dvfs.enabled is False
    assert machine.dvfs.nominal_ghz == IVY_BRIDGE.freq_ghz


def test_dram_capacity_configurable():
    machine = Machine(Simulator(seed=1), IVY_BRIDGE, dram_per_node_bytes=GIB)
    machine.allocate(GIB // 2, node=0)
    with pytest.raises(HardwareError, match="out of memory"):
        machine.allocate(GIB, node=0)


def test_set_llc_sharers_validation():
    machine = make_machine()
    with pytest.raises(HardwareError):
        machine.set_llc_sharers(0, 0)
    machine.set_llc_sharers(0, 4)
    assert machine.cache_model(0).llc_sharers == 4
    assert machine.cache_model(1).llc_sharers == 1
