"""Tests for the performance-counter model."""

import pytest

from repro.errors import HardwareError
from repro.hw import HASWELL, IVY_BRIDGE, SANDY_BRIDGE
from repro.hw.pmc import PmcFile
from repro.sim import Simulator


EVENTS = IVY_BRIDGE.counter_events


def make_pmc(arch=IVY_BRIDGE, seed=1, core=0):
    sim = Simulator(seed=seed)
    pmc = PmcFile(sim, arch, core_id=core)
    pmc.program(arch.counter_events.all_events(), privileged=True)
    return pmc


def test_increment_and_true_value():
    pmc = make_pmc()
    pmc.increment(EVENTS.l3_hit, 100.0)
    pmc.increment(EVENTS.l3_hit, 50.0)
    assert pmc.true_value(EVENTS.l3_hit) == 150.0


def test_counters_cannot_decrease():
    pmc = make_pmc()
    with pytest.raises(HardwareError):
        pmc.increment(EVENTS.l3_hit, -1.0)


def test_unknown_event_rejected():
    pmc = make_pmc()
    with pytest.raises(HardwareError, match="does not exist"):
        pmc.increment("BOGUS_EVENT", 1.0)
    with pytest.raises(HardwareError, match="does not exist"):
        pmc.read("BOGUS_EVENT")


def test_sandy_bridge_event_namespace_differs():
    pmc = make_pmc(arch=SANDY_BRIDGE)
    pmc.increment("MEM_LOAD_UOPS_MISC_RETIRED:LLC_MISS", 5.0)
    with pytest.raises(HardwareError):
        pmc.increment("MEM_LOAD_UOPS_LLC_MISS_RETIRED:LOCAL_DRAM", 1.0)


def test_programming_requires_privilege():
    sim = Simulator()
    pmc = PmcFile(sim, IVY_BRIDGE, core_id=0)
    with pytest.raises(HardwareError, match="ring 0"):
        pmc.program(EVENTS.all_events(), privileged=False)


def test_reading_unprogrammed_event_rejected():
    sim = Simulator()
    pmc = PmcFile(sim, IVY_BRIDGE, core_id=0)
    pmc.program((EVENTS.l2_stalls,), privileged=True)
    with pytest.raises(HardwareError, match="not programmed"):
        pmc.read(EVENTS.l3_hit)


def test_reads_are_monotonic():
    pmc = make_pmc(arch=SANDY_BRIDGE)  # noisiest family
    event = SANDY_BRIDGE.counter_events.l2_stalls
    previous = 0.0
    for step in range(200):
        pmc.increment(event, 10.0)
        value = pmc.read(event)
        assert value >= previous
        previous = value


def test_read_tracks_true_value_within_fidelity():
    pmc = make_pmc(arch=IVY_BRIDGE)
    event = IVY_BRIDGE.counter_events.l3_hit
    pmc.increment(event, 1_000_000.0)
    observed = pmc.read(event)
    assert observed == pytest.approx(1_000_000.0, rel=0.05)


def test_bias_is_systematic_within_a_run():
    """Two large deltas on the same counter see the same scale factor."""
    pmc = make_pmc(arch=HASWELL, seed=3)
    event = HASWELL.counter_events.l2_stalls
    pmc.increment(event, 1_000_000.0)
    first = pmc.read(event)
    pmc.increment(event, 1_000_000.0)
    second = pmc.read(event) - first
    # Same bias, small white noise: deltas agree to ~3 sigma of read noise.
    assert second == pytest.approx(first, rel=0.06)


def test_bias_is_a_fixed_hardware_property_across_runs():
    """The same testbed miscounts identically on every run (the paper's
    per-family error bands persist across its 20 trials)."""
    event = IVY_BRIDGE.counter_events.l2_stalls
    biases = set()
    for seed in range(5):
        pmc = make_pmc(seed=seed)
        biases.add(pmc._bias[event])
    assert len(biases) == 1


def test_read_noise_differs_across_seeds():
    event = IVY_BRIDGE.counter_events.l2_stalls
    readings = set()
    for seed in range(5):
        pmc = make_pmc(seed=seed)
        pmc.increment(event, 1_000_000.0)
        readings.add(round(pmc.read(event), 3))
    assert len(readings) > 1


def test_bias_differs_across_cores():
    sim = Simulator(seed=9)
    event = IVY_BRIDGE.counter_events.l2_stalls
    values = set()
    for core in range(4):
        pmc = PmcFile(sim, IVY_BRIDGE, core_id=core)
        pmc.program((event,), privileged=True)
        pmc.increment(event, 1_000_000.0)
        values.add(round(pmc.read(event), 3))
    assert len(values) > 1


def test_sandy_bridge_noisier_than_ivy_bridge():
    """Footnote 6: Sandy Bridge counters are less reliable."""
    def spread(arch):
        event = arch.counter_events.l2_stalls
        deviations = []
        for seed in range(30):
            pmc = make_pmc(arch=arch, seed=seed)
            pmc.increment(event, 1_000_000.0)
            deviations.append(abs(pmc.read(event) - 1_000_000.0) / 1_000_000.0)
        return sum(deviations) / len(deviations)

    assert spread(SANDY_BRIDGE) > 2 * spread(IVY_BRIDGE)
