"""Tests for architecture specs: Table 1 events and Table 2 latencies."""

import pytest

from repro.errors import UnsupportedFeatureError
from repro.hw import ALL_ARCHS, HASWELL, IVY_BRIDGE, SANDY_BRIDGE, arch_by_name


def test_three_testbeds_in_paper_order():
    assert [a.name for a in ALL_ARCHS] == ["sandy-bridge", "ivy-bridge", "haswell"]


def test_table2_latencies_match_paper():
    # Table 2, average columns.
    assert SANDY_BRIDGE.dram_local.avg_ns == 97.0
    assert SANDY_BRIDGE.dram_remote.avg_ns == 163.0
    assert IVY_BRIDGE.dram_local.avg_ns == 87.0
    assert IVY_BRIDGE.dram_remote.avg_ns == 176.0
    assert HASWELL.dram_local.avg_ns == 120.0
    assert HASWELL.dram_remote.avg_ns == 175.0


def test_table2_min_max_ranges():
    assert (SANDY_BRIDGE.dram_remote.min_ns, SANDY_BRIDGE.dram_remote.max_ns) == (158.0, 165.0)
    assert (IVY_BRIDGE.dram_remote.min_ns, IVY_BRIDGE.dram_remote.max_ns) == (172.0, 185.0)
    assert (HASWELL.dram_local.min_ns, HASWELL.dram_local.max_ns) == (120.0, 120.0)


def test_section41_frequencies_and_core_counts():
    assert SANDY_BRIDGE.freq_ghz == 2.1 and SANDY_BRIDGE.total_cores == 16
    assert IVY_BRIDGE.freq_ghz == 2.2 and IVY_BRIDGE.total_cores == 20
    assert HASWELL.freq_ghz == 2.3 and HASWELL.total_cores == 20


def test_table1_sandy_bridge_events():
    events = SANDY_BRIDGE.counter_events
    assert events.l2_stalls == "CYCLE_ACTIVITY:STALLS_L2_PENDING"
    assert events.l3_hit == "MEM_LOAD_UOPS_RETIRED:L3_HIT"
    assert events.l3_miss_combined == "MEM_LOAD_UOPS_MISC_RETIRED:LLC_MISS"
    assert not events.has_local_remote_split


def test_table1_ivy_bridge_events():
    events = IVY_BRIDGE.counter_events
    assert events.l3_hit == "MEM_LOAD_UOPS_LLC_HIT_RETIRED:XSNP_NONE"
    assert events.l3_miss_local == "MEM_LOAD_UOPS_LLC_MISS_RETIRED:LOCAL_DRAM"
    assert events.l3_miss_remote == "MEM_LOAD_UOPS_LLC_MISS_RETIRED:REMOTE_DRAM"
    assert events.has_local_remote_split


def test_table1_haswell_events_renamed_llc_to_l3():
    events = HASWELL.counter_events
    assert events.l3_hit == "MEM_LOAD_UOPS_L3_HIT_RETIRED:XSNP_NONE"
    assert events.l3_miss_local == "MEM_LOAD_UOPS_L3_MISS_RETIRED:LOCAL_DRAM"
    assert events.has_local_remote_split


def test_sandy_bridge_cannot_split_local_remote():
    with pytest.raises(UnsupportedFeatureError):
        SANDY_BRIDGE.require_local_remote_counters()
    IVY_BRIDGE.require_local_remote_counters()
    HASWELL.require_local_remote_counters()


def test_arch_lookup_by_name_and_alias():
    assert arch_by_name("ivy-bridge") is IVY_BRIDGE
    assert arch_by_name("IvyBridge") is IVY_BRIDGE
    assert arch_by_name("sandy") is SANDY_BRIDGE
    assert arch_by_name("hsw") is HASWELL
    with pytest.raises(KeyError):
        arch_by_name("skylake")


def test_counter_fidelity_orders_families_as_footnote6():
    # Sandy Bridge counters are the least reliable, Ivy Bridge the most.
    assert (
        SANDY_BRIDGE.counter_fidelity.bias_sigma
        > HASWELL.counter_fidelity.bias_sigma
        > IVY_BRIDGE.counter_fidelity.bias_sigma
    )


def test_clock_domain_conversions():
    clock = IVY_BRIDGE.clock
    assert clock.ns_to_cycles(10.0) == pytest.approx(22.0)
    assert clock.cycles_to_ns(22.0) == pytest.approx(10.0)
