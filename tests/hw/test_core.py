"""Tests for the core execution engine."""

from types import SimpleNamespace

import pytest

from repro.hw import IVY_BRIDGE, Machine
from repro.hw.core import OpInterrupted
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.hw.topology import PageSize
from repro.ops import Commit, Compute, Flush, FlushOpt, MemBatch, PatternKind, Spin
from repro.sim import Simulator
from repro.units import GIB, MIB


def make_machine(arch=IVY_BRIDGE, seed=1):
    sim = Simulator(seed=seed)
    return Machine(sim, arch)


def fake_thread():
    return SimpleNamespace(outstanding_flushes=[])


def run_op(machine, op, core_id=0, interrupt_at=None, thread=None):
    """Drive one op to completion; returns (result, interruption, duration)."""
    core = machine.core(core_id)
    thread = thread or fake_thread()
    outcome = {}
    start = machine.sim.now

    def proc():
        try:
            outcome["result"] = yield from core.execute(thread, op)
        except OpInterrupted as interrupted:
            outcome["interrupted"] = interrupted

    process = machine.sim.spawn(proc())
    if interrupt_at is not None:
        machine.sim.schedule(interrupt_at, lambda: process.interrupt("sig"))
    machine.sim.run()
    return outcome.get("result"), outcome.get("interrupted"), machine.sim.now - start


def chase_batch(machine, accesses=1000, node=0, chains=1, size=8 * GIB):
    region = machine.allocate(size, node=node, page_size=PageSize.HUGE_2M)
    return MemBatch(
        region, accesses=accesses, pattern=PatternKind.CHASE, parallelism=chains
    )


def test_compute_duration_is_cycles_over_frequency():
    machine = make_machine()
    result, _, duration = run_op(machine, Compute(2200.0))
    assert duration == pytest.approx(1000.0)  # 2200 cycles @ 2.2 GHz
    assert result.duration_ns == pytest.approx(1000.0)


def test_chase_batch_local_latency():
    machine = make_machine()
    batch = chase_batch(machine, accesses=1000, node=0)
    _, _, duration = run_op(machine, batch)
    # ~all misses at 87 ns local latency; tiny LLC-resident fraction.
    assert duration == pytest.approx(1000 * 87.0, rel=0.02)


def test_chase_batch_remote_latency_slower():
    machine = make_machine()
    batch = chase_batch(machine, accesses=1000, node=1)
    _, _, duration = run_op(machine, batch)
    assert duration == pytest.approx(1000 * 176.0, rel=0.02)


def test_parallel_chains_divide_duration():
    machine = make_machine()
    _, _, one = run_op(machine, chase_batch(machine, accesses=4000, chains=1))
    machine2 = make_machine()
    _, _, four = run_op(machine2, chase_batch(machine2, accesses=4000, chains=4))
    assert one / four == pytest.approx(4.0, rel=0.05)


def test_stall_counter_matches_memory_wait_for_pure_chase():
    machine = make_machine()
    batch = chase_batch(machine, accesses=1000)
    _, _, duration = run_op(machine, batch)
    stalls = machine.pmc(0).true_value(IVY_BRIDGE.counter_events.l2_stalls)
    assert stalls == pytest.approx(duration * IVY_BRIDGE.freq_ghz, rel=0.01)


def test_miss_counter_routed_to_local_or_remote_event():
    machine = make_machine()
    run_op(machine, chase_batch(machine, accesses=1000, node=0))
    events = IVY_BRIDGE.counter_events
    local = machine.pmc(0).true_value(events.l3_miss_local)
    remote = machine.pmc(0).true_value(events.l3_miss_remote)
    assert local > 900 and remote == 0.0

    machine2 = make_machine()
    run_op(machine2, chase_batch(machine2, accesses=1000, node=1))
    assert machine2.pmc(0).true_value(events.l3_miss_remote) > 900
    assert machine2.pmc(0).true_value(events.l3_miss_local) == 0.0


def test_compute_interleaved_with_memory_adds_time():
    machine = make_machine()
    region = machine.allocate(8 * GIB, node=0, page_size=PageSize.HUGE_2M)
    plain = MemBatch(region, 1000, PatternKind.CHASE)
    busy = MemBatch(region, 1000, PatternKind.CHASE, compute_cycles_per_access=220.0)
    _, _, d_plain = run_op(machine, plain)
    _, _, d_busy = run_op(machine, busy)
    assert d_busy - d_plain == pytest.approx(1000 * 100.0, rel=0.02)


def test_overlap_hides_memory_wait_under_compute():
    machine = make_machine()
    region = machine.allocate(8 * GIB, node=0, page_size=PageSize.HUGE_2M)
    no_overlap = MemBatch(
        region, 1000, PatternKind.CHASE, compute_cycles_per_access=220.0, overlap=0.0
    )
    with_overlap = MemBatch(
        region, 1000, PatternKind.CHASE, compute_cycles_per_access=220.0, overlap=0.5
    )
    _, _, d0 = run_op(machine, no_overlap)
    _, _, d1 = run_op(machine, with_overlap)
    assert d1 < d0
    # Overlap also reduces recorded stall cycles.
    assert machine.core(0).stats.stall_ns < d0 + d1


def test_interrupt_mid_batch_partial_accounting_and_remainder():
    machine = make_machine()
    batch = chase_batch(machine, accesses=1000)
    _, interrupted, elapsed = run_op(machine, batch, interrupt_at=43_500.0)
    assert interrupted is not None
    assert interrupted.payload == "sig"
    assert elapsed == pytest.approx(43_500.0)
    remainder = interrupted.remainder
    assert remainder is not None
    assert remainder.accesses == pytest.approx(500, abs=20)
    # Partial PMC accounting: about half the misses recorded.
    misses = machine.pmc(0).true_value(IVY_BRIDGE.counter_events.l3_miss_local)
    assert misses == pytest.approx(480, abs=40)


def test_interrupted_then_resumed_batch_totals_match_uninterrupted():
    machine = make_machine()
    batch = chase_batch(machine, accesses=1000)
    _, interrupted, _ = run_op(machine, batch, interrupt_at=30_000.0)
    run_op(machine, interrupted.remainder)
    total = machine.sim.now
    machine2 = make_machine()
    _, _, clean = run_op(machine2, chase_batch(machine2, accesses=1000))
    assert total == pytest.approx(clean, rel=0.03)
    misses = machine.pmc(0).true_value(IVY_BRIDGE.counter_events.l3_miss_local)
    misses_clean = machine2.pmc(0).true_value(IVY_BRIDGE.counter_events.l3_miss_local)
    assert misses == pytest.approx(misses_clean, rel=0.05)


def test_streaming_store_is_bandwidth_bound():
    machine = make_machine()
    region = machine.allocate(512 * MIB, node=0)
    lines = 100_000
    batch = MemBatch(
        region,
        accesses=lines * 8,
        pattern=PatternKind.SEQUENTIAL,
        stride_bytes=8,
        is_store=True,
        non_temporal=True,
    )
    _, _, duration = run_op(machine, batch)
    expected = lines * 64 / IVY_BRIDGE.peak_bw_bytes_per_ns
    assert duration == pytest.approx(expected, rel=0.15)
    # Posted stores do not accrue load-stall cycles.
    assert machine.pmc(0).true_value(IVY_BRIDGE.counter_events.l2_stalls) == 0.0


def test_throttling_slows_batch_and_grows_true_stalls():
    fast = make_machine()
    batch = chase_batch(fast, accesses=20_000, chains=10)
    _, _, d_fast = run_op(fast, batch)

    slow = make_machine()
    slow.controller(0).program_throttle_register(
        THROTTLE_REGISTER_MAX // 32, privileged=True
    )
    batch2 = chase_batch(slow, accesses=20_000, chains=10)
    _, _, d_slow = run_op(slow, batch2)
    assert d_slow > 2 * d_fast
    stalls_fast = fast.pmc(0).true_value(IVY_BRIDGE.counter_events.l2_stalls)
    stalls_slow = slow.pmc(0).true_value(IVY_BRIDGE.counter_events.l2_stalls)
    assert stalls_slow > 2 * stalls_fast


def test_spin_duration_exact_even_with_dvfs():
    machine = make_machine()
    machine.dvfs.enable()
    _, _, duration = run_op(machine, Spin(12_345.0))
    assert duration == pytest.approx(12_345.0)


def test_dvfs_stretches_compute():
    machine = make_machine()
    machine.dvfs.enable()
    _, _, duration = run_op(machine, Compute(220_000.0))
    assert duration > 100_000.0  # nominal would be exactly 100 us


def test_clflush_serializes_writebacks():
    machine = make_machine()
    region = machine.allocate(MIB, node=0, persistent=True)
    _, _, duration = run_op(machine, Flush(region, lines=10))
    assert duration == pytest.approx(10 * 87.0)


def test_clflushopt_plus_commit_allows_write_parallelism():
    machine = make_machine()
    region = machine.allocate(MIB, node=0, persistent=True)
    thread = fake_thread()
    for _ in range(10):
        run_op(machine, FlushOpt(region, lines=1), thread=thread)
    start = machine.sim.now
    run_op(machine, Commit(), thread=thread)
    commit_wait = machine.sim.now - start
    # All ten writebacks overlapped: the barrier waits ~one latency, not ten.
    assert commit_wait < 2 * 87.0
    assert thread.outstanding_flushes == []


def test_commit_with_no_outstanding_flushes_is_free():
    machine = make_machine()
    _, _, duration = run_op(machine, Commit())
    assert duration == 0.0


def test_empty_batch_completes_instantly():
    machine = make_machine()
    region = machine.allocate(MIB, node=0)
    _, _, duration = run_op(machine, MemBatch(region, 0, PatternKind.RANDOM))
    assert duration == 0.0


def test_tsc_is_invariant_under_dvfs():
    machine = make_machine()
    machine.dvfs.enable()
    core = machine.core(0)
    machine.sim.run(until_ns=1000.0)
    assert core.tsc_ns() == 1000.0
    assert core.tsc_cycles() == pytest.approx(1000.0 * IVY_BRIDGE.freq_ghz)
