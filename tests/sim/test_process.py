"""Unit tests for generator-based processes and interrupts."""

import pytest

from repro.errors import SimulationError
from repro.sim import Condition, Interrupt, Simulator, Timeout


def test_timeout_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        log.append(("start", sim.now))
        yield Timeout(100.0)
        log.append(("after", sim.now))

    sim.spawn(proc())
    sim.run()
    assert log == [("start", 0.0), ("after", 100.0)]


def test_process_return_value_and_done_condition():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        return 42

    p = sim.spawn(proc())
    sim.run()
    assert p.done
    assert p.result == 42
    assert p.done_condition.fired
    assert p.done_condition.value == 42


def test_waiting_on_condition_yields_fired_value():
    sim = Simulator()
    cond = Condition(sim, name="data-ready")
    got = []

    def consumer():
        value = yield cond
        got.append((sim.now, value))

    def producer():
        yield Timeout(50.0)
        cond.fire("payload")

    sim.spawn(consumer())
    sim.spawn(producer())
    sim.run()
    assert got == [(50.0, "payload")]


def test_waiting_on_already_fired_condition_resumes_immediately():
    sim = Simulator()
    cond = Condition(sim)
    cond.fire("early")
    got = []

    def proc():
        value = yield cond
        got.append(value)

    sim.spawn(proc())
    sim.run()
    assert got == ["early"]


def test_condition_fires_once_only():
    sim = Simulator()
    cond = Condition(sim)
    cond.fire(1)
    with pytest.raises(SimulationError):
        cond.fire(2)


def test_multiple_waiters_all_resume_in_wait_order():
    sim = Simulator()
    cond = Condition(sim)
    order = []

    def proc(tag):
        yield cond
        order.append(tag)

    for tag in "abc":
        sim.spawn(proc(tag))
    sim.schedule(10.0, lambda: cond.fire(None))
    sim.run()
    assert order == ["a", "b", "c"]


def test_waiting_on_another_process():
    sim = Simulator()

    def child():
        yield Timeout(30.0)
        return "child-result"

    def parent():
        result = yield sim.spawn(child(), name="child")
        return (sim.now, result)

    p = sim.spawn(parent(), name="parent")
    sim.run()
    assert p.result == (30.0, "child-result")


def test_interrupt_during_timeout_delivers_payload():
    sim = Simulator()
    log = []

    def proc():
        try:
            yield Timeout(1000.0)
            log.append("uninterrupted")
        except Interrupt as intr:
            log.append(("interrupted", sim.now, intr.payload))
            yield Timeout(5.0)
            log.append(("resumed", sim.now))

    p = sim.spawn(proc())
    sim.schedule(100.0, lambda: p.interrupt("sig"))
    sim.run()
    assert log == [("interrupted", 100.0, "sig"), ("resumed", 105.0)]


def test_interrupt_during_condition_wait_removes_waiter():
    sim = Simulator()
    cond = Condition(sim)
    log = []

    def proc():
        try:
            yield cond
        except Interrupt:
            log.append("interrupted")

    p = sim.spawn(proc())
    sim.schedule(10.0, lambda: p.interrupt())
    sim.run()
    assert log == ["interrupted"]
    # Firing later must not try to resume the interrupted process.
    cond.fire(None)
    sim.run()
    assert log == ["interrupted"]


def test_interrupting_finished_process_is_a_noop():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)

    p = sim.spawn(proc())
    sim.run()
    assert p.done
    assert p.interrupt("late") is False


def test_unhandled_interrupt_marks_process_failed():
    sim = Simulator()

    def proc():
        yield Timeout(1000.0)

    def watcher(p):
        yield p.done_condition

    p = sim.spawn(proc())
    sim.spawn(watcher(p))
    sim.schedule(1.0, lambda: p.interrupt("boom"))
    sim.run()
    assert p.done
    assert isinstance(p.failure, Interrupt)


def test_unhandled_interrupt_without_watcher_propagates():
    sim = Simulator()

    def proc():
        yield Timeout(1000.0)

    p = sim.spawn(proc())
    sim.schedule(1.0, lambda: p.interrupt("boom"))
    with pytest.raises(Interrupt):
        sim.run()


def test_yielding_garbage_raises():
    sim = Simulator()

    def proc():
        yield "not-a-waitable"

    sim.spawn(proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_generator_exception_propagates():
    sim = Simulator()

    def proc():
        yield Timeout(1.0)
        raise ValueError("workload bug")

    sim.spawn(proc())
    with pytest.raises(ValueError, match="workload bug"):
        sim.run()


def test_nested_generators_with_yield_from():
    sim = Simulator()
    log = []

    def inner():
        yield Timeout(10.0)
        return "inner-value"

    def outer():
        value = yield from inner()
        log.append((sim.now, value))
        yield Timeout(5.0)
        log.append(("end", sim.now))

    sim.spawn(outer())
    sim.run()
    assert log == [(10.0, "inner-value"), ("end", 15.0)]


def test_interrupt_propagates_into_nested_generator():
    sim = Simulator()
    log = []

    def inner():
        try:
            yield Timeout(1000.0)
        except Interrupt as intr:
            log.append(("inner-caught", intr.payload))
            return "aborted"
        return "completed"

    def outer():
        result = yield from inner()
        log.append(("outer", result))

    p = sim.spawn(outer())
    sim.schedule(7.0, lambda: p.interrupt("sig"))
    sim.run()
    assert log == [("inner-caught", "sig"), ("outer", "aborted")]
