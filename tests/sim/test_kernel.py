"""Unit tests for the discrete-event kernel."""

import pytest

from repro.errors import SimulationError
from repro.sim import Simulator


def test_time_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_events_fire_in_time_order():
    sim = Simulator()
    fired = []
    sim.schedule(30.0, lambda: fired.append("c"))
    sim.schedule(10.0, lambda: fired.append("a"))
    sim.schedule(20.0, lambda: fired.append("b"))
    sim.run()
    assert fired == ["a", "b", "c"]
    assert sim.now == 30.0


def test_equal_time_events_fire_fifo():
    sim = Simulator()
    fired = []
    for tag in range(5):
        sim.schedule(10.0, lambda t=tag: fired.append(t))
    sim.run()
    assert fired == [0, 1, 2, 3, 4]


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.schedule(-1.0, lambda: None)


def test_schedule_in_past_rejected():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.schedule_at(5.0, lambda: None)


def test_cancelled_event_does_not_fire():
    sim = Simulator()
    fired = []
    event = sim.schedule(10.0, lambda: fired.append("x"))
    event.cancel()
    sim.run()
    assert fired == []
    assert event.cancelled and not event.fired


def test_cancel_is_idempotent():
    sim = Simulator()
    event = sim.schedule(10.0, lambda: None)
    event.cancel()
    event.cancel()
    sim.run()
    assert not event.fired


def test_run_until_advances_clock_without_dispatching_later_events():
    sim = Simulator()
    fired = []
    sim.schedule(10.0, lambda: fired.append("early"))
    sim.schedule(100.0, lambda: fired.append("late"))
    sim.run(until_ns=50.0)
    assert fired == ["early"]
    assert sim.now == 50.0
    sim.run()
    assert fired == ["early", "late"]


def test_run_until_with_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until_ns=123.0)
    assert sim.now == 123.0


def test_max_events_budget():
    sim = Simulator()
    fired = []
    for i in range(10):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))
    assert sim.run(max_events=3) == "max-events"
    assert fired == [0, 1, 2]


def test_run_reports_stop_reason():
    sim = Simulator()
    sim.schedule(10.0, lambda: None)
    sim.schedule(100.0, lambda: None)
    assert sim.run(until_ns=50.0) == "until"
    assert sim.run() == "drained"
    assert sim.run(until_ns=200.0) == "drained"
    assert sim.now == 200.0


def test_max_events_with_horizon_advances_clock_to_next_event():
    """When the budget stops a bounded run, time still moves forward.

    The clock lands on the earlier of the next pending event and the
    horizon — never past an undispatched event, never past the horizon.
    """
    sim = Simulator()
    for time_ns in (10.0, 20.0, 30.0, 40.0):
        sim.schedule(time_ns, lambda: None)
    assert sim.run(until_ns=100.0, max_events=2) == "max-events"
    assert sim.now == 30.0  # next pending event, inside the horizon
    # An event beyond the horizon outranks the budget: "until" stops first.
    assert sim.run(until_ns=25.0, max_events=0) == "until"
    assert sim.now == 30.0  # and the clock never moves backwards
    # Without a horizon the budget stop leaves the clock untouched.
    assert sim.run(max_events=0) == "max-events"
    assert sim.now == 30.0
    assert sim.run(until_ns=100.0) == "drained"
    assert sim.now == 100.0


def test_events_scheduled_during_dispatch_run_in_order():
    sim = Simulator()
    fired = []

    def outer():
        fired.append("outer")
        sim.schedule(0.0, lambda: fired.append("inner-now"))
        sim.schedule(5.0, lambda: fired.append("inner-later"))

    sim.schedule(10.0, outer)
    sim.schedule(12.0, lambda: fired.append("preexisting"))
    sim.run()
    assert fired == ["outer", "inner-now", "preexisting", "inner-later"]


def test_run_until_condition():
    sim = Simulator()
    counter = []
    for i in range(10):
        sim.schedule(float(i), lambda: counter.append(1))
    sim.run_until_condition(lambda: len(counter) >= 4)
    assert len(counter) == 4


def test_run_until_condition_deadlock_detected():
    sim = Simulator()
    with pytest.raises(SimulationError):
        sim.run_until_condition(lambda: False)


def test_pending_event_count_ignores_cancelled():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    cancelled = sim.schedule(2.0, lambda: None)
    cancelled.cancel()
    assert sim.pending_event_count == 1


def test_random_streams_are_deterministic_and_independent():
    a = Simulator(seed=7)
    b = Simulator(seed=7)
    assert a.random.stream("pmc").random() == b.random.stream("pmc").random()
    # Drawing from one stream must not perturb another.
    c = Simulator(seed=7)
    c.random.stream("other").random()
    assert (
        c.random.stream("pmc").random()
        == Simulator(seed=7).random.stream("pmc").random()
    )


def test_random_streams_differ_across_names_and_seeds():
    sim = Simulator(seed=7)
    assert sim.random.stream("a").random() != sim.random.stream("b").random()
    assert (
        Simulator(seed=1).random.stream("a").random()
        != Simulator(seed=2).random.stream("a").random()
    )
