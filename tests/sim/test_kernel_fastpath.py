"""Fast-path kernel behaviour: compaction, pooling, stop, path parity.

The kernel dispatches through a tight fast loop when no dispatch
observer is armed and falls back to the observable loop while one is.
These tests pin the contract that both paths are mechanically identical
(same event sequence, same clock, same counters) and that the
cancellation-hygiene machinery (live counters, threshold compaction,
event pooling) never changes observable behaviour.
"""

from repro.sim import Simulator
from repro.sim.kernel import _COMPACT_MIN_HEAP, _POOL_MAX


# ----------------------------------------------------------------------
# Heap compaction under cancellation-heavy load
# ----------------------------------------------------------------------


def test_cancel_heavy_workload_triggers_compaction_and_bounds_heap():
    sim = Simulator()
    events = [sim.schedule(1_000.0 + i, lambda: None) for i in range(4_000)]
    for event in events[:3_000]:
        event.cancel()
    assert sim.compactions >= 1
    # The heap physically dropped cancelled entries: it never holds more
    # than ~2x the live events (the >50% threshold invariant).
    assert len(sim._heap) < 4_000
    assert len(sim._heap) <= 2 * sim.pending_event_count + 1
    assert sim.pending_event_count == 1_000


def test_compaction_preserves_fifo_order_and_pending_counts():
    sim = Simulator()
    fired = []
    keep = []
    # Equal-time survivors interleaved with a compaction-triggering mass
    # of cancellations (two victims per keeper keeps the cancelled
    # fraction above the >50% threshold): FIFO tie-break order must
    # survive re-heapify.
    for i in range(2_000):
        victims = [sim.schedule(500.0, lambda: None) for _ in range(2)]
        keep.append(sim.schedule(500.0, lambda i=i: fired.append(i)))
        for victim in victims:
            victim.cancel()
    assert sim.compactions >= 1
    assert sim.pending_event_count == 2_000
    sim.run()
    assert fired == list(range(2_000))
    assert sim.pending_event_count == 0


def test_small_heaps_are_never_compacted():
    sim = Simulator()
    events = [sim.schedule(10.0, lambda: None) for i in range(100)]
    for event in events:
        event.cancel()
    # Under the size floor lazy cancellation stays lazy.
    assert sim.compactions == 0
    assert len(sim._heap) == 100
    sim.run()
    assert len(sim._heap) == 0


def test_compaction_mid_run_keeps_dispatch_loop_consistent():
    sim = Simulator()
    fired = []
    later = [
        sim.schedule(10_000.0 + i, lambda i=i: fired.append(i))
        for i in range(_COMPACT_MIN_HEAP + 500)
    ]

    def cancel_most():
        for event in later[: _COMPACT_MIN_HEAP + 200]:
            event.cancel()

    sim.schedule(1.0, cancel_most)
    assert sim.run() == "drained"
    assert sim.compactions >= 1
    assert fired == list(range(_COMPACT_MIN_HEAP + 200, _COMPACT_MIN_HEAP + 500))


# ----------------------------------------------------------------------
# Fast path vs observable path parity
# ----------------------------------------------------------------------


def _workload(sim, fired):
    def tick(tag, period, hops):
        fired.append(tag)
        if hops > 0:
            sim.schedule(period, lambda: tick(tag, period, hops - 1))

    for chain in range(7):
        sim.schedule(float(chain), lambda c=chain: tick(c, float(c + 2), 40))
    # Cancel/reschedule churn in the middle of the run.
    holder = {}

    def churn(round_no):
        if "deadline" in holder and holder["deadline"].pending:
            holder["deadline"].cancel()
        holder["deadline"] = sim.schedule(1_000.0, lambda: fired.append("dl"))
        if round_no < 25:
            sim.schedule(3.0, lambda: churn(round_no + 1))

    sim.schedule(0.5, lambda: churn(0))


def test_fast_and_observed_paths_dispatch_identical_sequences():
    fast_fired = []
    fast = Simulator(seed=3)
    _workload(fast, fast_fired)
    fast.run()

    observed_fired = []
    seen = []
    obs = Simulator(seed=3)
    _workload(obs, observed_fired)
    obs.dispatch_observer = lambda event: seen.append(event.time)
    obs.run()

    assert observed_fired == fast_fired
    assert obs.now == fast.now
    assert obs.events_dispatched == fast.events_dispatched
    assert len(seen) == obs.events_dispatched


def test_observer_armed_mid_run_switches_paths_without_skew():
    fired = []
    seen = []
    sim = Simulator()
    for i in range(20):
        sim.schedule(float(i + 1), lambda i=i: fired.append(i))

    def arm():
        sim.dispatch_observer = lambda event: seen.append(event)

    def disarm():
        sim.dispatch_observer = None

    sim.schedule(5.5, arm)
    sim.schedule(12.5, disarm)
    assert sim.run() == "drained"
    assert fired == list(range(20))
    # Events dispatched while armed were observed: indices 5..11 plus the
    # disarm event itself (the observer sees each event before its
    # callback runs, so disarming takes effect from the next dispatch).
    assert [e.time for e in seen] == [float(i + 1) for i in range(5, 12)] + [12.5]


def test_observer_sees_events_before_their_callback_fires():
    sim = Simulator()
    states = []
    sim.schedule(1.0, lambda: None)
    sim.dispatch_observer = lambda event: states.append(
        (event.fired, sim.now == event.time)
    )
    sim.run()
    assert states == [(False, True)]


# ----------------------------------------------------------------------
# Event pooling
# ----------------------------------------------------------------------


def test_fired_event_with_no_outside_reference_is_reused():
    sim = Simulator()
    first_id = id(sim.schedule(1.0, lambda: None))
    sim.run()
    recycled = sim.schedule(2.0, lambda: None)
    assert id(recycled) == first_id
    assert recycled.pending and not recycled.fired
    sim.run()


def test_held_event_is_never_recycled():
    sim = Simulator()
    held = sim.schedule(1.0, lambda: None)
    sim.run()
    fresh = sim.schedule(2.0, lambda: None)
    assert fresh is not held
    # The held handle still describes the event that fired.
    assert held.fired and not held.pending


def test_pool_reuse_keeps_handles_valid_across_generations():
    sim = Simulator()
    fired = []
    for round_no in range(5):
        events = [
            sim.schedule(float(i + 1), lambda r=round_no, i=i: fired.append((r, i)))
            for i in range(50)
        ]
        events[10].cancel()
        sim.run()
        assert events[10].cancelled and not events[10].fired
        assert all(e.fired for i, e in enumerate(events) if i != 10)
    expected = [
        (r, i) for r in range(5) for i in range(50) if i != 10
    ]
    assert fired == expected


def test_pool_is_bounded():
    sim = Simulator()
    for i in range(2 * _POOL_MAX):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert len(sim._free) <= _POOL_MAX


# ----------------------------------------------------------------------
# Stop requests
# ----------------------------------------------------------------------


def test_request_stop_from_callback_returns_stopped():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, lambda: fired.append("a"))
    sim.schedule(2.0, sim.request_stop)
    sim.schedule(3.0, lambda: fired.append("b"))
    assert sim.run() == "stopped"
    assert fired == ["a"]
    assert sim.now == 2.0
    # The stop was consumed; resuming dispatches the remainder.
    assert sim.run() == "drained"
    assert fired == ["a", "b"]


def test_cancel_stop_in_same_callback_revives_run():
    sim = Simulator()
    fired = []

    def stop_then_cancel():
        sim.request_stop()
        sim.cancel_stop()

    sim.schedule(1.0, stop_then_cancel)
    sim.schedule(2.0, lambda: fired.append("later"))
    assert sim.run() == "drained"
    assert fired == ["later"]


def test_request_stop_on_observable_path():
    sim = Simulator()
    fired = []
    sim.dispatch_observer = lambda event: None
    sim.schedule(1.0, sim.request_stop)
    sim.schedule(2.0, lambda: fired.append("x"))
    assert sim.run() == "stopped"
    assert fired == []
    assert sim.run() == "drained"
    assert fired == ["x"]


# ----------------------------------------------------------------------
# Live counters
# ----------------------------------------------------------------------


def test_pending_count_is_live_through_schedule_cancel_and_run():
    sim = Simulator()
    assert sim.pending_event_count == 0
    events = [sim.schedule(float(i + 1), lambda: None) for i in range(10)]
    assert sim.pending_event_count == 10
    events[0].cancel()
    events[1].cancel()
    assert sim.pending_event_count == 8
    assert sim.cancelled_event_count == 2
    sim.run(max_events=3)
    assert sim.pending_event_count == 5
    sim.run()
    assert sim.pending_event_count == 0
    assert sim.cancelled_event_count == 0


def test_cancel_after_fire_is_a_noop_for_counters():
    sim = Simulator()
    event = sim.schedule(1.0, lambda: None)
    sim.run()
    event.cancel()
    assert sim.pending_event_count == 0
    assert sim.cancelled_event_count == 0
    assert event.fired and not event.cancelled
