"""Tests for mutexes, condition variables, and delay propagation."""

import pytest

from repro.errors import DeadlockError, OsError
from repro.hw import IVY_BRIDGE, Machine
from repro.ops import (
    Compute,
    CondNotify,
    CondWait,
    JoinThread,
    MutexLock,
    MutexUnlock,
    Sleep,
    Spin,
    SpawnThread,
)
from repro.os import Mutex, SimOS
from repro.sim import Simulator


def make_os():
    sim = Simulator(seed=1)
    return SimOS(Machine(sim, IVY_BRIDGE))


def test_mutex_provides_mutual_exclusion():
    os = make_os()
    mutex = Mutex(os)
    trace = []

    def body(ctx, tag):
        yield MutexLock(mutex)
        trace.append((tag, "in", ctx.now_ns))
        yield Compute(2200.0)  # 1000 ns inside the critical section
        trace.append((tag, "out", ctx.now_ns))
        yield MutexUnlock(mutex)

    os.create_thread(body, args=("a",))
    os.create_thread(body, args=("b",))
    os.run_to_completion()
    # Critical sections must not overlap.
    assert trace[0][:2] == ("a", "in")
    assert trace[1][:2] == ("a", "out")
    assert trace[2][:2] == ("b", "in")
    assert trace[2][2] >= trace[1][2]


def test_mutex_fifo_handoff():
    os = make_os()
    mutex = Mutex(os)
    order = []

    def holder(ctx):
        yield MutexLock(mutex)
        yield Compute(22000.0)
        yield MutexUnlock(mutex)

    def waiter(ctx, tag, delay):
        yield Sleep(delay)
        yield MutexLock(mutex)
        order.append(tag)
        yield MutexUnlock(mutex)

    os.create_thread(holder)
    os.create_thread(waiter, args=("first", 100.0))
    os.create_thread(waiter, args=("second", 200.0))
    os.create_thread(waiter, args=("third", 300.0))
    os.run_to_completion()
    assert order == ["first", "second", "third"]


def test_delay_before_unlock_propagates_to_waiter():
    """The Figure 4(b) property: a holder's pre-release delay pushes the
    waiting thread's acquisition out by the same amount."""
    os = make_os()
    mutex = Mutex(os)
    acquired_at = {}

    def holder(ctx, spin_ns):
        yield MutexLock(mutex)
        yield Compute(2200.0)
        if spin_ns:
            yield Spin(spin_ns)  # delay injected inside the critical section
        yield MutexUnlock(mutex)

    def waiter(ctx):
        yield Sleep(10.0)  # ensure the holder grabs the lock first
        yield MutexLock(mutex)
        acquired_at["t"] = ctx.now_ns
        yield MutexUnlock(mutex)

    os.create_thread(holder, args=(0.0,))
    os.create_thread(waiter)
    os.run_to_completion()
    baseline = acquired_at["t"]

    os2 = make_os()
    mutex2 = Mutex(os2)
    acquired_at2 = {}

    def waiter2(ctx):
        yield Sleep(10.0)
        yield MutexLock(mutex2)
        acquired_at2["t"] = ctx.now_ns
        yield MutexUnlock(mutex2)

    os2.create_thread(holder.__wrapped__ if hasattr(holder, "__wrapped__") else holder, args=(5000.0,))
    # rebind mutex for second run
    def holder2(ctx, spin_ns):
        yield MutexLock(mutex2)
        yield Compute(2200.0)
        yield Spin(spin_ns)
        yield MutexUnlock(mutex2)

    os2.threads.clear()
    os2.create_thread(holder2, args=(5000.0,))
    os2.create_thread(waiter2)
    os2.run_to_completion()
    assert acquired_at2["t"] - baseline == pytest.approx(5000.0)


def test_unlock_by_non_owner_rejected():
    os = make_os()
    mutex = Mutex(os)

    def locker(ctx):
        yield MutexLock(mutex)
        yield Sleep(1000.0)

    def intruder(ctx):
        yield Sleep(100.0)
        yield MutexUnlock(mutex)

    os.create_thread(locker)
    os.create_thread(intruder)
    with pytest.raises(OsError, match="unlocking"):
        os.run_to_completion()


def test_self_deadlock_detected():
    os = make_os()
    mutex = Mutex(os)

    def body(ctx):
        yield MutexLock(mutex)
        yield MutexLock(mutex)

    os.create_thread(body)
    with pytest.raises(OsError, match="self-deadlock"):
        os.run_to_completion()


def test_deadlock_reported_when_lock_never_released():
    os = make_os()
    mutex = Mutex(os)

    def holder(ctx):
        yield MutexLock(mutex)
        return "kept it"

    def waiter(ctx):
        yield Sleep(10.0)
        yield MutexLock(mutex)

    os.create_thread(holder)
    os.create_thread(waiter)
    with pytest.raises(DeadlockError):
        os.run_to_completion()


def test_mutex_contention_stats():
    os = make_os()
    mutex = Mutex(os)

    def body(ctx):
        for _ in range(5):
            yield MutexLock(mutex)
            yield Compute(2200.0)
            yield MutexUnlock(mutex)

    os.create_thread(body)
    os.create_thread(body)
    os.run_to_completion()
    assert mutex.acquisitions == 10
    assert mutex.contended_acquisitions >= 1


def test_condvar_wait_notify():
    os = make_os()
    mutex = Mutex(os)
    from repro.os import CondVar

    cond = CondVar(os)
    log = []

    def consumer(ctx):
        yield MutexLock(mutex)
        yield CondWait(cond, mutex)
        log.append(("woke", ctx.now_ns))
        yield MutexUnlock(mutex)

    def producer(ctx):
        yield Sleep(500.0)
        woken = yield CondNotify(cond)
        log.append(("notified", woken))

    os.create_thread(consumer)
    os.create_thread(producer)
    os.run_to_completion()
    assert ("notified", 1) in log
    woke = [entry for entry in log if entry[0] == "woke"]
    assert woke and woke[0][1] >= 500.0


def test_condvar_notify_all():
    os = make_os()
    mutex = Mutex(os)
    from repro.os import CondVar

    cond = CondVar(os)
    woken = []

    def consumer(ctx, tag):
        yield MutexLock(mutex)
        yield CondWait(cond, mutex)
        woken.append(tag)
        yield MutexUnlock(mutex)

    def producer(ctx):
        yield Sleep(500.0)
        count = yield CondNotify(cond, notify_all=True)
        return count

    for tag in range(3):
        os.create_thread(consumer, args=(tag,))
    producer_thread = os.create_thread(producer)
    os.run_to_completion()
    assert sorted(woken) == [0, 1, 2]
    assert producer_thread.result == 3


def test_condvar_wait_without_mutex_rejected():
    os = make_os()
    mutex = Mutex(os)
    from repro.os import CondVar

    cond = CondVar(os)

    def body(ctx):
        yield CondWait(cond, mutex)

    os.create_thread(body)
    with pytest.raises(OsError, match="without holding"):
        os.run_to_completion()


def test_multithreaded_benchmark_shape_runs():
    """N threads x K critical sections completes without deadlock."""
    os = make_os()
    mutex = Mutex(os)

    def body(ctx):
        for _ in range(50):
            yield MutexLock(mutex)
            yield Compute(220.0)
            yield MutexUnlock(mutex)
            yield Compute(220.0)

    def main(ctx):
        workers = []
        for index in range(4):
            workers.append((yield SpawnThread(body, name=f"w{index}")))
        for worker in workers:
            yield JoinThread(worker)

    os.create_thread(main)
    os.run_to_completion()
    assert mutex.acquisitions == 200
