"""Tests for thread lifecycle, scheduling, and NUMA policy."""

import pytest

from repro.errors import OsError
from repro.hw import IVY_BRIDGE, Machine
from repro.ops import Compute, JoinThread, Sleep, SpawnThread
from repro.os import SimOS
from repro.sim import Simulator


def make_os(arch=IVY_BRIDGE, **kwargs):
    sim = Simulator(seed=1)
    return SimOS(Machine(sim, arch), **kwargs)


def test_simple_thread_runs_and_returns():
    os = make_os()

    def body(ctx):
        yield Compute(2200.0)
        return "done"

    thread = os.create_thread(body, name="worker")
    os.run_to_completion()
    assert thread.finished
    assert thread.result == "done"
    assert os.sim.now == pytest.approx(1000.0)


def test_threads_pinned_to_requested_socket():
    os = make_os()

    def body(ctx):
        yield Compute(1.0)

    t0 = os.create_thread(body, cpu_node=0)
    t1 = os.create_thread(body, cpu_node=1)
    assert t0.socket == 0
    assert t1.socket == 1
    os.run_to_completion()


def test_default_cpu_node_honoured():
    os = make_os(default_cpu_node=1)

    def body(ctx):
        yield Compute(1.0)

    thread = os.create_thread(body)
    assert thread.socket == 1
    os.run_to_completion()


def test_threads_get_distinct_physical_cores_first():
    os = make_os()

    def body(ctx):
        yield Compute(1.0)

    threads = [os.create_thread(body) for _ in range(IVY_BRIDGE.cores_per_socket)]
    physical = {os.machine.physical_core_of(t.core.core_id) for t in threads}
    assert len(physical) == IVY_BRIDGE.cores_per_socket
    os.run_to_completion()


def test_core_exhaustion_raises():
    os = make_os()

    def body(ctx):
        yield Sleep(1e9)

    for _ in range(IVY_BRIDGE.cores_per_socket * IVY_BRIDGE.smt):
        os.create_thread(body, cpu_node=0)
    with pytest.raises(OsError, match="no free logical cores"):
        os.create_thread(body, cpu_node=0)


def test_cores_recycled_after_thread_exit():
    os = make_os()

    def body(ctx):
        yield Compute(1.0)

    total = IVY_BRIDGE.cores_per_socket * IVY_BRIDGE.smt
    for _ in range(total):
        os.create_thread(body, cpu_node=0)
    os.run_to_completion()
    # All cores free again.
    for _ in range(total):
        os.create_thread(body, cpu_node=0)
    os.run_to_completion()


def test_malloc_follows_local_policy_by_default():
    os = make_os()
    seen = {}

    def body(ctx):
        seen["region"] = ctx.malloc(4096)
        yield Compute(1.0)

    os.create_thread(body, cpu_node=1)
    os.run_to_completion()
    assert seen["region"].node == 1


def test_membind_policy_forces_remote_allocation():
    # numactl --cpunodebind=0 --membind=1: validation Conf_2 (Section 4.3).
    os = make_os(default_cpu_node=0, default_mem_node=1)
    seen = {}

    def body(ctx):
        seen["region"] = ctx.malloc(4096)
        yield Compute(1.0)

    thread = os.create_thread(body)
    os.run_to_completion()
    assert thread.socket == 0
    assert seen["region"].node == 1


def test_spawn_and_join_from_within_body():
    os = make_os()
    log = []

    def child(ctx, tag):
        yield Compute(2200.0)
        return f"child-{tag}"

    def parent(ctx):
        t = yield SpawnThread(child, name="kid", args=("a",))
        result = yield JoinThread(t)
        log.append((ctx.now_ns, result))

    os.create_thread(parent)
    os.run_to_completion()
    assert len(log) == 1
    assert log[0][0] == pytest.approx(1000.0)
    assert log[0][1] == "child-a"


def test_join_already_finished_thread():
    os = make_os()

    def child(ctx):
        yield Compute(220.0)
        return 7

    def parent(ctx):
        t = yield SpawnThread(child)
        yield Sleep(10_000.0)
        value = yield JoinThread(t)
        return value

    parent_thread = os.create_thread(parent)
    os.run_to_completion()
    assert parent_thread.result == 7


def test_sleep_duration():
    os = make_os()

    def body(ctx):
        yield Sleep(123_456.0)

    os.create_thread(body)
    os.run_to_completion()
    assert os.sim.now == pytest.approx(123_456.0)


def test_thread_callbacks_fire():
    os = make_os()
    events = []
    os.thread_created_callbacks.append(lambda t: events.append(("created", t.name)))
    os.thread_finished_callbacks.append(lambda t: events.append(("finished", t.name)))

    def body(ctx):
        yield Compute(1.0)

    os.create_thread(body, name="observed")
    os.run_to_completion()
    assert events == [("created", "observed"), ("finished", "observed")]


def test_daemon_thread_does_not_block_completion():
    os = make_os()

    def daemon(ctx):
        while True:
            yield Sleep(1000.0)

    def body(ctx):
        yield Compute(2200.0)

    os.create_thread(daemon, name="monitor", daemon=True)
    os.create_thread(body)
    os.run_to_completion()
    assert os.sim.now == pytest.approx(1000.0)


def test_context_rng_streams_are_per_thread():
    os = make_os()
    draws = {}

    def body(ctx, key):
        draws[key] = ctx.rng("data").random()
        yield Compute(1.0)

    os.create_thread(body, args=("a",))
    os.create_thread(body, args=("b",))
    os.run_to_completion()
    assert draws["a"] != draws["b"]
