"""Tests for the cyclic barrier (the OpenMP-primitive extension)."""

import pytest

from repro.errors import OsError
from repro.hw import IVY_BRIDGE, Machine
from repro.ops import BarrierWait, Compute, Sleep, Spin
from repro.os import Barrier, SimOS, Signal
from repro.sim import Simulator


def make_os():
    return SimOS(Machine(Simulator(seed=1), IVY_BRIDGE))


def test_barrier_releases_all_parties_together():
    os = make_os()
    barrier = Barrier(os, parties=3)
    released = []

    def body(ctx, delay):
        yield Sleep(delay)
        generation = yield BarrierWait(barrier)
        released.append((ctx.now_ns, generation))

    for delay in (100.0, 500.0, 900.0):
        os.create_thread(body, args=(delay,))
    os.run_to_completion()
    times = [t for t, _ in released]
    assert all(t == pytest.approx(900.0) for t in times)
    assert all(generation == 1 for _, generation in released)


def test_barrier_is_cyclic():
    os = make_os()
    barrier = Barrier(os, parties=2)
    generations = []

    def body(ctx):
        for _ in range(3):
            yield Compute(220.0)
            generation = yield BarrierWait(barrier)
            generations.append(generation)

    os.create_thread(body)
    os.create_thread(body)
    os.run_to_completion()
    assert sorted(generations) == [1, 1, 2, 2, 3, 3]


def test_single_party_barrier_never_blocks():
    os = make_os()
    barrier = Barrier(os, parties=1)

    def body(ctx):
        for _ in range(5):
            yield BarrierWait(barrier)

    os.create_thread(body)
    os.run_to_completion()
    assert barrier.generation == 5


def test_slowest_thread_gates_the_barrier():
    os = make_os()
    barrier = Barrier(os, parties=2)
    out = {}

    def fast(ctx):
        yield BarrierWait(barrier)
        out["fast_released"] = ctx.now_ns

    def slow(ctx):
        yield Compute(2.2e6)  # 1 ms
        yield BarrierWait(barrier)

    os.create_thread(fast)
    os.create_thread(slow)
    os.run_to_completion()
    assert out["fast_released"] == pytest.approx(1e6)


def test_barrier_reentry_detected():
    # A thread arriving twice in one generation is a bug in the workload.
    os = make_os()
    barrier = Barrier(os, parties=3)

    def body(ctx):
        yield BarrierWait(barrier)

    def cheat(ctx):
        # Direct second arrival while still registered: simulate by
        # calling _wait twice interleaved.
        yield BarrierWait(barrier)

    os.create_thread(body)
    # Manually register the same thread twice.
    thread = os.create_thread(cheat)
    os.sim.run(until_ns=1.0)
    with pytest.raises(OsError):
        list(barrier._wait(thread))  # already waiting


def test_barrier_parties_validation():
    os = make_os()
    with pytest.raises(OsError):
        Barrier(os, parties=0)


def test_signal_during_barrier_wait_is_survivable():
    os = make_os()
    barrier = Barrier(os, parties=2)
    log = []

    def handler(thread, signal):
        log.append("handler")
        yield Spin(10.0)

    os.signal_handlers[40] = handler

    def waiter(ctx):
        yield BarrierWait(barrier)
        log.append(("released", ctx.now_ns))

    def late(ctx):
        yield Sleep(100_000.0)
        yield BarrierWait(barrier)

    waiting = os.create_thread(waiter)
    os.create_thread(late)
    os.sim.schedule(50_000.0, lambda: os.post_signal(waiting, Signal(40)))
    os.run_to_completion()
    assert "handler" in log
    released = [entry for entry in log if isinstance(entry, tuple)]
    assert released and released[0][1] >= 100_000.0
