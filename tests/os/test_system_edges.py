"""Edge-path tests for the OS dispatcher, hooks, and condvar notify."""

import pytest

from repro.hw import IVY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.ops import (
    Compute,
    CondNotify,
    CondWait,
    Flush,
    JoinThread,
    MemBatch,
    MutexLock,
    MutexUnlock,
    PatternKind,
    Sleep,
    Spin,
    SpawnThread,
)
from repro.os import CondVar, Mutex, ORIGINAL, SimOS, Signal
from repro.sim import Simulator
from repro.units import GIB, MIB


def make_os(seed=1):
    return SimOS(Machine(Simulator(seed=seed), IVY_BRIDGE))


def test_cond_notify_hook_wraps_the_wakeup():
    os = make_os()
    mutex = Mutex(os)
    cond = CondVar(os)
    trace = []

    def notify_hook(sim_os, thread, op):
        trace.append(("pre-notify", sim_os.sim.now))
        yield Spin(2_000.0)
        woken = yield ORIGINAL
        trace.append(("post-notify", woken))
        return woken

    os.interpose.register_op_hook("pthread_cond_notify", notify_hook)

    def consumer(ctx):
        yield MutexLock(mutex)
        yield CondWait(cond, mutex)
        trace.append(("woke", ctx.now_ns))
        yield MutexUnlock(mutex)

    def producer(ctx):
        yield Sleep(500.0)
        yield CondNotify(cond)

    os.create_thread(consumer)
    os.create_thread(producer)
    os.run_to_completion()
    # The hook's pre-notify spin delays the wakeup.
    woke = [entry for entry in trace if entry[0] == "woke"][0]
    assert woke[1] >= 2_500.0
    assert ("post-notify", 1) in trace


def test_hook_return_value_propagates_to_workload():
    os = make_os()

    def create_hook(sim_os, thread, op):
        new_thread = yield ORIGINAL
        return new_thread  # explicit return overrides nothing but flows

    os.interpose.register_op_hook("pthread_create", create_hook)
    results = {}

    def child(ctx):
        yield Compute(220.0)
        return "child-value"

    def parent(ctx):
        t = yield SpawnThread(child)
        results["joined"] = yield JoinThread(t)

    os.create_thread(parent)
    os.run_to_completion()
    assert results["joined"] == "child-value"


def test_unregister_all_restores_raw_behavior():
    os = make_os()
    calls = []

    def unlock_hook(sim_os, thread, op):
        calls.append("hooked")
        result = yield ORIGINAL
        return result

    os.interpose.register_op_hook("pthread_mutex_unlock", unlock_hook)
    mutex = Mutex(os)

    def body(ctx):
        yield MutexLock(mutex)
        yield MutexUnlock(mutex)

    os.create_thread(body)
    os.run_to_completion()
    assert calls == ["hooked"]
    os.interpose.unregister_all()
    os.create_thread(body)
    os.run_to_completion()
    assert calls == ["hooked"]  # no second interception


def test_signal_during_flush_resumes_remaining_lines():
    os = make_os()
    handled = []

    def handler(thread, signal):
        handled.append(os.sim.now)
        yield Spin(50.0)

    os.signal_handlers[41] = handler

    def body(ctx):
        region = ctx.pmalloc(MIB)
        yield Flush(region, lines=100)  # 100 x 87 ns = 8.7 us

    thread = os.create_thread(body)
    os.sim.schedule(4_000.0, lambda: os.post_signal(thread, Signal(41)))
    os.run_to_completion()
    assert handled == [4_000.0]
    # All 100 line flushes completed despite the interruption.
    assert os.sim.now == pytest.approx(100 * 87.0 + 50.0, rel=0.02)


def test_join_result_survives_signal_during_join():
    os = make_os()

    def handler(thread, signal):
        yield Spin(10.0)

    os.signal_handlers[41] = handler

    def child(ctx):
        yield Compute(220_000.0)  # 100 us
        return 99

    def parent(ctx):
        t = yield SpawnThread(child)
        value = yield JoinThread(t)
        return value

    parent_thread = os.create_thread(parent)
    os.sim.schedule(50_000.0, lambda: os.post_signal(parent_thread, Signal(41)))
    os.run_to_completion()
    assert parent_thread.result == 99


def test_two_signals_different_ops_both_handled():
    os = make_os()
    handled = []

    def handler(thread, signal):
        handled.append(round(os.sim.now))
        yield Spin(1.0)

    os.signal_handlers[41] = handler

    def body(ctx):
        region = ctx.malloc(4 * GIB, page_size=PageSize.HUGE_2M)
        yield MemBatch(region, 2_000, PatternKind.CHASE)  # ~174 us
        yield Compute(2.2e5)  # 100 us

    thread = os.create_thread(body)
    os.sim.schedule(50_000.0, lambda: os.post_signal(thread, Signal(41)))
    os.sim.schedule(200_000.0, lambda: os.post_signal(thread, Signal(41)))
    os.run_to_completion()
    assert handled == [50_000, 200_000]


def test_context_now_matches_sim_clock():
    os = make_os()
    observed = {}

    def body(ctx):
        observed["before"] = ctx.now_ns
        yield Compute(2200.0)
        observed["after"] = ctx.now_ns

    os.create_thread(body)
    os.run_to_completion()
    assert observed["before"] == 0.0
    assert observed["after"] == pytest.approx(1000.0)


def test_sleep_zero_completes():
    os = make_os()

    def body(ctx):
        yield Sleep(0.0)
        yield Compute(1.0)

    os.create_thread(body)
    os.run_to_completion()
