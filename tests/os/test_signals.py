"""Tests for signal posting, delivery, masking, and interposition."""

import pytest

from repro.errors import OsError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.topology import PageSize
from repro.ops import (
    Compute,
    Flush,
    MemBatch,
    MutexLock,
    MutexUnlock,
    PatternKind,
    Sleep,
    Spin,
)
from repro.os import ORIGINAL, Mutex, SimOS, Signal
from repro.sim import Simulator
from repro.units import GIB, MIB

SIGTEST = 40


def make_os():
    sim = Simulator(seed=1)
    return SimOS(Machine(sim, IVY_BRIDGE))


def test_signal_interrupts_compute_and_runs_handler():
    os = make_os()
    log = []

    def handler(thread, signal):
        log.append(("handler", os.sim.now, signal.signum))
        yield Spin(100.0)

    os.signal_handlers[SIGTEST] = handler

    def body(ctx):
        yield Compute(2_200_000.0)  # 1 ms
        log.append(("done", ctx.now_ns))

    thread = os.create_thread(body)
    os.sim.schedule(400_000.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.run_to_completion()
    assert log[0] == ("handler", 400_000.0, SIGTEST)
    # Total time: 1 ms of compute + 100 ns handler spin.
    assert log[1][1] == pytest.approx(1_000_100.0)


def test_signal_interrupts_memory_batch_with_partial_progress():
    os = make_os()
    hits = []

    def handler(thread, signal):
        hits.append(os.sim.now)
        return
        yield  # pragma: no cover - makes this a generator

    os.signal_handlers[SIGTEST] = handler

    def body(ctx):
        region = ctx.malloc(8 * GIB, page_size=PageSize.HUGE_2M)
        yield MemBatch(region, 10_000, PatternKind.CHASE)

    thread = os.create_thread(body)
    os.sim.schedule(100_000.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.run_to_completion()
    assert hits == [100_000.0]
    # Batch still completes in (roughly) full time + nothing extra.
    assert os.sim.now == pytest.approx(10_000 * 87.0, rel=0.02)


def test_signal_queued_while_masked_and_delivered_after():
    os = make_os()
    log = []

    def handler(thread, signal):
        log.append(("handler", os.sim.now))
        yield Spin(1000.0)  # long handler; more signals arrive meanwhile

    os.signal_handlers[SIGTEST] = handler

    def body(ctx):
        yield Compute(22_000.0)  # 10 us

    thread = os.create_thread(body)
    os.sim.schedule(1_000.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    # Two more while the handler is running: POSIX pending-signal
    # semantics coalesce them into a single extra delivery.
    os.sim.schedule(1_500.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.sim.schedule(1_600.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.run_to_completion()
    assert len(log) == 2
    # Second delivery strictly after the first handler finished.
    assert log[1][1] >= log[0][1] + 1000.0


def test_distinct_signals_do_not_coalesce():
    os = make_os()
    log = []

    def handler(thread, signal):
        log.append(signal.signum)
        yield Spin(1000.0)

    os.signal_handlers[SIGTEST] = handler
    os.signal_handlers[SIGTEST + 1] = handler

    def body(ctx):
        yield Compute(22_000.0)

    thread = os.create_thread(body)
    os.sim.schedule(1_000.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.sim.schedule(1_500.0, lambda: os.post_signal(thread, Signal(SIGTEST + 1)))
    os.run_to_completion()
    assert sorted(log) == [SIGTEST, SIGTEST + 1]


def test_signal_to_finished_thread_returns_false():
    os = make_os()

    def body(ctx):
        yield Compute(1.0)

    thread = os.create_thread(body)
    os.run_to_completion()
    assert os.post_signal(thread, Signal(SIGTEST)) is False


def test_unhandled_signal_is_ignored():
    os = make_os()

    def body(ctx):
        yield Compute(22_000.0)

    thread = os.create_thread(body)
    os.sim.schedule(100.0, lambda: os.post_signal(thread, Signal(63)))
    os.run_to_completion()
    assert os.sim.now == pytest.approx(10_000.0)


def test_signal_during_mutex_wait_preserves_correctness():
    os = make_os()
    mutex = Mutex(os)
    log = []

    def handler(thread, signal):
        log.append(("handler", thread.name))
        yield Spin(10.0)

    os.signal_handlers[SIGTEST] = handler

    def holder(ctx):
        yield MutexLock(mutex)
        yield Compute(220_000.0)  # 100 us
        yield MutexUnlock(mutex)

    def waiter(ctx):
        yield Sleep(10.0)
        yield MutexLock(mutex)
        log.append(("acquired", ctx.now_ns))
        yield MutexUnlock(mutex)

    os.create_thread(holder, name="holder")
    waiter_thread = os.create_thread(waiter, name="waiter")
    os.sim.schedule(50_000.0, lambda: os.post_signal(waiter_thread, Signal(SIGTEST)))
    os.run_to_completion()
    assert ("handler", "waiter") in log
    acquired = [entry for entry in log if entry[0] == "acquired"]
    assert acquired and acquired[0][1] == pytest.approx(100_000.0, rel=1e-6)


def test_signal_during_sleep_extends_to_full_duration():
    os = make_os()

    def handler(thread, signal):
        yield Spin(0.0)

    os.signal_handlers[SIGTEST] = handler

    def body(ctx):
        yield Sleep(100_000.0)

    thread = os.create_thread(body)
    os.sim.schedule(30_000.0, lambda: os.post_signal(thread, Signal(SIGTEST)))
    os.run_to_completion()
    assert os.sim.now == pytest.approx(100_000.0)


def test_invalid_signal_number_rejected():
    with pytest.raises(OsError):
        Signal(0)
    with pytest.raises(OsError):
        Signal(65)


# ----------------------------------------------------------------------
# Interposition
# ----------------------------------------------------------------------
def test_unlock_interposer_runs_before_release():
    os = make_os()
    mutex = Mutex(os)
    trace = []

    def unlock_hook(sim_os, thread, op):
        trace.append(("hook-before", sim_os.sim.now))
        yield Spin(5000.0)  # Quartz-style pre-release delay
        result = yield ORIGINAL
        trace.append(("hook-after", sim_os.sim.now))
        return result

    os.interpose.register_op_hook("pthread_mutex_unlock", unlock_hook)

    def holder(ctx):
        yield MutexLock(mutex)
        yield Compute(2200.0)
        yield MutexUnlock(mutex)

    def waiter(ctx):
        yield Sleep(10.0)
        yield MutexLock(mutex)
        trace.append(("waiter-acquired", ctx.now_ns))
        yield MutexUnlock(mutex)

    os.create_thread(holder)
    os.create_thread(waiter)
    os.run_to_completion()
    acquired = [t for t in trace if t[0] == "waiter-acquired"][0]
    # The waiter had to absorb the holder's 5000 ns pre-release spin.
    assert acquired[1] >= 1000.0 + 5000.0


def test_spawn_interposer_observes_new_threads():
    os = make_os()
    registered = []

    def create_hook(sim_os, thread, op):
        new_thread = yield ORIGINAL
        registered.append(new_thread.name)
        return new_thread

    os.interpose.register_op_hook("pthread_create", create_hook)

    def child(ctx):
        yield Compute(1.0)

    def parent(ctx):
        from repro.ops import SpawnThread

        yield SpawnThread(child, name="registered-child")

    os.create_thread(parent)
    os.run_to_completion()
    assert registered == ["registered-child"]


def test_thread_begin_hook_runs_first():
    os = make_os()
    trace = []

    def begin_hook(sim_os, thread, op):
        trace.append(("begin", thread.name))
        yield Compute(2200.0)

    os.interpose.register_op_hook("thread_begin", begin_hook)

    def body(ctx):
        trace.append(("body", ctx.now_ns))
        yield Compute(1.0)

    os.create_thread(body, name="t")
    os.run_to_completion()
    assert trace[0] == ("begin", "t")
    assert trace[1][1] == pytest.approx(1000.0)  # body starts after hook


def test_pflush_hook_appends_write_delay():
    os = make_os()

    def pflush_hook(sim_os, thread, op):
        result = yield ORIGINAL
        yield Spin(500.0)  # emulated NVM write latency
        return result

    os.interpose.register_op_hook("pflush", pflush_hook)

    def body(ctx):
        region = ctx.pmalloc(MIB)
        yield from ctx.pflush(region, lines=1)

    os.create_thread(body)
    os.run_to_completion()
    assert os.sim.now == pytest.approx(87.0 + 500.0)


def test_pflush_without_hook_is_bare_clflush():
    os = make_os()

    def body(ctx):
        region = ctx.pmalloc(MIB)
        yield from ctx.pflush(region, lines=2)

    os.create_thread(body)
    os.run_to_completion()
    assert os.sim.now == pytest.approx(2 * 87.0)


def test_pmalloc_sync_hook_redirects_allocation():
    os = make_os()

    def pmalloc_hook(thread, size, page_size, label):
        return os.machine.allocate(
            size, node=1, page_size=page_size, label="virtual-nvm", persistent=True
        )

    os.interpose.register_sync_hook("pmalloc", pmalloc_hook)
    seen = {}

    def body(ctx):
        seen["region"] = ctx.pmalloc(MIB)
        yield Compute(1.0)

    os.create_thread(body, cpu_node=0)
    os.run_to_completion()
    assert seen["region"].node == 1
    assert seen["region"].persistent


def test_duplicate_interposer_rejected():
    os = make_os()

    def hook(sim_os, thread, op):
        yield ORIGINAL

    os.interpose.register_op_hook("pthread_mutex_unlock", hook)
    with pytest.raises(OsError, match="already interposed"):
        os.interpose.register_op_hook("pthread_mutex_unlock", hook)


def test_unknown_interposition_symbol_rejected():
    os = make_os()
    with pytest.raises(OsError, match="no interposition point"):
        os.interpose.register_op_hook("memcpy", lambda *a: None)
