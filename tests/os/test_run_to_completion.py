"""run_to_completion's stop-flag termination (no per-event predicate).

Thread exit paths decrement a live non-daemon count and ask the
simulator to stop when it reaches zero, but only while run_to_completion
is actually driving — a thread happening to finish must never interrupt
a direct ``sim.run(until_ns=...)`` call.
"""

import pytest

from repro.errors import DeadlockError, SimulationError
from repro.hw import IVY_BRIDGE, Machine
from repro.ops import Compute, JoinThread, Sleep, SpawnThread
from repro.os import SimOS
from repro.sim import Simulator


def make_os(seed=1):
    return SimOS(Machine(Simulator(seed=seed), IVY_BRIDGE))


def _spin_body(cycles):
    def body(ctx):
        yield Compute(cycles)
    return body


def test_completion_stops_before_daemon_work_drains():
    os = make_os()
    ticks = []

    def daemon_body(ctx):
        while True:
            yield Sleep(1_000.0)
            ticks.append(os.sim.now)

    os.create_thread(_spin_body(10_000.0), name="worker")
    os.create_thread(daemon_body, name="monitor", daemon=True)
    os.run_to_completion()
    # The daemon keeps events queued forever; the run must still end
    # as soon as the last non-daemon thread finishes.
    assert all(t.finished for t in os.threads if not t.daemon)
    assert os.sim.pending_event_count > 0


def test_thread_finish_does_not_interrupt_direct_sim_run():
    os = make_os()
    os.create_thread(_spin_body(1_000.0), name="quick")
    # Outside run_to_completion a finished thread must not stop a
    # horizon-bounded run short of its horizon.
    assert os.sim.run(until_ns=os.sim.now + 50_000.0) == "drained"
    assert os.sim.now == 50_000.0


def test_spawn_in_final_callback_revives_the_run():
    os = make_os()
    order = []

    def parent(ctx):
        yield Compute(1_000.0)
        order.append("parent-done")
        child = yield SpawnThread(_chained_child, name="child")
        yield JoinThread(child)
        order.append("joined")

    def _chained_child(ctx):
        yield Compute(1_000.0)
        order.append("child-done")

    os.create_thread(parent, name="parent")
    os.run_to_completion()
    assert order == ["parent-done", "child-done", "joined"]
    assert all(t.finished for t in os.threads)


def test_sequential_run_to_completion_calls_compose():
    os = make_os()
    os.create_thread(_spin_body(1_000.0), name="first")
    os.run_to_completion()
    first_now = os.sim.now
    os.create_thread(_spin_body(1_000.0), name="second")
    os.run_to_completion()
    assert os.sim.now > first_now
    assert all(t.finished for t in os.threads)


def test_deadlock_still_detected():
    # Stop-flag termination must not mask deadlock detection: when the
    # heap drains with a non-daemon thread still blocked, the run has to
    # raise rather than stop "successfully".
    from repro.ops import MutexLock
    from repro.os import Mutex

    os = make_os()
    mutex = Mutex(os)

    def holder(ctx):
        yield MutexLock(mutex)
        # Exits while holding the lock.

    def waiter(ctx):
        yield Sleep(10.0)
        yield MutexLock(mutex)

    os.create_thread(holder, name="holder")
    os.create_thread(waiter, name="waiter")
    with pytest.raises(DeadlockError):
        os.run_to_completion()


def test_event_budget_exhaustion_raises_simulation_error():
    os = make_os()

    def ping_pong(ctx):
        while True:
            yield Sleep(10.0)

    os.create_thread(ping_pong, name="p")
    with pytest.raises(SimulationError):
        os.run_to_completion(max_events=100)
