"""Unit and property-based tests for the B+-tree."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.btree import BPlusTree


def test_empty_tree():
    tree = BPlusTree()
    assert len(tree) == 0
    assert tree.depth == 1
    assert tree.get(1) is None
    assert 1 not in tree


def test_insert_and_get():
    tree = BPlusTree(order=4)
    for key in range(100):
        tree.insert(key, key * 2)
    assert len(tree) == 100
    for key in range(100):
        assert tree.get(key) == key * 2
    assert tree.get(100) is None


def test_upsert_replaces_value_without_growing():
    tree = BPlusTree(order=4)
    tree.insert(5, "a")
    tree.insert(5, "b")
    assert len(tree) == 1
    assert tree.get(5) == "b"


def test_depth_grows_with_splits():
    tree = BPlusTree(order=4)
    assert tree.depth == 1
    for key in range(200):
        tree.insert(key, key)
    assert tree.depth >= 3
    tree.check_invariants()


def test_items_sorted():
    tree = BPlusTree(order=4)
    import random

    keys = list(range(500))
    random.Random(7).shuffle(keys)
    for key in keys:
        tree.insert(key, -key)
    assert [k for k, _ in tree.items()] == sorted(keys)


def test_level_counts_track_structure():
    tree = BPlusTree(order=4)
    for key in range(1000):
        tree.insert(key * 7 % 1000, key)
    tree.check_invariants()  # includes level-count cross-check
    assert tree.level_counts[0] == 1  # single root
    assert tree.level_counts[-1] >= 1000 // 5  # leaves hold <= order keys


def test_level_footprints():
    tree = BPlusTree(order=4)
    for key in range(100):
        tree.insert(key, key)
    footprints = tree.level_footprints(node_bytes=512)
    assert footprints == [count * 512 for count in tree.level_counts]
    with pytest.raises(WorkloadError):
        tree.level_footprints(0)


def test_order_validation():
    with pytest.raises(WorkloadError):
        BPlusTree(order=2)


@settings(max_examples=50, deadline=None)
@given(
    st.lists(
        st.tuples(st.integers(-10_000, 10_000), st.integers()),
        max_size=400,
    )
)
def test_property_tree_matches_dict(pairs):
    """Against a model dict: same mapping, sorted iteration, invariants."""
    tree = BPlusTree(order=5)
    model = {}
    for key, value in pairs:
        tree.insert(key, value)
        model[key] = value
    assert len(tree) == len(model)
    for key, value in model.items():
        assert tree.get(key) == value
    assert [k for k, _ in tree.items()] == sorted(model)
    tree.check_invariants()


@settings(max_examples=20, deadline=None)
@given(st.integers(3, 40), st.integers(0, 2000))
def test_property_any_order_stays_balanced(order, count):
    tree = BPlusTree(order=order)
    for key in range(count):
        tree.insert((key * 2654435761) % (count + 1), key)
    tree.check_invariants()
