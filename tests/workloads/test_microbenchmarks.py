"""Tests for MemLat, STREAM, Multi-Threaded, and MultiLat workloads."""

import pytest

from repro.errors import WorkloadError
from repro.hw import IVY_BRIDGE, Machine
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.os import SimOS
from repro.sim import Simulator
from repro.units import MIB
from repro.workloads import (
    MemLatConfig,
    MultiLatConfig,
    MultiThreadedConfig,
    StreamConfig,
    memlat_body,
    multilat_body,
    multithreaded_main_body,
    stream_main_body,
)


def make_os(seed=1, **kwargs):
    sim = Simulator(seed=seed)
    return SimOS(Machine(sim, IVY_BRIDGE), **kwargs)


def run_body(os, body_factory_result):
    os.create_thread(body_factory_result, name="main")
    os.run_to_completion()


# ----------------------------------------------------------------------
# MemLat
# ----------------------------------------------------------------------
def test_memlat_measures_local_dram_latency():
    os = make_os()
    out = {}
    run_body(os, memlat_body(MemLatConfig(iterations=50_000), out))
    result = out["result"]
    assert result.measured_latency_ns == pytest.approx(87.0, rel=0.02)


def test_memlat_measures_remote_dram_latency():
    """Conf_2 of the validation testbed: numactl --membind to socket 1."""
    os = make_os(default_cpu_node=0, default_mem_node=1)
    out = {}
    run_body(os, memlat_body(MemLatConfig(iterations=50_000), out))
    assert out["result"].measured_latency_ns == pytest.approx(176.0, rel=0.02)


def test_memlat_chains_overlap_accesses():
    def measure(chains):
        os = make_os()
        out = {}
        run_body(
            os, memlat_body(MemLatConfig(iterations=20_000, chains=chains), out)
        )
        return out["result"]

    one = measure(1)
    four = measure(4)
    # Four chains: 4x the accesses in roughly the same time.
    assert four.total_accesses == 4 * one.total_accesses
    assert four.elapsed_ns == pytest.approx(one.elapsed_ns, rel=0.1)
    assert four.measured_latency_ns == pytest.approx(
        one.measured_latency_ns, rel=0.1
    )


def test_memlat_without_hugepages_pays_tlb_walks():
    os_huge = make_os()
    out_huge = {}
    run_body(os_huge, memlat_body(MemLatConfig(iterations=20_000), out_huge))
    os_small = make_os()
    out_small = {}
    run_body(
        os_small,
        memlat_body(MemLatConfig(iterations=20_000, hugepages=False), out_small),
    )
    assert (
        out_small["result"].measured_latency_ns
        > out_huge["result"].measured_latency_ns + 10.0
    )


def test_memlat_config_validation():
    with pytest.raises(WorkloadError):
        MemLatConfig(array_bytes=MIB)
    with pytest.raises(WorkloadError):
        MemLatConfig(iterations=0)
    with pytest.raises(WorkloadError):
        MemLatConfig(chains=0)


# ----------------------------------------------------------------------
# STREAM
# ----------------------------------------------------------------------
def test_stream_saturates_controller():
    os = make_os()
    out = {}
    run_body(os, stream_main_body(StreamConfig(), out))
    bandwidth = out["result"].bandwidth_bytes_per_ns
    assert bandwidth == pytest.approx(IVY_BRIDGE.peak_bw_bytes_per_ns, rel=0.15)


def test_stream_tracks_throttled_bandwidth():
    os = make_os()
    os.machine.controller(0).program_throttle_register(
        (THROTTLE_REGISTER_MAX + 1) // 4 - 1, privileged=True
    )
    out = {}
    run_body(os, stream_main_body(StreamConfig(), out))
    quarter = IVY_BRIDGE.peak_bw_bytes_per_ns / 4
    assert out["result"].bandwidth_bytes_per_ns == pytest.approx(quarter, rel=0.2)


def test_stream_config_validation():
    with pytest.raises(WorkloadError):
        StreamConfig(array_bytes=1000)
    with pytest.raises(WorkloadError):
        StreamConfig(threads=0)
    with pytest.raises(WorkloadError):
        StreamConfig(passes=0)


# ----------------------------------------------------------------------
# Multi-Threaded
# ----------------------------------------------------------------------
def test_multithreaded_runs_all_sections():
    os = make_os()
    out = {}
    config = MultiThreadedConfig(threads=4, sections=20, cs_iterations=50)
    run_body(os, multithreaded_main_body(config, out))
    result = out["result"]
    assert result.lock_acquisitions == 4 * 20
    assert result.total_cs_iterations == 4 * 20 * 50


def test_multithreaded_cs_only_serializes_on_lock():
    """With no outside work, total time ~ sum of all critical sections."""
    os = make_os()
    out = {}
    config = MultiThreadedConfig(
        threads=4, sections=10, cs_iterations=200, out_iterations=0
    )
    run_body(os, multithreaded_main_body(config, out))
    serialized = 4 * 10 * 200 * 87.0
    assert out["result"].elapsed_ns >= serialized * 0.95


def test_multithreaded_outside_work_overlaps():
    def measure(out_iterations):
        os = make_os()
        out = {}
        config = MultiThreadedConfig(
            threads=4,
            sections=10,
            cs_iterations=200,
            out_iterations=out_iterations,
        )
        run_body(os, multithreaded_main_body(config, out))
        return out["result"].elapsed_ns

    cs_only = measure(0)
    with_compute = measure(200)
    # Outside work overlaps with other threads' critical sections: the
    # run must not stretch by the full serialized outside time.
    assert with_compute < cs_only + 4 * 10 * 200 * 87.0 * 0.8


def test_multithreaded_config_validation():
    with pytest.raises(WorkloadError):
        MultiThreadedConfig(threads=0)
    with pytest.raises(WorkloadError):
        MultiThreadedConfig(sections=0)
    with pytest.raises(WorkloadError):
        MultiThreadedConfig(cs_iterations=0)
    with pytest.raises(WorkloadError):
        MultiThreadedConfig(out_iterations=-1)


# ----------------------------------------------------------------------
# MultiLat
# ----------------------------------------------------------------------
def test_multilat_without_emulator_all_local():
    os = make_os()
    out = {}
    config = MultiLatConfig(
        dram_elements=20_000, nvm_elements=10_000, pattern=(200, 100)
    )
    run_body(os, multilat_body(config, out))
    # No interposition: pmalloc is local too; 30k accesses at 87 ns.
    assert out["result"].elapsed_ns == pytest.approx(30_000 * 87.0, rel=0.02)


def test_multilat_completion_time_pattern_invariant():
    def measure(pattern):
        os = make_os()
        out = {}
        config = MultiLatConfig(
            dram_elements=20_000, nvm_elements=10_000, pattern=pattern
        )
        run_body(os, multilat_body(config, out))
        return out["result"].elapsed_ns

    times = [measure(pattern) for pattern in [(2000, 1000), (200, 100), (20, 10)]]
    assert max(times) / min(times) < 1.01


def test_multilat_drains_leftover_when_ratios_mismatch():
    os = make_os()
    out = {}
    config = MultiLatConfig(
        dram_elements=10_000, nvm_elements=10_000, pattern=(200, 100)
    )
    run_body(os, multilat_body(config, out))
    assert out["result"].elapsed_ns == pytest.approx(20_000 * 87.0, rel=0.02)


def test_multilat_expected_completion_formula():
    config = MultiLatConfig(dram_elements=100, nvm_elements=50)
    from repro.workloads.multilat import MultiLatResult

    result = MultiLatResult(config=config, elapsed_ns=100 * 90 + 50 * 500)
    assert result.expected_completion_ns(90.0, 500.0) == pytest.approx(34_000.0)
    assert result.emulation_error(90.0, 500.0) == pytest.approx(0.0)


def test_multilat_config_validation():
    with pytest.raises(WorkloadError):
        MultiLatConfig(dram_elements=-1)
    with pytest.raises(WorkloadError):
        MultiLatConfig(dram_elements=0, nvm_elements=0)
    with pytest.raises(WorkloadError):
        MultiLatConfig(pattern=(0, 100))
