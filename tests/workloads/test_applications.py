"""Tests for the application workloads: KV store, PageRank, Graph500."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.hw import IVY_BRIDGE, Machine
from repro.os import SimOS
from repro.sim import Simulator
from repro.workloads.graph500 import Graph500Config, graph500_body, validate_bfs_tree
from repro.workloads.graphs import synthetic_scale_free
from repro.workloads.kvstore import KvStoreConfig, kvstore_main_body
from repro.workloads.pagerank import PageRankConfig, pagerank_body


def run_workload(body, seed=1):
    sim = Simulator(seed=seed)
    os = SimOS(Machine(sim, IVY_BRIDGE))
    os.create_thread(body, name="main")
    os.run_to_completion()
    return os


# ----------------------------------------------------------------------
# KV store
# ----------------------------------------------------------------------
def test_kvstore_functional_and_timed():
    out = {}
    config = KvStoreConfig(puts_per_thread=2000, gets_per_thread=2000, threads=1)
    run_workload(kvstore_main_body(config, out))
    result = out["result"]
    assert result.total_puts == 2000
    assert result.total_gets == 2000
    assert result.verified_gets == 2000  # every lookup returned the stored value
    assert result.final_sizes == [2000]
    assert result.put_phase_ns > 0 and result.get_phase_ns > 0
    assert result.puts_per_second > 0 and result.gets_per_second > 0


def test_kvstore_multithreaded_partitions_disjoint():
    out = {}
    config = KvStoreConfig(puts_per_thread=1000, gets_per_thread=500, threads=4)
    run_workload(kvstore_main_body(config, out))
    result = out["result"]
    assert result.total_puts == 4000
    assert result.final_sizes == [1000] * 4
    assert result.verified_gets == 4 * 500


def test_kvstore_threads_increase_aggregate_throughput():
    def throughput(threads):
        out = {}
        config = KvStoreConfig(
            puts_per_thread=1500, gets_per_thread=1500, threads=threads
        )
        run_workload(kvstore_main_body(config, out))
        return out["result"].gets_per_second

    assert throughput(4) > 2.0 * throughput(1)


def test_kvstore_config_validation():
    with pytest.raises(WorkloadError):
        KvStoreConfig(threads=0)
    with pytest.raises(WorkloadError):
        KvStoreConfig(puts_per_thread=0)
    with pytest.raises(WorkloadError):
        KvStoreConfig(batch_ops=0)


# ----------------------------------------------------------------------
# PageRank
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def small_graph():
    return synthetic_scale_free(2000, 6, seed=3)


def test_pagerank_converges(small_graph):
    out = {}
    config = PageRankConfig(tolerance=1e-8, max_iterations=200)
    run_workload(pagerank_body(config, out, graph=small_graph))
    result = out["result"]
    assert result.converged
    assert 20 < result.iterations < 200
    assert result.ranks.sum() == pytest.approx(1.0, abs=1e-6)
    assert result.elapsed_ns > 0


def test_pagerank_ranks_favor_hubs(small_graph):
    out = {}
    run_workload(pagerank_body(PageRankConfig(), out, graph=small_graph))
    result = out["result"]
    degrees = small_graph.out_degrees()
    # The top-ranked vertex should be among the highest-degree ones.
    assert degrees[result.top_vertex] >= np.percentile(degrees, 99)


def test_pagerank_deterministic(small_graph):
    results = []
    for _ in range(2):
        out = {}
        run_workload(pagerank_body(PageRankConfig(), out, graph=small_graph))
        results.append(out["result"])
    assert np.allclose(results[0].ranks, results[1].ranks)
    assert results[0].elapsed_ns == results[1].elapsed_ns


def test_pagerank_config_validation():
    with pytest.raises(WorkloadError):
        PageRankConfig(damping=1.0)
    with pytest.raises(WorkloadError):
        PageRankConfig(tolerance=0.0)
    with pytest.raises(WorkloadError):
        PageRankConfig(max_iterations=0)


# ----------------------------------------------------------------------
# Graph500 BFS
# ----------------------------------------------------------------------
def test_bfs_visits_whole_graph(small_graph):
    out = {}
    config = Graph500Config(roots=2)
    run_workload(graph500_body(config, out, graph=small_graph))
    result = out["result"]
    # The synthetic graph is connected: everything is reached.
    assert (result.parents >= 0).all()
    assert result.traversed_edges > small_graph.edge_count
    assert result.teps > 0


def test_bfs_parent_tree_validates(small_graph):
    out = {}
    config = Graph500Config(roots=1, seed=5)
    run_workload(graph500_body(config, out, graph=small_graph))
    result = out["result"]
    root = int(np.flatnonzero(result.parents == np.arange(len(result.parents)))[0])
    assert validate_bfs_tree(small_graph, root, result.parents)


def test_bfs_detects_corrupted_tree(small_graph):
    out = {}
    run_workload(graph500_body(Graph500Config(roots=1, seed=5), out, graph=small_graph))
    result = out["result"]
    root = int(np.flatnonzero(result.parents == np.arange(len(result.parents)))[0])
    corrupted = result.parents.copy()
    victim = (root + 1) % len(corrupted)
    corrupted[victim] = victim - 1 if victim > 0 else victim + 2
    # Either invalid parent edge or untouched validity — flip until broken.
    if validate_bfs_tree(small_graph, root, corrupted):
        corrupted[victim] = victim  # claim to be a second root
    assert not validate_bfs_tree(small_graph, root, corrupted)


def test_graph500_config_validation():
    with pytest.raises(WorkloadError):
        Graph500Config(roots=0)
