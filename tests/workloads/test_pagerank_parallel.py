"""Tests for the barrier-synchronised parallel PageRank extension."""

import numpy as np
import pytest

from repro.errors import WorkloadError
from repro.hw import IVY_BRIDGE, Machine
from repro.os import SimOS
from repro.sim import Simulator
from repro.workloads.graphs import synthetic_scale_free
from repro.workloads.pagerank import PageRankConfig, pagerank_body
from repro.workloads.pagerank_parallel import (
    ParallelPageRankConfig,
    _partition_by_edges,
    parallel_pagerank_body,
)


@pytest.fixture(scope="module")
def graph():
    return synthetic_scale_free(2_000, 5, seed=3)


def run(body, seed=1):
    os = SimOS(Machine(Simulator(seed=seed), IVY_BRIDGE))
    os.create_thread(body, name="main")
    os.run_to_completion()
    return os


BASE = PageRankConfig(max_iterations=20, tolerance=1e-10)


def test_partition_covers_all_vertices(graph):
    for parts in (1, 2, 4, 7):
        ranges = _partition_by_edges(graph, parts)
        assert ranges[0][0] == 0
        assert ranges[-1][1] == graph.vertex_count
        for (_, end), (start, _) in zip(ranges, ranges[1:]):
            assert end == start


def test_partition_balances_edges(graph):
    ranges = _partition_by_edges(graph, 4)
    edge_counts = [
        int(graph.row_ptr[high] - graph.row_ptr[low]) for low, high in ranges
    ]
    assert max(edge_counts) < 2.0 * graph.edge_count / 4


def test_parallel_matches_sequential_ranks(graph):
    sequential_out = {}
    run(pagerank_body(BASE, sequential_out, graph=graph))
    parallel_out = {}
    config = ParallelPageRankConfig(base=BASE, threads=4)
    run(parallel_pagerank_body(config, parallel_out, graph=graph))
    assert np.allclose(
        sequential_out["result"].ranks, parallel_out["result"].ranks
    )
    assert (
        sequential_out["result"].iterations
        == parallel_out["result"].iterations
    )


def test_threads_speed_up_completion(graph):
    def elapsed(threads):
        out = {}
        config = ParallelPageRankConfig(base=BASE, threads=threads)
        run(parallel_pagerank_body(config, out, graph=graph))
        return out["result"].elapsed_ns

    one = elapsed(1)
    four = elapsed(4)
    assert one / four > 2.0  # real parallel speedup


def test_single_thread_parallel_equals_sequential_time_roughly(graph):
    sequential_out = {}
    run(pagerank_body(BASE, sequential_out, graph=graph))
    parallel_out = {}
    run(parallel_pagerank_body(
        ParallelPageRankConfig(base=BASE, threads=1), parallel_out, graph=graph
    ))
    ratio = (
        parallel_out["result"].elapsed_ns
        / sequential_out["result"].elapsed_ns
    )
    assert 0.8 < ratio < 1.3


def test_config_validation():
    with pytest.raises(WorkloadError):
        ParallelPageRankConfig(threads=0)
