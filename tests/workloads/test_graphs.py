"""Tests for the synthetic graph substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workloads.graphs import synthetic_scale_free


def test_basic_shape():
    graph = synthetic_scale_free(1000, 5, seed=1)
    assert graph.vertex_count == 1000
    # Each vertex past the first adds up to 5 undirected edges, stored in
    # both directions.
    assert graph.edge_count <= 2 * 5 * 999
    assert graph.edge_count >= 2 * 999  # at least one edge per new vertex


def test_csr_consistency():
    graph = synthetic_scale_free(500, 4, seed=2)
    degrees = graph.out_degrees()
    assert degrees.sum() == graph.edge_count
    assert (graph.col >= 0).all() and (graph.col < 500).all()


def test_symmetry():
    graph = synthetic_scale_free(200, 3, seed=3)
    arcs = set()
    for vertex in range(200):
        for neighbor in graph.neighbors(vertex):
            arcs.add((vertex, int(neighbor)))
    assert all((b, a) in arcs for a, b in arcs)


def test_deterministic_per_seed():
    a = synthetic_scale_free(300, 4, seed=9)
    b = synthetic_scale_free(300, 4, seed=9)
    c = synthetic_scale_free(300, 4, seed=10)
    assert np.array_equal(a.col, b.col)
    assert not np.array_equal(a.col, c.col)


def test_heavy_tail():
    """Preferential attachment must produce hub vertices."""
    graph = synthetic_scale_free(3000, 5, seed=4)
    degrees = graph.out_degrees()
    assert degrees.max() > 8 * np.median(degrees)


def test_connected():
    """Every vertex attaches to an existing one: one component."""
    graph = synthetic_scale_free(400, 2, seed=5)
    seen = {0}
    frontier = [0]
    while frontier:
        vertex = frontier.pop()
        for neighbor in graph.neighbors(vertex):
            neighbor = int(neighbor)
            if neighbor not in seen:
                seen.add(neighbor)
                frontier.append(neighbor)
    assert len(seen) == 400


def test_parameter_validation():
    with pytest.raises(WorkloadError):
        synthetic_scale_free(1, 1)
    with pytest.raises(WorkloadError):
        synthetic_scale_free(10, 0)
    with pytest.raises(WorkloadError):
        synthetic_scale_free(10, 10)


@settings(max_examples=15, deadline=None)
@given(st.integers(2, 200), st.integers(1, 6), st.integers(0, 100))
def test_property_valid_csr(n, m, seed):
    if m >= n:
        m = n - 1
    graph = synthetic_scale_free(n, m, seed=seed)
    assert graph.row_ptr[0] == 0
    assert graph.row_ptr[-1] == graph.edge_count
    assert (np.diff(graph.row_ptr) >= 0).all()
    # No self loops.
    for vertex in range(n):
        assert vertex not in set(int(x) for x in graph.neighbors(vertex))
