"""Tests for the full STREAM kernel set."""

import pytest

from repro.errors import WorkloadError
from repro.hw import IVY_BRIDGE, Machine
from repro.os import SimOS
from repro.sim import Simulator
from repro.units import MIB
from repro.workloads.stream import (
    STREAM_KERNELS,
    StreamConfig,
    StreamResult,
    stream_main_body,
)


def run_stream(config, seed=1):
    os = SimOS(Machine(Simulator(seed=seed), IVY_BRIDGE))
    out = {}
    os.create_thread(stream_main_body(config, out))
    os.run_to_completion()
    return out["result"]


def test_all_four_kernels_exist():
    assert set(STREAM_KERNELS) == {"copy", "scale", "add", "triad"}


def test_unknown_kernel_rejected():
    with pytest.raises(WorkloadError, match="unknown STREAM kernel"):
        StreamConfig(kernel="fma")


@pytest.mark.parametrize("kernel", sorted(STREAM_KERNELS))
def test_every_kernel_saturates_the_controller(kernel):
    result = run_stream(StreamConfig(kernel=kernel, array_bytes=128 * MIB))
    assert result.bandwidth_bytes_per_ns == pytest.approx(
        IVY_BRIDGE.peak_bw_bytes_per_ns, rel=0.15
    )


def test_bytes_moved_reflects_arrays_touched():
    copy = StreamResult(StreamConfig(kernel="copy"), elapsed_ns=1.0)
    add = StreamResult(StreamConfig(kernel="add"), elapsed_ns=1.0)
    assert add.bytes_moved == pytest.approx(1.5 * copy.bytes_moved)


def test_triad_moves_more_physical_traffic_than_copy():
    """Three-array kernels take ~1.5x the wall time at saturation."""
    copy = run_stream(StreamConfig(kernel="copy", array_bytes=128 * MIB))
    triad = run_stream(StreamConfig(kernel="triad", array_bytes=128 * MIB))
    assert triad.elapsed_ns / copy.elapsed_ns == pytest.approx(1.5, rel=0.1)


def test_single_thread_triad_slower_than_copy():
    """Arithmetic lowers the single-thread attainable bandwidth."""
    copy = run_stream(
        StreamConfig(kernel="copy", threads=1, array_bytes=64 * MIB,
                     compute_cycles_per_element=2.5)
    )
    triad = run_stream(
        StreamConfig(kernel="triad", threads=1, array_bytes=64 * MIB,
                     compute_cycles_per_element=2.5)
    )
    assert (
        triad.bandwidth_bytes_per_ns > copy.bandwidth_bytes_per_ns
    )  # 3 arrays counted per element beats the compute overhead
    assert triad.elapsed_ns > copy.elapsed_ns  # but wall time is longer
