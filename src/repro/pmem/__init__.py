"""Crash-consistency checking for persistent-memory software.

Quartz's purpose is tuning PM software (paper Sections 3.1 and 6), but
performance emulation alone cannot tell a correct persistence protocol
from one that forgets a flush.  This package layers the missing
correctness tooling on the simulator's zero-overhead observer seams:

* :mod:`repro.pmem.domain` — the persistence-domain model: every
  pmalloc'd cache line tracked through
  ``dirty → posted → persisted``;
* :mod:`repro.pmem.crash` — deterministic crash-point enumeration and
  persisted-image snapshots;
* :mod:`repro.pmem.checker` — the :class:`RecoverableWorkload` protocol,
  recovery replay, and the mutant regression oracle.

Wired into the validation stack as the ``crash`` run mode and the
``crash-check`` experiment / CLI subcommand.
"""

from repro.pmem.crash import CrashInjector, CrashPlan
from repro.pmem.checker import (
    MUTANTS,
    CrashCheckReport,
    PM_WORKLOADS,
    RecoverableWorkload,
    build_recoverable,
    check_workload,
)
from repro.pmem.domain import CrashImage, PersistenceDomain, RegionShadow

__all__ = [
    "CrashCheckReport",
    "CrashImage",
    "CrashInjector",
    "CrashPlan",
    "MUTANTS",
    "PM_WORKLOADS",
    "PersistenceDomain",
    "RecoverableWorkload",
    "RegionShadow",
    "build_recoverable",
    "check_workload",
]
