"""Recovery validation: replaying crash images against invariants.

A :class:`RecoverableWorkload` pairs a workload body with the two things
crash-consistency checking needs and performance emulation never did:

* a declared set of **invariants** the durable image must satisfy at any
  instant (e.g. "every committed key has a durable value");
* a pure ``recover(image)`` routine that inspects one
  :class:`~repro.pmem.domain.CrashImage` exactly as a restart would read
  real NVM, and reports every invariant violation it finds.

The built-in **mutant modes** are the subsystem's own regression oracle:
``missing-flush`` drops the data flush (values stay dirty forever while
the header claims them committed) and ``misordered-barrier`` commits the
header *before* the data it indexes.  A correct checker reports zero
violations on the unmutated workload and at least one on each mutant —
that asymmetry is asserted in CI, so the checker cannot silently decay
into a rubber stamp.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Iterator, Optional, Protocol, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.pmem.crash import CrashInjector, CrashPlan
from repro.pmem.domain import CrashImage, PersistenceDomain
from repro.workloads.graph500 import RecoverableGraph500
from repro.workloads.kvstore import RecoverableKvStore

if TYPE_CHECKING:
    from repro.os.system import SimOS
    from repro.quartz.emulator import Quartz

#: Mutant modes every recoverable workload must implement (plus ``None``
#: for the correct protocol).
MUTANTS = ("missing-flush", "misordered-barrier")

#: Violation records stored verbatim per run; the full count is always
#: reported, the records are capped so exports stay small.
MAX_RECORDED_VIOLATIONS = 20


class RecoverableWorkload(Protocol):
    """What the checker requires of a crash-checkable workload."""

    workload_id: str

    def invariants(self) -> tuple:
        """Names of the durable-state invariants ``recover`` enforces."""

    def body_factory(
        self, domain: PersistenceDomain, out: dict
    ) -> Callable[..., Iterator]:
        """The workload body, wired to record content into *domain*."""

    def recover(self, image: CrashImage) -> list:
        """Replay recovery against one crash image.

        Returns one ``{"invariant": ..., "detail": ...}`` dict per
        violation (empty list = recovery succeeds at this point).
        """


#: Workload id -> ``builder(config, mutant)`` for crash-checkable bodies.
PM_WORKLOADS: dict[str, Callable] = {
    "kvstore": RecoverableKvStore,
    "graph500": RecoverableGraph500,
}


def build_recoverable(
    workload_id: str, config: Any, mutant: Optional[str] = None
) -> RecoverableWorkload:
    """Instantiate a registered recoverable workload."""
    if workload_id not in PM_WORKLOADS:
        raise WorkloadError(
            f"no recoverable implementation for workload {workload_id!r} "
            f"(have: {sorted(PM_WORKLOADS)})"
        )
    if mutant is not None and mutant not in MUTANTS:
        raise WorkloadError(
            f"unknown mutant {mutant!r} (have: {MUTANTS})"
        )
    return PM_WORKLOADS[workload_id](config, mutant)


@dataclass
class CrashCheckReport:
    """Picklable result of one crash-checked run (or one shard of it)."""

    workload: str
    mutant: Optional[str]
    #: Crash points enumerated (identical in every shard of a run).
    points: int
    #: Crash images this shard stored and replayed recovery against.
    checked: int
    #: Whether enumeration hit the plan's ``max_points`` cap.
    capped: bool
    invariants: tuple = ()
    #: Total violations across every checked image.
    violation_total: int = 0
    #: First :data:`MAX_RECORDED_VIOLATIONS` violation records, each
    #: ``{crash_index, time_ns, trigger, invariant, detail}``.
    violations: list = field(default_factory=list)
    domain_stats: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "mutant": self.mutant,
            "points": self.points,
            "checked": self.checked,
            "capped": self.capped,
            "invariants": list(self.invariants),
            "violation_total": self.violation_total,
            "violations": list(self.violations),
            "domain_stats": dict(self.domain_stats),
        }


def check_workload(
    os: "SimOS",
    quartz: Optional["Quartz"],
    workload_id: str,
    config: Any,
    crash_plan: CrashPlan,
    run_seed: int = 0,
    shard: int = 0,
    shards: int = 1,
    mutant: Optional[str] = None,
    out: Optional[dict] = None,
) -> tuple[CrashCheckReport, Any, float]:
    """Drive one crash-checked run end to end.

    Attaches a fresh :class:`PersistenceDomain` and
    :class:`CrashInjector` to an already-built (and, if emulating,
    already-attached) OS, runs the recoverable workload body to
    completion, then replays recovery against every stored crash image.

    Returns ``(report, workload result, elapsed sim ns)``.
    """
    workload = build_recoverable(workload_id, config, mutant)
    domain = PersistenceDomain()
    domain.install(os, quartz.write_emulator if quartz is not None else None)
    injector = CrashInjector(
        domain, crash_plan, run_seed=run_seed, shard=shard, shards=shards
    )
    injector.install(
        os.sim, quartz.epoch_engine if quartz is not None else None
    )
    out = {} if out is None else out
    start = os.sim.now
    os.create_thread(workload.body_factory(domain, out), name="main")
    os.run_to_completion()
    elapsed = os.sim.now - start

    total = 0
    records: list = []
    for image in injector.images:
        for issue in workload.recover(image):
            total += 1
            if len(records) < MAX_RECORDED_VIOLATIONS:
                records.append(
                    {
                        "crash_index": image.index,
                        "time_ns": image.time_ns,
                        "trigger": image.trigger,
                        "invariant": issue["invariant"],
                        "detail": issue["detail"],
                    }
                )
    report = CrashCheckReport(
        workload=workload_id,
        mutant=mutant,
        points=injector.points,
        checked=len(injector.images),
        capped=injector.points >= crash_plan.max_points,
        invariants=tuple(workload.invariants()),
        violation_total=total,
        violations=records,
        domain_stats=domain.stats(),
    )
    return report, out.get("result"), elapsed
