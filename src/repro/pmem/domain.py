"""The persistence-domain model: shadowing pmalloc'd memory per line.

Quartz emulates the *timing* of persistent writes (``pflush`` delay,
posted ``clflushopt`` + ``pcommit`` draining — Sections 3.1 and 6) but
keeps no persistence *state*: a workload that forgets a flush runs at
exactly the speed of a correct one.  This module adds the missing state
machine.  Every cache line of every persistent region moves through

    ``dirty-in-cache  →  posted (clflush/clflushopt issued)  →  persisted``

driven entirely by the zero-overhead observer seams of the existing
simulation — the :class:`~repro.os.interpose.InterpositionTable`'s
dispatch observer for the op stream, and the
:class:`~repro.quartz.pm.PmWriteEmulator` hook observer for
write-emulation metadata.  The domain never schedules an event or yields
an op, so attaching it cannot change a single simulated timestamp.

**Content channel.**  The op stream carries traffic shapes, not values,
so recoverable workloads additionally call :meth:`PersistenceDomain.record`
(untimed, the shadow-memory idiom of tools like pmemcheck) to say *what*
a dirty line logically holds.  A crash image is then the persisted
payload map with every dirty/posted line discarded — exactly what
survives power loss on hardware without ADR.

**Transition rules** (all effective at op dispatch, i.e. instruction
issue):

* a recorded store marks the line **dirty**;
* an executed :class:`~repro.ops.Flush` (synchronous ``clflush``, the
  pessimistic PFLUSH model or no emulator at all) persists its lines
  directly — the processor stall-waits for memory;
* an executed :class:`~repro.ops.FlushOpt` marks its lines **posted**,
  attributed to the issuing thread, capturing the payload at flush time
  (a later store re-dirties the line without disturbing the in-flight
  writeback);
* an executed :class:`~repro.ops.Commit` (``pcommit``) persists every
  line the committing thread posted.

Line selection: a flush op carrying ``line=k`` targets lines
``[k, k+lines)``; flushing a clean line is a harmless no-op (counted).
Without a line index the flush drains the region's oldest dirty lines
first, matching an LRU writeback order.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.ops import Commit, Flush, FlushOpt, MemBatch

if TYPE_CHECKING:
    from repro.hw.topology import MemoryRegion
    from repro.os.thread import SimThread


@dataclass
class RegionShadow:
    """Per-region shadow state, keyed by region-relative line index."""

    label: str
    lines: int
    #: Newest cache content not yet flushed.
    dirty: dict = field(default_factory=dict)
    #: In-flight writebacks: line -> (payload, tid that issued the flush).
    posted: dict = field(default_factory=dict)
    #: The durable image.
    persisted: dict = field(default_factory=dict)


@dataclass(frozen=True)
class CrashImage:
    """What memory holds if power fails at one instant.

    ``persisted`` maps region *label* -> {line -> payload}; labels (not
    region ids, whose global counter varies across processes) keep
    images and violation records byte-identical for any job fan-out.
    """

    index: int
    time_ns: float
    trigger: str
    persisted: dict
    #: Volatile-state head-counts at the crash instant (diagnostics).
    dirty_lines: int
    posted_lines: int

    def lines(self, label: str) -> dict:
        """The persisted lines of one region (empty if never touched)."""
        return self.persisted.get(label, {})


class PersistenceDomain:
    """Cache-line persistence state across every shadowed region.

    Regions auto-register on first touch; only regions allocated with
    ``persistent=True`` (pmalloc) are shadowed — flushes of volatile
    memory are ignored, as on real hardware they have no durability
    meaning.
    """

    def __init__(self) -> None:
        self._shadows: dict[int, RegionShadow] = {}
        self._by_label: dict[str, RegionShadow] = {}
        # Counters (diagnostics; all deterministic).
        self.stores_recorded = 0
        self.store_batches_seen = 0
        self.lines_posted = 0
        self.lines_persisted = 0
        self.clean_flushes = 0
        self.flushes_seen = 0
        self.commits_seen = 0
        self.posted_deadlines_seen = 0
        #: Callables invoked with (thread, op) after a Commit drained —
        #: the crash injector's "power fails right after the barrier
        #: retires" snapshot point.
        self.commit_observers: list = []
        #: Callables invoked with (thread, op) after a durable Flush
        #: persisted at least one line — the explore mode's exhaustive
        #: "power fails right after this line became durable" point.
        #: Commit drains are already covered by ``commit_observers``.
        self.persist_observers: list = []

    # ------------------------------------------------------------------
    # Registration / content channel
    # ------------------------------------------------------------------
    def _shadow(self, region: "MemoryRegion") -> Optional[RegionShadow]:
        shadow = self._shadows.get(region.region_id)
        if shadow is not None:
            return shadow
        if not region.persistent:
            return None
        label = region.label or f"pmem-{len(self._shadows)}"
        if label in self._by_label:
            raise WorkloadError(
                f"persistent regions must have unique labels; duplicate "
                f"{label!r} would make crash images ambiguous"
            )
        shadow = RegionShadow(label=label, lines=region.lines)
        self._shadows[region.region_id] = shadow
        self._by_label[label] = shadow
        return shadow

    def record(self, region: "MemoryRegion", line: int, payload: Any) -> None:
        """Declare the logical content of one dirty line (untimed).

        Recoverable workloads call this next to the store traffic they
        yield; the simulated timing is entirely carried by the ops, the
        shadow write costs nothing.
        """
        shadow = self._shadow(region)
        if shadow is None:
            raise WorkloadError(
                f"cannot record into non-persistent region {region.label!r}"
            )
        if not 0 <= line < shadow.lines:
            raise WorkloadError(
                f"line {line} outside region {shadow.label!r} "
                f"({shadow.lines} lines)"
            )
        shadow.dirty[line] = payload
        self.stores_recorded += 1

    # ------------------------------------------------------------------
    # Observer seams
    # ------------------------------------------------------------------
    def observe_op(self, thread: "SimThread", op) -> None:
        """The dispatch-observer entry point (exactly-once per executed op)."""
        kind = type(op)
        if kind is Flush:
            self._flush(thread, op, durable=True)
        elif kind is FlushOpt:
            self._flush(thread, op, durable=False)
        elif kind is Commit:
            self._drain(thread.tid)
            for observer in self.commit_observers:
                observer(thread, op)
        elif kind is MemBatch and op.is_store and op.region.persistent:
            self.store_batches_seen += 1

    def observe_write_emulation(self, event: str, thread, op, deadline_ns) -> None:
        """The :class:`PmWriteEmulator` hook-observer entry point.

        The op stream already drives every state transition; this seam
        only collects write-emulation metadata (posted deadlines) the
        ops cannot carry.
        """
        if event == "pflush" and deadline_ns is not None:
            self.posted_deadlines_seen += 1

    # ------------------------------------------------------------------
    # Transitions
    # ------------------------------------------------------------------
    def _select_lines(self, shadow: RegionShadow, op) -> list[int]:
        if op.line is not None:
            return [
                index
                for index in range(op.line, op.line + op.lines)
                if index in shadow.dirty
            ]
        # Oldest-dirty-first: dicts preserve insertion order.
        return list(shadow.dirty)[: op.lines]

    def _flush(self, thread: "SimThread", op, durable: bool) -> None:
        self.flushes_seen += 1
        shadow = self._shadow(op.region)
        if shadow is None:
            return
        selected = self._select_lines(shadow, op)
        if not selected:
            self.clean_flushes += 1
            return
        for index in selected:
            payload = shadow.dirty.pop(index)
            if durable:
                shadow.persisted[index] = payload
                self.lines_persisted += 1
            else:
                shadow.posted[index] = (payload, thread.tid)
                self.lines_posted += 1
        if durable:
            for observer in self.persist_observers:
                observer(thread, op)

    def _drain(self, tid: int) -> None:
        self.commits_seen += 1
        for shadow in self._shadows.values():
            drained = [
                index
                for index, (_, poster) in shadow.posted.items()
                if poster == tid
            ]
            for index in drained:
                payload, _ = shadow.posted.pop(index)
                shadow.persisted[index] = payload
                self.lines_persisted += 1

    # ------------------------------------------------------------------
    # Images / diagnostics
    # ------------------------------------------------------------------
    def dirty_line_count(self) -> int:
        """Lines currently dirty in cache across all regions."""
        return sum(len(shadow.dirty) for shadow in self._shadows.values())

    def posted_line_count(self) -> int:
        """Lines with in-flight (posted, undrained) writebacks."""
        return sum(len(shadow.posted) for shadow in self._shadows.values())

    def persisted_image(self) -> dict:
        """Deep copy of the durable image: label -> {line -> payload}."""
        return {
            shadow.label: dict(shadow.persisted)
            for shadow in self._shadows.values()
        }

    def snapshot(self, index: int, time_ns: float, trigger: str) -> CrashImage:
        """Freeze the current persisted image as a :class:`CrashImage`."""
        return CrashImage(
            index=index,
            time_ns=time_ns,
            trigger=trigger,
            persisted=self.persisted_image(),
            dirty_lines=self.dirty_line_count(),
            posted_lines=self.posted_line_count(),
        )

    def stats(self) -> dict:
        """Deterministic counters (JSON-safe)."""
        return {
            "regions": len(self._shadows),
            "stores_recorded": self.stores_recorded,
            "store_batches_seen": self.store_batches_seen,
            "flushes_seen": self.flushes_seen,
            "clean_flushes": self.clean_flushes,
            "lines_posted": self.lines_posted,
            "lines_persisted": self.lines_persisted,
            "commits_seen": self.commits_seen,
            "posted_deadlines_seen": self.posted_deadlines_seen,
            "dirty_lines": self.dirty_line_count(),
            "posted_lines": self.posted_line_count(),
        }

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, os, write_emulator=None) -> None:
        """Attach to an OS (and optionally a write emulator)'s seams."""
        if os.interpose.dispatch_observer is not None:
            raise WorkloadError("a dispatch observer is already installed")
        os.interpose.dispatch_observer = self.observe_op
        if write_emulator is not None:
            write_emulator.observer = self.observe_write_emulation
