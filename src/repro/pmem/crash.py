"""Crash-point enumeration: snapshotting the persisted image.

A *crash point* is an instant at which the checker asks "if power failed
exactly here, could recovery succeed?".  The injector enumerates them
from three deterministic sources:

* **epoch closes** — every :class:`~repro.quartz.epoch.EpochCloseInfo`
  the engine notifies (the emulator's own natural interrupt points);
* **persistence barriers** — every executed ``pcommit``, snapshotted
  *after* its drain: the adversarial "power fails the instant the
  barrier retires" point;
* **random sim-times** — a self-rescheduling simulator callback whose
  inter-arrival times come from a private stream seeded exactly like the
  fault engine's, via :func:`repro.faults.engine.derive_seed` over
  ``(plan seed, run seed)``.

Snapshots never halt the run — the simulation continues and every
enumerated point is checked afterwards, so one run covers the whole
crash-point set.  Snapshot *storage* can be sharded (``index % shards ==
shard``) to fan the recovery work across the parallel runner: every
shard observes the identical point sequence (the injector perturbs no
simulated state, and its random stream is private), so the merged
results are byte-identical for any job count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.faults.engine import derive_seed
from repro.pmem.domain import CrashImage, PersistenceDomain
from repro.sim.random import RandomStreams

if TYPE_CHECKING:
    from repro.quartz.epoch import EpochEngine
    from repro.sim import Simulator


@dataclass(frozen=True)
class CrashPlan:
    """Declarative, picklable description of which crash points to take."""

    #: Snapshot at every epoch close.
    on_epoch_close: bool = True
    #: Snapshot right after every pcommit drain.
    on_commit: bool = True
    #: Snapshot right after every durable flush persisted a line — the
    #: exhaustive per-persist coverage explore mode needs.
    on_persist: bool = False
    #: Mean inter-arrival of random crash points (0 disables them).
    random_interval_ns: float = 0.0
    #: Plan-level seed, mixed with the run seed per injector.
    seed: int = 0
    #: Hard cap on enumerated points (bounds memory and recovery work).
    max_points: int = 512

    def __post_init__(self) -> None:
        if self.random_interval_ns < 0:
            raise WorkloadError(
                f"random crash interval cannot be negative: "
                f"{self.random_interval_ns}"
            )
        if self.max_points < 1:
            raise WorkloadError(
                f"need at least one crash point: {self.max_points}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form (feeds the export manifest)."""
        return {
            "on_epoch_close": self.on_epoch_close,
            "on_commit": self.on_commit,
            "on_persist": self.on_persist,
            "random_interval_ns": self.random_interval_ns,
            "seed": self.seed,
            "max_points": self.max_points,
        }


class CrashInjector:
    """Enumerates crash points against one run's domain, deterministically."""

    def __init__(
        self,
        domain: PersistenceDomain,
        plan: CrashPlan,
        run_seed: int = 0,
        shard: int = 0,
        shards: int = 1,
    ):
        if shards < 1 or not 0 <= shard < shards:
            raise WorkloadError(
                f"bad shard selector: {shard}/{shards}"
            )
        self.domain = domain
        self.plan = plan
        self.shard = shard
        self.shards = shards
        self._streams = RandomStreams(seed=derive_seed(plan.seed, run_seed))
        self._sim: Optional["Simulator"] = None
        #: Total crash points enumerated (identical in every shard).
        self.points = 0
        #: Points whose snapshot this shard stored.
        self.images: list[CrashImage] = []

    # ------------------------------------------------------------------
    def install(
        self, sim: "Simulator", engine: Optional["EpochEngine"] = None
    ) -> None:
        """Subscribe to the run's trigger sources."""
        self._sim = sim
        if self.plan.on_epoch_close and engine is not None:
            engine.close_observers.append(self._on_epoch_close)
        if self.plan.on_commit:
            self.domain.commit_observers.append(self._on_commit)
        if self.plan.on_persist:
            self.domain.persist_observers.append(self._on_persist)
        if self.plan.random_interval_ns > 0:
            self._schedule_random()

    # ------------------------------------------------------------------
    # Triggers
    # ------------------------------------------------------------------
    def _on_epoch_close(self, info) -> None:
        self._take(f"epoch-close#{info.close_seq}")

    def _on_commit(self, thread, op) -> None:
        self._take(f"commit@{thread.name}")

    def _on_persist(self, thread, op) -> None:
        self._take(f"persist@{thread.name}")

    def _schedule_random(self) -> None:
        assert self._sim is not None
        stream = self._streams.stream("crash-random")
        # Jittered, never-zero inter-arrival around the configured mean.
        delay = self.plan.random_interval_ns * (0.5 + stream.random())
        self._sim.schedule(delay, self._random_fire)

    def _random_fire(self) -> None:
        self._take("random")
        if self.points < self.plan.max_points:
            # Stop rescheduling once capped so the event heap can drain.
            self._schedule_random()

    # ------------------------------------------------------------------
    def _take(self, trigger: str) -> None:
        if self.points >= self.plan.max_points:
            return
        index = self.points
        self.points += 1
        if index % self.shards == self.shard:
            time_ns = self._sim.now if self._sim is not None else 0.0
            self.images.append(self.domain.snapshot(index, time_ns, trigger))

    def report(self) -> dict:
        """Deterministic summary counters."""
        return {
            "points": self.points,
            "stored": len(self.images),
            "shard": self.shard,
            "shards": self.shards,
            "capped": self.points >= self.plan.max_points,
        }
