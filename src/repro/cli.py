"""Command-line interface: regenerate any paper table or figure.

Examples::

    quartz-repro list
    quartz-repro run figure12
    quartz-repro run figure11 --arch ivy-bridge --trials 2
    quartz-repro run figure16-latency -o fig16.txt
    quartz-repro run figure12 --format json --out fig12.json
    quartz-repro run figure12 --trace-out fig12-epochs.jsonl
    quartz-repro trace summarize fig12-epochs.jsonl
    quartz-repro calibrate --arch haswell

With ``--format json`` the experiment document (rows + provenance
manifest + runner telemetry; see ``repro.validation.export``) is the
*only* stdout output — progress and summary lines move to stderr — so
the command pipes cleanly into ``jq`` and friends.
"""

from __future__ import annotations

import argparse
import inspect
import sys
import time
from typing import Optional, Sequence

from repro.errors import (
    FaultPlanError,
    InvariantViolation,
    RunInterrupted,
    ValidationError,
)
from repro.faults import FaultPlan, clear_active_faults, set_active_faults
from repro.hw.arch import arch_by_name
from repro.quartz.calibration import calibrate_arch
from repro.validation import export
from repro.validation.experiments import REGISTRY
from repro.validation.experiments.service import SERVICE_PRESETS
from repro.validation.experiments.sweeps import SWEEP_PRESETS
from repro.validation.reporting import render_table
from repro.validation.runner import (
    close_trace_out,
    consume_run_stats,
    default_cli_jobs,
    reset_run_stats,
    set_trace_out,
)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="quartz-repro",
        description=(
            "Reproduction of 'Quartz: A Lightweight Performance Emulator "
            "for Persistent Memory Software' (Middleware 2015)"
        ),
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list available experiments")

    run = subparsers.add_parser("run", help="run one experiment")
    run.add_argument("experiment", choices=sorted(REGISTRY), metavar="experiment")
    run.add_argument(
        "--arch",
        help="restrict to one processor family (where the experiment allows)",
    )
    run.add_argument(
        "--trials", type=int, help="trial count (where the experiment allows)"
    )
    run.add_argument(
        "--jobs",
        type=int,
        help=(
            "worker processes for the run grid (default: QUARTZ_REPRO_JOBS "
            "or all cores; results are identical for any job count)"
        ),
    )
    run.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help=(
            "output format: the ASCII table, or the schema-versioned JSON "
            "export document (default: table)"
        ),
    )
    run.add_argument(
        "-o", "--output", "--out",
        dest="output",
        help="also write the rendered output (current --format) to a file",
    )
    run.add_argument(
        "--trace-out",
        help=(
            "stream every emulated (Conf_1) run's epoch closes to this "
            "JSONL file (forces in-process execution; reload with "
            "'quartz-repro trace summarize')"
        ),
    )
    run.add_argument(
        "--faults",
        help=(
            "run under deterministic fault injection; semicolon-separated "
            "clauses, e.g. 'seed(7); signal-delay(ns=2e6, p=1.0); "
            "timer-jitter(rel=0.01)' — see repro.faults.plan for the "
            "full grammar"
        ),
    )
    run.add_argument(
        "--tiers",
        help=(
            "emulated memory-tier ladder for the multi-tier experiments: "
            "comma-separated read/write latency pairs in ns, fastest "
            "first, e.g. '250/350,400/600,700/1100' (tier 0, the local "
            "DRAM, is implicit)"
        ),
    )
    run.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "attach the runtime invariant monitor (clock monotonicity, "
            "delay conservation, split proportionality); the run aborts "
            "with exit code 3 at the first violation"
        ),
    )

    calibrate = subparsers.add_parser(
        "calibrate", help="print the calibration data for a testbed"
    )
    calibrate.add_argument("--arch", default="ivy-bridge")
    calibrate.add_argument(
        "--refresh",
        action="store_true",
        help="re-measure even when a cached calibration exists",
    )

    crash = subparsers.add_parser(
        "crash-check",
        help=(
            "crash-consistency check a recoverable PM workload "
            "(persistence-domain simulation + recovery validation)"
        ),
    )
    crash.add_argument(
        "workload",
        choices=("kvstore", "graph500"),
        help="recoverable workload to check",
    )
    crash.add_argument(
        "--mutant",
        choices=("all", "none", "missing-flush", "misordered-barrier"),
        default="all",
        help=(
            "protocol variant(s) to run: the correct protocol ('none'), a "
            "seeded bug, or the full oracle sweep (default: all)"
        ),
    )
    crash.add_argument(
        "--shards",
        type=int,
        default=4,
        help=(
            "ways to shard crash-image storage across runs (fixed per "
            "invocation, so results are identical for any --jobs value; "
            "default: 4)"
        ),
    )
    crash.add_argument("--seed", type=int, default=411, help="run seed")
    crash.add_argument(
        "--arch", help="processor family of the simulated testbed"
    )
    crash.add_argument(
        "--jobs",
        type=int,
        help="worker processes (default: QUARTZ_REPRO_JOBS or all cores)",
    )
    crash.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: table)",
    )
    crash.add_argument(
        "-o", "--output", "--out",
        dest="output",
        help="also write the rendered output (current --format) to a file",
    )

    explore = subparsers.add_parser(
        "explore",
        help=(
            "model-check a recoverable workload: enumerate every thread "
            "interleaving and cross each with every reachable crash point"
        ),
    )
    explore.add_argument(
        "workload",
        choices=("mutex-log", "disjoint-locks", "kvstore", "graph500"),
        help="explorable workload (litmus tests or recoverable PM bodies)",
    )
    explore.add_argument(
        "--mutant",
        choices=("all", "none", "missing-flush", "misordered-barrier"),
        default="all",
        help=(
            "protocol variant(s) to explore: the correct protocol "
            "('none'), a seeded bug, or the full oracle sweep (default: "
            "all; litmus tests without a persist protocol only accept "
            "'none')"
        ),
    )
    explore.add_argument(
        "--shards",
        type=int,
        default=2,
        help=(
            "ways to partition the schedule tree at its first decision "
            "point (fixed per invocation, so results are identical for "
            "any --jobs value; default: 2)"
        ),
    )
    explore.add_argument("--seed", type=int, default=0, help="run seed")
    explore.add_argument(
        "--no-prune",
        action="store_true",
        help=(
            "disable sleep-set pruning and walk the full interleaving "
            "tree (the pruning-soundness baseline; slower, same verdict)"
        ),
    )
    explore.add_argument(
        "--arch", help="processor family of the simulated testbed"
    )
    explore.add_argument(
        "--jobs",
        type=int,
        help="worker processes (default: QUARTZ_REPRO_JOBS or all cores)",
    )
    explore.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: table)",
    )
    explore.add_argument(
        "-o", "--output", "--out",
        dest="output",
        help="also write the rendered output (current --format) to a file",
    )

    service = subparsers.add_parser(
        "service",
        help=(
            "run the trace-driven multi-tenant KV service (DRAM cache "
            "tier + tail-latency reporting) at a named preset"
        ),
    )
    service.add_argument(
        "preset", choices=sorted(SERVICE_PRESETS), metavar="preset",
        help=f"service preset ({', '.join(sorted(SERVICE_PRESETS))})",
    )
    service.add_argument(
        "--jobs",
        type=int,
        help="worker processes (default: QUARTZ_REPRO_JOBS or all cores)",
    )
    service.add_argument(
        "--faults",
        help=(
            "run under deterministic fault injection (same grammar as "
            "'run --faults'); the cache-accounting conservation checks "
            "still gate the run"
        ),
    )
    service.add_argument(
        "--check-invariants",
        action="store_true",
        help=(
            "attach the runtime invariant monitor; the run aborts with "
            "exit code 3 at the first violation"
        ),
    )
    service.add_argument(
        "--format",
        choices=("table", "json"),
        default="table",
        help="output format (default: table)",
    )
    service.add_argument(
        "-o", "--output", "--out",
        dest="output",
        help="also write the rendered output (current --format) to a file",
    )

    sweep = subparsers.add_parser(
        "sweep",
        help=(
            "streaming, checkpointed sweep orchestration for large run "
            "grids (journal + resume-after-crash)"
        ),
    )
    sweep_sub = sweep.add_subparsers(dest="sweep_command", required=True)
    sweep_run = sweep_sub.add_parser(
        "run", help="start a journaled sweep of a preset grid"
    )
    sweep_run.add_argument(
        "preset", choices=sorted(SWEEP_PRESETS), metavar="preset",
        help=f"sweep preset ({', '.join(sorted(SWEEP_PRESETS))})",
    )
    sweep_run.add_argument(
        "--scale", default="small",
        help="grid scale preset (smoke/small/large; default: small)",
    )
    sweep_resume = sweep_sub.add_parser(
        "resume",
        help=(
            "resume an interrupted sweep: verified checkpoints are "
            "reused, only unfinished specs re-execute"
        ),
    )
    sweep_status_p = sweep_sub.add_parser(
        "status", help="print a sweep directory's progress"
    )
    for sub in (sweep_run, sweep_resume, sweep_status_p):
        sub.add_argument(
            "--dir", required=True, dest="sweep_dir",
            help="sweep directory (journal.jsonl + results.jsonl)",
        )
    for sub in (sweep_run, sweep_resume):
        sub.add_argument(
            "--jobs", type=int,
            help=(
                "worker processes (default: QUARTZ_REPRO_JOBS or all "
                "cores; results are identical for any job count)"
            ),
        )
        sub.add_argument(
            "--format", choices=("table", "json"), default="table",
            help="output format (default: table)",
        )
        sub.add_argument(
            "-o", "--output", "--out", dest="output",
            help="also write the rendered output (current --format) to a file",
        )
        sub.add_argument(
            "--interrupt-after", type=int, default=None,
            help=(
                "deterministic crash point: interrupt the sweep after N "
                "fresh completions are checkpointed (exit 130; used by "
                "the resume tests and CI smoke)"
            ),
        )

    trace = subparsers.add_parser(
        "trace", help="inspect a JSONL epoch trace (--trace-out output)"
    )
    trace_sub = trace.add_subparsers(dest="trace_command", required=True)
    summarize = trace_sub.add_parser(
        "summarize",
        help="reload a JSONL trace and reprint the Section 3.2 summary",
    )
    summarize.add_argument("path", help="JSONL trace file")
    summarize.add_argument(
        "--max-records",
        type=int,
        default=None,
        help=(
            "apply an in-memory record cap while reloading (matches a "
            "live EpochTrace's max_records)"
        ),
    )
    return parser


def _parse_tier_ladder(spec: str) -> tuple:
    """Parse ``--tiers``: 'read/write,read/write,...' ns pairs.

    A bare number is accepted per tier as symmetric read==write.
    """
    ladder = []
    for index, chunk in enumerate(spec.split(",")):
        chunk = chunk.strip()
        try:
            if "/" in chunk:
                read_text, write_text = chunk.split("/", 1)
                pair = (float(read_text), float(write_text))
            else:
                pair = (float(chunk), float(chunk))
        except ValueError:
            raise SystemExit(
                f"--tiers: cannot parse tier {index + 1} from {chunk!r} "
                "(expected 'read/write' latencies in ns, e.g. '400/600')"
            )
        ladder.append(pair)
    if not ladder:
        raise SystemExit("--tiers: at least one tier is required")
    return tuple(ladder)


def _driver_kwargs(
    experiment: str, driver, args: argparse.Namespace
) -> dict:
    """Map CLI flags onto whichever keyword arguments the driver accepts.

    Flags a driver has no parameter for produce a stderr note instead of
    a ``TypeError`` mid-run.
    """
    parameters = inspect.signature(driver).parameters
    kwargs: dict = {}
    if getattr(args, "tiers", None):
        ladder = _parse_tier_ladder(args.tiers)
        # The sweep takes named ladders; the policy study takes one.
        if "tier_sets" in parameters:
            kwargs["tier_sets"] = {"cli": ladder}
        elif "read_write_ns" in parameters:
            kwargs["read_write_ns"] = ladder
        else:
            print(
                f"note: {experiment} does not take --tiers",
                file=sys.stderr,
            )
    if args.arch:
        arch = arch_by_name(args.arch)
        # Drivers take either a single arch or a sequence of them.
        if "arch" in parameters:
            kwargs["arch"] = arch
        elif "archs" in parameters:
            kwargs["archs"] = [arch]
        else:
            print(
                f"note: {experiment} does not take an architecture",
                file=sys.stderr,
            )
    if args.trials is not None:
        if "trials" in parameters:
            kwargs["trials"] = args.trials
        else:
            print(
                f"note: {experiment} does not take --trials",
                file=sys.stderr,
            )
    if "jobs" in parameters:
        kwargs["jobs"] = args.jobs if args.jobs else default_cli_jobs()
        if getattr(args, "trace_out", None):
            if kwargs["jobs"] != 1:
                print(
                    "note: --trace-out streams from in-process runs; "
                    "forcing --jobs 1",
                    file=sys.stderr,
                )
            kwargs["jobs"] = 1
    elif args.jobs is not None:
        print(
            f"note: {experiment} does not take --jobs (runs in-process)",
            file=sys.stderr,
        )
    return kwargs


def _run_experiment(args: argparse.Namespace) -> int:
    driver = REGISTRY[args.experiment]
    kwargs = _driver_kwargs(args.experiment, driver, args)
    # In JSON mode stdout carries the document and nothing else.
    info = sys.stderr if args.format == "json" else sys.stdout
    fault_plan = None
    if args.faults:
        try:
            fault_plan = FaultPlan.parse(args.faults)
        except FaultPlanError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if args.trace_out:
        set_trace_out(args.trace_out)
    if fault_plan is not None or args.check_invariants:
        set_active_faults(fault_plan, args.check_invariants)
    reset_run_stats()
    started = time.perf_counter()
    try:
        try:
            result = driver(**kwargs)
        finally:
            trace_info = close_trace_out()
            clear_active_faults()
    except InvariantViolation as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "the run aborted at the first violated invariant; re-run "
            "without --check-invariants to observe the raw (faulted) "
            "behaviour",
            file=sys.stderr,
        )
        return 3
    except RunInterrupted as interrupt:
        stats = consume_run_stats()
        print(f"interrupted: {interrupt}", file=sys.stderr)
        if stats is not None and stats.runs:
            print(stats.summary(), file=sys.stderr)
        return 130
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    if args.format == "json":
        document = export.build_document(
            result,
            export.build_manifest(
                stats=stats,
                knobs={
                    "command": "run",
                    "experiment": args.experiment,
                    "arch": args.arch,
                    "trials": args.trials,
                    "check_invariants": bool(args.check_invariants),
                },
                faults=fault_plan.to_dict() if fault_plan is not None else None,
            ),
            telemetry=stats.telemetry() if stats is not None else None,
        )
        rendered = export.dumps_document(document)
        sys.stdout.write(rendered)
    else:
        rendered = render_table(result) + "\n"
        sys.stdout.write(rendered)
    print(f"\n(completed in {wall_s:.1f}s wall time)", file=info)
    if stats is not None and stats.runs:
        print(stats.summary(), file=info)
    if trace_info is not None:
        path, runs, records = trace_info
        print(
            f"epoch trace: {records} record(s) across {runs} emulated "
            f"run(s) written to {path}",
            file=info,
        )
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"written to {args.output}", file=info)
    return 0


def _crash_check(args: argparse.Namespace) -> int:
    """The ``crash-check`` subcommand: run the oracle, gate on its verdict.

    Exit codes: 0 every expectation held; 4 the checker's verdict failed
    (violations on the correct protocol, or a mutant escaping uncaught).
    """
    from repro.hw.arch import IVY_BRIDGE
    from repro.validation.experiments.crash import (
        DEFAULT_CRASH_PLAN,
        MUTANT_AXIS,
        run_crash_check,
    )

    info = sys.stderr if args.format == "json" else sys.stdout
    mutants = MUTANT_AXIS if args.mutant == "all" else (args.mutant,)
    arch = arch_by_name(args.arch) if args.arch else IVY_BRIDGE
    reset_run_stats()
    started = time.perf_counter()
    result = run_crash_check(
        arch=arch,
        workload=args.workload,
        mutants=mutants,
        shards=args.shards,
        seed=args.seed,
        jobs=args.jobs if args.jobs else default_cli_jobs(),
    )
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    if args.format == "json":
        document = export.build_document(
            result,
            export.build_manifest(
                stats=stats,
                knobs={
                    "command": "crash-check",
                    "workload": args.workload,
                    "mutant": args.mutant,
                    "shards": args.shards,
                    "seed": args.seed,
                    "arch": args.arch,
                },
                crash=DEFAULT_CRASH_PLAN.to_dict(),
            ),
            telemetry=stats.telemetry() if stats is not None else None,
        )
        rendered = export.dumps_document(document)
    else:
        rendered = render_table(result) + "\n"
    sys.stdout.write(rendered)
    print(f"\n(completed in {wall_s:.1f}s wall time)", file=info)
    if stats is not None and stats.runs:
        print(stats.summary(), file=info)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"written to {args.output}", file=info)
    failed = [row for row in result.rows if not row["ok"]]
    if failed:
        for row in failed:
            print(
                f"error: crash-check expectation failed for "
                f"{row['workload']}/{row['mutant']}: expected "
                f"{row['expected']} violation(s), got {row['violations']}",
                file=sys.stderr,
            )
        return 4
    return 0


def _explore(args: argparse.Namespace) -> int:
    """The ``explore`` subcommand: model-check, gate on the verdict.

    Exit codes: 0 every expectation held (the report prints schedule and
    crash-point counts); 4 the oracle's verdict failed — violations on
    the correct protocol, a mutant surviving the full exploration, or a
    capped (non-exhaustive) run.
    """
    from dataclasses import replace

    from repro.hw.arch import IVY_BRIDGE
    from repro.validation.experiments.explore import (
        DEFAULT_EXPLORE_PLAN,
        MUTANT_AXIS,
        run_explore_check,
    )

    info = sys.stderr if args.format == "json" else sys.stdout
    if args.mutant == "all":
        # Litmus tests without a persist protocol reject mutants.
        mutants = MUTANT_AXIS if args.workload != "disjoint-locks" else ("none",)
    else:
        mutants = (args.mutant,)
    arch = arch_by_name(args.arch) if args.arch else IVY_BRIDGE
    plan = DEFAULT_EXPLORE_PLAN
    if args.no_prune:
        plan = replace(plan, prune=False)
    reset_run_stats()
    started = time.perf_counter()
    result = run_explore_check(
        arch=arch,
        workload=args.workload,
        mutants=mutants,
        shards=args.shards,
        seed=args.seed,
        explore_plan=plan,
        jobs=args.jobs if args.jobs else default_cli_jobs(),
    )
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    if args.format == "json":
        document = export.build_document(
            result,
            export.build_manifest(
                stats=stats,
                knobs={
                    "command": "explore",
                    "workload": args.workload,
                    "mutant": args.mutant,
                    "shards": args.shards,
                    "seed": args.seed,
                    "arch": args.arch,
                },
                explore=plan.to_dict(),
            ),
            telemetry=stats.telemetry() if stats is not None else None,
        )
        rendered = export.dumps_document(document)
    else:
        rendered = render_table(result) + "\n"
    sys.stdout.write(rendered)
    print(f"\n(completed in {wall_s:.1f}s wall time)", file=info)
    if stats is not None and stats.runs:
        print(stats.summary(), file=info)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"written to {args.output}", file=info)
    failed = [row for row in result.rows if not row["ok"]]
    if failed:
        for row in failed:
            print(
                f"error: explore expectation failed for "
                f"{row['workload']}/{row['mutant']}: expected "
                f"{row['expected']} violation(s), got {row['violations']} "
                f"across {row['schedules']} schedule(s)",
                file=sys.stderr,
            )
        return 4
    return 0


def _service(args: argparse.Namespace) -> int:
    """The ``service`` subcommand: one KV-service preset, gated exports.

    Exit codes: 0 on success, 2 on a misconfigured preset/fault plan,
    3 when an invariant (including the DRAM cache's accounting
    conservation) is violated, 130 when interrupted.
    """
    from repro.validation.experiments.service import service_scenario

    info = sys.stderr if args.format == "json" else sys.stdout
    experiment_id, build_kwargs = SERVICE_PRESETS[args.preset]
    driver = REGISTRY[experiment_id]
    kwargs = build_kwargs()
    kwargs["jobs"] = args.jobs if args.jobs else default_cli_jobs()
    fault_plan = None
    if args.faults:
        try:
            fault_plan = FaultPlan.parse(args.faults)
        except FaultPlanError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
    if fault_plan is not None or args.check_invariants:
        set_active_faults(fault_plan, args.check_invariants)
    reset_run_stats()
    started = time.perf_counter()
    try:
        try:
            result = driver(**kwargs)
        finally:
            clear_active_faults()
    except InvariantViolation as error:
        print(f"error: {error}", file=sys.stderr)
        print(
            "the service run aborted at the first violated invariant "
            "(runtime or cache-accounting conservation)",
            file=sys.stderr,
        )
        return 3
    except RunInterrupted as interrupt:
        stats = consume_run_stats()
        print(f"interrupted: {interrupt}", file=sys.stderr)
        if stats is not None and stats.runs:
            print(stats.summary(), file=sys.stderr)
        return 130
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    if args.format == "json":
        document = export.build_document(
            result,
            export.build_manifest(
                stats=stats,
                knobs={
                    "command": "service",
                    "preset": args.preset,
                    "experiment": experiment_id,
                    "check_invariants": bool(args.check_invariants),
                },
                faults=fault_plan.to_dict() if fault_plan is not None else None,
                service=service_scenario(args.preset),
            ),
            telemetry=stats.telemetry() if stats is not None else None,
        )
        rendered = export.dumps_document(document)
    else:
        rendered = render_table(result) + "\n"
    sys.stdout.write(rendered)
    print(f"\n(completed in {wall_s:.1f}s wall time)", file=info)
    if stats is not None and stats.runs:
        print(stats.summary(), file=info)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"written to {args.output}", file=info)
    return 0


def _sweep(args: argparse.Namespace) -> int:
    """The ``sweep`` subcommand family: run / resume / status.

    Exit codes: 0 on a completed sweep, 2 on a misconfigured one
    (unknown scale, journal/grid mismatch, fresh ``run`` into a used
    directory), 130 when interrupted — with every completed spec
    checkpointed and a resume hint printed.
    """
    from repro.validation.experiments.sweeps import (
        resume_sweep,
        start_sweep,
        sweep_status,
    )

    if args.sweep_command == "status":
        try:
            status = sweep_status(args.sweep_dir)
        except ValidationError as error:
            print(f"error: {error}", file=sys.stderr)
            return 2
        print(f"sweep: {status['name']} (knobs: {status['knobs']})")
        print(
            f"progress: {status['done']}/{status['total']} spec(s) "
            f"checkpointed, {status['remaining']} remaining"
        )
        print(f"grid digest: {status['grid_digest']}")
        print(f"journal: {status['journal']}")
        return 0

    info = sys.stderr if args.format == "json" else sys.stdout
    jobs = args.jobs if args.jobs else default_cli_jobs()
    reset_run_stats()
    started = time.perf_counter()
    try:
        if args.sweep_command == "run":
            sweep_run = start_sweep(
                args.preset,
                args.scale,
                args.sweep_dir,
                jobs=jobs,
                interrupt_after=args.interrupt_after,
            )
        else:
            sweep_run = resume_sweep(
                args.sweep_dir,
                jobs=jobs,
                interrupt_after=args.interrupt_after,
            )
    except RunInterrupted as interrupt:
        stats = consume_run_stats()
        print(f"sweep interrupted: {interrupt}", file=sys.stderr)
        if stats is not None:
            print(stats.summary(), file=sys.stderr)
        print(
            f"resume with: quartz-repro sweep resume --dir {args.sweep_dir}",
            file=sys.stderr,
        )
        return 130
    except ValidationError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    wall_s = time.perf_counter() - started
    stats = consume_run_stats()
    if args.format == "json":
        document = export.build_document(
            sweep_run.result,
            export.build_manifest(
                stats=stats,
                knobs={
                    "command": "sweep",
                    "preset": sweep_run.preset,
                    "scale": sweep_run.scale,
                },
            ),
            telemetry=stats.telemetry() if stats is not None else None,
        )
        rendered = export.dumps_document(document)
    else:
        rendered = render_table(sweep_run.result) + "\n"
    sys.stdout.write(rendered)
    report = sweep_run.report
    print(
        f"\nsweep {sweep_run.preset} ({sweep_run.scale}): "
        f"{report.total} spec(s), {report.executed} executed, "
        f"{report.skipped} reused from checkpoints"
        f"{f', {report.tampered} tampered record(s) re-run' if report.tampered else ''} "
        f"in {wall_s:.1f}s wall",
        file=info,
    )
    if stats is not None and stats.runs:
        print(stats.summary(), file=info)
    if args.output:
        with open(args.output, "w", encoding="utf-8") as handle:
            handle.write(rendered)
        print(f"written to {args.output}", file=info)
    return 0


def _list_experiments() -> int:
    print("available experiments (see DESIGN.md for the paper mapping):")
    for name in sorted(REGISTRY):
        doc = (REGISTRY[name].__doc__ or "").strip().splitlines()
        summary = doc[0] if doc else ""
        print(f"  {name:24s} {summary}")
    return 0


def _calibrate(args: argparse.Namespace) -> int:
    arch = arch_by_name(args.arch)
    data = calibrate_arch(arch, refresh=args.refresh)
    print(f"calibration for {arch.model} ({arch.family}):")
    print(f"  local DRAM latency : {data.dram_local_ns:8.2f} ns")
    print(f"  remote DRAM latency: {data.dram_remote_ns:8.2f} ns")
    print(f"  L3 latency         : {data.l3_ns:8.2f} ns")
    print(f"  W ratio (local)    : {data.w_local:8.2f}")
    print(f"  peak bandwidth     : {data.peak_bandwidth:8.2f} GB/s")
    print("  throttle-register bandwidth table:")
    for register, rate in data.bandwidth_table:
        print(f"    {register:5d} -> {rate:6.2f} GB/s")
    return 0


def _trace_summarize(args: argparse.Namespace) -> int:
    from repro.errors import QuartzError
    from repro.quartz.trace import summarize_trace_jsonl

    try:
        print(summarize_trace_jsonl(args.path, max_records=args.max_records))
    except QuartzError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    return 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """CLI entry point."""
    args = _build_parser().parse_args(argv)
    if args.command == "list":
        return _list_experiments()
    if args.command == "run":
        return _run_experiment(args)
    if args.command == "crash-check":
        return _crash_check(args)
    if args.command == "explore":
        return _explore(args)
    if args.command == "service":
        return _service(args)
    if args.command == "calibrate":
        return _calibrate(args)
    if args.command == "sweep":
        return _sweep(args)
    if args.command == "trace":
        return _trace_summarize(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
