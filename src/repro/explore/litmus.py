"""Litmus-test workloads: small, exploration-sized recoverable bodies.

These implement the :class:`~repro.pmem.checker.RecoverableWorkload`
protocol at a scale where the explorer can enumerate *every* thread
interleaving:

* ``mutex-log`` — threads append entries to one shared persistent log
  under a mutex; the header (line 0) commits a count, lines ``1+i`` hold
  the entries.  The correct protocol persists each entry before the
  header that makes it reachable; the ``missing-flush`` and
  ``misordered-barrier`` mutants break exactly that, and exploration
  must catch them under every interleaving of the lock hand-off.
* ``disjoint-locks`` — every thread owns a private mutex and a private
  persistent region and never persists anything.  All of its sync ops
  are pairwise independent across threads, so it is the pruning
  benchmark: sleep sets collapse its interleaving tree to a handful of
  schedules while an unpruned DFS walks them all.

Sync primitives get explicit names and regions explicit labels — the
module-level fallback counters in ``repro.os.sync`` are process-global
and would differ between executions, breaking replay determinism.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import (
    Commit,
    JoinThread,
    MemBatch,
    MutexLock,
    MutexUnlock,
    PatternKind,
    SpawnThread,
)
from repro.os.sync import Mutex
from repro.units import CACHE_LINE_BYTES, MIB

LOG_LABEL = "pmlog"
LOG_MUTEX = "litmus-log-mutex"


@dataclass(frozen=True)
class LitmusConfig:
    """Parameters of one litmus run (kept tiny by construction)."""

    threads: int = 2
    entries_per_thread: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError(f"need at least one thread: {self.threads}")
        if self.entries_per_thread < 1:
            raise WorkloadError(
                f"need at least one entry per thread: {self.entries_per_thread}"
            )


def _entry_payload(writer: int, position: int) -> tuple:
    return ("entry", writer, position)


def _store(arena, label: str):
    return MemBatch(
        arena,
        accesses=1,
        pattern=PatternKind.RANDOM,
        footprint_bytes=CACHE_LINE_BYTES,
        is_store=True,
        label=label,
    )


# ----------------------------------------------------------------------
# mutex-log
# ----------------------------------------------------------------------


def _mutex_log_worker(ctx, config, domain, mutant, arena, mutex, shared, writer):
    """Append ``entries_per_thread`` log records under the shared lock.

    Correct protocol per entry (all inside the critical section): record
    + store + persist the entry line, then record + store + persist the
    header claiming it.  ``missing-flush`` never persists the entry;
    ``misordered-barrier`` persists the header first.
    """
    for _ in range(config.entries_per_thread):
        yield MutexLock(mutex)
        position = shared["count"]
        line = 1 + position
        domain.record(arena, line, _entry_payload(writer, position))
        yield _store(arena, "log-entry-write")
        if mutant is None:
            yield from ctx.pflush(arena, lines=1, line=line)
            yield Commit()
        shared["count"] = position + 1
        domain.record(arena, 0, ("count", position + 1))
        yield _store(arena, "log-header-write")
        yield from ctx.pflush(arena, lines=1, line=0)
        yield Commit()
        if mutant == "misordered-barrier":
            # The broken ordering: the entry becomes durable only after
            # the header already claimed it — a crash in between commits
            # a count whose entry is gone.
            yield from ctx.pflush(arena, lines=1, line=line)
            yield Commit()
        yield MutexUnlock(mutex)
    return config.entries_per_thread


def mutex_log_body(config: LitmusConfig, out: dict, domain, mutant=None):
    """Body factory for the shared-log litmus test."""

    def body(ctx):
        arena = ctx.pmalloc(
            max(
                MIB,
                (1 + config.threads * config.entries_per_thread)
                * CACHE_LINE_BYTES,
            ),
            page_size=PageSize.HUGE_2M,
            label=LOG_LABEL,
        )
        mutex = Mutex(ctx.os, name=LOG_MUTEX)
        shared = {"count": 0}
        workers = []
        for index in range(config.threads):
            workers.append(
                (
                    yield SpawnThread(
                        _mutex_log_worker,
                        name=f"log-writer{index}",
                        args=(config, domain, mutant, arena, mutex, shared, index),
                    )
                )
            )
        total = 0
        for worker in workers:
            total += yield JoinThread(worker)
        out["result"] = {"appended": total, "mutant": mutant}
        return out["result"]

    return body


class LitmusMutexLog:
    """Exploration-sized shared persistent log (see module docstring)."""

    workload_id = "mutex-log"

    def __init__(self, config: LitmusConfig, mutant: Optional[str] = None):
        from repro.pmem.checker import MUTANTS

        if mutant is not None and mutant not in MUTANTS:
            raise WorkloadError(f"unknown mutant {mutant!r} (have: {MUTANTS})")
        self.config = config
        self.mutant = mutant

    def invariants(self) -> tuple:
        return ("committed-entries-durable",)

    def body_factory(self, domain, out: dict):
        return mutex_log_body(self.config, out, domain, self.mutant)

    def recover(self, image) -> list:
        """Every entry the header commits must be durable and well-formed.

        The *writer* of the i-th entry depends on the explored lock
        order, so recovery checks shape (a valid writer index) and the
        committed position, not a fixed value.
        """
        issues = []
        lines = image.lines(LOG_LABEL)
        header = lines.get(0)
        if header is None:
            return issues  # nothing committed: trivially consistent
        committed = header[1]
        for position in range(committed):
            entry = lines.get(1 + position)
            valid = (
                isinstance(entry, tuple)
                and len(entry) == 3
                and entry[0] == "entry"
                and 0 <= entry[1] < self.config.threads
                and entry[2] == position
            )
            if not valid:
                issues.append(
                    {
                        "invariant": "committed-entries-durable",
                        "detail": (
                            f"header commits {committed} entr(ies) but "
                            f"line {1 + position} holds {entry!r}"
                        ),
                    }
                )
        return issues


# ----------------------------------------------------------------------
# disjoint-locks
# ----------------------------------------------------------------------


def _disjoint_worker(ctx, config, domain, arena, mutex, writer):
    for sequence in range(config.entries_per_thread):
        yield MutexLock(mutex)
        domain.record(arena, sequence, ("private", writer, sequence))
        yield _store(arena, "private-write")
        yield MutexUnlock(mutex)
    return config.entries_per_thread


def disjoint_locks_body(config: LitmusConfig, out: dict, domain):
    """Body factory for the independent-locks litmus test."""

    def body(ctx):
        arenas = [
            ctx.pmalloc(
                max(MIB, (1 + config.entries_per_thread) * CACHE_LINE_BYTES),
                page_size=PageSize.HUGE_2M,
                label=f"pmdl-{index}",
            )
            for index in range(config.threads)
        ]
        mutexes = [
            Mutex(ctx.os, name=f"dl-mutex-{index}")
            for index in range(config.threads)
        ]
        workers = []
        for index in range(config.threads):
            workers.append(
                (
                    yield SpawnThread(
                        _disjoint_worker,
                        name=f"dl-worker{index}",
                        args=(config, domain, arenas[index], mutexes[index], index),
                    )
                )
            )
        total = 0
        for worker in workers:
            total += yield JoinThread(worker)
        out["result"] = {"writes": total}
        return out["result"]

    return body


class LitmusDisjointLocks:
    """Per-thread locks and regions: the sleep-set pruning benchmark."""

    workload_id = "disjoint-locks"

    def __init__(self, config: LitmusConfig, mutant: Optional[str] = None):
        if mutant is not None:
            raise WorkloadError(
                "disjoint-locks has no persist protocol to mutate"
            )
        self.config = config
        self.mutant = None

    def invariants(self) -> tuple:
        return ("private-entries-well-formed",)

    def body_factory(self, domain, out: dict):
        return disjoint_locks_body(self.config, out, domain)

    def recover(self, image) -> list:
        """Nothing is ever flushed; any persisted line is a checker bug."""
        issues = []
        for index in range(self.config.threads):
            for line, payload in sorted(image.lines(f"pmdl-{index}").items()):
                issues.append(
                    {
                        "invariant": "private-entries-well-formed",
                        "detail": (
                            f"region pmdl-{index} line {line} persisted "
                            f"{payload!r} without any flush"
                        ),
                    }
                )
        return issues


#: Litmus workload id -> class (same shape as ``checker.PM_WORKLOADS``).
LITMUS_WORKLOADS = {
    "mutex-log": LitmusMutexLog,
    "disjoint-locks": LitmusDisjointLocks,
}


def build_explorable(workload_id: str, config, mutant: Optional[str] = None):
    """Instantiate a litmus or registered recoverable workload."""
    if workload_id in LITMUS_WORKLOADS:
        return LITMUS_WORKLOADS[workload_id](config, mutant)
    from repro.pmem.checker import build_recoverable

    return build_recoverable(workload_id, config, mutant)
