"""Model-checking mode: controlled scheduling x exhaustive crash points.

``repro.explore`` turns the deterministic simulator into a small model
checker: a :class:`~repro.explore.scheduler.ControlledScheduler` parks
every thread at each sync/persist boundary, the
:class:`~repro.explore.explorer.Explorer` enumerates all interleavings
by stateless re-execution with DPOR-style sleep-set pruning, and each
explored schedule is crossed with every reachable crash point so the
:class:`~repro.pmem.checker.RecoverableWorkload` oracle judges every
(schedule, crash) pair.
"""

from repro.explore.explorer import (
    DEFAULT_EXPLORE_CRASH_PLAN,
    ExecutionRecord,
    ExplorePlan,
    Explorer,
    ExploreReport,
    merge_shard_reports,
)
from repro.explore.litmus import (
    LITMUS_WORKLOADS,
    LitmusConfig,
    LitmusDisjointLocks,
    LitmusMutexLog,
    build_explorable,
)
from repro.explore.scheduler import (
    ControlledScheduler,
    ParkedThread,
    boundary_footprint,
    describe_boundary,
    independent,
)

__all__ = [
    "DEFAULT_EXPLORE_CRASH_PLAN",
    "ControlledScheduler",
    "ExecutionRecord",
    "ExplorePlan",
    "Explorer",
    "ExploreReport",
    "LITMUS_WORKLOADS",
    "LitmusConfig",
    "LitmusDisjointLocks",
    "LitmusMutexLog",
    "ParkedThread",
    "boundary_footprint",
    "build_explorable",
    "describe_boundary",
    "independent",
    "merge_shard_reports",
]
