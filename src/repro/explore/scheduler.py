"""The controlled scheduler: parking threads at sync/persist boundaries.

Explore mode serializes a workload's scheduling decisions.  Every thread
is parked at each *boundary op* (sync primitives, persist ops, thread
lifecycle — see ``repro.os.system._BOUNDARY_OPS``) plus once at thread
start, via the :attr:`~repro.os.system.SimOS.boundary_gate` seam.  The
explorer then drains the simulator, inspects who is parked, and grants
exactly one thread at a time — the cooperative poll/continue engine shape
of simsched-style model checkers.

Between two boundaries a thread only executes thread-local work (compute
and memory batches against its own program state), so granting one
boundary op lets the thread run untimed-race-free to its *next* boundary
without losing any distinct interleaving: all cross-thread interaction —
lock hand-off, barrier release, persist ordering — happens at gated ops.

**Enabledness.**  A parked op is offered as a candidate only if granting
it makes progress: ``MutexLock`` is enabled only while the mutex is free
and ``JoinThread`` only once the target finished.  This keeps every
decision point a real choice (granting a blocked acquire would just move
the thread into the primitive's wait queue and hand the schedule back),
and it makes deadlock detection exact: live threads with no enabled
candidate cannot ever run again.

**Independence.**  For DPOR-style sleep-set pruning each boundary op
carries a :func:`boundary_footprint`: sync ops name their primitive,
persist ops form one mutually-dependent class (the crash-image cross
product observes the *global* persist order, so reordering any two
persists can change an intermediate crash image — "persist-boundary
pruning" never commutes them), and spawn/join are dependent with
everything (they change the thread population and enabledness).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.ops import (
    BarrierWait,
    Commit,
    CondNotify,
    CondWait,
    Flush,
    FlushOpt,
    JoinThread,
    MutexLock,
    MutexUnlock,
    SpawnThread,
)
from repro.sim import Condition

if TYPE_CHECKING:
    from repro.os.system import SimOS
    from repro.os.thread import SimThread

#: Footprint classes (first element of every footprint tuple).
START = "start"
SYNC = "sync"
PERSIST = "persist"
GLOBAL = "global"


def boundary_footprint(op) -> tuple:
    """Canonical ``(class, resources)`` footprint of one boundary op.

    ``resources`` is a tuple of ``(kind, name)`` pairs; two SYNC ops are
    independent iff their resource sets are disjoint.
    """
    if op is None:
        return (START, ())
    kind = type(op)
    if kind is MutexLock or kind is MutexUnlock:
        return (SYNC, (("mutex", op.mutex.name),))
    if kind is CondWait:
        return (SYNC, (("cond", op.cond.name), ("mutex", op.mutex.name)))
    if kind is CondNotify:
        return (SYNC, (("cond", op.cond.name),))
    if kind is BarrierWait:
        return (SYNC, (("barrier", op.barrier.name),))
    if kind is Flush or kind is FlushOpt or kind is Commit:
        return (PERSIST, ())
    if kind is JoinThread or kind is SpawnThread:
        return (GLOBAL, ())
    raise WorkloadError(f"op {op!r} reached the gate without a footprint")


def independent(a: tuple, b: tuple) -> bool:
    """True if two boundary ops commute for every oracle-visible outcome."""
    if a[0] == GLOBAL or b[0] == GLOBAL:
        return False
    if a[0] == PERSIST and b[0] == PERSIST:
        return False
    if set(a[1]) & set(b[1]):
        return False
    return True


def describe_boundary(op) -> str:
    """Short human-readable label of a gated op (for replayable traces)."""
    if op is None:
        return "start"
    kind = type(op)
    if kind is MutexLock:
        return f"lock:{op.mutex.name}"
    if kind is MutexUnlock:
        return f"unlock:{op.mutex.name}"
    if kind is CondWait:
        return f"wait:{op.cond.name}"
    if kind is CondNotify:
        return f"notify:{op.cond.name}"
    if kind is BarrierWait:
        return f"barrier:{op.barrier.name}"
    if kind is Flush:
        return f"flush:{op.region.label or 'mem'}"
    if kind is FlushOpt:
        return f"flushopt:{op.region.label or 'mem'}"
    if kind is Commit:
        return "commit"
    if kind is JoinThread:
        return f"join:{op.thread.name}"
    return f"spawn:{getattr(op, 'name', '?')}"


@dataclass
class ParkedThread:
    """One thread waiting at a boundary gate for a grant."""

    thread: "SimThread"
    op: object  # the boundary Op, or None for the thread-start gate
    grant: Condition


class ControlledScheduler:
    """Owns the boundary gate of one OS and serializes its grants.

    Also chains an op-trace observer in front of whatever dispatch
    observer is already installed (the persistence domain, in explore
    runs), folding every executed op into a SHA-256 digest — the
    replay-equality witness the property tests pin.
    """

    def __init__(self, os: "SimOS"):
        if os.boundary_gate is not None:
            raise WorkloadError("a boundary gate is already installed")
        self.os = os
        self.sim = os.sim
        self._parked: dict[str, ParkedThread] = {}
        self.ops_granted = 0
        self.ops_observed = 0
        self._hash = hashlib.sha256()
        os.boundary_gate = self._gate
        self._chain = os.interpose.dispatch_observer
        os.interpose.dispatch_observer = self._observe

    # ------------------------------------------------------------------
    # Seams
    # ------------------------------------------------------------------
    def _gate(self, thread: "SimThread", op):
        grant = Condition(self.sim, name=f"gate.{thread.name}")
        self._parked[thread.name] = ParkedThread(thread, op, grant)
        yield grant

    def _observe(self, thread: "SimThread", op) -> None:
        self.ops_observed += 1
        self._hash.update(
            f"{thread.name}|{type(op).__name__}|{self.sim.now!r}\n".encode()
        )
        if self._chain is not None:
            self._chain(thread, op)

    def trace_digest(self) -> str:
        """SHA-256 over the executed op stream (thread, op type, time)."""
        return self._hash.hexdigest()

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    @staticmethod
    def _is_enabled(op) -> bool:
        if type(op) is MutexLock:
            return op.mutex.owner is None
        if type(op) is JoinThread:
            return op.thread.finished
        return True

    def enabled(self) -> list[ParkedThread]:
        """Parked threads whose boundary op can make progress, by tid."""
        candidates = [
            entry
            for entry in self._parked.values()
            if self._is_enabled(entry.op)
        ]
        candidates.sort(key=lambda entry: entry.thread.tid)
        return candidates

    def parked_count(self) -> int:
        """Threads currently waiting at the gate (enabled or not)."""
        return len(self._parked)

    def blocked_summary(self) -> list[str]:
        """Deterministic description of parked threads (deadlock reports)."""
        return [
            f"{entry.thread.name}@{describe_boundary(entry.op)}"
            for entry in sorted(
                self._parked.values(), key=lambda entry: entry.thread.tid
            )
        ]

    def grant(self, entry: ParkedThread) -> None:
        """Release one parked thread through its boundary op."""
        parked = self._parked.pop(entry.thread.name, None)
        if parked is not entry:
            raise WorkloadError(
                f"grant of {entry.thread.name!r} does not match its park"
            )
        self.ops_granted += 1
        entry.grant.fire(None)

    def unfinished(self) -> list["SimThread"]:
        """Non-daemon threads that have not returned yet."""
        return [
            thread
            for thread in self.os.threads
            if not thread.daemon and not thread.finished
        ]
