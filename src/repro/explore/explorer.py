"""DFS interleaving exploration crossed with exhaustive crash points.

The :class:`Explorer` enumerates the thread interleavings of one small
workload by stateless re-execution: every schedule is a list of *choices*
(candidate indices at each multi-candidate decision point), each explored
schedule is one fresh, fully deterministic simulation, and the DFS walks
the decision tree by replaying a prefix and branching on the next choice.
Points with a single enabled candidate are granted automatically and
consume no choice — only genuine scheduling decisions appear in a
schedule, which is what makes recorded schedules short, replayable, and
stable across equivalent runs.

**Pruning** (optional, on by default) uses sleep sets over the
:func:`~repro.explore.scheduler.boundary_footprint` independence
relation: after a subtree rooted at candidate ``t`` is fully explored,
``t`` sleeps for the remaining siblings and is skipped at equivalent
positions deeper down until a dependent op wakes it.  Sleep sets are also
filtered through *auto-granted* ops (they are transitions too), and a
subtree whose forced single candidate is asleep is terminated as
redundant — both required for soundness, both exercised by the
pruned-vs-unpruned equality tests.

**Crash oracle.**  Every execution runs with a fresh
:class:`~repro.pmem.domain.PersistenceDomain` and a
:class:`~repro.pmem.crash.CrashInjector` subscribed to every commit drain
and every durable persist (``CrashPlan.on_persist``), so each schedule is
checked at every reachable crash point.  Violations are canonicalized to
``(invariant, detail)`` pairs: recovery reads only persisted content, so
Mazurkiewicz-equivalent schedules (which differ in timestamps but not in
any persisted image) report the identical set — the property the
pruned-vs-unpruned tests pin.

**Sharding.**  Shard ``s`` of ``n`` owns the candidates with index
``i % n == s`` at the *first* decision point (shard 0 additionally owns
branch-free runs); subtrees are explored fully within a shard.  Shards
are fixed per invocation, so exports are byte-identical for any
``--jobs`` fan-out, and sleep sets stay intra-shard (less pruning,
still sound).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional

from repro.errors import WorkloadError
from repro.explore.litmus import build_explorable
from repro.explore.scheduler import (
    ControlledScheduler,
    boundary_footprint,
    describe_boundary,
    independent,
)
from repro.hw.arch import ArchSpec
from repro.hw.machine import Machine
from repro.os.system import SimOS
from repro.pmem.checker import MAX_RECORDED_VIOLATIONS
from repro.pmem.crash import CrashInjector, CrashPlan
from repro.pmem.domain import PersistenceDomain
from repro.sim import Simulator

#: The crash plan explore mode defaults to: exhaustive coverage of every
#: durability transition (no Quartz engine is attached, so epoch closes
#: and random points do not apply).
DEFAULT_EXPLORE_CRASH_PLAN = CrashPlan(
    on_epoch_close=False,
    on_commit=True,
    on_persist=True,
    seed=7,
    max_points=512,
)


@dataclass(frozen=True)
class ExplorePlan:
    """Declarative, picklable description of one exploration."""

    #: Sleep-set (DPOR-style) pruning; turn off for the soundness tests.
    prune: bool = True
    #: Hard cap on executions (re-runs), bounding the whole exploration.
    max_executions: int = 20_000
    #: Hard cap on decision depth per execution (runaway guard).
    max_decisions: int = 400
    #: Simulator event budget per execution.
    event_budget: int = 2_000_000
    #: Crash points checked per execution.
    crash_plan: CrashPlan = field(
        default_factory=lambda: DEFAULT_EXPLORE_CRASH_PLAN
    )
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_executions < 1:
            raise WorkloadError(
                f"need at least one execution: {self.max_executions}"
            )
        if self.max_decisions < 1:
            raise WorkloadError(
                f"need at least one decision: {self.max_decisions}"
            )

    def to_dict(self) -> dict:
        """JSON-safe form (feeds the export manifest)."""
        return {
            "prune": self.prune,
            "max_executions": self.max_executions,
            "max_decisions": self.max_decisions,
            "event_budget": self.event_budget,
            "seed": self.seed,
            "crash_plan": self.crash_plan.to_dict(),
        }


@dataclass
class DecisionNode:
    """One multi-candidate decision point of one execution."""

    #: Thread names offered, ordered by tid (deterministic).
    candidates: tuple
    #: Human-readable boundary labels, aligned with ``candidates``.
    labels: tuple
    #: Footprints, aligned with ``candidates``.
    footprints: tuple
    chosen: int
    #: ``(thread name, footprint)`` of every auto-granted (single
    #: candidate) op between this decision and the next.
    autos_after: list = field(default_factory=list)


@dataclass
class ExecutionRecord:
    """One complete controlled execution (one explored schedule)."""

    choices: list
    decisions: list
    outcome: str  # "completed" | "deadlock"
    #: Canonical ``(invariant, detail)`` pairs over all crash images.
    violations: set
    violation_records: list
    points: int
    images_checked: int
    capped_points: bool
    trace_digest: str
    elapsed_ns: float
    ops_granted: int
    result: Any

    def schedule_steps(self) -> list:
        """The replayable trace: who was chosen at each decision."""
        return [
            {
                "thread": node.candidates[node.chosen],
                "op": node.labels[node.chosen],
                "candidates": list(node.candidates),
            }
            for node in self.decisions
        ]


class _ExecutionBudget(Exception):
    """Raised internally when ``max_executions`` is reached."""


class Explorer:
    """Enumerates interleavings x crash points for one workload config."""

    def __init__(
        self,
        arch: ArchSpec,
        workload_id: str,
        config: Any,
        plan: Optional[ExplorePlan] = None,
        mutant: Optional[str] = None,
        shard: int = 0,
        shards: int = 1,
    ):
        if shards < 1 or not 0 <= shard < shards:
            raise WorkloadError(f"bad shard selector: {shard}/{shards}")
        self.arch = arch
        self.workload_id = workload_id
        self.config = config
        self.plan = plan or ExplorePlan()
        self.mutant = mutant
        self.shard = shard
        self.shards = shards
        # Validate workload id / mutant eagerly (before any execution).
        self._probe = build_explorable(workload_id, config, mutant)
        # Aggregates.
        self.executions = 0
        self.schedules = 0
        self.pruned = 0
        self.deadlocks = 0
        self.points = 0
        self.images_checked = 0
        self.capped = False
        self.decisions_max = 0
        self.violations: dict = {}  # (invariant, detail) -> first record
        self.minimal_failure: Optional[ExecutionRecord] = None
        self.root_result: Any = None
        self.root_elapsed_ns: float = 0.0

    # ------------------------------------------------------------------
    # One controlled execution
    # ------------------------------------------------------------------
    def _execute(self, choices: list, strict: bool = False) -> ExecutionRecord:
        """Run the workload once, following *choices* then defaulting to 0.

        ``strict`` replay raises on any divergence (an out-of-range
        choice or leftover choices); the default clamps indices modulo
        the candidate count, which is what the Hypothesis properties
        drive with arbitrary integer lists.
        """
        if self.executions >= self.plan.max_executions:
            raise _ExecutionBudget()
        self.executions += 1
        workload = build_explorable(self.workload_id, self.config, self.mutant)
        sim = Simulator(seed=self.plan.seed)
        machine = Machine(sim, self.arch, latency_jitter=False)
        os = SimOS(machine, default_cpu_node=0)
        domain = PersistenceDomain()
        domain.install(os)
        injector = CrashInjector(
            domain, self.plan.crash_plan, run_seed=self.plan.seed
        )
        injector.install(sim, None)
        scheduler = ControlledScheduler(os)
        out: dict = {}
        start = sim.now
        os.create_thread(workload.body_factory(domain, out), name="main")

        decisions: list = []
        taken: list = []
        outcome = "completed"
        while True:
            reason = sim.run(max_events=self.plan.event_budget)
            if reason == "max-events":
                raise WorkloadError(
                    f"explore event budget exhausted "
                    f"({self.plan.event_budget} events)"
                )
            if not scheduler.unfinished():
                break
            candidates = scheduler.enabled()
            if not candidates:
                outcome = "deadlock"
                break
            if len(candidates) == 1:
                entry = candidates[0]
                if decisions:
                    decisions[-1].autos_after.append(
                        (entry.thread.name, boundary_footprint(entry.op))
                    )
                scheduler.grant(entry)
                continue
            position = len(taken)
            if position >= self.plan.max_decisions:
                raise WorkloadError(
                    f"decision depth exceeded {self.plan.max_decisions}"
                )
            if position < len(choices):
                index = choices[position]
                if strict:
                    if not 0 <= index < len(candidates):
                        raise WorkloadError(
                            f"schedule replay diverged: choice {index} at "
                            f"decision {position} but only "
                            f"{len(candidates)} candidate(s)"
                        )
                else:
                    index = index % len(candidates)
            else:
                if strict:
                    raise WorkloadError(
                        f"schedule replay diverged: execution needs a "
                        f"choice at decision {position} beyond the "
                        f"recorded schedule"
                    )
                index = 0
            decisions.append(
                DecisionNode(
                    candidates=tuple(e.thread.name for e in candidates),
                    labels=tuple(describe_boundary(e.op) for e in candidates),
                    footprints=tuple(
                        boundary_footprint(e.op) for e in candidates
                    ),
                    chosen=index,
                )
            )
            taken.append(index)
            scheduler.grant(candidates[index])
        if strict and len(choices) != len(taken):
            raise WorkloadError(
                f"schedule replay diverged: {len(choices)} recorded "
                f"choice(s) but only {len(taken)} decision(s) occurred"
            )

        violations: set = set()
        records: list = []
        for image in injector.images:
            for issue in workload.recover(image):
                key = (issue["invariant"], issue["detail"])
                violations.add(key)
                if len(records) < MAX_RECORDED_VIOLATIONS:
                    records.append(
                        {
                            "crash_index": image.index,
                            "trigger": image.trigger,
                            "invariant": issue["invariant"],
                            "detail": issue["detail"],
                        }
                    )
        if outcome == "deadlock":
            detail = "blocked: " + ", ".join(scheduler.blocked_summary())
            violations.add(("deadlock-free", detail))
            records.append(
                {
                    "crash_index": -1,
                    "trigger": "deadlock",
                    "invariant": "deadlock-free",
                    "detail": detail,
                }
            )
        self.decisions_max = max(self.decisions_max, len(decisions))
        return ExecutionRecord(
            choices=taken,
            decisions=decisions,
            outcome=outcome,
            violations=violations,
            violation_records=records,
            points=injector.points,
            images_checked=len(injector.images),
            capped_points=injector.points >= self.plan.crash_plan.max_points,
            trace_digest=scheduler.trace_digest(),
            elapsed_ns=sim.now - start,
            ops_granted=scheduler.ops_granted,
            result=out.get("result"),
        )

    # ------------------------------------------------------------------
    # DFS with sleep sets
    # ------------------------------------------------------------------
    def _finish_leaf(self, record: ExecutionRecord) -> None:
        self.schedules += 1
        self.points += record.points
        self.images_checked += record.images_checked
        if record.outcome == "deadlock":
            self.deadlocks += 1
        if record.capped_points:
            self.capped = True
        for key in record.violations:
            if key not in self.violations:
                matching = [
                    rec
                    for rec in record.violation_records
                    if (rec["invariant"], rec["detail"]) == key
                ]
                self.violations[key] = (
                    matching[0]
                    if matching
                    else {
                        "crash_index": -1,
                        "trigger": "uncaptured",
                        "invariant": key[0],
                        "detail": key[1],
                    }
                )
        if record.violations:
            best = self.minimal_failure
            if best is None or (len(record.choices), record.choices) < (
                len(best.choices),
                best.choices,
            ):
                self.minimal_failure = record

    def _explore_node(
        self, position: int, prefix: list, sleep: dict, record: ExecutionRecord
    ) -> None:
        if position >= len(record.decisions):
            self._finish_leaf(record)
            return
        node = record.decisions[position]
        local_sleep = dict(sleep)
        for index, name in enumerate(node.candidates):
            if (
                position == 0
                and self.shards > 1
                and index % self.shards != self.shard
            ):
                continue  # another shard's subtree
            footprint = node.footprints[index]
            if self.plan.prune and name in local_sleep:
                self.pruned += 1
                continue
            child_prefix = prefix + [index]
            if index == node.chosen:
                child = record
            else:
                child = self._execute(child_prefix)
                if (
                    len(child.decisions) <= position
                    or child.decisions[position].candidates != node.candidates
                ):
                    raise WorkloadError(
                        "nondeterministic candidate set under replay "
                        f"at decision {position} (determinism bug)"
                    )
            child_sleep: dict = {}
            redundant = False
            if self.plan.prune:
                child_sleep = {
                    thread: fp
                    for thread, fp in local_sleep.items()
                    if thread != name and independent(fp, footprint)
                }
                # Auto-granted ops are transitions too: they wake
                # dependent sleepers, and a forced (single-candidate)
                # move by a sleeping thread proves the whole subtree
                # was already covered by an earlier sibling.
                for auto_name, auto_fp in child.decisions[position].autos_after:
                    if auto_name in child_sleep:
                        redundant = True
                        break
                    child_sleep = {
                        thread: fp
                        for thread, fp in child_sleep.items()
                        if independent(fp, auto_fp)
                    }
            if redundant:
                self.pruned += 1
            else:
                self._explore_node(position + 1, child_prefix, child_sleep, child)
            if self.plan.prune:
                local_sleep[name] = footprint
        return

    # ------------------------------------------------------------------
    # Entry points
    # ------------------------------------------------------------------
    def run(self) -> "ExploreReport":
        """Explore this shard's schedule subtree and aggregate the oracle."""
        try:
            root = self._execute([])
            self.root_result = root.result
            self.root_elapsed_ns = root.elapsed_ns
            if not root.decisions:
                if self.shard == 0:
                    self._finish_leaf(root)
            else:
                self._explore_node(0, [], {}, root)
        except _ExecutionBudget:
            self.capped = True
        return self._report()

    def replay(self, choices: list) -> ExecutionRecord:
        """Strictly replay one recorded schedule (raises on divergence)."""
        return self._execute(list(choices), strict=True)

    def _report(self) -> "ExploreReport":
        ordered = sorted(self.violations)
        records = [self.violations[key] for key in ordered]
        minimal = None
        if self.minimal_failure is not None:
            minimal = {
                "choices": list(self.minimal_failure.choices),
                "steps": self.minimal_failure.schedule_steps(),
                "outcome": self.minimal_failure.outcome,
                "violations": sorted(
                    f"{invariant}: {detail}"
                    for invariant, detail in self.minimal_failure.violations
                ),
            }
        return ExploreReport(
            workload=self.workload_id,
            mutant=self.mutant,
            prune=self.plan.prune,
            shard=self.shard,
            shards=self.shards,
            schedules=self.schedules,
            executions=self.executions,
            pruned=self.pruned,
            deadlocks=self.deadlocks,
            decisions_max=self.decisions_max,
            points=self.points,
            images_checked=self.images_checked,
            violation_total=len(self.violations),
            violations=records[:MAX_RECORDED_VIOLATIONS],
            invariants=tuple(self._probe.invariants()),
            minimal_trace=minimal,
            capped=self.capped,
            elapsed_ns=self.root_elapsed_ns,
            result=self.root_result,
        )


@dataclass
class ExploreReport:
    """Picklable result of one exploration (or one shard of it)."""

    workload: str
    mutant: Optional[str]
    prune: bool
    shard: int
    shards: int
    #: Distinct schedules whose full behaviour was checked (leaves).
    schedules: int
    #: Controlled executions performed (>= schedules under pruning).
    executions: int
    #: Branches skipped as redundant by sleep sets.
    pruned: int
    deadlocks: int
    decisions_max: int
    #: Crash points / images, summed over every counted schedule.
    points: int
    images_checked: int
    #: Distinct canonical ``(invariant, detail)`` violations.
    violation_total: int
    violations: list
    invariants: tuple
    #: The minimal failing interleaving as a replayable trace (None if
    #: every schedule passed): ``choices`` feed :meth:`Explorer.replay`.
    minimal_trace: Optional[dict]
    #: True if ``max_executions`` or a crash-point cap was hit — the
    #: exhaustiveness guarantee does NOT hold for a capped report.
    capped: bool
    elapsed_ns: float
    result: Any

    def to_dict(self) -> dict:
        return {
            "workload": self.workload,
            "mutant": self.mutant,
            "prune": self.prune,
            "shard": self.shard,
            "shards": self.shards,
            "schedules": self.schedules,
            "executions": self.executions,
            "pruned": self.pruned,
            "deadlocks": self.deadlocks,
            "decisions_max": self.decisions_max,
            "points": self.points,
            "images_checked": self.images_checked,
            "violation_total": self.violation_total,
            "violations": list(self.violations),
            "invariants": list(self.invariants),
            "minimal_trace": self.minimal_trace,
            "capped": self.capped,
            "elapsed_ns": self.elapsed_ns,
        }


def merge_shard_reports(reports: list) -> dict:
    """Fold one exploration's shard report dicts into a logical whole.

    Shards partition the first-decision candidates, so schedule counts
    and oracle results are disjoint unions; violations dedupe on the
    canonical pair.
    """
    if not reports:
        raise WorkloadError("no shard reports to merge")
    shards = {report["shards"] for report in reports}
    if len(shards) != 1 or len(reports) != shards.pop():
        raise WorkloadError(
            "explore shard reports do not form one partition"
        )
    merged_violations: dict = {}
    for report in reports:
        for record in report["violations"]:
            key = (record["invariant"], record["detail"])
            merged_violations.setdefault(key, record)
    ordered = [merged_violations[key] for key in sorted(merged_violations)]
    minimal = None
    for report in reports:
        trace = report["minimal_trace"]
        if trace is None:
            continue
        rank = (len(trace["choices"]), trace["choices"])
        if minimal is None or rank < (
            len(minimal["choices"]),
            minimal["choices"],
        ):
            minimal = trace
    return {
        "workload": reports[0]["workload"],
        "mutant": reports[0]["mutant"],
        "prune": reports[0]["prune"],
        "schedules": sum(report["schedules"] for report in reports),
        "executions": sum(report["executions"] for report in reports),
        "pruned": sum(report["pruned"] for report in reports),
        "deadlocks": sum(report["deadlocks"] for report in reports),
        "decisions_max": max(report["decisions_max"] for report in reports),
        "points": sum(report["points"] for report in reports),
        "images_checked": sum(
            report["images_checked"] for report in reports
        ),
        "violation_total": len(merged_violations),
        "violations": ordered[:MAX_RECORDED_VIOLATIONS],
        "invariants": reports[0]["invariants"],
        "minimal_trace": minimal,
        "capped": any(report["capped"] for report in reports),
    }
