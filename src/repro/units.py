"""Time, frequency, and size units used throughout the simulator.

All simulated time is expressed in **nanoseconds** (float).  Processor work
is expressed in **cycles** and converted through a :class:`ClockDomain`,
mirroring how the paper (Section 6, *Challenges*) must translate performance
counter readings (cycles) into the nanosecond latencies exposed by Quartz's
user interface.  Dynamic frequency scaling (DVFS) breaks the fixed
cycle<->time relationship, which is why the paper disables it; our DVFS
model (``repro.hw.dvfs``) perturbs the effective frequency and therefore
this conversion.
"""

from __future__ import annotations

from dataclasses import dataclass

#: One nanosecond, the base unit of simulated time.
NANOSECOND = 1.0
#: One microsecond in nanoseconds.
MICROSECOND = 1_000.0
#: One millisecond in nanoseconds.
MILLISECOND = 1_000_000.0
#: One second in nanoseconds.
SECOND = 1_000_000_000.0

#: One kibibyte in bytes.
KIB = 1024
#: One mebibyte in bytes.
MIB = 1024 * KIB
#: One gibibyte in bytes.
GIB = 1024 * MIB

#: Size of a cache line in bytes on every modelled microarchitecture.
CACHE_LINE_BYTES = 64


def ns_to_us(ns: float) -> float:
    """Convert nanoseconds to microseconds."""
    return ns / MICROSECOND


def ns_to_ms(ns: float) -> float:
    """Convert nanoseconds to milliseconds."""
    return ns / MILLISECOND


def ns_to_s(ns: float) -> float:
    """Convert nanoseconds to seconds."""
    return ns / SECOND


def gb_per_s_to_bytes_per_ns(gbps: float) -> float:
    """Convert a bandwidth in GB/s (decimal gigabytes) to bytes/ns.

    1 GB/s == 1e9 bytes / 1e9 ns == 1 byte/ns, so this is the identity;
    the function exists to make call sites self-documenting.
    """
    return gbps


def bytes_per_ns_to_gb_per_s(rate: float) -> float:
    """Convert a bandwidth in bytes/ns to GB/s (decimal gigabytes)."""
    return rate


@dataclass(frozen=True)
class ClockDomain:
    """A fixed-frequency clock used to convert between cycles and time.

    Parameters
    ----------
    freq_ghz:
        Clock frequency in GHz.  One cycle takes ``1 / freq_ghz`` ns.
    """

    freq_ghz: float

    def __post_init__(self) -> None:
        if self.freq_ghz <= 0:
            raise ValueError(f"frequency must be positive, got {self.freq_ghz}")

    @property
    def cycle_ns(self) -> float:
        """Duration of a single cycle in nanoseconds."""
        return 1.0 / self.freq_ghz

    def cycles_to_ns(self, cycles: float) -> float:
        """Convert a cycle count to nanoseconds."""
        return cycles / self.freq_ghz

    def ns_to_cycles(self, ns: float) -> float:
        """Convert a duration in nanoseconds to cycles."""
        return ns * self.freq_ghz
