"""The simulated OS facade: thread lifecycle, scheduling, signals, ops.

``SimOS`` drives workload bodies (generators of ops) against the hardware
model.  It owns:

* **core allocation** — threads are pinned to logical cores on a chosen
  socket (the numactl ``--cpunodebind`` analogue) and never migrate;
* **NUMA policy** — malloc draws from a configurable node
  (``--membind``), which is how validation Conf_2 physically slows memory;
* **signals** — :meth:`post_signal` interrupts the target thread with
  instruction granularity (the Quartz monitor's epoch-close mechanism);
* **interposition** — op hooks wrap ``pthread_mutex_unlock`` and friends
  exactly where the real library's ``LD_PRELOAD`` shims sit.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Iterator, Optional

from repro.errors import DeadlockError, OsError, SimulationError
from repro.hw.core import OpInterrupted
from repro.hw.machine import Machine
from repro.ops import (
    BarrierWait,
    Commit,
    CondNotify,
    CondWait,
    Flush,
    FlushOpt,
    JoinThread,
    MutexLock,
    MutexUnlock,
    Op,
    SpawnThread,
    Sleep,
)
from repro.os.interpose import ORIGINAL, InterpositionTable
from repro.os.thread import Signal, SimThread, ThreadState
from repro.sim import Interrupt, Simulator, Timeout


class SimOS:
    """One OS instance managing one simulated machine."""

    def __init__(
        self,
        machine: Machine,
        default_cpu_node: int = 0,
        default_mem_node: Optional[int] = None,
    ):
        self.machine = machine
        self.sim: Simulator = machine.sim
        self.interpose = InterpositionTable()
        self.default_cpu_node = default_cpu_node
        #: None = first-touch local (malloc on the thread's own socket).
        self.default_mem_node = default_mem_node
        self.threads: list[SimThread] = []
        self._tid_counter = itertools.count(1)
        self._free_cores: list[list[int]] = [
            list(
                range(
                    socket * machine.logical_cores_per_socket,
                    (socket + 1) * machine.logical_cores_per_socket,
                )
            )
            for socket in range(machine.arch.sockets)
        ]
        #: Called synchronously when a thread is created / finishes.
        self.thread_created_callbacks: list[Callable[[SimThread], None]] = []
        self.thread_finished_callbacks: list[Callable[[SimThread], None]] = []
        #: Per-signum handler: generator fn ``handler(thread, signal)``
        #: yielding ops, run with further signals masked.
        self.signal_handlers: dict[int, Callable] = {}
        #: Optional fault hook ``(thread, signal) -> None | "drop" | ns``
        #: consulted once per :meth:`post_signal` (delayed re-posts are
        #: exempt, so one fault decision governs one post).
        self.signal_interceptor: Optional[Callable] = None
        #: The installed fault engine, if any — the monitor thread asks it
        #: whether to skip a wake-up scan.
        self.fault_engine = None
        # Live threads per socket drive the cache model's LLC sharing.
        self._live_threads_per_socket = [0] * machine.arch.sockets
        # Non-daemon threads still running: when the count hits zero the
        # simulator is asked to stop, which is how run_to_completion
        # terminates without re-evaluating a predicate per event.  The
        # stop is only requested while run_to_completion is actually
        # driving — direct sim.run(until_ns=...) callers must not be
        # interrupted by a thread happening to finish.
        self._unfinished_nondaemon = 0
        self._watch_completion = False
        #: Optional boundary-gate generator ``gate(thread, op)`` run
        #: before every sync/persist boundary op (and once per thread
        #: start with ``op=None``).  The explore-mode controlled
        #: scheduler parks threads here; ``None`` costs nothing.
        self.boundary_gate: Optional[Callable] = None

    # ------------------------------------------------------------------
    # Thread lifecycle
    # ------------------------------------------------------------------
    def create_thread(
        self,
        body: Callable[..., Iterator],
        name: str = "",
        cpu_node: Optional[int] = None,
        mem_node: Optional[int] = None,
        args: tuple = (),
        daemon: bool = False,
    ) -> SimThread:
        """Create and start a thread pinned to a core on *cpu_node*."""
        socket = self.default_cpu_node if cpu_node is None else cpu_node
        if not 0 <= socket < self.machine.arch.sockets:
            raise OsError(f"no such socket: {socket}")
        if not self._free_cores[socket]:
            raise OsError(
                f"socket {socket} has no free logical cores "
                f"(oversubscription is not modelled)"
            )
        core_id = self._free_cores[socket].pop(0)
        core = self.machine.core(core_id)
        if mem_node is None:
            mem_node = (
                self.default_mem_node if self.default_mem_node is not None else socket
            )
        tid = next(self._tid_counter)
        thread = SimThread(
            self,
            tid=tid,
            name=name or f"thread{tid}",
            body=body,
            core=core,
            mem_node=mem_node,
            args=args,
            daemon=daemon,
        )
        core.current_thread = thread
        self.threads.append(thread)
        if not daemon:
            self._unfinished_nondaemon += 1
            # A spawn in the same callback that finished the last thread
            # revives the run (mirrors the old between-events predicate).
            if self._watch_completion:
                self.sim.cancel_stop()
        self._live_threads_per_socket[socket] += 1
        self.machine.set_llc_sharers(
            socket, max(1, self._live_threads_per_socket[socket])
        )
        for callback in self.thread_created_callbacks:
            callback(thread)
        thread.process = self.sim.spawn(self._thread_main(thread), name=thread.name)
        return thread

    def _thread_main(self, thread: SimThread):
        thread.state = ThreadState.RUNNING
        try:
            gate = self.boundary_gate
            if gate is not None:
                yield from gate(thread, None)
            begin_hook = self.interpose.op_hook("thread_begin")
            if begin_hook is not None:
                yield from self._run_hook_ops(thread, begin_hook, None)
            generator = thread.body(thread.context, *thread.args)
            result = yield from self._exec_stream(thread, generator)
            end_hook = self.interpose.op_hook("thread_end")
            if end_hook is not None:
                yield from self._run_hook_ops(thread, end_hook, None)
            thread.result = result
            return result
        finally:
            thread.state = ThreadState.FINISHED
            thread.core.current_thread = None
            self._free_cores[thread.socket].append(thread.core.core_id)
            self._free_cores[thread.socket].sort()
            if not thread.daemon:
                self._unfinished_nondaemon -= 1
                if self._unfinished_nondaemon == 0 and self._watch_completion:
                    self.sim.request_stop()
            self._live_threads_per_socket[thread.socket] -= 1
            self.machine.set_llc_sharers(
                thread.socket, max(1, self._live_threads_per_socket[thread.socket])
            )
            for callback in self.thread_finished_callbacks:
                callback(thread)

    def _exec_stream(self, thread: SimThread, generator: Iterator):
        """Drive a generator of ops, sending each op's result back."""
        result: Any = None
        while True:
            try:
                op = generator.send(result)
            except StopIteration as stop:
                return stop.value
            result = yield from self._run_op_with_signals(thread, op)

    # ------------------------------------------------------------------
    # Op execution with signal delivery
    # ------------------------------------------------------------------
    def _run_op_with_signals(
        self, thread: SimThread, op: Op, interpose: bool = True
    ):
        """Execute one op; handle interrupts and queued signals around it."""
        current: Optional[Op] = op
        result = None
        while current is not None:
            try:
                result = yield from self._dispatch(thread, current, interpose)
                current = None
            except OpInterrupted as interrupted:
                yield from self._deliver_signal(thread, interrupted.payload)
                current = interrupted.remainder
        while thread.pending_signals and not thread.signals_masked:
            signal = thread.pending_signals.popleft()
            yield from self._deliver_signal(thread, signal)
        return result

    def _dispatch(self, thread: SimThread, op: Op, interpose: bool = True):
        """Route one op to the core, the sync layer, or an interposer."""
        if interpose:
            gate = self.boundary_gate
            if gate is not None and type(op) in _BOUNDARY_OPS:
                yield from gate(thread, op)
            symbol = _INTERPOSED_SYMBOLS.get(type(op))
            if symbol is not None:
                hook = self.interpose.op_hook(symbol)
                if hook is not None:
                    result = yield from self._run_hook_ops(thread, hook, op)
                    return result
        # Past the interposition check every op is about to actually run,
        # so a dispatch observer sees each executed op exactly once:
        # hook-intercepted ops re-enter here with ``interpose=False`` for
        # the ORIGINAL / replacement ops their hooks emit.
        observer = self.interpose.dispatch_observer
        if observer is not None:
            observer(thread, op)
        if isinstance(op, MutexLock):
            yield from op.mutex._acquire(thread)
            return None
        if isinstance(op, MutexUnlock):
            op.mutex._release(thread)
            return None
        if isinstance(op, CondWait):
            yield from op.cond._wait(thread, op.mutex)
            return None
        if isinstance(op, CondNotify):
            return op.cond._notify(notify_all=op.notify_all)
        if isinstance(op, BarrierWait):
            generation = yield from op.barrier._wait(thread)
            return generation
        if isinstance(op, SpawnThread):
            return self.create_thread(
                op.body, name=op.name, cpu_node=op.core_hint, args=op.args
            )
        if isinstance(op, JoinThread):
            result = yield from self._interruptible_join(thread, op.thread)
            return result
        if isinstance(op, Sleep):
            yield from self._interruptible_sleep(thread, op.duration_ns)
            return None
        result = yield from thread.core.execute(thread, op)
        return result

    def _run_hook_ops(self, thread: SimThread, hook: Callable, op: Optional[Op]):
        """Run an interposer generator in the OS execution channel."""
        generator = hook(self, thread, op)
        sub_result: Any = None
        original_result: Any = None
        while True:
            try:
                item = generator.send(sub_result)
            except StopIteration as stop:
                return stop.value if stop.value is not None else original_result
            if item is ORIGINAL:
                if op is None:
                    sub_result = None
                else:
                    sub_result = yield from self._run_op_with_signals(
                        thread, op, interpose=False
                    )
                original_result = sub_result
            else:
                sub_result = yield from self._run_op_with_signals(
                    thread, item, interpose=False
                )

    def run_op_hook(self, thread: SimThread, hook: Callable, op: Op):
        """Run an interposer in the *workload* channel (yields raw ops).

        Used by :class:`~repro.os.thread.ThreadContext` helpers like
        ``pflush`` whose hooks expand inside the body's own op stream.
        """
        generator = hook(self, thread, op)
        sub_result: Any = None
        original_result: Any = None
        while True:
            try:
                item = generator.send(sub_result)
            except StopIteration as stop:
                return stop.value if stop.value is not None else original_result
            if item is ORIGINAL:
                sub_result = yield op
                original_result = sub_result
            else:
                sub_result = yield item

    # ------------------------------------------------------------------
    # Waiting helpers that survive signals
    # ------------------------------------------------------------------
    def _interruptible_join(self, thread: SimThread, target: SimThread):
        while True:
            try:
                yield target.process.done_condition
                return target.result
            except Interrupt as interrupt:
                yield from self._deliver_signal(thread, interrupt.payload)

    def _interruptible_sleep(self, thread: SimThread, duration_ns: float):
        deadline = self.sim.now + duration_ns
        while True:
            remaining = deadline - self.sim.now
            if remaining <= 0:
                return
            try:
                yield Timeout(remaining)
                return
            except Interrupt as interrupt:
                yield from self._deliver_signal(thread, interrupt.payload)

    # ------------------------------------------------------------------
    # Signals
    # ------------------------------------------------------------------
    def post_signal(
        self, thread: SimThread, signal: Signal, *, faulted: bool = False
    ) -> bool:
        """Deliver (or queue) a signal to a thread.

        Returns False if the thread already finished — the monitor/exit
        race is benign, as on a real system.  When a fault interceptor is
        installed it may drop the signal or defer delivery by a simulated
        delay (``faulted=True`` marks the deferred re-post, which is not
        intercepted again).
        """
        if thread.finished:
            return False
        if not faulted and self.signal_interceptor is not None:
            verdict = self.signal_interceptor(thread, signal)
            if verdict == "drop":
                return True
            if verdict:
                self.sim.schedule(
                    float(verdict),
                    lambda: self.post_signal(thread, signal, faulted=True),
                )
                return True
        if thread.signals_masked or not thread.process.interruptible:
            # POSIX semantics: a standard signal already pending is not
            # queued again — repeats coalesce into one delivery.
            if all(s.signum != signal.signum for s in thread.pending_signals):
                thread.pending_signals.append(signal)
            return True
        thread.process.interrupt(signal)
        return True

    def _deliver_signal(self, thread: SimThread, signal: Signal):
        """Run the registered handler with further signals masked."""
        if not isinstance(signal, Signal):
            raise OsError(f"unexpected interrupt payload: {signal!r}")
        handler = self.signal_handlers.get(signal.signum)
        if handler is None:
            return  # unhandled signals are ignored (SIG_IGN model)
        thread.signals_masked = True
        try:
            generator = handler(thread, signal)
            sub_result: Any = None
            while True:
                try:
                    item = generator.send(sub_result)
                except StopIteration:
                    break
                sub_result = yield from self._dispatch(
                    thread, item, interpose=False
                )
        finally:
            thread.signals_masked = False

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run_to_completion(self, max_events: int = 200_000_000) -> None:
        """Run the simulation until every non-daemon thread finished.

        Completion is event-driven: thread exit paths decrement a live
        count and request a simulator stop when it reaches zero, so the
        kernel's fast dispatch path runs without a per-event predicate.
        Dispatch order and counts are identical to the old
        predicate-polling loop — the stop lands before the event that
        would have followed the final thread exit.
        """
        remaining = max_events
        self._watch_completion = True
        try:
            while True:
                if all(t.finished for t in self.threads if not t.daemon):
                    return
                before = self.sim.events_dispatched
                reason = self.sim.run(max_events=remaining)
                remaining -= self.sim.events_dispatched - before
                if reason == "stopped":
                    continue  # recheck: a stop may race a same-tick spawn
                if reason == "drained":
                    stuck = [t.name for t in self.threads if not t.finished]
                    raise DeadlockError(
                        f"no runnable work but threads blocked: {stuck}"
                    )
                if reason == "max-events":
                    raise SimulationError(
                        "event budget exhausted before condition held"
                    )
        finally:
            self._watch_completion = False


#: Op types the explore-mode boundary gate intercepts: every sync and
#: persist operation — the points where thread interleaving order can
#: change observable state.  Compute/memory ops between boundaries are
#: thread-local, so gating only here loses no distinct behaviours.
_BOUNDARY_OPS: frozenset = frozenset(
    {
        MutexLock,
        MutexUnlock,
        CondWait,
        CondNotify,
        BarrierWait,
        Flush,
        FlushOpt,
        Commit,
        SpawnThread,
        JoinThread,
    }
)

#: Op types with OS-level interposition points and their symbol names.
_INTERPOSED_SYMBOLS: dict[type, str] = {
    BarrierWait: "barrier_wait",
    MutexLock: "pthread_mutex_lock",
    MutexUnlock: "pthread_mutex_unlock",
    CondNotify: "pthread_cond_notify",
    SpawnThread: "pthread_create",
    Commit: "pcommit",
}
