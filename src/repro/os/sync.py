"""Simulated pthread mutexes and condition variables.

These are the inter-thread communication points the paper's multithreaded
model (Section 2.3) cares about: a delay injected by a lock holder *before*
release propagates to every thread waiting on the lock (Figure 4b).  The
primitives therefore implement real FIFO hand-off — the release directly
grants ownership to the longest-waiting thread — so delay propagation is
an emergent property of the simulation rather than something bolted on.

Both primitives tolerate signal delivery while blocked (a real futex wait
returns EINTR): the signal handler runs and the thread resumes waiting,
preserving its grant if the race went that way.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Optional, TYPE_CHECKING

from repro.errors import OsError
from repro.sim import Condition, Interrupt

if TYPE_CHECKING:
    from repro.os.system import SimOS
    from repro.os.thread import SimThread

_mutex_ids = itertools.count(1)
_cond_ids = itertools.count(1)


class Mutex:
    """A non-recursive FIFO mutex."""

    def __init__(self, os: "SimOS", name: str = ""):
        self.os = os
        self.name = name or f"mutex{next(_mutex_ids)}"
        self.owner: Optional["SimThread"] = None
        self._waiters: deque[tuple["SimThread", Condition]] = deque()
        self.acquisitions = 0
        self.contended_acquisitions = 0

    @property
    def locked(self) -> bool:
        """True while some thread owns the mutex."""
        return self.owner is not None

    @property
    def waiter_count(self) -> int:
        """Threads currently blocked on the mutex."""
        return len(self._waiters)

    # Channel-B generator: yields kernel waitables, driven by the OS.
    def _acquire(self, thread: "SimThread"):
        if self.owner is thread:
            raise OsError(f"thread {thread.name!r} self-deadlock on {self.name!r}")
        if self.owner is None:
            self.owner = thread
            self.acquisitions += 1
            return
        self.contended_acquisitions += 1
        while True:
            if self.owner is None:
                self.owner = thread
                self.acquisitions += 1
                return
            grant = Condition(self.os.sim, name=f"{self.name}.grant")
            entry = (thread, grant)
            self._waiters.append(entry)
            try:
                yield grant
                if self.owner is not thread:
                    raise OsError(
                        f"mutex {self.name!r} grant raced incorrectly"
                    )
                self.acquisitions += 1
                return
            except Interrupt as interrupt:
                if self.owner is thread:
                    # The grant fired just as the signal landed: we own the
                    # lock; handle the signal and proceed.
                    yield from self.os._deliver_signal(thread, interrupt.payload)
                    self.acquisitions += 1
                    return
                if entry in self._waiters:
                    self._waiters.remove(entry)
                yield from self.os._deliver_signal(thread, interrupt.payload)
                # Loop: re-queue at the back (futex wakeups make no
                # fairness promise across EINTR).

    def _release(self, thread: "SimThread") -> None:
        if self.owner is not thread:
            owner = self.owner.name if self.owner else "<unlocked>"
            raise OsError(
                f"thread {thread.name!r} unlocking {self.name!r} "
                f"owned by {owner}"
            )
        if self._waiters:
            next_thread, grant = self._waiters.popleft()
            self.owner = next_thread  # direct hand-off
            grant.fire(None)
        else:
            self.owner = None


class CondVar:
    """A condition variable with FIFO wakeup."""

    def __init__(self, os: "SimOS", name: str = ""):
        self.os = os
        self.name = name or f"cond{next(_cond_ids)}"
        self._waiters: deque[tuple["SimThread", Condition]] = deque()
        self.notifications = 0

    @property
    def waiter_count(self) -> int:
        """Threads currently blocked in wait()."""
        return len(self._waiters)

    def _wait(self, thread: "SimThread", mutex: Mutex):
        """Channel-B generator: release, wait for notify, re-acquire."""
        if mutex.owner is not thread:
            raise OsError(
                f"cond {self.name!r}: wait() without holding {mutex.name!r}"
            )
        wake = Condition(self.os.sim, name=f"{self.name}.wake")
        entry = (thread, wake)
        self._waiters.append(entry)
        mutex._release(thread)
        while True:
            try:
                yield wake
                break
            except Interrupt as interrupt:
                yield from self.os._deliver_signal(thread, interrupt.payload)
                if wake.fired:
                    break
                # Spurious (signal) wakeup: still queued, wait again.
        yield from mutex._acquire(thread)

    def _notify(self, notify_all: bool = False) -> int:
        """Wake the longest waiter (or all).  Returns threads woken."""
        self.notifications += 1
        woken = 0
        while self._waiters:
            _, wake = self._waiters.popleft()
            wake.fire(None)
            woken += 1
            if not notify_all:
                break
        return woken


_barrier_ids = itertools.count(1)


class Barrier:
    """A cyclic barrier for *parties* threads (OpenMP-style).

    The last arrival releases everyone and the barrier resets for the
    next generation.  Inter-thread communication point: under Quartz,
    accumulated delay is injected before arriving (paper Section 7 lists
    OpenMP primitives as future interposition targets).
    """

    def __init__(self, os: "SimOS", parties: int, name: str = ""):
        if parties < 1:
            raise OsError(f"barrier needs at least one party: {parties}")
        self.os = os
        self.parties = parties
        self.name = name or f"barrier{next(_barrier_ids)}"
        self._waiting: list[tuple["SimThread", Condition]] = []
        self.generation = 0

    @property
    def waiting_count(self) -> int:
        """Threads currently blocked at the barrier."""
        return len(self._waiting)

    def _wait(self, thread: "SimThread"):
        """Channel-B generator: block until all parties arrive."""
        if any(waiter is thread for waiter, _ in self._waiting):
            raise OsError(
                f"thread {thread.name!r} re-entered barrier {self.name!r}"
            )
        if len(self._waiting) + 1 == self.parties:
            # Last arrival: release the generation without blocking.
            waiters, self._waiting = self._waiting, []
            self.generation += 1
            for _, release in waiters:
                release.fire(self.generation)
            return self.generation
        release = Condition(self.os.sim, name=f"{self.name}.release")
        self._waiting.append((thread, release))
        while True:
            try:
                generation = yield release
                return generation
            except Interrupt as interrupt:
                yield from self.os._deliver_signal(thread, interrupt.payload)
                if release.fired:
                    return release.value
                # Spurious wakeup: still registered, wait again.
