"""Simulated operating system layer.

Provides the process/thread machinery the Quartz user-mode library hooks
into on a real system: threads bound to cores (:mod:`repro.os.thread`),
pthread-style mutexes and condition variables (:mod:`repro.os.sync`),
POSIX-style signals, NUMA allocation policy (numactl/numa_alloc_onnode),
and an ``LD_PRELOAD`` analogue — the interposition table of
:mod:`repro.os.interpose` through which Quartz intercepts
``pthread_create``, ``pthread_mutex_unlock``, ``pmalloc`` and ``pflush``.
"""

from repro.os.interpose import ORIGINAL, InterpositionTable
from repro.os.sync import Barrier, CondVar, Mutex
from repro.os.system import SimOS
from repro.os.thread import Signal, SimThread, ThreadContext, ThreadState

__all__ = [
    "Barrier",
    "CondVar",
    "InterpositionTable",
    "Mutex",
    "ORIGINAL",
    "Signal",
    "SimOS",
    "SimThread",
    "ThreadContext",
    "ThreadState",
]
