"""Function interposition — the simulated ``LD_PRELOAD`` mechanism.

The paper (Section 3.1): *"We implement function interposition by
leveraging the fact that system library functions are usually defined as
weak symbols and define a new function with the same name and signature
that intercepts the original function call."*

Here the same idea is expressed as a registry of hooks keyed by symbol
name.  Two kinds exist:

* **Op hooks** wrap a timed operation (``pthread_mutex_unlock``,
  ``pthread_cond_notify``, ``pflush``).  A hook is a generator function
  ``hook(os, thread, op)`` that yields ops to run around the call and the
  :data:`ORIGINAL` sentinel exactly where the intercepted function should
  execute.  This is how Quartz closes an epoch and injects its delay
  *before* releasing a contended lock (Figure 4b).

* **Sync hooks** replace an untimed library call (``pmalloc``/``pfree``),
  plain callables invoked in place of the default implementation.

At most one interposer per symbol may be active — like symbol resolution,
the first preloaded definition wins and a second preload is a conflict.

Besides interposers the table carries one *dispatch observer*: an
optional callable ``observer(thread, op)`` notified once for every op the
OS actually routes to the hardware or sync layer (interposed calls notify
for the ops their hooks emit, not for the intercepted symbol itself).
This is the zero-overhead seam shadow-memory tools sit on — the
persistence-domain model of :mod:`repro.pmem` watches ``Flush`` /
``FlushOpt`` / ``Commit`` traffic through it without perturbing a single
simulated timestamp.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.errors import OsError


class _OriginalSentinel:
    """Yielded by an op hook where the intercepted call should run."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return "<ORIGINAL>"


#: Sentinel: "now call the real function".
ORIGINAL = _OriginalSentinel()

#: Symbol names with defined interposition points.
OP_SYMBOLS = (
    "pthread_create",
    "pthread_mutex_lock",
    "pthread_mutex_unlock",
    "pthread_cond_notify",
    "barrier_wait",
    "pflush",
    "pcommit",
    "thread_begin",
    "thread_end",
)
SYNC_SYMBOLS = (
    "pmalloc",
    "pfree",
)


class InterpositionTable:
    """Registry of active interposers, one per symbol."""

    def __init__(self) -> None:
        self._op_hooks: dict[str, Callable] = {}
        self._sync_hooks: dict[str, Callable] = {}
        #: Optional ``observer(thread, op)`` called once per executed op
        #: (see module docstring).  A plain attribute, not a registry: one
        #: attribute check on the dispatch fast path when unused.
        self.dispatch_observer: Optional[Callable] = None

    # -- op hooks -------------------------------------------------------
    def register_op_hook(self, symbol: str, hook: Callable) -> None:
        """Install an op hook for *symbol* (see module docstring)."""
        if symbol not in OP_SYMBOLS:
            raise OsError(f"no interposition point for symbol {symbol!r}")
        if symbol in self._op_hooks:
            raise OsError(f"symbol {symbol!r} already interposed")
        self._op_hooks[symbol] = hook

    def op_hook(self, symbol: str) -> Optional[Callable]:
        """The active op hook for *symbol*, if any."""
        return self._op_hooks.get(symbol)

    # -- sync hooks -------------------------------------------------------
    def register_sync_hook(self, symbol: str, hook: Callable) -> None:
        """Install a sync (untimed call) hook for *symbol*."""
        if symbol not in SYNC_SYMBOLS:
            raise OsError(f"no interposition point for symbol {symbol!r}")
        if symbol in self._sync_hooks:
            raise OsError(f"symbol {symbol!r} already interposed")
        self._sync_hooks[symbol] = hook

    def sync_hook(self, symbol: str) -> Optional[Callable]:
        """The active sync hook for *symbol*, if any."""
        return self._sync_hooks.get(symbol)

    def unregister_all(self) -> None:
        """Drop every hook (library unload).

        The dispatch observer is *not* cleared: it belongs to the
        checking harness, not to the interposed library, and must survive
        a Quartz detach.
        """
        self._op_hooks.clear()
        self._sync_hooks.clear()
