"""Simulated threads and the context object handed to workload bodies."""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

from repro.errors import OsError
from repro.hw.topology import MemoryRegion, PageSize
from repro.ops import Flush

if TYPE_CHECKING:
    from repro.hw.core import Core
    from repro.os.system import SimOS
    from repro.sim.process import Process


class ThreadState(enum.Enum):
    """Lifecycle of a simulated thread."""

    NEW = "new"
    RUNNING = "running"
    FINISHED = "finished"


@dataclass(frozen=True)
class Signal:
    """A POSIX-style signal payload delivered to a thread."""

    signum: int

    def __post_init__(self) -> None:
        if not 1 <= self.signum <= 64:
            raise OsError(f"signal number out of range: {self.signum}")


class SimThread:
    """One application (or library) thread pinned to a logical core."""

    def __init__(
        self,
        os: "SimOS",
        tid: int,
        name: str,
        body: Callable[..., Iterator],
        core: "Core",
        mem_node: int,
        args: tuple = (),
        daemon: bool = False,
    ):
        self.os = os
        self.tid = tid
        self.name = name
        self.body = body
        self.core = core
        #: NUMA node malloc draws from (numactl --membind analogue).
        self.mem_node = mem_node
        self.args = args
        self.daemon = daemon
        self.state = ThreadState.NEW
        self.pending_signals: deque[Signal] = deque()
        self.signals_masked = False
        #: Completion times of posted clflushopt writebacks (pcommit waits
        #: on these, Section 6).
        self.outstanding_flushes: list[float] = []
        #: Opaque per-thread slot for the Quartz library's epoch state.
        self.library_state: Any = None
        self.process: Optional["Process"] = None
        self.result: Any = None
        self.context = ThreadContext(os, self)

    @property
    def finished(self) -> bool:
        """True once the thread body returned."""
        return self.state is ThreadState.FINISHED

    @property
    def socket(self) -> int:
        """The socket this thread is pinned to."""
        return self.core.socket

    def __repr__(self) -> str:
        return f"SimThread({self.tid}, {self.name!r}, {self.state.value})"


class ThreadContext:
    """The "libc view" a workload body receives as its first argument.

    Untimed services (allocation, clock reads, RNG) are plain methods;
    anything that takes simulated time is expressed by yielding ops.  The
    persistent-memory API (``pmalloc``/``pfree``/``pflush``) routes through
    the interposition table, so attaching Quartz transparently changes its
    behaviour — the paper's "without modifying or instrumenting the
    application source code" property.
    """

    def __init__(self, os: "SimOS", thread: SimThread):
        self.os = os
        self.thread = thread

    # -- clock ----------------------------------------------------------
    @property
    def now_ns(self) -> float:
        """CLOCK_MONOTONIC (valid whenever the body is running)."""
        return self.os.sim.now

    @property
    def arch(self):
        """The machine's architecture spec."""
        return self.os.machine.arch

    def rng(self, name: str):
        """A deterministic per-purpose random stream.

        Keyed by thread *name*, not tid, so workload randomness is
        identical across configurations that create different numbers of
        library threads (e.g. with vs. without the Quartz monitor).
        """
        return self.os.sim.random.stream(f"thread-{self.thread.name}-{name}")

    # -- volatile memory (malloc/free) ------------------------------------
    def malloc(
        self,
        size_bytes: int,
        page_size: PageSize = PageSize.SMALL_4K,
        label: str = "",
    ) -> MemoryRegion:
        """Allocate volatile memory under the thread's NUMA policy."""
        return self.os.machine.allocate(
            size_bytes, node=self.thread.mem_node, page_size=page_size, label=label
        )

    def free(self, region: MemoryRegion) -> None:
        """Release a malloc'd region."""
        self.os.machine.free(region)

    # -- persistent memory (pmalloc/pfree/pflush) ---------------------------
    def pmalloc(
        self,
        size_bytes: int,
        page_size: PageSize = PageSize.SMALL_4K,
        label: str = "",
    ) -> MemoryRegion:
        """Allocate persistent memory.

        Interposed by Quartz: in two-memory mode the allocation lands on
        the sibling socket's DRAM (virtual NVM, Section 3.3).  Without an
        interposer it falls back to local memory marked persistent.
        """
        hook = self.os.interpose.sync_hook("pmalloc")
        if hook is not None:
            return hook(self.thread, size_bytes, page_size, label)
        return self.os.machine.allocate(
            size_bytes,
            node=self.thread.mem_node,
            page_size=page_size,
            label=label or "pmem",
            persistent=True,
        )

    def pfree(self, region: MemoryRegion) -> None:
        """Release a pmalloc'd region."""
        hook = self.os.interpose.sync_hook("pfree")
        if hook is not None:
            hook(self.thread, region)
            return
        self.os.machine.free(region)

    def pflush(self, region: MemoryRegion, lines: int = 1, line: Optional[int] = None):
        """Flush lines to persistent memory (use as ``yield from``).

        Interposed by Quartz to append the configured NVM write delay
        after the hardware ``clflush`` (Section 3.1).  ``line`` names the
        first region-relative cache line flushed, which lets persistence
        observers attribute the writeback to exact lines instead of
        oldest-dirty-first.
        """
        op = Flush(region, lines=lines, label="pflush", line=line)
        hook = self.os.interpose.op_hook("pflush")
        if hook is None:
            result = yield op
            return result
        result = yield from self.os.run_op_hook(self.thread, hook, op)
        return result
