"""The instruction-level operations workloads yield to the simulated core.

Workload bodies are generators yielding these ops (see
``repro.workloads.base``).  The OS layer dispatches them: memory and
compute ops go to the hardware core model (:mod:`repro.hw.core`),
synchronization ops to the simulated pthread layer (:mod:`repro.os.sync`),
and persistent-memory ops route through Quartz's interposition hooks just
as ``LD_PRELOAD`` redirects them on a real system.

A :class:`MemBatch` is the workhorse: it describes *many* memory accesses
with a common pattern, which the hardware resolves analytically (cache
hits, misses, MLP, bandwidth) in O(1) instead of simulating every access.
Batches are divisible, so a Quartz signal can interrupt one mid-flight
with correct partial accounting — the DES analogue of a POSIX signal
landing between two loads.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Iterator, Optional, TYPE_CHECKING

from repro.errors import WorkloadError
from repro.units import CACHE_LINE_BYTES

if TYPE_CHECKING:
    from repro.hw.topology import MemoryRegion
    from repro.os.sync import Barrier, CondVar, Mutex
    from repro.os.thread import SimThread


class Op:
    """Base class for everything a workload can yield."""

    __slots__ = ()


class PatternKind(enum.Enum):
    """Spatial/dependency structure of a memory batch."""

    #: Pointer chase: the next address depends on the previous load.
    CHASE = "chase"
    #: Sequential streaming (hardware prefetcher friendly).
    SEQUENTIAL = "sequential"
    #: Independent uniform-random accesses.
    RANDOM = "random"


@dataclass(frozen=True)
class Compute(Op):
    """Pure CPU work: ``cycles`` of execution with no memory traffic."""

    cycles: float
    label: str = ""

    def __post_init__(self) -> None:
        if self.cycles < 0:
            raise WorkloadError(f"negative compute cycles: {self.cycles}")


@dataclass(frozen=True)
class Spin(Op):
    """Busy-wait for an exact wall-clock duration.

    Models Quartz's delay-injection loop, which reads the invariant TSC via
    ``rdtscp`` and spins until the target time passes (Section 3.1); the
    duration is therefore exact in *time*, not cycles, and is immune to
    DVFS.
    """

    duration_ns: float
    label: str = "spin"

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise WorkloadError(f"negative spin: {self.duration_ns}")


@dataclass(frozen=True)
class MemBatch(Op):
    """A batch of same-pattern memory accesses against one region.

    Parameters
    ----------
    region:
        Target allocation; its NUMA node determines latency/controller.
    accesses:
        Number of load (or store) instructions in the batch.
    pattern:
        Dependency/spatial structure (:class:`PatternKind`).
    footprint_bytes:
        Bytes the access stream is spread over (defaults to the region
        size).  Determines cache hit rates.
    parallelism:
        Independent access streams — e.g. the number of concurrent pointer
        chains in MemLat.  Capped by the core's line-fill buffers.
    stride_bytes:
        Address step for SEQUENTIAL batches; 8 for an int64 scan means 8
        consecutive accesses share a cache line.
    compute_cycles_per_access:
        CPU work interleaved with each access.
    overlap:
        Fraction of memory wait that execution can hide under compute
        (None = architecture/workload default of 0, the paper's
        fully-stalled assumption discussed in Section 6).
    is_store / non_temporal:
        Stores are posted (no load-stall contribution, Section 3.1);
        non-temporal stores bypass the cache and skip read-for-ownership.
    """

    region: "MemoryRegion"
    accesses: int
    pattern: PatternKind
    footprint_bytes: Optional[int] = None
    parallelism: int = 1
    stride_bytes: int = CACHE_LINE_BYTES
    compute_cycles_per_access: float = 0.0
    overlap: Optional[float] = None
    is_store: bool = False
    non_temporal: bool = False
    #: Scales the DRAM traffic of the batch; used by fused streaming
    #: kernels (e.g. STREAM copy reads the source while writing the
    #: destination in the same loop, moving 2 lines per line written).
    dram_bytes_multiplier: float = 1.0
    label: str = ""

    def __post_init__(self) -> None:
        if self.accesses < 0:
            raise WorkloadError(f"negative access count: {self.accesses}")
        if self.dram_bytes_multiplier <= 0:
            raise WorkloadError(
                f"traffic multiplier must be positive: {self.dram_bytes_multiplier}"
            )
        if self.parallelism < 1:
            raise WorkloadError(f"parallelism must be >= 1: {self.parallelism}")
        if self.stride_bytes <= 0:
            raise WorkloadError(f"stride must be positive: {self.stride_bytes}")
        if self.overlap is not None and not 0.0 <= self.overlap <= 1.0:
            raise WorkloadError(f"overlap must be in [0,1]: {self.overlap}")
        if self.footprint_bytes is not None and self.footprint_bytes <= 0:
            raise WorkloadError(f"footprint must be positive: {self.footprint_bytes}")

    @property
    def effective_footprint(self) -> int:
        """The working-set size the cache model should use."""
        if self.footprint_bytes is not None:
            return self.footprint_bytes
        return self.region.size_bytes

    def split_remainder(self, fraction_done: float) -> Optional["MemBatch"]:
        """Return a batch covering the accesses not yet performed.

        Used when a signal interrupts the batch; ``None`` if nothing
        meaningful remains.
        """
        remaining = self.accesses - int(self.accesses * fraction_done)
        if remaining <= 0:
            return None
        return replace(self, accesses=remaining)


@dataclass(frozen=True)
class Flush(Op):
    """``clflush``: write a cache line back to memory and stall-wait.

    The building block of Quartz's ``pflush`` (Section 3.1): the processor
    waits for the line to reach memory before continuing, which is how the
    emulator pessimistically serializes persistent writes.
    """

    region: "MemoryRegion"
    lines: int = 1
    label: str = ""
    #: First cache line flushed (region-relative index); ``None`` means
    #: the workload does not address specific lines and persistence-state
    #: observers fall back to oldest-dirty-first attribution.
    line: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lines <= 0:
            raise WorkloadError(f"flush line count must be positive: {self.lines}")
        if self.line is not None and self.line < 0:
            raise WorkloadError(f"flush line index cannot be negative: {self.line}")


@dataclass(frozen=True)
class FlushOpt(Op):
    """``clflushopt``: initiate a line writeback without stalling.

    Completion is awaited collectively at the next :class:`Commit`
    (``pcommit``) barrier — the Section 6 extension that lets independent
    persistent writes proceed in parallel.
    """

    region: "MemoryRegion"
    lines: int = 1
    label: str = ""
    #: See :attr:`Flush.line`.
    line: Optional[int] = None

    def __post_init__(self) -> None:
        if self.lines <= 0:
            raise WorkloadError(f"flush line count must be positive: {self.lines}")
        if self.line is not None and self.line < 0:
            raise WorkloadError(f"flush line index cannot be negative: {self.line}")


@dataclass(frozen=True)
class Commit(Op):
    """``pcommit``: stall until all outstanding optimized flushes persist."""

    label: str = ""


@dataclass(frozen=True)
class MutexLock(Op):
    """Acquire a simulated pthread mutex (blocking)."""

    mutex: "Mutex"


@dataclass(frozen=True)
class MutexUnlock(Op):
    """Release a simulated pthread mutex.

    Quartz interposes on exactly this call to close epochs at inter-thread
    communication points (Section 2.3 / 3.1).
    """

    mutex: "Mutex"


@dataclass(frozen=True)
class CondWait(Op):
    """Wait on a condition variable, atomically releasing ``mutex``."""

    cond: "CondVar"
    mutex: "Mutex"


@dataclass(frozen=True)
class CondNotify(Op):
    """Wake one (or all) waiters of a condition variable."""

    cond: "CondVar"
    notify_all: bool = False


@dataclass(frozen=True)
class BarrierWait(Op):
    """Arrive at a cyclic barrier; blocks until all parties arrive.

    An inter-thread communication point (like lock release), so Quartz
    interposes to inject accumulated delay before arrival.  The op's
    result is the barrier generation number.
    """

    barrier: "Barrier"


@dataclass(frozen=True)
class Sleep(Op):
    """Block the thread for a duration (e.g. the monitor's wake interval)."""

    duration_ns: float

    def __post_init__(self) -> None:
        if self.duration_ns < 0:
            raise WorkloadError(f"negative sleep: {self.duration_ns}")


@dataclass(frozen=True)
class SpawnThread(Op):
    """Create a new application thread running ``body(ctx)``.

    Routed through the ``pthread_create`` interposition hook, which is how
    Quartz learns about and registers new threads (Figure 5, step 1).
    The op's result is the new :class:`~repro.os.thread.SimThread`.
    """

    body: Callable[..., Iterator]
    name: str = "thread"
    core_hint: Optional[int] = None
    args: tuple = field(default_factory=tuple)


@dataclass(frozen=True)
class JoinThread(Op):
    """Block until another thread finishes; result is its return value."""

    thread: "SimThread"


@dataclass
class OpResult:
    """What the core reports back for a completed timed op."""

    op: Op
    duration_ns: float
    value: Any = None
