"""Structured experiment results and ASCII rendering.

Every experiment driver returns an :class:`ExperimentResult`: an
identifier tying it to the paper artefact (e.g. ``figure12``), uniform
rows of named values, and free-form notes.  :func:`render_table` prints
the rows as the text analogue of the paper's figure.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError


@dataclass
class ExperimentResult:
    """The regenerated data behind one paper table or figure."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row; keys must match ``columns``."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValidationError(f"row missing columns {missing}")
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ValidationError(f"no such column: {name}")
        return [row[name] for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a free-form note (scaling substitutions etc.)."""
        self.notes.append(text)


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        return f"{value:.3f}".rstrip("0").rstrip(".")
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an experiment result as a fixed-width ASCII table."""
    header = [result.columns]
    body = [
        [_format_cell(row[column]) for column in result.columns]
        for row in result.rows
    ]
    widths = [
        max(len(line[index]) for line in header + body)
        for index in range(len(result.columns))
    ]
    separator = "-+-".join("-" * width for width in widths)

    def render_line(cells: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        render_line(result.columns),
        separator,
    ]
    lines.extend(render_line(cells) for cells in body)
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
