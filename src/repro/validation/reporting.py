"""Structured experiment results, ASCII rendering, and serialization.

Every experiment driver returns an :class:`ExperimentResult`: an
identifier tying it to the paper artefact (e.g. ``figure12``), uniform
rows of named values, and free-form notes.  :func:`render_table` prints
the rows as the text analogue of the paper's figure;
:meth:`ExperimentResult.to_dict` / :meth:`ExperimentResult.to_json` give
the machine-readable form consumed by :mod:`repro.validation.export`.

Rows are strictly schematised: :meth:`ExperimentResult.add_row` rejects
both missing and unknown keys, so a result that renders is also a result
that exports losslessly.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any

from repro.errors import ValidationError


def _jsonable(value: Any) -> Any:
    """Coerce a cell value to a plain JSON type.

    Numpy scalars (``np.int64`` row counts, ``np.float64`` timings) carry
    an ``item()`` returning the Python equivalent; anything else exotic
    falls back to its string form.
    """
    if value is None or isinstance(value, (bool, str)):
        return value
    if isinstance(value, int):
        return int(value)
    if isinstance(value, float):
        return float(value)
    item = getattr(value, "item", None)
    if callable(item):
        return _jsonable(value.item())
    return str(value)


@dataclass
class ExperimentResult:
    """The regenerated data behind one paper table or figure."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, **values: Any) -> None:
        """Append one row; keys must match ``columns`` exactly."""
        missing = [column for column in self.columns if column not in values]
        if missing:
            raise ValidationError(f"row missing columns {missing}")
        unknown = [key for key in values if key not in self.columns]
        if unknown:
            # A stray key would silently survive in ``rows`` (never
            # rendered) and leak into the JSON export.
            raise ValidationError(
                f"row has keys not in columns: {unknown} "
                f"(columns: {self.columns})"
            )
        self.rows.append(values)

    def column(self, name: str) -> list[Any]:
        """All values of one column, in row order."""
        if name not in self.columns:
            raise ValidationError(f"no such column: {name}")
        return [row[name] for row in self.rows]

    def note(self, text: str) -> None:
        """Attach a free-form note (scaling substitutions etc.)."""
        self.notes.append(text)

    # ------------------------------------------------------------------
    # Serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-safe dict: id, title, columns, rows, notes.

        Rows are emitted in column order with values coerced to plain
        JSON types, so the output is deterministic for deterministic
        results (the runner's any-job-count guarantee carries through).
        """
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [
                {column: _jsonable(row[column]) for column in self.columns}
                for row in self.rows
            ],
            "notes": list(self.notes),
        }

    def to_json(self, indent: int = 2) -> str:
        """The canonical JSON form of :meth:`to_dict` (sorted keys)."""
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: dict) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (validating)."""
        try:
            result = cls(
                experiment_id=str(payload["experiment_id"]),
                title=str(payload["title"]),
                columns=list(payload["columns"]),
                notes=list(payload.get("notes", [])),
            )
            rows = payload.get("rows", [])
        except (KeyError, TypeError) as error:
            raise ValidationError(f"malformed experiment payload: {error}")
        for row in rows:
            result.add_row(**row)
        return result


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"  # normalises -0.0 too
        if abs(value) >= 1000 or abs(value) < 0.01:
            return f"{value:.3g}"
        text = f"{value:.3f}".rstrip("0").rstrip(".")
        if text in ("-0", "0", "-"):
            # A tiny magnitude rounded to all zeros must not keep its sign.
            return "0"
        return text
    return str(value)


def render_table(result: ExperimentResult) -> str:
    """Render an experiment result as a fixed-width ASCII table."""
    header = [result.columns]
    body = [
        [_format_cell(row[column]) for column in result.columns]
        for row in result.rows
    ]
    widths = [
        max(len(line[index]) for line in header + body)
        for index in range(len(result.columns))
    ]
    separator = "-+-".join("-" * width for width in widths)

    def render_line(cells: list[str]) -> str:
        return " | ".join(cell.ljust(width) for cell, width in zip(cells, widths))

    lines = [
        f"== {result.experiment_id}: {result.title} ==",
        render_line(result.columns),
        separator,
    ]
    if body:
        lines.extend(render_line(cells) for cells in body)
    else:
        lines.append("(no rows)")
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)
