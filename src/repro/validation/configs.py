"""The validation testbed configurations of Section 4.3 (Figure 10).

* :func:`run_conf1` — computation and memory on socket 0, Quartz attached
  and emulating a higher latency (Figure 10a);
* :func:`run_conf2` — computation on socket 0, memory physically bound to
  socket 1 with the numactl analogue, **no emulator** (Figure 10b);
* :func:`run_native` — computation and memory on socket 0, no emulator
  (the "no emulation" baseline of Figure 13).

Each run builds a fresh machine (caches cold, counters zeroed — the
paper's "invalidate caches between runs"), drives the workload's main
body to completion, and returns the workload result plus emulator
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.hw.arch import ArchSpec
from repro.hw.machine import Machine
from repro.os.system import SimOS
from repro.quartz.calibration import CalibrationData, calibrate_arch
from repro.quartz.config import QuartzConfig
from repro.quartz.emulator import Quartz
from repro.quartz.stats import QuartzStats
from repro.sim import Simulator

if TYPE_CHECKING:
    from repro.quartz.trace import JsonlTraceWriter


@dataclass
class RunOutcome:
    """Everything observable from one validation run."""

    workload_result: Any
    elapsed_ns: float
    quartz_stats: Optional[QuartzStats] = None
    machine: Optional[Machine] = None


BodyFactory = Callable[[dict], Callable]


def _drive(os: SimOS, body_factory: BodyFactory) -> RunOutcome:
    out: dict = {}
    start = os.sim.now
    os.create_thread(body_factory(out), name="main")
    os.run_to_completion()
    return RunOutcome(
        workload_result=out.get("result"),
        elapsed_ns=os.sim.now - start,
        machine=os.machine,
    )


def run_conf1(
    arch: ArchSpec,
    body_factory: BodyFactory,
    quartz_config: QuartzConfig,
    seed: int = 0,
    calibration: Optional[CalibrationData] = None,
    trace_sink: Optional["JsonlTraceWriter"] = None,
) -> RunOutcome:
    """Conf_1: local memory, Quartz emulating the target latency.

    ``trace_sink`` (a :class:`~repro.quartz.trace.JsonlTraceWriter`)
    streams every closed epoch to a JSONL file as the run executes —
    the CLI's ``--trace-out`` plumbing.  Tracing never changes results
    (it is free in simulated time).
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    quartz = Quartz(
        os, quartz_config, calibration=calibration or calibrate_arch(arch)
    )
    quartz.attach()
    if trace_sink is not None:
        # Local import: repro.quartz.trace imports validation.metrics.
        from repro.quartz.trace import attach_trace

        attach_trace(quartz, sink=trace_sink)
    outcome = _drive(os, body_factory)
    outcome.quartz_stats = quartz.stats
    return outcome


def run_conf2(
    arch: ArchSpec, body_factory: BodyFactory, seed: int = 0
) -> RunOutcome:
    """Conf_2: memory physically on the remote socket, no emulator."""
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0, default_mem_node=1)
    return _drive(os, body_factory)


def run_native(
    arch: ArchSpec, body_factory: BodyFactory, seed: int = 0
) -> RunOutcome:
    """Local memory, no emulator (the unmodified baseline)."""
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    return _drive(os, body_factory)


def _drive_default_thread(os: SimOS, body_factory: BodyFactory) -> RunOutcome:
    """Like :func:`_drive` but with the OS-assigned thread name.

    The Table 2 / Figure 8 measurement loops predate the Conf_1/Conf_2
    helpers and create their thread unnamed; thread names key the random
    streams, so the distinction is load-bearing for reproducibility.
    """
    out: dict = {}
    start = os.sim.now
    os.create_thread(body_factory(out))
    os.run_to_completion()
    return RunOutcome(
        workload_result=out.get("result"),
        elapsed_ns=os.sim.now - start,
        machine=os.machine,
    )


def run_chase(
    arch: ArchSpec, body_factory: BodyFactory, seed: int = 0, mem_node: int = 0
) -> RunOutcome:
    """Raw latency measurement: memory bound to *mem_node*, no emulator.

    The Table 2 configuration — node 0 gives the local-DRAM row, node 1
    the remote one.
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0, default_mem_node=mem_node)
    return _drive_default_thread(os, body_factory)


def run_throttled(
    arch: ArchSpec, body_factory: BodyFactory, seed: int = 0, register: int = 0
) -> RunOutcome:
    """Bandwidth measurement under one thermal-throttle register setting.

    The Figure 8 configuration: no latency jitter, no emulator, the
    node-0 controller programmed before the workload starts.
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch)
    machine.controller(0).program_throttle_register(register, privileged=True)
    os = SimOS(machine, default_cpu_node=0)
    return _drive_default_thread(os, body_factory)
