"""The validation testbed configurations of Section 4.3 (Figure 10).

* :func:`run_conf1` — computation and memory on socket 0, Quartz attached
  and emulating a higher latency (Figure 10a);
* :func:`run_conf2` — computation on socket 0, memory physically bound to
  socket 1 with the numactl analogue, **no emulator** (Figure 10b);
* :func:`run_native` — computation and memory on socket 0, no emulator
  (the "no emulation" baseline of Figure 13).

Each run builds a fresh machine (caches cold, counters zeroed — the
paper's "invalidate caches between runs"), drives the workload's main
body to completion, and returns the workload result plus emulator
statistics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Optional

from repro.faults.engine import FaultEngine
from repro.faults.invariants import InvariantMonitor
from repro.faults.plan import FaultPlan
from repro.hw.arch import ArchSpec
from repro.hw.machine import Machine
from repro.os.system import SimOS
from repro.quartz.calibration import CalibrationData, calibrate_arch
from repro.quartz.config import QuartzConfig
from repro.quartz.emulator import Quartz
from repro.quartz.stats import QuartzStats
from repro.sim import Simulator

if TYPE_CHECKING:
    from repro.explore import ExplorePlan
    from repro.pmem.crash import CrashPlan
    from repro.quartz.trace import JsonlTraceWriter


@dataclass
class RunOutcome:
    """Everything observable from one validation run."""

    workload_result: Any
    elapsed_ns: float
    quartz_stats: Optional[QuartzStats] = None
    machine: Optional[Machine] = None
    #: :meth:`FaultEngine.report` of a faulted run (None when clean).
    fault_report: Optional[dict] = None
    #: :meth:`InvariantMonitor.report` when ``check_invariants`` was set.
    invariant_report: Optional[dict] = None
    #: :meth:`~repro.pmem.checker.CrashCheckReport.to_dict` of a
    #: crash-checked run (None otherwise).
    crash_report: Optional[dict] = None
    #: :meth:`~repro.explore.ExploreReport.to_dict` of a model-checking
    #: run (None otherwise).
    explore_report: Optional[dict] = None
    #: :meth:`~repro.service.kvservice.ServiceResult.report` of a KV
    #: service run (None otherwise).
    service_report: Optional[dict] = None


def _fault_setup(
    machine: Machine,
    os: SimOS,
    seed: int,
    fault_plan: Optional[FaultPlan],
    check_invariants: bool,
) -> tuple[Optional[FaultEngine], Optional[InvariantMonitor]]:
    """Install the run's fault engine and/or invariant monitor (if any)."""
    engine = None
    if fault_plan is not None and not fault_plan.is_empty:
        engine = FaultEngine(fault_plan, run_seed=seed)
        engine.install(machine=machine, os=os)
    monitor = None
    if check_invariants:
        monitor = InvariantMonitor()
        monitor.attach_sim(machine.sim)
    return engine, monitor


def _fault_finish(
    outcome: "RunOutcome",
    engine: Optional[FaultEngine],
    monitor: Optional[InvariantMonitor],
) -> RunOutcome:
    if engine is not None:
        outcome.fault_report = engine.report()
    if monitor is not None:
        outcome.invariant_report = monitor.report()
    return outcome


BodyFactory = Callable[[dict], Callable]


def _drive(os: SimOS, body_factory: BodyFactory) -> RunOutcome:
    out: dict = {}
    start = os.sim.now
    os.create_thread(body_factory(out), name="main")
    os.run_to_completion()
    return RunOutcome(
        workload_result=out.get("result"),
        elapsed_ns=os.sim.now - start,
        machine=os.machine,
    )


def run_conf1(
    arch: ArchSpec,
    body_factory: BodyFactory,
    quartz_config: QuartzConfig,
    seed: int = 0,
    calibration: Optional[CalibrationData] = None,
    trace_sink: Optional["JsonlTraceWriter"] = None,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Conf_1: local memory, Quartz emulating the target latency.

    ``trace_sink`` (a :class:`~repro.quartz.trace.JsonlTraceWriter`)
    streams every closed epoch to a JSONL file as the run executes —
    the CLI's ``--trace-out`` plumbing.  Tracing never changes results
    (it is free in simulated time).

    ``fault_plan`` runs the experiment under seeded fault injection;
    ``check_invariants`` attaches an :class:`InvariantMonitor` that
    raises :class:`~repro.errors.InvariantViolation` at the first broken
    runtime invariant.  Both are recorded on the outcome.
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    engine, monitor = _fault_setup(machine, os, seed, fault_plan, check_invariants)
    calibration = calibration or calibrate_arch(arch)
    if engine is not None:
        # Perturbed calibration models a mis-measured testbed; it must be
        # in place before the emulator derives its latency model from it.
        calibration = engine.perturb_calibration(calibration)
    quartz = Quartz(os, quartz_config, calibration=calibration)
    quartz.attach()
    if monitor is not None:
        monitor.attach_quartz(quartz)
    if trace_sink is not None:
        # Local import: repro.quartz.trace imports validation.metrics.
        from repro.quartz.trace import attach_trace

        attach_trace(quartz, sink=trace_sink)
    outcome = _drive(os, body_factory)
    outcome.quartz_stats = quartz.stats
    return _fault_finish(outcome, engine, monitor)


def run_service(
    arch: ArchSpec,
    body_factory: BodyFactory,
    quartz_config: QuartzConfig,
    seed: int = 0,
    calibration: Optional[CalibrationData] = None,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Conf_1 driving the multi-tenant KV service.

    Identical machine setup to :func:`run_conf1` (local memory, Quartz
    emulating the target latency); the only difference is the outcome's
    ``service_report`` — the per-tenant tail-latency/throughput/cache
    summary of :class:`~repro.service.kvservice.ServiceResult`.  The
    service body runs its DRAM-cache accounting conservation check on
    every completion path, so a faulted run that corrupts cache
    bookkeeping surfaces as an :class:`~repro.errors.InvariantViolation`
    here, not as silently wrong tails.
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    engine, monitor = _fault_setup(machine, os, seed, fault_plan, check_invariants)
    calibration = calibration or calibrate_arch(arch)
    if engine is not None:
        calibration = engine.perturb_calibration(calibration)
    quartz = Quartz(os, quartz_config, calibration=calibration)
    quartz.attach()
    if monitor is not None:
        monitor.attach_quartz(quartz)
    outcome = _drive(os, body_factory)
    outcome.quartz_stats = quartz.stats
    if outcome.workload_result is not None:
        outcome.service_report = outcome.workload_result.report()
    return _fault_finish(outcome, engine, monitor)


def run_crash(
    arch: ArchSpec,
    workload_id: str,
    workload_config: Any,
    quartz_config: QuartzConfig,
    crash_plan: "CrashPlan",
    seed: int = 0,
    calibration: Optional[CalibrationData] = None,
    shard: int = 0,
    shards: int = 1,
    mutant: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Conf_1 with the crash-consistency checker attached.

    Builds the same machine as :func:`run_conf1` (local memory, Quartz
    emulating the target), then drives a *recoverable* workload via
    :func:`repro.pmem.check_workload`: a persistence domain shadows every
    pmalloc'd line, a :class:`~repro.pmem.crash.CrashInjector` enumerates
    crash points, and recovery is replayed against each stored image.
    ``shard``/``shards`` split snapshot *storage* (never enumeration)
    for the parallel runner; the result lands in ``crash_report``.
    """
    from repro.pmem import check_workload

    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    engine, monitor = _fault_setup(machine, os, seed, fault_plan, check_invariants)
    calibration = calibration or calibrate_arch(arch)
    if engine is not None:
        calibration = engine.perturb_calibration(calibration)
    quartz = Quartz(os, quartz_config, calibration=calibration)
    quartz.attach()
    if monitor is not None:
        monitor.attach_quartz(quartz)
    report, result, elapsed = check_workload(
        os,
        quartz,
        workload_id,
        workload_config,
        crash_plan,
        run_seed=seed,
        shard=shard,
        shards=shards,
        mutant=mutant,
    )
    outcome = RunOutcome(
        workload_result=result,
        elapsed_ns=elapsed,
        machine=machine,
        crash_report=report.to_dict(),
    )
    outcome.quartz_stats = quartz.stats
    return _fault_finish(outcome, engine, monitor)


def run_explore(
    arch: ArchSpec,
    workload_id: str,
    workload_config: Any,
    explore_plan: "ExplorePlan",
    seed: int = 0,
    shard: int = 0,
    shards: int = 1,
    mutant: Optional[str] = None,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Model-checking mode: enumerate interleavings x crash points.

    Unlike the other configurations this is not one run but a whole
    exploration: the :class:`~repro.explore.Explorer` re-executes the
    workload once per schedule on private simulators (no Quartz, no
    latency jitter — scheduling nondeterminism is the subject under
    test, timing emulation is not).  ``shard``/``shards`` partition the
    schedule tree at its first decision point, so shard outcomes merge
    to the identical whole for any job fan-out.

    ``fault_plan``/``check_invariants`` are accepted for runner-protocol
    compatibility and ignored: fault injection perturbs timing inside a
    single simulation, while exploration owns its internal simulators
    end to end.
    """
    del fault_plan, check_invariants  # exploration owns its simulators
    from repro.explore import Explorer

    explorer = Explorer(
        arch,
        workload_id,
        workload_config,
        plan=explore_plan,
        mutant=mutant,
        shard=shard,
        shards=shards,
    )
    report = explorer.run()
    return RunOutcome(
        workload_result=report.result,
        elapsed_ns=report.elapsed_ns,
        machine=None,
        explore_report=report.to_dict(),
    )


def run_conf2(
    arch: ArchSpec,
    body_factory: BodyFactory,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Conf_2: memory physically on the remote socket, no emulator."""
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0, default_mem_node=1)
    engine, monitor = _fault_setup(machine, os, seed, fault_plan, check_invariants)
    return _fault_finish(_drive(os, body_factory), engine, monitor)


def run_native(
    arch: ArchSpec,
    body_factory: BodyFactory,
    seed: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Local memory, no emulator (the unmodified baseline)."""
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0)
    engine, monitor = _fault_setup(machine, os, seed, fault_plan, check_invariants)
    return _fault_finish(_drive(os, body_factory), engine, monitor)


def _drive_default_thread(os: SimOS, body_factory: BodyFactory) -> RunOutcome:
    """Like :func:`_drive` but with the OS-assigned thread name.

    The Table 2 / Figure 8 measurement loops predate the Conf_1/Conf_2
    helpers and create their thread unnamed; thread names key the random
    streams, so the distinction is load-bearing for reproducibility.
    """
    out: dict = {}
    start = os.sim.now
    os.create_thread(body_factory(out))
    os.run_to_completion()
    return RunOutcome(
        workload_result=out.get("result"),
        elapsed_ns=os.sim.now - start,
        machine=os.machine,
    )


def run_chase(
    arch: ArchSpec,
    body_factory: BodyFactory,
    seed: int = 0,
    mem_node: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Raw latency measurement: memory bound to *mem_node*, no emulator.

    The Table 2 configuration — node 0 gives the local-DRAM row, node 1
    the remote one.
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch, latency_jitter=True)
    os = SimOS(machine, default_cpu_node=0, default_mem_node=mem_node)
    engine, monitor = _fault_setup(machine, os, seed, fault_plan, check_invariants)
    return _fault_finish(_drive_default_thread(os, body_factory), engine, monitor)


def run_throttled(
    arch: ArchSpec,
    body_factory: BodyFactory,
    seed: int = 0,
    register: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    """Bandwidth measurement under one thermal-throttle register setting.

    The Figure 8 configuration: no latency jitter, no emulator, the
    node-0 controller programmed before the workload starts.
    """
    sim = Simulator(seed=seed)
    machine = Machine(sim, arch)
    machine.controller(0).program_throttle_register(register, privileged=True)
    os = SimOS(machine, default_cpu_node=0)
    engine, monitor = _fault_setup(machine, os, seed, fault_plan, check_invariants)
    return _fault_finish(_drive_default_thread(os, body_factory), engine, monitor)
