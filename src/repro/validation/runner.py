"""The parallel experiment runner: declarative run grids, fanned out.

Every validation run is a pure function of a small picklable description
— which workload, which architecture, which Quartz configuration, which
seed.  :class:`RunSpec` captures that description; :func:`run_specs`
executes a grid of them, optionally across a ``ProcessPoolExecutor``
(``jobs`` argument / ``QUARTZ_REPRO_JOBS``), and returns results in
exactly the submitted order — so a driver's output table is byte-for-byte
identical whatever the job count.

Workers share calibration through the persistent on-disk cache (see
``repro.quartz.calibration``): the parent pre-warms every calibration a
grid needs before fanning out, so workers only ever hit the cache.  Each
result carries per-run wall time, simulator event counts, and the
calibration cache-counter deltas; :func:`consume_run_stats` hands the
aggregate to the CLI summary line.

Execution degrades gracefully: ``jobs=1``, single-spec grids, and
environments where process pools are unavailable all run in-process with
identical results.
"""

from __future__ import annotations

import os
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence

from repro.errors import RunInterrupted, ValidationError
from repro.faults.context import get_active_faults
from repro.faults.plan import FaultPlan
from repro.hw.arch import arch_by_name
from repro.quartz.calibration import (
    arch_fingerprint,
    cache_counters,
    calibrate_arch,
)
from repro.quartz.config import QuartzConfig
from repro.quartz.stats import QuartzStats
from repro.explore.litmus import disjoint_locks_body, mutex_log_body
from repro.pmem.domain import PersistenceDomain
from repro.service.kvservice import kvservice_main_body
from repro.stats_util import percentile
from repro.validation.configs import (
    RunOutcome,
    run_chase,
    run_conf1,
    run_conf2,
    run_crash,
    run_explore,
    run_native,
    run_service,
    run_throttled,
)
from repro.workloads.graph500 import graph500_body
from repro.workloads.kvstore import kvstore_main_body
from repro.workloads.memlat import memlat_body
from repro.workloads.multilat import multilat_body
from repro.workloads.multithreaded import multithreaded_main_body
from repro.workloads.pagerank import pagerank_body
from repro.workloads.pagerank_parallel import parallel_pagerank_body
from repro.workloads.stream import stream_main_body

# ----------------------------------------------------------------------
# Declarative run units
# ----------------------------------------------------------------------

#: Workload id -> body-factory builder.  A builder receives the spec's
#: workload config plus its extras dict and returns the ``factory(out)``
#: callable the Conf_1/Conf_2 helpers drive.  Builders are module-level
#: so a spec stays picklable: workers reconstruct closures locally.
WORKLOADS: dict[str, Callable[[Any, dict], Callable]] = {
    "memlat": lambda config, extras: (lambda out: memlat_body(config, out)),
    "stream": lambda config, extras: (lambda out: stream_main_body(config, out)),
    "multithreaded": lambda config, extras: (
        lambda out: multithreaded_main_body(config, out)
    ),
    "multilat": lambda config, extras: (lambda out: multilat_body(config, out)),
    "kvstore": lambda config, extras: (lambda out: kvstore_main_body(config, out)),
    "pagerank": lambda config, extras: (
        lambda out: pagerank_body(config, out, graph=extras.get("graph"))
    ),
    "graph500": lambda config, extras: (
        lambda out: graph500_body(config, out, graph=extras.get("graph"))
    ),
    "parallel-pagerank": lambda config, extras: (
        lambda out: parallel_pagerank_body(config, out, graph=extras.get("graph"))
    ),
    # Litmus workloads (exploration-sized; see ``repro.explore.litmus``).
    # Outside explore mode they run against a detached shadow domain —
    # the recorded content goes unchecked, the traffic shape is real.
    "mutex-log": lambda config, extras: (
        lambda out: mutex_log_body(
            config, out, PersistenceDomain(), extras.get("mutant")
        )
    ),
    "disjoint-locks": lambda config, extras: (
        lambda out: disjoint_locks_body(config, out, PersistenceDomain())
    ),
    "kvservice": lambda config, extras: (
        lambda out: kvservice_main_body(config, out)
    ),
}

#: Mode -> testbed configuration (see ``repro.validation.configs``).
#: ``crash`` is Conf_1 plus the crash-consistency checker
#: (``repro.pmem``); its extras carry ``crash_plan`` (required) and
#: optionally ``shard``/``shards``/``mutant``.  ``explore`` is the
#: model-checking mode (``repro.explore``); its extras carry
#: ``explore_plan`` (required) plus the same optional keys.  ``service``
#: is Conf_1 driving the multi-tenant KV service (``repro.service``);
#: the result's ``service_report`` carries the tail-latency summary.
MODES = (
    "conf1", "conf2", "native", "chase", "throttled", "crash", "explore",
    "service",
)


@dataclass(frozen=True)
class RunSpec:
    """One validation run, described declaratively and picklably.

    A spec carries no live objects — only the workload id (a key into
    :data:`WORKLOADS`), its config dataclass, the architecture *name*,
    the testbed mode, seeds, and an ``extras`` dict of picklable inputs
    (a pre-built graph, the Table 2 memory node, the Figure 8 register).
    """

    workload: str
    config: Any
    arch_name: str
    mode: str = "native"
    seed: int = 0
    quartz: Optional[QuartzConfig] = None
    #: Seed of the calibration pass Conf_1 attaches (paper: one
    #: calibration per machine, shared by every run on it).
    calibration_seed: int = 0
    extras: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.workload not in WORKLOADS:
            raise ValidationError(f"unknown workload id: {self.workload!r}")
        if self.mode not in MODES:
            raise ValidationError(f"unknown run mode: {self.mode!r}")
        if self.mode in ("conf1", "crash", "service") and self.quartz is None:
            raise ValidationError(f"{self.mode} runs need a QuartzConfig")
        if self.mode == "crash" and "crash_plan" not in self.extras:
            raise ValidationError("crash runs need a CrashPlan in extras")
        if self.mode == "explore" and "explore_plan" not in self.extras:
            raise ValidationError("explore runs need an ExplorePlan in extras")


@dataclass
class RunResult:
    """The picklable outcome of one :class:`RunSpec`.

    Unlike :class:`~repro.validation.configs.RunOutcome` this drops the
    live machine (unpicklable) and adds the observability counters the
    runner aggregates.
    """

    index: int
    workload_result: Any
    elapsed_ns: float
    quartz_stats: Optional[QuartzStats] = None
    wall_s: float = 0.0
    events: int = 0
    calib_memory_hits: int = 0
    calib_disk_hits: int = 0
    calib_measurements: int = 0
    #: Fault injections that actually fired (kind -> count; empty when
    #: the run was clean).
    fault_injections: dict = field(default_factory=dict)
    #: Invariant-monitor counters (all zero when checking was off).
    invariant_epoch_checks: int = 0
    invariant_sim_checks: int = 0
    invariant_violations: int = 0
    max_epoch_length_ns: float = 0.0
    #: Crash-check report dict of a ``crash``-mode run (None otherwise).
    crash_report: Optional[dict] = None
    #: Explore report dict of an ``explore``-mode run (None otherwise).
    explore_report: Optional[dict] = None
    #: Service report dict of a ``service``-mode run (None otherwise).
    service_report: Optional[dict] = None


# ----------------------------------------------------------------------
# Execution
# ----------------------------------------------------------------------


def _execute(
    spec: RunSpec,
    index: int = 0,
    fault_plan: Optional[FaultPlan] = None,
    check_invariants: bool = False,
) -> RunOutcome:
    arch = arch_by_name(spec.arch_name)
    factory = WORKLOADS[spec.workload](spec.config, spec.extras)
    faults = {"fault_plan": fault_plan, "check_invariants": check_invariants}
    if spec.mode == "explore":
        return run_explore(
            arch,
            spec.workload,
            spec.config,
            spec.extras["explore_plan"],
            seed=spec.seed,
            shard=spec.extras.get("shard", 0),
            shards=spec.extras.get("shards", 1),
            mutant=spec.extras.get("mutant"),
            **faults,
        )
    if spec.mode == "crash":
        return run_crash(
            arch,
            spec.workload,
            spec.config,
            spec.quartz,
            spec.extras["crash_plan"],
            seed=spec.seed,
            calibration=calibrate_arch(arch, seed=spec.calibration_seed),
            shard=spec.extras.get("shard", 0),
            shards=spec.extras.get("shards", 1),
            mutant=spec.extras.get("mutant"),
            **faults,
        )
    if spec.mode == "conf1":
        calibration = calibrate_arch(arch, seed=spec.calibration_seed)
        sink = _trace_writer
        if sink is not None:
            sink.begin_run(
                index=index,
                workload=spec.workload,
                arch=spec.arch_name,
                mode=spec.mode,
                seed=spec.seed,
            )
        outcome = run_conf1(
            arch,
            factory,
            spec.quartz,
            seed=spec.seed,
            calibration=calibration,
            trace_sink=sink,
            **faults,
        )
        if sink is not None and outcome.quartz_stats is not None:
            sink.write_stats(outcome.quartz_stats)
        return outcome
    if spec.mode == "service":
        return run_service(
            arch,
            factory,
            spec.quartz,
            seed=spec.seed,
            calibration=calibrate_arch(arch, seed=spec.calibration_seed),
            **faults,
        )
    if spec.mode == "conf2":
        return run_conf2(arch, factory, seed=spec.seed, **faults)
    if spec.mode == "native":
        return run_native(arch, factory, seed=spec.seed, **faults)
    if spec.mode == "chase":
        return run_chase(
            arch,
            factory,
            seed=spec.seed,
            mem_node=spec.extras.get("mem_node", 0),
            **faults,
        )
    if spec.mode == "throttled":
        return run_throttled(
            arch,
            factory,
            seed=spec.seed,
            register=spec.extras.get("register", 0),
            **faults,
        )
    raise ValidationError(f"unknown run mode: {spec.mode!r}")


def _run_one(payload: tuple) -> RunResult:
    """Worker entry point: execute one spec, package a picklable result.

    The payload is ``(index, spec)`` or ``(index, spec, fault_context)``
    with ``fault_context = (FaultPlan | None, check_invariants)`` — the
    explicit third element is how the active fault context crosses into
    pool workers under both fork and spawn start methods.
    """
    index, spec = payload[0], payload[1]
    fault_plan, check_invariants = (
        payload[2] if len(payload) > 2 else (None, False)
    )
    mem0, disk0, meas0, _ = cache_counters.snapshot()
    started = time.perf_counter()
    outcome = _execute(
        spec, index, fault_plan=fault_plan, check_invariants=check_invariants
    )
    wall = time.perf_counter() - started
    mem1, disk1, meas1, _ = cache_counters.snapshot()
    events = (
        outcome.machine.sim.events_dispatched if outcome.machine is not None else 0
    )
    invariants = outcome.invariant_report or {}
    return RunResult(
        index=index,
        workload_result=outcome.workload_result,
        elapsed_ns=outcome.elapsed_ns,
        quartz_stats=outcome.quartz_stats,
        wall_s=wall,
        events=events,
        calib_memory_hits=mem1 - mem0,
        calib_disk_hits=disk1 - disk0,
        calib_measurements=meas1 - meas0,
        fault_injections=dict(
            (outcome.fault_report or {}).get("injections", {})
        ),
        invariant_epoch_checks=invariants.get("epoch_checks", 0),
        invariant_sim_checks=invariants.get("sim_checks", 0),
        invariant_violations=invariants.get("violations", 0),
        max_epoch_length_ns=invariants.get("max_epoch_length_ns", 0.0),
        crash_report=outcome.crash_report,
        explore_report=outcome.explore_report,
        service_report=outcome.service_report,
    )


def resolve_jobs(jobs: Optional[int] = None) -> int:
    """Normalise a job count: explicit > ``QUARTZ_REPRO_JOBS`` > 1.

    Library calls default to in-process execution; the CLI resolves its
    own default (``os.cpu_count()``) before calling a driver.
    """
    if jobs is None:
        env = os.environ.get("QUARTZ_REPRO_JOBS", "").strip()
        jobs = int(env) if env else 1
    return max(1, int(jobs))


def default_cli_jobs() -> int:
    """The CLI default: the environment override, else every core."""
    env = os.environ.get("QUARTZ_REPRO_JOBS", "").strip()
    if env:
        return max(1, int(env))
    return max(1, os.cpu_count() or 1)


def _prewarm_calibrations(specs: Sequence[RunSpec]) -> int:
    """Calibrate every testbed a grid needs, once, in the parent.

    Fork-started workers inherit the in-memory cache; spawn-started ones
    read the disk cache.  Either way no worker re-measures.  Deduping is
    by *calibration fingerprint* — ``(arch_fingerprint, seed)`` — so a
    thousand-spec grid whose specs alias the same physical testbed under
    different names still warms it exactly once.  Returns the number of
    unique calibrations warmed.
    """
    fingerprints: dict[str, str] = {}
    needed: dict[tuple[str, int], tuple[str, int]] = {}
    for spec in specs:
        if spec.mode not in ("conf1", "crash", "service"):
            continue
        fingerprint = fingerprints.get(spec.arch_name)
        if fingerprint is None:
            fingerprint = arch_fingerprint(arch_by_name(spec.arch_name))
            fingerprints[spec.arch_name] = fingerprint
        needed.setdefault(
            (fingerprint, spec.calibration_seed),
            (spec.arch_name, spec.calibration_seed),
        )
    for key in sorted(needed):
        arch_name, calibration_seed = needed[key]
        calibrate_arch(arch_by_name(arch_name), seed=calibration_seed)
    return len(needed)


def _completed_results(futures: Sequence) -> list[RunResult]:
    """Harvest every future that finished cleanly (post-interrupt)."""
    results = []
    for future in futures:
        if future.done() and not future.cancelled():
            try:
                if future.exception() is None:
                    results.append(future.result())
            except Exception:  # racing cancellation; nothing to keep
                pass
    return results


def _run_parallel(
    payloads: list[tuple[int, RunSpec]], jobs: int
) -> Optional[list[RunResult]]:
    """Fan out over a process pool; ``None`` means "pool unavailable".

    Each payload is submitted as its own future (work-queue scheduling:
    an idle worker always pulls the next pending spec, so one straggler
    never idles a chunk's worth of workers).  A ``KeyboardInterrupt`` or
    a pool breaking *mid-sweep* cancels every pending future and raises
    :class:`~repro.errors.RunInterrupted` carrying the results that did
    finish — the caller records partial stats instead of losing them.
    """
    try:
        pool = ProcessPoolExecutor(max_workers=min(jobs, len(payloads)))
    except (NotImplementedError, OSError, PermissionError) as error:
        print(
            f"note: process pool unavailable ({error!r}); "
            "running in-process",
            file=sys.stderr,
        )
        return None
    futures: list = []
    try:
        futures = [pool.submit(_run_one, payload) for payload in payloads]
        results = []
        for future in as_completed(futures):
            results.append(future.result())
    except (KeyboardInterrupt, BrokenProcessPool) as error:
        for future in futures:
            future.cancel()
        pool.shutdown(wait=False, cancel_futures=True)
        completed = _completed_results(futures)
        interrupt = RunInterrupted(
            f"run grid interrupted ({type(error).__name__}) after "
            f"{len(completed)} of {len(payloads)} run(s)",
            completed=len(completed),
            total=len(payloads),
        )
        interrupt.results = completed
        raise interrupt from error
    except pickle.PicklingError as error:
        pool.shutdown(wait=True, cancel_futures=True)
        print(
            f"note: process pool unavailable ({error!r}); "
            "running in-process",
            file=sys.stderr,
        )
        return None
    else:
        pool.shutdown()
        return results


# ----------------------------------------------------------------------
# Streaming epoch traces (CLI --trace-out)
# ----------------------------------------------------------------------

_trace_writer = None  # Optional[JsonlTraceWriter]


def set_trace_out(path: Optional[str]):
    """Open (or, with ``None``, close) the streaming epoch-trace sink.

    While a sink is active every Conf_1 run the runner executes streams
    its epoch closes and final emulator statistics to the JSONL file
    (see :mod:`repro.quartz.trace`), and :func:`run_specs` pins itself
    to in-process execution so the stream stays ordered and race-free.
    Returns the live writer (``None`` when closing).
    """
    global _trace_writer
    close_trace_out()
    if path is not None:
        # Local import: repro.quartz.trace imports validation.metrics.
        from repro.quartz.trace import JsonlTraceWriter

        _trace_writer = JsonlTraceWriter(path)
    return _trace_writer


def close_trace_out() -> Optional[tuple[str, int, int]]:
    """Close the active trace sink; returns (path, runs, records)."""
    global _trace_writer
    writer, _trace_writer = _trace_writer, None
    if writer is None:
        return None
    writer.close()
    return (str(writer.path), writer.runs_written, writer.records_written)


# ----------------------------------------------------------------------
# Observability
# ----------------------------------------------------------------------


@dataclass
class RunnerStats:
    """Aggregate observability over one driver invocation."""

    runs: int = 0
    jobs: int = 1
    wall_s: float = 0.0
    run_wall_s: float = 0.0
    events: int = 0
    sim_ns: float = 0.0
    calib_memory_hits: int = 0
    calib_disk_hits: int = 0
    calib_measurements: int = 0
    #: How the accumulation window ended: ``"completed"`` normally,
    #: ``"interrupted"`` when a grid/sweep was cut short (Ctrl-C, broken
    #: pool, deterministic crash point) with only partial results.
    stop_reason: str = "completed"
    #: Per-run wall times (seconds), one entry per executed run — the
    #: raw series behind the p50/p99 tail summary.
    run_wall_times: list = field(default_factory=list)
    #: Sweep-orchestration counters (zero outside ``run_sweep``): the
    #: work queue's high-water mark of submitted-but-unfinished specs,
    #: specs satisfied from a checkpoint journal without re-execution,
    #: and the streaming merge's peak count of buffered result rows.
    queue_depth: int = 0
    specs_skipped: int = 0
    stream_merge_peak_rows: int = 0
    #: Provenance of the grid (deterministic for any job count): which
    #: testbeds, workloads, modes, and seeds the runs covered.  These
    #: feed the exported :class:`~repro.validation.export.RunManifest`.
    arch_names: set = field(default_factory=set)
    workloads: set = field(default_factory=set)
    modes: set = field(default_factory=set)
    seeds: set = field(default_factory=set)
    calibration_seeds: set = field(default_factory=set)
    #: Aggregated fault injections (kind -> count) across all runs.
    fault_injections: dict = field(default_factory=dict)
    invariant_epoch_checks: int = 0
    invariant_sim_checks: int = 0
    invariant_violations: int = 0
    max_epoch_length_ns: float = 0.0
    #: Crash-checker aggregates (``crash``-mode runs only).  Points are
    #: summed over runs: every shard of a sharded run enumerates the full
    #: point sequence, so this counts enumeration work, not unique points.
    crash_points: int = 0
    crash_images_checked: int = 0
    crash_violations: int = 0
    #: Explorer aggregates (``explore``-mode runs only): schedules whose
    #: full behaviour was oracle-checked, controlled executions spent
    #: getting there, branches pruned as redundant, crash images checked
    #: across the whole cross product, and distinct violations found.
    explore_schedules: int = 0
    explore_executions: int = 0
    explore_pruned: int = 0
    explore_images_checked: int = 0
    explore_violations: int = 0
    #: KV-service aggregates (``service``-mode runs only): runs, total
    #: operations, the worst p99 seen, and per-tenant rollups
    #: (tenant -> {runs, ops, p99_ns_max, throughput_ops_s_sum}).
    service_runs: int = 0
    service_ops: int = 0
    service_p99_ns_max: float = 0.0
    service_tenants: dict = field(default_factory=dict)

    @property
    def calib_hits(self) -> int:
        """Calibration requests served from either cache layer."""
        return self.calib_memory_hits + self.calib_disk_hits

    @property
    def faults_injected(self) -> int:
        """Total fault injections across every run and kind."""
        return sum(self.fault_injections.values())

    @property
    def events_per_sec(self) -> Optional[float]:
        """Kernel dispatch throughput over summed per-run wall time."""
        if self.run_wall_s <= 0.0:
            return None
        return self.events / self.run_wall_s

    def wall_percentile(self, fraction: float) -> Optional[float]:
        """Nearest-rank percentile of the per-run wall times (seconds)."""
        return percentile(self.run_wall_times, fraction)

    @property
    def wall_p50_s(self) -> Optional[float]:
        """Median per-run wall time (tail visibility for uneven grids)."""
        return self.wall_percentile(0.50)

    @property
    def wall_p99_s(self) -> Optional[float]:
        """99th-percentile per-run wall time."""
        return self.wall_percentile(0.99)

    def summary(self) -> str:
        """The CLI summary line."""
        rate = self.events_per_sec
        rate_text = f" ({rate:,.0f} ev/s)" if rate is not None else ""
        line = (
            f"runner: {self.runs} runs on {self.jobs} job(s), "
            f"{self.events:,} events{rate_text}, "
            f"{self.run_wall_s:.1f}s total run time in {self.wall_s:.1f}s wall; "
            f"calibration cache: {self.calib_hits} hits "
            f"({self.calib_memory_hits} memory / {self.calib_disk_hits} disk), "
            f"{self.calib_measurements} measurements"
        )
        p50, p99 = self.wall_p50_s, self.wall_p99_s
        if p50 is not None and p99 is not None:
            line += f"; per-run wall p50/p99: {p50 * 1e3:.1f}/{p99 * 1e3:.1f}ms"
        if self.queue_depth or self.specs_skipped:
            line += (
                f"; sweep: queue depth {self.queue_depth}, "
                f"{self.specs_skipped} spec(s) skipped via checkpoint, "
                f"peak {self.stream_merge_peak_rows} buffered row(s)"
            )
        if self.stop_reason != "completed":
            line += f"; stopped: {self.stop_reason}"
        if self.fault_injections:
            line += f"; faults: {self.faults_injected} injection(s)"
        if self.invariant_epoch_checks or self.invariant_sim_checks:
            line += (
                f"; invariants: {self.invariant_epoch_checks} epoch + "
                f"{self.invariant_sim_checks} sim checks, "
                f"{self.invariant_violations} violation(s)"
            )
        if self.crash_images_checked:
            line += (
                f"; crash: {self.crash_images_checked} image(s) checked, "
                f"{self.crash_violations} violation(s)"
            )
        if self.explore_schedules:
            line += (
                f"; explore: {self.explore_schedules} schedule(s) "
                f"({self.explore_pruned} pruned), "
                f"{self.explore_images_checked} image(s) checked, "
                f"{self.explore_violations} violation(s)"
            )
        if self.service_runs:
            line += (
                f"; service: {self.service_ops:,} op(s) over "
                f"{len(self.service_tenants)} tenant(s), "
                f"worst p99 {self.service_p99_ns_max / 1e3:.1f}us"
            )
        return line

    def telemetry(self) -> dict:
        """The volatile counters as a JSON-safe dict.

        This is the export document's ``telemetry`` section: wall times,
        job counts, and cache hit/miss counters legitimately vary
        between invocations (and between ``--jobs`` values), so they
        live outside the canonical, digest-covered portion.
        """
        payload: dict = {
            "runs": self.runs,
            "jobs": self.jobs,
            "wall_s": self.wall_s,
            "run_wall_s": self.run_wall_s,
            "wall_p50_s": self.wall_p50_s,
            "wall_p99_s": self.wall_p99_s,
            "events": self.events,
            "events_per_sec": self.events_per_sec,
            "sim_ns": self.sim_ns,
            "stop_reason": self.stop_reason,
            "calibration_cache": {
                "memory_hits": self.calib_memory_hits,
                "disk_hits": self.calib_disk_hits,
                "measurements": self.calib_measurements,
            },
        }
        if self.queue_depth or self.specs_skipped:
            payload["sweep"] = {
                "queue_depth": self.queue_depth,
                "specs_skipped": self.specs_skipped,
                "stream_merge_peak_rows": self.stream_merge_peak_rows,
            }
        if self.fault_injections:
            payload["faults"] = {
                "injections": dict(sorted(self.fault_injections.items())),
                "total": self.faults_injected,
            }
        if self.invariant_epoch_checks or self.invariant_sim_checks:
            payload["invariants"] = {
                "epoch_checks": self.invariant_epoch_checks,
                "sim_checks": self.invariant_sim_checks,
                "violations": self.invariant_violations,
                "max_epoch_length_ns": self.max_epoch_length_ns,
            }
        if self.crash_images_checked:
            payload["crash"] = {
                "points": self.crash_points,
                "images_checked": self.crash_images_checked,
                "violations": self.crash_violations,
            }
        if self.explore_schedules:
            payload["explore"] = {
                "schedules": self.explore_schedules,
                "executions": self.explore_executions,
                "pruned": self.explore_pruned,
                "images_checked": self.explore_images_checked,
                "violations": self.explore_violations,
            }
        if self.service_runs:
            payload["service"] = {
                "runs": self.service_runs,
                "ops": self.service_ops,
                "p99_ns_max": self.service_p99_ns_max,
                "tenants": {
                    tenant: dict(rollup)
                    for tenant, rollup in sorted(self.service_tenants.items())
                },
            }
        return payload


_run_stats: Optional[RunnerStats] = None


def reset_run_stats() -> None:
    """Start a fresh accumulation window (CLI calls this per experiment)."""
    global _run_stats
    _run_stats = None


def consume_run_stats() -> Optional[RunnerStats]:
    """Return and clear the stats accumulated since the last reset."""
    global _run_stats
    stats, _run_stats = _run_stats, None
    return stats


def _ensure_stats(jobs: int) -> RunnerStats:
    """The live accumulation window, created on first use.

    Shared by :func:`run_specs` and the sweep engine
    (:mod:`repro.validation.sweep`), which accumulates result-by-result
    while streaming instead of holding a result list.
    """
    global _run_stats
    if _run_stats is None:
        _run_stats = RunnerStats(jobs=jobs)
    _run_stats.jobs = max(_run_stats.jobs, jobs)
    return _run_stats


def _record_spec(stats: RunnerStats, spec: RunSpec) -> None:
    """Fold one spec's provenance into the manifest-feeding sets."""
    stats.arch_names.add(spec.arch_name)
    stats.workloads.add(spec.workload)
    stats.modes.add(spec.mode)
    stats.seeds.add(spec.seed)
    if spec.mode in ("conf1", "service"):
        stats.calibration_seeds.add(spec.calibration_seed)


def _record_result(stats: RunnerStats, result: RunResult) -> None:
    """Fold one executed run's counters into the window."""
    stats.runs += 1
    stats.run_wall_s += result.wall_s
    stats.run_wall_times.append(result.wall_s)
    stats.events += result.events
    stats.sim_ns += result.elapsed_ns
    stats.calib_memory_hits += result.calib_memory_hits
    stats.calib_disk_hits += result.calib_disk_hits
    stats.calib_measurements += result.calib_measurements
    for kind, count in result.fault_injections.items():
        stats.fault_injections[kind] = (
            stats.fault_injections.get(kind, 0) + count
        )
    stats.invariant_epoch_checks += result.invariant_epoch_checks
    stats.invariant_sim_checks += result.invariant_sim_checks
    stats.invariant_violations += result.invariant_violations
    stats.max_epoch_length_ns = max(
        stats.max_epoch_length_ns, result.max_epoch_length_ns
    )
    if result.crash_report is not None:
        stats.crash_points += result.crash_report.get("points", 0)
        stats.crash_images_checked += result.crash_report.get("checked", 0)
        stats.crash_violations += result.crash_report.get(
            "violation_total", 0
        )
    if result.service_report is not None:
        stats.service_runs += 1
        overall = result.service_report.get("overall", {})
        stats.service_ops += overall.get("ops", 0)
        for tenant, report in result.service_report.get("tenants", {}).items():
            p99 = report.get("p99_ns") or 0.0
            stats.service_p99_ns_max = max(stats.service_p99_ns_max, p99)
            rollup = stats.service_tenants.setdefault(
                tenant,
                {"runs": 0, "ops": 0, "p99_ns_max": 0.0,
                 "throughput_ops_s_sum": 0.0},
            )
            rollup["runs"] += 1
            rollup["ops"] += report.get("ops", 0)
            rollup["p99_ns_max"] = max(rollup["p99_ns_max"], p99)
            rollup["throughput_ops_s_sum"] += report.get(
                "throughput_ops_s", 0.0
            )
    if result.explore_report is not None:
        stats.explore_schedules += result.explore_report.get("schedules", 0)
        stats.explore_executions += result.explore_report.get("executions", 0)
        stats.explore_pruned += result.explore_report.get("pruned", 0)
        stats.explore_images_checked += result.explore_report.get(
            "images_checked", 0
        )
        stats.explore_violations += result.explore_report.get(
            "violation_total", 0
        )


def _record_stats(
    specs: Sequence[RunSpec],
    results: Sequence[RunResult],
    jobs: int,
    wall_s: float,
    stop_reason: str = "completed",
) -> None:
    stats = _ensure_stats(jobs)
    stats.wall_s += wall_s
    if stop_reason != "completed":
        stats.stop_reason = stop_reason
    for spec in specs:
        _record_spec(stats, spec)
    for result in results:
        _record_result(stats, result)


# ----------------------------------------------------------------------
# The entry point
# ----------------------------------------------------------------------


def run_specs(
    specs: Sequence[RunSpec], jobs: Optional[int] = None
) -> list[RunResult]:
    """Execute a grid of specs; results come back in submitted order.

    Every run builds its own simulator from its own seed, so execution
    order and placement cannot change any result: the returned tables are
    byte-identical for any ``jobs`` value.
    """
    jobs = resolve_jobs(jobs)
    if _trace_writer is not None:
        # Streaming a trace: stay in-process so the JSONL stream is
        # ordered and single-writer (results are identical either way).
        jobs = 1
    context = get_active_faults()
    if context is not None and context.active:
        # The fault context rides in every payload so pool workers see it
        # regardless of start method; per-run seeding keeps any fan-out
        # byte-identical to the in-process order.
        fault_context = (context.plan, context.check_invariants)
        payloads: list[tuple] = [
            (index, spec, fault_context) for index, spec in enumerate(specs)
        ]
    else:
        payloads = list(enumerate(specs))
    started = time.perf_counter()
    results: Optional[list[RunResult]] = None
    try:
        if jobs > 1 and len(payloads) > 1:
            _prewarm_calibrations(specs)
            results = _run_parallel(payloads, jobs)
        if results is None:
            jobs = 1
            results = []
            for payload in payloads:
                results.append(_run_one(payload))
    except RunInterrupted as interrupt:
        # Completed work is not lost: record the partial window (the CLI
        # prints its summary) before letting the interrupt propagate.
        partial = sorted(
            getattr(interrupt, "results", []), key=lambda r: r.index
        )
        _record_stats(
            specs, partial, jobs, time.perf_counter() - started,
            stop_reason="interrupted",
        )
        raise
    except KeyboardInterrupt as error:
        # Ctrl-C during the in-process loop: everything before the
        # current payload finished cleanly.
        _record_stats(
            specs, results or [], jobs, time.perf_counter() - started,
            stop_reason="interrupted",
        )
        interrupt = RunInterrupted(
            f"run grid interrupted (KeyboardInterrupt) after "
            f"{len(results or [])} of {len(payloads)} run(s)",
            completed=len(results or []),
            total=len(payloads),
        )
        interrupt.results = list(results or [])
        raise interrupt from error
    results.sort(key=lambda result: result.index)
    _record_stats(specs, results, jobs, time.perf_counter() - started)
    return results
