"""Error metrics and trial statistics for validation experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ValidationError


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / reference (the paper's emulation error)."""
    if reference == 0:
        raise ValidationError("reference value is zero")
    return abs(measured - reference) / abs(reference)


@dataclass(frozen=True)
class TrialStats:
    """Summary of repeated trials of one measurement."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def spread(self) -> float:
        """Max minus min (the paper's error bars in Figure 12)."""
        return self.maximum - self.minimum


def summarize(values: list[float]) -> TrialStats:
    """Mean/std/min/max over trial values.

    ``std`` is the *sample* standard deviation (Bessel's ``n - 1``
    correction) — the right estimator for the paper's small repeated-trial
    error bars; a single trial has no spread estimate and reports 0.0.
    """
    if not values:
        raise ValidationError("no trial values to summarize")
    count = len(values)
    mean = sum(values) / count
    if count > 1:
        variance = sum((value - mean) ** 2 for value in values) / (count - 1)
        std = math.sqrt(variance)
    else:
        std = 0.0
    return TrialStats(
        count=count,
        mean=mean,
        std=std,
        minimum=min(values),
        maximum=max(values),
    )
