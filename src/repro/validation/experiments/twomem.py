"""Figure 14: MultiLat under the two-memory (DRAM + virtual NVM) mode.

Each run executes MultiLat under Quartz's virtual topology: the DRAM
array is malloc'd on the compute socket, the NVM array pmalloc'd on the
sibling socket, and Quartz splits the measured stalls via Eq. (4) to
slow only the NVM share.  Validation is against the Section 4.6 closed
form ``CT = Num_DRAM x DRAM_lat + Num_NVM x NVM_lat``; the paper reports
average errors below 1.2% across patterns, configurations, and target
latencies on Ivy Bridge and Haswell.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import HASWELL, IVY_BRIDGE, ArchSpec
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import EmulationMode, QuartzConfig
from repro.units import MILLISECOND
from repro.validation.metrics import summarize
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.multilat import MultiLatConfig

#: The paper's four recursive access patterns (DRAM run : NVM run).
PAPER_PATTERNS: dict[str, tuple[int, int]] = {
    "Pattern-1": (200_000, 100_000),
    "Pattern-2": (20_000, 10_000),
    "Pattern-3": (2_000, 1_000),
    "Pattern-4": (200, 100),
}

#: Scaled array-size configurations (paper: 10M:10M and 20M:10M elements).
SCALED_CONFIGURATIONS: dict[str, tuple[int, int]] = {
    "10M:10M": (100_000, 100_000),
    "20M:10M": (200_000, 100_000),
}


def run_figure14(
    archs: Sequence[ArchSpec] = (IVY_BRIDGE, HASWELL),
    target_latencies_ns: Sequence[float] = (200.0, 300.0, 400.0, 500.0, 600.0, 700.0),
    configurations: dict[str, tuple[int, int]] = SCALED_CONFIGURATIONS,
    patterns: dict[str, tuple[int, int]] = PAPER_PATTERNS,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 14(a)-(b): average MultiLat emulation error."""
    result = ExperimentResult(
        experiment_id="figure14",
        title="MultiLat error under DRAM+NVM emulation",
        columns=["processor", "target_ns", "avg_error_pct", "max_error_pct"],
    )
    specs, cells, skipped = [], [], []
    for arch in archs:
        calibration = calibrate_arch(arch)
        for target in target_latencies_ns:
            if target < calibration.dram_remote_ns:
                # Remote DRAM stands in for NVM; it cannot be sped up.
                # Record the hole explicitly: a silently missing row is
                # indistinguishable from a forgotten grid point.
                skipped.append((arch, target, calibration.dram_remote_ns))
                continue
            config = QuartzConfig(
                nvm_read_latency_ns=target,
                mode=EmulationMode.TWO_MEMORY,
                max_epoch_ns=1.0 * MILLISECOND,
            )
            cell_runs = 0
            for _config_name, (dram_n, nvm_n) in configurations.items():
                for _pattern_name, pattern in patterns.items():
                    workload = MultiLatConfig(
                        dram_elements=dram_n,
                        nvm_elements=nvm_n,
                        pattern=pattern,
                    )
                    specs.append(
                        RunSpec(
                            workload="multilat", config=workload,
                            arch_name=arch.name, mode="conf1", seed=600,
                            quartz=config,
                        )
                    )
                    cell_runs += 1
            cells.append((arch, target, calibration.dram_local_ns, cell_runs))
    results = iter(run_specs(specs, jobs=jobs))
    for arch, target, dram_local_ns, cell_runs in cells:
        errors = [
            next(results).workload_result.emulation_error(dram_local_ns, target)
            for _ in range(cell_runs)
        ]
        stats = summarize(errors)
        result.add_row(
            processor=arch.family,
            target_ns=target,
            avg_error_pct=100.0 * stats.mean,
            max_error_pct=100.0 * stats.maximum,
        )
    result.note(
        "error vs the closed form CT = N_DRAM*lat_DRAM + N_NVM*lat_NVM, "
        "averaged over 2 configurations x 4 access patterns; paper: <1.2%"
    )
    result.note(
        "scaled: element counts /100 vs the paper's 10M/20M (see "
        "EXPERIMENTS.md); pattern shapes preserved"
    )
    for arch, target, remote_ns in skipped:
        result.note(
            f"skipped cell: {arch.family} @ target {target:g} ns — below "
            f"the backing remote-DRAM latency {remote_ns:g} ns (DRAM can "
            "only be slowed down)"
        )
    return result
