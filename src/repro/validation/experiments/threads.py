"""Figure 13: Multi-Threaded benchmark accuracy vs. minimum epoch size.

For each thread count the benchmark runs once physically on remote DRAM
(Conf_2, the red "actual" line) and once per minimum-epoch setting under
Quartz emulating the remote latency on local DRAM (Conf_1).  The
min==max==10 ms line disables delay propagation at lock releases — the
paper's demonstration that naive per-thread injection mis-schedules
critical sections (error growing with thread count, up to ~34%), while
min-epochs <= 1 ms hold the error under ~3%.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import IVY_BRIDGE, SANDY_BRIDGE, ArchSpec
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import QuartzConfig
from repro.units import MILLISECOND, ns_to_ms
from repro.validation.metrics import relative_error
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.multithreaded import MultiThreadedConfig


def run_figure13(
    archs: Sequence[ArchSpec] = (SANDY_BRIDGE, IVY_BRIDGE),
    thread_counts: Sequence[int] = (2, 4, 8),
    min_epochs_ms: Sequence[float] = (0.01, 0.1, 1.0, 10.0),
    sections: int = 300,
    cs_iterations: int = 100,
    with_compute: bool = True,
    cs_only: bool = True,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 13(a)-(d): emulated vs. actual completion times."""
    result = ExperimentResult(
        experiment_id="figure13",
        title="Multi-Threaded benchmark: accuracy vs minimum epoch size",
        columns=[
            "processor", "case", "threads", "min_epoch_ms",
            "ct_emulated_ms", "ct_actual_ms", "error_pct",
        ],
    )
    cases = []
    if cs_only:
        cases.append(("cs only", 0))
    if with_compute:
        cases.append(("with compute", cs_iterations))
    specs = []
    for arch in archs:
        calibration = calibrate_arch(arch)
        for _case_name, out_iterations in cases:
            for threads in thread_counts:
                workload = MultiThreadedConfig(
                    threads=threads,
                    sections=sections,
                    cs_iterations=cs_iterations,
                    out_iterations=out_iterations,
                )
                specs.append(
                    RunSpec(
                        workload="multithreaded", config=workload,
                        arch_name=arch.name, mode="conf2", seed=500,
                    )
                )
                for min_epoch_ms in min_epochs_ms:
                    config = QuartzConfig(
                        nvm_read_latency_ns=calibration.dram_remote_ns,
                        min_epoch_ns=min_epoch_ms * MILLISECOND,
                        max_epoch_ns=10.0 * MILLISECOND,
                    )
                    specs.append(
                        RunSpec(
                            workload="multithreaded", config=workload,
                            arch_name=arch.name, mode="conf1", seed=500,
                            quartz=config,
                        )
                    )
    results = iter(run_specs(specs, jobs=jobs))
    for arch in archs:
        for case_name, _out_iterations in cases:
            for threads in thread_counts:
                actual_ns = next(results).workload_result.elapsed_ns
                for min_epoch_ms in min_epochs_ms:
                    emulated_ns = next(results).workload_result.elapsed_ns
                    result.add_row(
                        processor=arch.family,
                        case=case_name,
                        threads=threads,
                        min_epoch_ms=min_epoch_ms,
                        ct_emulated_ms=ns_to_ms(emulated_ns),
                        ct_actual_ms=ns_to_ms(actual_ns),
                        error_pct=100.0 * relative_error(emulated_ns, actual_ns),
                    )
    result.note(
        "min epoch == max epoch (10 ms) disables sync-triggered delay "
        "propagation; the paper sees up to 34% error there and <3% for "
        "min epochs <= 1 ms"
    )
    result.note(
        f"scaled: K={sections} critical sections (paper: 1M), "
        f"cs_dur={cs_iterations} chase iterations"
    )
    return result
