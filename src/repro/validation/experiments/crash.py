"""The crash-consistency checking experiment (``crash-check``).

Runs a recoverable workload (see :mod:`repro.pmem`) under Quartz with
the persistence domain and crash injector attached, once per mutant
mode: the unmutated protocol must recover cleanly from **every**
enumerated crash point, and each seeded bug (``missing-flush``,
``misordered-barrier``) must be caught at least once — the subsystem's
regression oracle, wired into CI.

Snapshot storage is sharded across ``shards`` runs and fanned out by the
parallel runner; every shard replays the identical simulation (the
injector perturbs no simulated state), so the merged table — and the
export digest — are byte-identical for any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ValidationError
from repro.hw.arch import IVY_BRIDGE, ArchSpec
from repro.pmem.crash import CrashPlan
from repro.quartz.config import QuartzConfig, WriteModel
from repro.units import MICROSECOND
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.graph500 import Graph500Config
from repro.workloads.kvstore import KvStoreConfig

#: Mutant axis of the experiment ("none" = the correct protocol).
MUTANT_AXIS = ("none", "missing-flush", "misordered-barrier")

#: The plan the CLI and CI use (also exported into the run manifest).
DEFAULT_CRASH_PLAN = CrashPlan(
    on_epoch_close=True,
    on_commit=True,
    random_interval_ns=150 * MICROSECOND,
    seed=7,
    max_points=256,
)


def default_pm_config(workload: str):
    """CI-sized config of one crash-checkable workload."""
    if workload == "kvstore":
        return KvStoreConfig(
            puts_per_thread=24,
            gets_per_thread=0,
            threads=2,
            batch_ops=4,
            seed=3,
        )
    if workload == "graph500":
        return Graph500Config(vertex_count=600, edges_per_vertex=4, seed=2)
    raise ValidationError(f"no crash-check config for workload {workload!r}")


def _merge_shards(reports: Sequence[dict]) -> dict:
    """Fold one mutant's shard reports into a single logical run.

    Every shard enumerates the full crash-point sequence and stores a
    disjoint slice of it, so points must agree exactly and the checked
    counts / violation records are a disjoint union.
    """
    points = {report["points"] for report in reports}
    if len(points) != 1:
        raise ValidationError(
            f"crash shards disagree on the point sequence: {sorted(points)} "
            "(determinism bug)"
        )
    violations = sorted(
        (record for report in reports for record in report["violations"]),
        key=lambda record: record["crash_index"],
    )
    return {
        "points": points.pop(),
        "checked": sum(report["checked"] for report in reports),
        "capped": any(report["capped"] for report in reports),
        "violation_total": sum(
            report["violation_total"] for report in reports
        ),
        "violations": violations,
        "invariants": reports[0]["invariants"],
    }


def run_crash_check(
    arch: ArchSpec = IVY_BRIDGE,
    workload: str = "kvstore",
    mutants: Sequence[str] = MUTANT_AXIS,
    shards: int = 4,
    seed: int = 411,
    crash_plan: Optional[CrashPlan] = None,
    config=None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Crash-point enumeration + recovery validation, per mutant mode."""
    plan = crash_plan or DEFAULT_CRASH_PLAN
    config = config if config is not None else default_pm_config(workload)
    quartz = QuartzConfig(
        nvm_read_latency_ns=400.0,
        nvm_write_latency_ns=500.0,
        write_model=WriteModel.PCOMMIT,
    )
    specs = []
    for mutant in mutants:
        for shard in range(shards):
            specs.append(
                RunSpec(
                    workload=workload,
                    config=config,
                    arch_name=arch.name,
                    mode="crash",
                    seed=seed,
                    quartz=quartz,
                    extras={
                        "crash_plan": plan,
                        "shard": shard,
                        "shards": shards,
                        "mutant": None if mutant == "none" else mutant,
                    },
                )
            )
    results = iter(run_specs(specs, jobs=jobs))

    result = ExperimentResult(
        experiment_id="crash-check",
        title="Crash-consistency checking: recovery from every crash point",
        columns=[
            "workload",
            "mutant",
            "crash_points",
            "images_checked",
            "violations",
            "first_violation",
            "expected",
            "ok",
        ],
    )
    for mutant in mutants:
        merged = _merge_shards(
            [next(results).crash_report for _ in range(shards)]
        )
        clean = mutant == "none"
        violations = merged["violation_total"]
        first = merged["violations"][0]["invariant"] if merged["violations"] else ""
        result.add_row(
            workload=workload,
            mutant=mutant,
            crash_points=merged["points"],
            images_checked=merged["checked"],
            violations=violations,
            first_violation=first,
            expected="0" if clean else ">=1",
            ok=(violations == 0) if clean else (violations >= 1),
        )
    result.note(
        f"invariants checked: {', '.join(merged['invariants'])}; "
        f"snapshot storage sharded {shards} way(s), every shard replays "
        "the identical simulation"
    )
    result.note(
        "oracle: the unmutated protocol must recover from every crash "
        "point; each seeded mutant must be caught at least once"
    )
    return result
