"""Microbenchmark experiments: Table 2, Figures 8, 11, 12, and the
max-epoch sweep of Section 4.4 footnote 4.

Every driver builds its (arch x parameter x trial) grid as declarative
:class:`~repro.validation.runner.RunSpec` units and hands it to
:func:`~repro.validation.runner.run_specs`, so ``jobs=N`` fans the grid
over worker processes with byte-identical tables.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import ALL_ARCHS, SANDY_BRIDGE, ArchSpec
from repro.hw.memory import THROTTLE_REGISTER_MAX
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import QuartzConfig
from repro.units import MILLISECOND
from repro.validation.metrics import relative_error, summarize
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.memlat import MemLatConfig
from repro.workloads.stream import StreamConfig


def run_table2(
    archs: Sequence[ArchSpec] = ALL_ARCHS,
    trials: int = 3,
    iterations: int = 40_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Table 2: measured local/remote DRAM latencies on each testbed."""
    result = ExperimentResult(
        experiment_id="table2",
        title="Measured Memory Access Latencies (ns)",
        columns=[
            "processor", "min_local", "avg_local", "max_local",
            "min_remote", "avg_remote", "max_remote",
        ],
    )
    specs = [
        RunSpec(
            workload="memlat",
            config=MemLatConfig(iterations=iterations),
            arch_name=arch.name,
            mode="chase",
            seed=100 + trial,
            extras={"mem_node": node},
        )
        for arch in archs
        for node in (0, 1)
        for trial in range(trials)
    ]
    results = iter(run_specs(specs, jobs=jobs))
    for arch in archs:
        latencies = {
            node: [
                next(results).workload_result.measured_latency_ns
                for _ in range(trials)
            ]
            for node in (0, 1)
        }
        local = summarize(latencies[0])
        remote = summarize(latencies[1])
        result.add_row(
            processor=arch.family,
            min_local=local.minimum, avg_local=local.mean, max_local=local.maximum,
            min_remote=remote.minimum, avg_remote=remote.mean,
            max_remote=remote.maximum,
        )
    result.note(f"{trials} trials of {iterations} chase iterations per cell")
    return result


def run_figure8(
    arch: ArchSpec = SANDY_BRIDGE,
    register_points: int = 13,
    stream_config: Optional[StreamConfig] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 8: STREAM copy bandwidth vs. thermal-control register."""
    # Single-threaded copy, as in the paper's Figure 8: the curve rises
    # linearly and plateaus at the application's attainable bandwidth
    # (~12 GB/s for a one-thread copy loop on these parts).
    stream_config = stream_config or StreamConfig(
        threads=1, compute_cycles_per_element=2.5
    )
    result = ExperimentResult(
        experiment_id="figure8",
        title=f"STREAM copy bandwidth vs throttle register ({arch.family})",
        columns=["register", "bandwidth_gbps"],
    )
    registers = [
        round(index * THROTTLE_REGISTER_MAX / (register_points - 1))
        for index in range(register_points)
    ]
    specs = [
        RunSpec(
            workload="stream",
            config=stream_config,
            arch_name=arch.name,
            mode="throttled",
            seed=7,
            extras={"register": register},
        )
        for register in registers
    ]
    for register, run in zip(registers, run_specs(specs, jobs=jobs)):
        result.add_row(
            register=register,
            bandwidth_gbps=run.workload_result.bandwidth_bytes_per_ns,
        )
    result.note(
        "bandwidth rises linearly in register space until the application's "
        "attainable maximum (the Figure 8 shape)"
    )
    return result


def run_figure11(
    archs: Sequence[ArchSpec] = ALL_ARCHS,
    chain_counts: Sequence[int] = (1, 2, 3, 4, 5, 8),
    iterations: int = 250_000,
    trials: int = 3,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 11: MemLat emulation error vs. memory-access parallelism.

    Conf_1 + Quartz emulating the *remote* latency, compared against the
    same benchmark physically on remote DRAM (Conf_2).
    """
    result = ExperimentResult(
        experiment_id="figure11",
        title="MemLat emulation error vs concurrent pointer chains",
        columns=["processor", "chains", "error_pct"],
    )
    specs = []
    for arch in archs:
        calibration = calibrate_arch(arch)
        # 1 ms epochs (footnote 4: as accurate as 10 ms) keep the
        # scaled-down runs many epochs long.
        config = QuartzConfig(
            nvm_read_latency_ns=calibration.dram_remote_ns,
            max_epoch_ns=1.0 * MILLISECOND,
        )
        for chains in chain_counts:
            for trial in range(trials):
                memlat = MemLatConfig(iterations=iterations, chains=chains)
                specs.append(
                    RunSpec(
                        workload="memlat", config=memlat, arch_name=arch.name,
                        mode="conf1", seed=200 + trial, quartz=config,
                    )
                )
                specs.append(
                    RunSpec(
                        workload="memlat", config=memlat, arch_name=arch.name,
                        mode="conf2", seed=200 + trial,
                    )
                )
    results = iter(run_specs(specs, jobs=jobs))
    for arch in archs:
        for chains in chain_counts:
            errors = []
            for _ in range(trials):
                emulated = next(results)
                physical = next(results)
                errors.append(
                    relative_error(
                        emulated.workload_result.elapsed_ns,
                        physical.workload_result.elapsed_ns,
                    )
                )
            result.add_row(
                processor=arch.family,
                chains=chains,
                error_pct=100.0 * summarize(errors).mean,
            )
    result.note("paper reports 0.2%-4% across all chain counts and testbeds")
    return result


def run_figure12(
    archs: Sequence[ArchSpec] = ALL_ARCHS,
    target_latencies_ns: Sequence[float] = (200.0, 400.0, 600.0, 800.0, 1000.0),
    iterations: int = 250_000,
    trials: int = 5,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 12: MemLat-measured latency vs. emulation target."""
    result = ExperimentResult(
        experiment_id="figure12",
        title="MemLat-reported latency under Quartz vs emulation target",
        columns=[
            "processor", "target_ns", "measured_ns",
            "spread_ns", "error_pct",
        ],
    )
    specs = [
        RunSpec(
            workload="memlat",
            config=MemLatConfig(iterations=iterations),
            arch_name=arch.name,
            mode="conf1",
            seed=300 + trial,
            quartz=QuartzConfig(
                nvm_read_latency_ns=target, max_epoch_ns=1.0 * MILLISECOND
            ),
        )
        for arch in archs
        for target in target_latencies_ns
        for trial in range(trials)
    ]
    results = iter(run_specs(specs, jobs=jobs))
    for arch in archs:
        for target in target_latencies_ns:
            measured = [
                next(results).workload_result.measured_latency_ns
                for _ in range(trials)
            ]
            stats = summarize(measured)
            result.add_row(
                processor=arch.family,
                target_ns=target,
                measured_ns=stats.mean,
                spread_ns=stats.spread,
                error_pct=100.0 * relative_error(stats.mean, target),
            )
    result.note(
        "paper error bands: <9% Sandy Bridge, <2% Ivy Bridge, <6% Haswell"
    )
    return result


def run_epoch_size_study(
    arch: ArchSpec = SANDY_BRIDGE,
    max_epochs_ms: Sequence[float] = (1.0, 10.0, 100.0),
    target_ns: float = 600.0,
    iterations: int = 600_000,
    trials: int = 3,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Section 4.4 footnote 4: accuracy vs. maximum epoch size.

    1 ms and 10 ms epochs hold accuracy; 100 ms degrades it (a large
    unclosed tail of the run is never injected).
    """
    result = ExperimentResult(
        experiment_id="epoch-size-study",
        title="MemLat emulation error vs maximum epoch size",
        columns=["max_epoch_ms", "measured_ns", "error_pct"],
    )
    specs = [
        RunSpec(
            workload="memlat",
            config=MemLatConfig(iterations=iterations),
            arch_name=arch.name,
            mode="conf1",
            seed=400 + trial,
            quartz=QuartzConfig(
                nvm_read_latency_ns=target_ns,
                max_epoch_ns=max_epoch_ms * MILLISECOND,
                min_epoch_ns=min(0.1 * MILLISECOND, max_epoch_ms * MILLISECOND),
            ),
        )
        for max_epoch_ms in max_epochs_ms
        for trial in range(trials)
    ]
    results = iter(run_specs(specs, jobs=jobs))
    for max_epoch_ms in max_epochs_ms:
        measured = [
            next(results).workload_result.measured_latency_ns
            for _ in range(trials)
        ]
        mean = summarize(measured).mean
        result.add_row(
            max_epoch_ms=max_epoch_ms,
            measured_ns=mean,
            error_pct=100.0 * relative_error(mean, target_ns),
        )
    result.note("paper: 1 ms and 10 ms accurate, 100 ms degrades accuracy")
    return result
