"""N-tier hybrid-memory experiments: the tier sweep and policy study.

Two drivers exercising the multi-tier generalization of the two-memory
mode (see :mod:`repro.quartz.tiers`):

* ``tier-sweep`` — the Figure 14 methodology lifted to N tiers: tiered
  MultiLat with one array pinned per emulated tier (static placement
  order), validated against the closed form
  ``CT = N_DRAM*lat_DRAM + sum_i N_i*lat_i`` where each tier charges
  its *own* read latency.  Tiers carry independent read/write targets,
  so the sweep also shows the read path is priced off the read latency
  alone (the workload is a pointer chase — all loads).
* ``migration-policy`` — the same tiered workload under each placement
  policy (static, round-robin, hot-promote), comparing completion time
  and reporting placements/migrations from the directory.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import IVY_BRIDGE, ArchSpec
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import EmulationMode, QuartzConfig
from repro.quartz.tiers import MemoryTier
from repro.units import MILLISECOND
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.multilat import MultiLatConfig

#: Default 3-tier ladder (beyond DRAM): e.g. battery-backed DRAM,
#: fast NVM, slow NVM — each with asymmetric read/write latencies.
DEFAULT_TIER_SETS: dict[str, tuple[tuple[float, float], ...]] = {
    "3-tier": ((250.0, 350.0), (400.0, 600.0), (700.0, 1100.0)),
    "4-tier": ((200.0, 250.0), (300.0, 450.0), (500.0, 800.0), (900.0, 1500.0)),
}


def _build_tiers(
    read_write_ns: Sequence[tuple[float, float]], dram_local_ns: float
) -> tuple[MemoryTier, ...]:
    """Tier list for one ladder: DRAM (tier 0) + one tier per pair."""
    tiers = [MemoryTier("dram", dram_local_ns, dram_local_ns)]
    for index, (read_ns, write_ns) in enumerate(read_write_ns):
        tiers.append(MemoryTier(f"tier{index + 1}", read_ns, write_ns))
    return tuple(tiers)


def run_tier_sweep(
    archs: Sequence[ArchSpec] = (IVY_BRIDGE,),
    tier_sets: Optional[dict[str, tuple[tuple[float, float], ...]]] = None,
    elements_per_tier: int = 30_000,
    dram_elements: int = 30_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Tiered MultiLat vs. the N-tier closed form, per ladder."""
    tier_sets = tier_sets if tier_sets is not None else DEFAULT_TIER_SETS
    result = ExperimentResult(
        experiment_id="tier-sweep",
        title="Tiered MultiLat error under N-tier emulation",
        columns=[
            "processor", "tier_set", "tiers", "read_targets_ns",
            "write_targets_ns", "error_pct",
        ],
    )
    specs, cells = [], []
    for arch in archs:
        calibration = calibrate_arch(arch)
        for set_name, read_write_ns in sorted(tier_sets.items()):
            tiers = _build_tiers(read_write_ns, calibration.dram_local_ns)
            tier_count = len(read_write_ns)
            config = QuartzConfig(
                mode=EmulationMode.MULTI_TIER,
                tiers=tiers,
                placement_policy="static",
                placement_order=tuple(range(1, tier_count + 1)),
                max_epoch_ns=1.0 * MILLISECOND,
            )
            workload = MultiLatConfig(
                dram_elements=dram_elements,
                tier_elements=(elements_per_tier,) * tier_count,
            )
            specs.append(
                RunSpec(
                    workload="multilat", config=workload,
                    arch_name=arch.name, mode="conf1", seed=700,
                    quartz=config,
                )
            )
            cells.append((arch, set_name, tiers, calibration.dram_local_ns))
    results = iter(run_specs(specs, jobs=jobs))
    for arch, set_name, tiers, dram_local_ns in cells:
        run = next(results)
        read_targets = tuple(tier.read_latency_ns for tier in tiers[1:])
        write_targets = tuple(tier.write_latency_ns for tier in tiers[1:])
        error = run.workload_result.tiered_emulation_error(
            dram_local_ns, read_targets
        )
        result.add_row(
            processor=arch.family,
            tier_set=set_name,
            tiers=len(tiers),
            read_targets_ns="/".join(f"{ns:g}" for ns in read_targets),
            write_targets_ns="/".join(f"{ns:g}" for ns in write_targets),
            error_pct=100.0 * error,
        )
    result.note(
        "error vs the N-tier closed form CT = N_DRAM*lat_DRAM + "
        "sum_i N_i*read_lat_i; one array pinned per tier via static "
        "placement order"
    )
    result.note(
        "tiers carry independent read/write targets; the pointer chase "
        "is all loads, so the read latency alone prices each tier"
    )
    return result


def run_migration_policy(
    archs: Sequence[ArchSpec] = (IVY_BRIDGE,),
    read_write_ns: tuple[tuple[float, float], ...] = DEFAULT_TIER_SETS["3-tier"],
    elements_per_tier: int = 30_000,
    promote_threshold_accesses: int = 10_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Placement-policy comparison on the same tiered workload."""
    result = ExperimentResult(
        experiment_id="migration-policy",
        title="Placement policies on an N-tier machine",
        columns=[
            "processor", "policy", "completion_ms", "placements",
            "migrations", "migrated_mib",
        ],
    )
    policies: tuple[tuple[str, dict], ...] = (
        ("static", {}),
        ("round-robin", {}),
        (
            "hot-promote",
            {"promote_threshold_accesses": promote_threshold_accesses},
        ),
    )
    specs, cells = [], []
    for arch in archs:
        calibration = calibrate_arch(arch)
        tiers = _build_tiers(read_write_ns, calibration.dram_local_ns)
        tier_count = len(read_write_ns)
        workload = MultiLatConfig(
            dram_elements=elements_per_tier,
            tier_elements=(elements_per_tier,) * tier_count,
        )
        for policy_name, policy_kwargs in policies:
            config = QuartzConfig(
                mode=EmulationMode.MULTI_TIER,
                tiers=tiers,
                placement_policy=policy_name,
                max_epoch_ns=1.0 * MILLISECOND,
                **policy_kwargs,
            )
            specs.append(
                RunSpec(
                    workload="multilat", config=workload,
                    arch_name=arch.name, mode="conf1", seed=701,
                    quartz=config,
                )
            )
            cells.append((arch, policy_name))
    results = iter(run_specs(specs, jobs=jobs))
    for arch, policy_name in cells:
        run = next(results)
        report = (run.quartz_stats.tier_report if run.quartz_stats else None) or {
            "placements": {}, "migrations": 0, "migrated_bytes": 0,
        }
        placements = ",".join(
            f"{tier}:{count}"
            for tier, count in sorted(report["placements"].items())
        )
        result.add_row(
            processor=arch.family,
            policy=policy_name,
            completion_ms=run.workload_result.elapsed_ns / 1e6,
            placements=placements or "-",
            migrations=report["migrations"],
            migrated_mib=report["migrated_bytes"] / (1024 * 1024),
        )
    result.note(
        "same tiered MultiLat under each placement policy; migrations "
        "are instant directory remaps (a page move as the analytic "
        "model sees it)"
    )
    return result
