"""Extension experiments beyond the paper's evaluation (Section 7 agenda).

* ``run_parallel_pagerank`` — barrier-synchronised (OpenMP-style) PageRank
  under emulation: validation error and parallel speedup per thread count.
* ``run_asymmetric_bandwidth`` — separate read/write NVM bandwidth targets
  on hypothetical silicon with the footnote-2 registers wired up.
* ``run_loaded_latency_study`` — emulation accuracy when the machine's
  memory latency rises under load (the Section 6 open question).
* ``run_technology_comparison`` — the KV store across NVM technology
  presets (PCM, STT-MRAM, memristor).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import IVY_BRIDGE, ArchSpec
from repro.hw.machine import Machine
from repro.ops import JoinThread, MemBatch, PatternKind, SpawnThread
from repro.os.system import SimOS
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import QuartzConfig
from repro.quartz.emulator import Quartz
from repro.quartz.presets import ALL_TECHNOLOGIES, NvmTechnology
from repro.sim import Simulator
from repro.units import MIB, MILLISECOND, ns_to_ms
from repro.validation.metrics import relative_error
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.graphs import CsrGraph
from repro.workloads.kvstore import KvStoreConfig
from repro.workloads.pagerank import PageRankConfig, default_graph
from repro.workloads.pagerank_parallel import ParallelPageRankConfig


def run_parallel_pagerank(
    arch: ArchSpec = IVY_BRIDGE,
    thread_counts: Sequence[int] = (1, 2, 4, 8),
    base: Optional[PageRankConfig] = None,
    graph: Optional[CsrGraph] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Barrier-synchronised PageRank: emulation error + speedup."""
    base = base or PageRankConfig(
        vertex_count=300_000, edges_per_vertex=6, max_iterations=10,
        tolerance=1e-15,
    )
    if graph is None:
        graph = default_graph(base)
    calibration = calibrate_arch(arch)
    config = QuartzConfig(nvm_read_latency_ns=calibration.dram_remote_ns)
    result = ExperimentResult(
        experiment_id="parallel-pagerank",
        title="Barrier-synchronised PageRank under emulation",
        columns=[
            "threads", "ct_emulated_ms", "ct_actual_ms", "error_pct",
            "speedup_emulated",
        ],
    )
    specs = []
    for threads in thread_counts:
        workload = ParallelPageRankConfig(base=base, threads=threads)
        specs.append(
            RunSpec(
                workload="parallel-pagerank", config=workload,
                arch_name=arch.name, mode="conf1", seed=900, quartz=config,
                extras={"graph": graph},
            )
        )
        specs.append(
            RunSpec(
                workload="parallel-pagerank", config=workload,
                arch_name=arch.name, mode="conf2", seed=900,
                extras={"graph": graph},
            )
        )
    results = iter(run_specs(specs, jobs=jobs))
    single_emulated_ns = None
    for threads in thread_counts:
        emulated = next(results).workload_result
        physical = next(results).workload_result
        if single_emulated_ns is None:
            single_emulated_ns = emulated.elapsed_ns
        result.add_row(
            threads=threads,
            ct_emulated_ms=ns_to_ms(emulated.elapsed_ns),
            ct_actual_ms=ns_to_ms(physical.elapsed_ns),
            error_pct=100.0
            * relative_error(emulated.elapsed_ns, physical.elapsed_ns),
            speedup_emulated=single_emulated_ns / emulated.elapsed_ns,
        )
    result.note(
        "extension (paper Section 7: OpenMP primitives): delay propagation "
        "through barriers; ranks match the sequential solver exactly"
    )
    return result


def run_asymmetric_bandwidth(
    arch: ArchSpec = IVY_BRIDGE,
    read_bandwidth_gbps: float = 10.0,
    write_bandwidths_gbps: Sequence[float] = (1.0, 2.0, 5.0, 10.0),
    stream_bytes: int = 128 * MIB,
) -> ExperimentResult:
    """Asymmetric NVM bandwidth on rw-throttle-capable silicon."""
    calibration = calibrate_arch(arch)
    result = ExperimentResult(
        experiment_id="asymmetric-bandwidth",
        title="Separate read/write NVM bandwidth throttling",
        columns=[
            "write_target_gbps", "achieved_read_gbps", "achieved_write_gbps",
        ],
    )
    for write_target in write_bandwidths_gbps:
        sim = Simulator(seed=33)
        machine = Machine(sim, arch, rw_throttle_supported=True)
        os = SimOS(machine)
        quartz = Quartz(
            os,
            QuartzConfig(
                nvm_read_latency_ns=calibration.dram_local_ns * 1.001,
                nvm_read_bandwidth_gbps=read_bandwidth_gbps,
                nvm_write_bandwidth_gbps=write_target,
            ),
            calibration=calibration,
        )
        quartz.attach()
        achieved = {}

        def reader(ctx, region):
            start = ctx.now_ns
            yield MemBatch(
                region, stream_bytes // 8, PatternKind.SEQUENTIAL,
                stride_bytes=8, footprint_bytes=stream_bytes,
            )
            achieved["read"] = stream_bytes / (ctx.now_ns - start)

        def writer(ctx, region):
            start = ctx.now_ns
            yield MemBatch(
                region, stream_bytes // 8, PatternKind.SEQUENTIAL,
                stride_bytes=8, is_store=True, non_temporal=True,
                footprint_bytes=stream_bytes,
            )
            achieved["write"] = stream_bytes / (ctx.now_ns - start)

        def main(ctx):
            read_region = ctx.pmalloc(stream_bytes, label="r")
            write_region = ctx.pmalloc(stream_bytes, label="w")
            r = yield SpawnThread(reader, args=(read_region,))
            w = yield SpawnThread(writer, args=(write_region,))
            yield JoinThread(r)
            yield JoinThread(w)

        os.create_thread(main)
        os.run_to_completion()
        result.add_row(
            write_target_gbps=write_target,
            achieved_read_gbps=achieved["read"],
            achieved_write_gbps=achieved["write"],
        )
    result.note(
        "extension (paper Section 2.1 footnote 2): the separate registers "
        "modelled as functional; read target held at "
        f"{read_bandwidth_gbps} GB/s"
    )
    return result


def run_loaded_latency_study(
    arch: ArchSpec = IVY_BRIDGE,
    target_ns: float = 500.0,
    alphas: Sequence[float] = (0.0, 0.25, 0.5),
    iterations: int = 150_000,
) -> ExperimentResult:
    """Emulation accuracy when latency rises with memory load (Section 6).

    A background streamer loads the controller while MemLat runs under
    Quartz.  The emulator calibrated *unloaded* latency, so load-driven
    latency inflation is a genuine model-error source the paper flags as
    future work.
    """
    from repro.hw.topology import PageSize
    from repro.units import GIB

    calibration = calibrate_arch(arch)
    result = ExperimentResult(
        experiment_id="loaded-latency-study",
        title="Emulation accuracy under loaded memory latency",
        columns=["alpha", "measured_ns", "error_pct"],
    )
    for alpha in alphas:
        sim = Simulator(seed=44)
        machine = Machine(sim, arch, loaded_latency_alpha=alpha)
        os = SimOS(machine)
        quartz = Quartz(
            os,
            QuartzConfig(
                nvm_read_latency_ns=target_ns, max_epoch_ns=0.5 * MILLISECOND
            ),
            calibration=calibration,
        )
        quartz.attach()
        out = {}

        def probe(ctx):
            region = ctx.pmalloc(4 * GIB, page_size=PageSize.HUGE_2M)
            start = ctx.now_ns
            yield MemBatch(region, iterations, PatternKind.CHASE)
            out["latency"] = (ctx.now_ns - start) / iterations

        def streamer(ctx):
            region = ctx.malloc(512 * MIB)
            while True:
                yield MemBatch(
                    region, region.size_bytes // 8, PatternKind.SEQUENTIAL,
                    stride_bytes=8, is_store=True, non_temporal=True,
                )

        os.create_thread(streamer, name="background-load", daemon=True)
        os.create_thread(probe, name="probe")
        os.run_to_completion()
        result.add_row(
            alpha=alpha,
            measured_ns=out["latency"],
            error_pct=100.0 * relative_error(out["latency"], target_ns),
        )
    result.note(
        "extension (paper Section 6): the emulator injects on top of the "
        "loaded latency, so accuracy degrades as alpha grows — the open "
        "question the paper left for future refinement"
    )
    return result


def run_kv_write_models(
    arch: ArchSpec = IVY_BRIDGE,
    write_latency_ns: float = 1000.0,
    kv: Optional[KvStoreConfig] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Persistent KV-store puts under the two write models (Section 6).

    With ``flush_writes`` every put persists its value line via pflush;
    the pessimistic model pays the full NVM write latency per put, while
    the pcommit model overlaps flushes across a batch.  This is the
    application-level version of the pcommit ablation: what the §6
    extension buys a real store.
    """
    from dataclasses import replace as dc_replace

    from repro.quartz.config import WriteModel

    kv = kv or KvStoreConfig(
        puts_per_thread=20_000, gets_per_thread=1, flush_writes=True
    )
    calibration = calibrate_arch(arch)
    models = (WriteModel.PFLUSH, WriteModel.PCOMMIT)
    specs = [
        RunSpec(
            workload="kvstore", config=dc_replace(kv, flush_writes=False),
            arch_name=arch.name, mode="native", seed=66,
        )
    ]
    for model in models:
        config = QuartzConfig(
            nvm_read_latency_ns=calibration.dram_local_ns * 1.001,
            nvm_write_latency_ns=write_latency_ns,
            write_model=model,
        )
        specs.append(
            RunSpec(
                workload="kvstore", config=kv, arch_name=arch.name,
                mode="conf1", seed=66, quartz=config,
            )
        )
    runs = run_specs(specs, jobs=jobs)
    baseline = runs[0].workload_result
    result = ExperimentResult(
        experiment_id="kv-write-models",
        title="Persistent KV-store put throughput vs write model",
        columns=["write_model", "puts_per_second", "puts_rel"],
    )
    result.add_row(
        write_model="volatile (no flush)",
        puts_per_second=baseline.puts_per_second,
        puts_rel=1.0,
    )
    for model, run in zip(models, runs[1:]):
        outcome = run.workload_result
        result.add_row(
            write_model=model.value,
            puts_per_second=outcome.puts_per_second,
            puts_rel=outcome.puts_per_second / baseline.puts_per_second,
        )
    result.note(
        f"every put persists one value line at {write_latency_ns:.0f} ns "
        "NVM write latency; pcommit batches flushes per operation batch "
        "(Section 6's write-parallelism argument, application-level)"
    )
    return result


def run_technology_comparison(
    arch: ArchSpec = IVY_BRIDGE,
    technologies: Sequence[NvmTechnology] = ALL_TECHNOLOGIES,
    kv: Optional[KvStoreConfig] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """KV-store throughput across NVM technology presets."""
    kv = kv or KvStoreConfig(puts_per_thread=30_000, gets_per_thread=30_000)
    calibrate_arch(arch)
    specs = [
        RunSpec(
            workload="kvstore", config=kv, arch_name=arch.name,
            mode="native", seed=55,
        )
    ]
    for technology in technologies:
        specs.append(
            RunSpec(
                workload="kvstore", config=kv, arch_name=arch.name,
                mode="conf1", seed=55,
                quartz=technology.quartz_config(nvm_write_latency_ns=None),
            )
        )
    runs = run_specs(specs, jobs=jobs)
    baseline = runs[0].workload_result
    result = ExperimentResult(
        experiment_id="technology-comparison",
        title="KV-store throughput across NVM technologies",
        columns=[
            "technology", "read_ns", "bandwidth_gbps",
            "puts_rel", "gets_rel",
        ],
    )
    for technology, run in zip(technologies, runs[1:]):
        outcome = run.workload_result
        result.add_row(
            technology=technology.name,
            read_ns=technology.read_latency_ns,
            bandwidth_gbps=technology.bandwidth_gbps,
            puts_rel=outcome.puts_per_second / baseline.puts_per_second,
            gets_rel=outcome.gets_per_second / baseline.gets_per_second,
        )
    result.note("DRAM-relative throughput; write-latency emulation off")
    return result
