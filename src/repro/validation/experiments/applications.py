"""Application experiments: Figure 15, the PageRank validation number,
Figure 16 sensitivity sweeps, and the Graph500 extended validation.

Grids are declarative :class:`~repro.validation.runner.RunSpec` units;
graphs are generated once in the driver and shipped to workers inside
the spec (CSR arrays pickle cleanly).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import SANDY_BRIDGE, ArchSpec
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import QuartzConfig
from repro.units import ns_to_ms
from repro.validation.metrics import relative_error
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.graph500 import Graph500Config
from repro.workloads.graphs import CsrGraph, synthetic_scale_free
from repro.workloads.kvstore import KvStoreConfig
from repro.workloads.pagerank import PageRankConfig


def run_figure15(
    arch: ArchSpec = SANDY_BRIDGE,
    thread_counts: Sequence[int] = (1, 2, 4, 8),
    puts_per_thread: int = 8_000,
    gets_per_thread: int = 8_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 15: KV-store (MassTree stand-in) validation errors.

    Emulated remote latency (Conf_1 + Quartz) vs. physical remote memory
    (Conf_2); errors reported separately for put/s and get/s.  Paper:
    2-8% on Sandy Bridge.
    """
    result = ExperimentResult(
        experiment_id="figure15",
        title="KV store validation errors (puts/s and gets/s)",
        columns=["processor", "threads", "put_error_pct", "get_error_pct"],
    )
    calibration = calibrate_arch(arch)
    config = QuartzConfig(nvm_read_latency_ns=calibration.dram_remote_ns)
    specs = []
    for threads in thread_counts:
        workload = KvStoreConfig(
            puts_per_thread=puts_per_thread,
            gets_per_thread=gets_per_thread,
            threads=threads,
        )
        specs.append(
            RunSpec(
                workload="kvstore", config=workload, arch_name=arch.name,
                mode="conf1", seed=700, quartz=config,
            )
        )
        specs.append(
            RunSpec(
                workload="kvstore", config=workload, arch_name=arch.name,
                mode="conf2", seed=700,
            )
        )
    results = iter(run_specs(specs, jobs=jobs))
    for threads in thread_counts:
        emulated = next(results).workload_result
        physical = next(results).workload_result
        result.add_row(
            processor=arch.family,
            threads=threads,
            put_error_pct=100.0
            * relative_error(emulated.puts_per_second, physical.puts_per_second),
            get_error_pct=100.0
            * relative_error(emulated.gets_per_second, physical.gets_per_second),
        )
    result.note("paper reports 2-8% errors on Sandy Bridge")
    result.note(
        f"scaled: {puts_per_thread} puts + {gets_per_thread} gets per thread"
    )
    return result


def run_pagerank_validation(
    arch: ArchSpec = SANDY_BRIDGE,
    workload: Optional[PageRankConfig] = None,
    graph: Optional[CsrGraph] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Section 4.7: single-threaded PageRank completion-time error.

    Paper: 2.9% on Sandy Bridge.
    """
    workload = workload or PageRankConfig()
    if graph is None:
        graph = synthetic_scale_free(
            workload.vertex_count, workload.edges_per_vertex, seed=workload.seed
        )
    calibration = calibrate_arch(arch)
    config = QuartzConfig(nvm_read_latency_ns=calibration.dram_remote_ns)
    specs = [
        RunSpec(
            workload="pagerank", config=workload, arch_name=arch.name,
            mode="conf1", seed=710, quartz=config, extras={"graph": graph},
        ),
        RunSpec(
            workload="pagerank", config=workload, arch_name=arch.name,
            mode="conf2", seed=710, extras={"graph": graph},
        ),
    ]
    emulated, physical = run_specs(specs, jobs=jobs)
    result = ExperimentResult(
        experiment_id="pagerank-validation",
        title="PageRank completion-time validation",
        columns=[
            "processor", "iterations", "ct_emulated_ms", "ct_actual_ms",
            "error_pct",
        ],
    )
    result.add_row(
        processor=arch.family,
        iterations=emulated.workload_result.iterations,
        ct_emulated_ms=ns_to_ms(emulated.workload_result.elapsed_ns),
        ct_actual_ms=ns_to_ms(physical.workload_result.elapsed_ns),
        error_pct=100.0
        * relative_error(
            emulated.workload_result.elapsed_ns,
            physical.workload_result.elapsed_ns,
        ),
    )
    result.note("paper reports 2.9% on Sandy Bridge")
    result.note(
        f"scaled graph: {graph.vertex_count} vertices / {graph.edge_count} "
        "arcs (paper: 4.8M / 69M)"
    )
    return result


def run_graph500_validation(
    arch: ArchSpec = SANDY_BRIDGE,
    workload: Optional[Graph500Config] = None,
    graph: Optional[CsrGraph] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Section 7: Graph500 BFS completion-time error (paper: <12%)."""
    workload = workload or Graph500Config(roots=2)
    if graph is None:
        graph = synthetic_scale_free(
            workload.vertex_count, workload.edges_per_vertex, seed=workload.seed
        )
    calibration = calibrate_arch(arch)
    config = QuartzConfig(nvm_read_latency_ns=calibration.dram_remote_ns)
    specs = [
        RunSpec(
            workload="graph500", config=workload, arch_name=arch.name,
            mode="conf1", seed=720, quartz=config, extras={"graph": graph},
        ),
        RunSpec(
            workload="graph500", config=workload, arch_name=arch.name,
            mode="conf2", seed=720, extras={"graph": graph},
        ),
    ]
    emulated, physical = run_specs(specs, jobs=jobs)
    result = ExperimentResult(
        experiment_id="graph500-validation",
        title="Graph500 BFS completion-time validation",
        columns=["processor", "traversed_edges", "error_pct"],
    )
    result.add_row(
        processor=arch.family,
        traversed_edges=emulated.workload_result.traversed_edges,
        error_pct=100.0
        * relative_error(
            emulated.workload_result.elapsed_ns,
            physical.workload_result.elapsed_ns,
        ),
    )
    result.note("paper (Section 7, HP hardware emulator cross-check): <12%")
    return result


def run_figure16_latency(
    arch: ArchSpec = SANDY_BRIDGE,
    target_latencies_ns: Sequence[float] = (
        100.0, 200.0, 300.0, 500.0, 1000.0, 2000.0,
    ),
    pagerank: Optional[PageRankConfig] = None,
    kv: Optional[KvStoreConfig] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 16(a)/(c): sensitivity to NVM read latency.

    Values are normalised to the DRAM-latency baseline; the paper's
    shape: MassTree throughput -15% at 200 ns and ~5x down at 2 us;
    PageRank flat at 200 ns, >5x completion time at 2 us.
    """
    pagerank = pagerank or PageRankConfig(max_iterations=12, tolerance=1e-15)
    # The value heap must exceed the LLC or gets never reach (emulated)
    # NVM: 60k x 1 KiB values = ~60 MB per thread.
    kv = kv or KvStoreConfig(puts_per_thread=60_000, gets_per_thread=60_000)
    graph = synthetic_scale_free(
        pagerank.vertex_count, pagerank.edges_per_vertex, seed=pagerank.seed
    )
    calibration = calibrate_arch(arch)
    specs = [
        RunSpec(
            workload="pagerank", config=pagerank, arch_name=arch.name,
            mode="native", seed=730, extras={"graph": graph},
        ),
        RunSpec(
            workload="kvstore", config=kv, arch_name=arch.name,
            mode="native", seed=730,
        ),
    ]
    emulated_targets = [
        target for target in target_latencies_ns
        if target > calibration.dram_local_ns
    ]
    for target in emulated_targets:
        config = QuartzConfig(nvm_read_latency_ns=target)
        specs.append(
            RunSpec(
                workload="pagerank", config=pagerank, arch_name=arch.name,
                mode="conf1", seed=730, quartz=config, extras={"graph": graph},
            )
        )
        specs.append(
            RunSpec(
                workload="kvstore", config=kv, arch_name=arch.name,
                mode="conf1", seed=730, quartz=config,
            )
        )
    results = iter(run_specs(specs, jobs=jobs))
    baseline_pr = next(results).workload_result
    baseline_kv = next(results).workload_result
    result = ExperimentResult(
        experiment_id="figure16-latency",
        title="PageRank and KV-store sensitivity to NVM latency",
        columns=[
            "nvm_latency_ns", "pagerank_ct_rel", "kv_puts_rel", "kv_gets_rel",
        ],
    )
    for target in target_latencies_ns:
        if target not in emulated_targets:
            # The DRAM point itself: the baseline.
            result.add_row(
                nvm_latency_ns=target, pagerank_ct_rel=1.0,
                kv_puts_rel=1.0, kv_gets_rel=1.0,
            )
            continue
        pr = next(results).workload_result
        kv_result = next(results).workload_result
        result.add_row(
            nvm_latency_ns=target,
            pagerank_ct_rel=pr.elapsed_ns / baseline_pr.elapsed_ns,
            kv_puts_rel=kv_result.puts_per_second / baseline_kv.puts_per_second,
            kv_gets_rel=kv_result.gets_per_second / baseline_kv.gets_per_second,
        )
    result.note(
        "paper shape: KV throughput -15% at 200 ns and ~5x lower at 2 us; "
        "PageRank CT ~flat at 200 ns and >5x at 2 us"
    )
    return result


def run_figure16_bandwidth(
    arch: ArchSpec = SANDY_BRIDGE,
    bandwidths_gbps: Sequence[float] = (0.5, 1.0, 1.5, 3.0, 5.0, 10.0, 20.0),
    pagerank: Optional[PageRankConfig] = None,
    kv: Optional[KvStoreConfig] = None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 16(b)/(d): sensitivity to NVM bandwidth.

    Latency held at the DRAM-feasible minimum; only bandwidth throttled.
    Paper: PageRank unaffected above ~3 GB/s, MassTree above ~1.5 GB/s.
    """
    pagerank = pagerank or PageRankConfig(max_iterations=12, tolerance=1e-15)
    # The value heap must exceed the LLC or gets never reach (emulated)
    # NVM: 60k x 1 KiB values = ~60 MB per thread.
    kv = kv or KvStoreConfig(puts_per_thread=60_000, gets_per_thread=60_000)
    graph = synthetic_scale_free(
        pagerank.vertex_count, pagerank.edges_per_vertex, seed=pagerank.seed
    )
    calibration = calibrate_arch(arch)
    bandwidths = sorted(bandwidths_gbps)
    specs = [
        RunSpec(
            workload="pagerank", config=pagerank, arch_name=arch.name,
            mode="native", seed=740, extras={"graph": graph},
        ),
        RunSpec(
            workload="kvstore", config=kv, arch_name=arch.name,
            mode="native", seed=740,
        ),
    ]
    for bandwidth in bandwidths:
        config = QuartzConfig(
            nvm_read_latency_ns=calibration.dram_local_ns * 1.001,
            nvm_bandwidth_gbps=bandwidth,
        )
        specs.append(
            RunSpec(
                workload="pagerank", config=pagerank, arch_name=arch.name,
                mode="conf1", seed=740, quartz=config, extras={"graph": graph},
            )
        )
        specs.append(
            RunSpec(
                workload="kvstore", config=kv, arch_name=arch.name,
                mode="conf1", seed=740, quartz=config,
            )
        )
    results = iter(run_specs(specs, jobs=jobs))
    baseline_pr = next(results).workload_result
    baseline_kv = next(results).workload_result
    result = ExperimentResult(
        experiment_id="figure16-bandwidth",
        title="PageRank and KV-store sensitivity to NVM bandwidth",
        columns=[
            "nvm_bandwidth_gbps", "pagerank_ct_rel", "kv_puts_rel", "kv_gets_rel",
        ],
    )
    for bandwidth in bandwidths:
        pr = next(results).workload_result
        kv_result = next(results).workload_result
        result.add_row(
            nvm_bandwidth_gbps=bandwidth,
            pagerank_ct_rel=pr.elapsed_ns / baseline_pr.elapsed_ns,
            kv_puts_rel=kv_result.puts_per_second / baseline_kv.puts_per_second,
            kv_gets_rel=kv_result.gets_per_second / baseline_kv.gets_per_second,
        )
    result.note(
        "paper shape: PageRank CT impacted only below ~3 GB/s; KV "
        "throughput only below ~1.5 GB/s"
    )
    return result
