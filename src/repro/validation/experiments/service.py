"""KV-service experiments: tail latency vs NVM latency, cache policies.

Two registry drivers over the :mod:`repro.service` subsystem:

* ``service-latency`` (:func:`run_service_latency`) — the same
  multi-tenant trace replayed under a ladder of emulated NVM
  read/write latencies; rows report per-tenant (and overall) p50-p999
  tails, throughput, and cache hit rate.  The service-shaped analogue
  of Figure 16: how much of a latency increase the DRAM cache tier
  absorbs before the tails surface it.
* ``cache-policy`` (:func:`run_cache_policy`) — eviction x admission
  policy cells at one fixed NVM latency; rows compare hit rate,
  evictions, PM writebacks, p99, and throughput across policies.

Both fan out through :func:`~repro.validation.runner.run_specs`
(``jobs``-parallel, byte-identical results for any job count) and are
registered with fast presets, so the export round-trip and fault-sweep
registry tests cover them automatically.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import IVY_BRIDGE
from repro.quartz.config import QuartzConfig
from repro.service.cache import CacheConfig
from repro.service.kvservice import ServiceConfig
from repro.service.traces import TraceConfig
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunResult, RunSpec, run_specs

#: Seed base for the service experiments (distinct from figures/sweeps).
_SERVICE_SEED = 1200

#: Default NVM (read, write) latency ladder, ns.
DEFAULT_LATENCY_PAIRS = ((300.0, 600.0), (500.0, 1000.0), (800.0, 1600.0))


def _default_trace(seed: int = _SERVICE_SEED) -> TraceConfig:
    return TraceConfig(
        tenants=2,
        ops_per_tenant=1_500,
        keys_per_tenant=50_000,
        mix="ycsb-a",
        seed=seed,
    )


def _service_spec(config: ServiceConfig, quartz: QuartzConfig,
                  arch_name: str, seed: int) -> RunSpec:
    return RunSpec(
        workload="kvservice",
        config=config,
        arch_name=arch_name,
        mode="service",
        seed=seed,
        quartz=quartz,
    )


def _tenant_rows(report: dict) -> list[tuple[str, dict]]:
    """(label, summary) per tenant plus the merged ``all`` row.

    Tenant summaries carry their own cache section; the ``all`` row
    borrows the cache totals, which is the only hit-rate defined across
    tenants.
    """
    rows = [
        (tenant, dict(summary, hit_pct=summary["cache"]["hit_pct"]))
        for tenant, summary in sorted(report["tenants"].items())
    ]
    overall = dict(report["overall"])
    overall["hit_pct"] = report["cache"]["totals"]["hit_pct"]
    rows.append(("all", overall))
    return rows


def _us(value: Optional[float]) -> float:
    return (value or 0.0) / 1e3


def run_service_latency(
    latency_pairs: Sequence[tuple] = DEFAULT_LATENCY_PAIRS,
    trace: Optional[TraceConfig] = None,
    cache: Optional[CacheConfig] = None,
    clients_per_tenant: int = 2,
    arch=IVY_BRIDGE,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Service tails under an NVM read/write latency ladder."""
    trace = trace or _default_trace()
    cache = cache or CacheConfig(capacity=2_048)
    result = ExperimentResult(
        experiment_id="service-latency",
        title="KV service tail latency vs emulated NVM latency",
        columns=[
            "arch", "read_ns", "write_ns", "tenant", "ops", "hit_pct",
            "throughput_kops", "p50_us", "p95_us", "p99_us", "p999_us",
        ],
    )
    config = ServiceConfig(
        trace=trace, cache=cache, clients_per_tenant=clients_per_tenant
    )
    specs = [
        _service_spec(
            config,
            QuartzConfig(
                nvm_read_latency_ns=read_ns, nvm_write_latency_ns=write_ns
            ),
            arch.name,
            _SERVICE_SEED,
        )
        for read_ns, write_ns in latency_pairs
    ]
    for spec, run in zip(specs, run_specs(specs, jobs=jobs)):
        report = run.service_report
        for tenant, summary in _tenant_rows(report):
            result.add_row(
                arch=spec.arch_name,
                read_ns=spec.quartz.nvm_read_latency_ns,
                write_ns=spec.quartz.nvm_write_latency_ns,
                tenant=tenant,
                ops=summary["ops"],
                hit_pct=summary["hit_pct"],
                throughput_kops=summary["throughput_ops_s"] / 1e3,
                p50_us=_us(summary["p50_ns"]),
                p95_us=_us(summary["p95_ns"]),
                p99_us=_us(summary["p99_ns"]),
                p999_us=_us(summary["p999_ns"]),
            )
    result.note(
        f"{trace.tenants} tenant(s) x {clients_per_tenant} client(s), "
        f"{trace.ops_per_tenant} op(s)/tenant, {trace.mix}, "
        f"zipf theta={trace.zipf_theta}, cache {cache.capacity} entries "
        f"({cache.eviction}/{cache.admission})"
    )
    result.note(
        "write-back DRAM cache: update hits dirty the cached copy; PM "
        "writes happen on misses, dirty evictions, and the final drain"
    )
    return result


def run_cache_policy(
    evictions: Sequence[str] = ("lru", "lfu", "segmented"),
    admissions: Sequence[str] = ("always", "probabilistic"),
    trace: Optional[TraceConfig] = None,
    capacity: int = 1_024,
    read_ns: float = 500.0,
    write_ns: float = 1_000.0,
    clients_per_tenant: int = 2,
    arch=IVY_BRIDGE,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Eviction x admission policy comparison at one NVM latency."""
    trace = trace or _default_trace()
    quartz = QuartzConfig(
        nvm_read_latency_ns=read_ns, nvm_write_latency_ns=write_ns
    )
    result = ExperimentResult(
        experiment_id="cache-policy",
        title="DRAM cache eviction/admission policies under the KV service",
        columns=[
            "arch", "eviction", "admission", "ops", "hit_pct", "evictions",
            "writebacks", "throughput_kops", "p99_us",
        ],
    )
    cells = [
        (eviction, admission)
        for eviction in evictions
        for admission in admissions
    ]
    specs = [
        _service_spec(
            ServiceConfig(
                trace=trace,
                cache=CacheConfig(
                    capacity=capacity, eviction=eviction, admission=admission
                ),
                clients_per_tenant=clients_per_tenant,
            ),
            quartz,
            arch.name,
            _SERVICE_SEED,
        )
        for eviction, admission in cells
    ]
    for (eviction, admission), run in zip(cells, run_specs(specs, jobs=jobs)):
        report = run.service_report
        totals = report["cache"]["totals"]
        overall = report["overall"]
        result.add_row(
            arch=arch.name,
            eviction=eviction,
            admission=admission,
            ops=overall["ops"],
            hit_pct=totals["hit_pct"],
            evictions=totals["evictions"],
            writebacks=totals["writebacks"],
            throughput_kops=overall["throughput_ops_s"] / 1e3,
            p99_us=_us(overall["p99_ns"]),
        )
    result.note(
        f"fixed NVM latency {read_ns:g}/{write_ns:g} ns, cache "
        f"{capacity} entries, {trace.mix} over "
        f"{trace.tenants * trace.keys_per_tenant} keys"
    )
    return result


# ----------------------------------------------------------------------
# CLI presets (``quartz-repro service <preset>``)
# ----------------------------------------------------------------------

#: Preset name -> (experiment id, kwargs builder).  ``*-smoke`` presets
#: are CI-sized; the bare names are the EXPERIMENTS.md scales.
SERVICE_PRESETS: dict[str, tuple] = {
    "latency": ("service-latency", lambda: {}),
    "latency-smoke": (
        "service-latency",
        lambda: {
            "latency_pairs": ((300.0, 600.0), (700.0, 1400.0)),
            "trace": TraceConfig(
                tenants=2, ops_per_tenant=300, keys_per_tenant=5_000,
                seed=_SERVICE_SEED,
            ),
            "cache": CacheConfig(capacity=256),
            "clients_per_tenant": 2,
        },
    ),
    "policy": ("cache-policy", lambda: {}),
    "policy-smoke": (
        "cache-policy",
        lambda: {
            "evictions": ("lru", "segmented"),
            "admissions": ("always", "probabilistic"),
            "trace": TraceConfig(
                tenants=2, ops_per_tenant=300, keys_per_tenant=5_000,
                seed=_SERVICE_SEED,
            ),
            "capacity": 256,
        },
    ),
}


def service_scenario(preset: str) -> dict:
    """The manifest ``service`` section for one CLI preset invocation.

    Describes the offered load and cache tier the preset ran — the
    digest-covered context that makes two service exports comparable.
    """
    experiment_id, build = SERVICE_PRESETS[preset]
    kwargs = build()
    trace = kwargs.get("trace") or _default_trace()
    cache = kwargs.get("cache")
    if cache is None and "capacity" in kwargs:
        cache = CacheConfig(capacity=kwargs["capacity"])
    cache = cache or CacheConfig(capacity=2_048)
    return {
        "preset": preset,
        "experiment": experiment_id,
        "trace": trace.to_dict(),
        "cache": cache.to_dict(),
        "clients_per_tenant": kwargs.get("clients_per_tenant", 2),
    }
