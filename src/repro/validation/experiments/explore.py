"""The model-checking experiment (``explore-check``).

Exhaustively explores every thread interleaving of one
exploration-sized recoverable workload (see :mod:`repro.explore`), per
mutant mode, crossing each explored schedule with every reachable crash
point: the unmutated protocol must survive the *whole* cross product,
and each seeded bug must be caught — with the minimal failing
interleaving reported as a replayable trace.

The schedule tree is partitioned at its first decision point across
``shards`` runs and fanned out by the parallel runner; shard subtrees
are disjoint and merge to the identical whole, so the table — and the
export digest — are byte-identical for any ``--jobs`` value.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.errors import ValidationError
from repro.explore import ExplorePlan, LitmusConfig, merge_shard_reports
from repro.hw.arch import IVY_BRIDGE, ArchSpec
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.graph500 import Graph500Config
from repro.workloads.kvstore import KvStoreConfig

#: Mutant axis of the experiment ("none" = the correct protocol).
MUTANT_AXIS = ("none", "missing-flush", "misordered-barrier")

#: The plan the CLI and CI use (also exported into the run manifest).
DEFAULT_EXPLORE_PLAN = ExplorePlan()


def default_explore_config(workload: str):
    """Exploration-sized config of one explorable workload.

    Sizes are chosen so the full interleaving tree stays in the
    hundreds of schedules — exploration re-executes the workload once
    per schedule, so parameters that are modest for a single crash run
    are explosive here.
    """
    if workload in ("mutex-log", "disjoint-locks"):
        return LitmusConfig(threads=2, entries_per_thread=1, seed=0)
    if workload == "kvstore":
        return KvStoreConfig(
            puts_per_thread=1,
            gets_per_thread=0,
            threads=2,
            batch_ops=1,
            seed=3,
        )
    if workload == "graph500":
        return Graph500Config(vertex_count=12, edges_per_vertex=2, seed=2)
    raise ValidationError(f"no explore config for workload {workload!r}")


def run_explore_check(
    arch: ArchSpec = IVY_BRIDGE,
    workload: str = "mutex-log",
    mutants: Sequence[str] = MUTANT_AXIS,
    shards: int = 2,
    seed: int = 0,
    explore_plan: Optional[ExplorePlan] = None,
    config=None,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Interleaving x crash-point exploration, per mutant mode."""
    plan = explore_plan or DEFAULT_EXPLORE_PLAN
    config = config if config is not None else default_explore_config(workload)
    specs = []
    for mutant in mutants:
        for shard in range(shards):
            specs.append(
                RunSpec(
                    workload=workload,
                    config=config,
                    arch_name=arch.name,
                    mode="explore",
                    seed=seed,
                    extras={
                        "explore_plan": plan,
                        "shard": shard,
                        "shards": shards,
                        "mutant": None if mutant == "none" else mutant,
                    },
                )
            )
    results = iter(run_specs(specs, jobs=jobs))

    result = ExperimentResult(
        experiment_id="explore-check",
        title="Model checking: every interleaving x every crash point",
        columns=[
            "workload",
            "mutant",
            "schedules",
            "executions",
            "pruned",
            "deadlocks",
            "images_checked",
            "violations",
            "first_violation",
            "minimal_trace_len",
            "expected",
            "ok",
        ],
    )
    for mutant in mutants:
        merged = merge_shard_reports(
            [next(results).explore_report for _ in range(shards)]
        )
        clean = mutant == "none"
        violations = merged["violation_total"]
        first = (
            merged["violations"][0]["invariant"] if merged["violations"] else ""
        )
        trace = merged["minimal_trace"]
        result.add_row(
            workload=workload,
            mutant=mutant,
            schedules=merged["schedules"],
            executions=merged["executions"],
            pruned=merged["pruned"],
            deadlocks=merged["deadlocks"],
            images_checked=merged["images_checked"],
            violations=violations,
            first_violation=first,
            minimal_trace_len=len(trace["choices"]) if trace else -1,
            expected="0" if clean else ">=1",
            ok=(
                (violations == 0)
                if clean
                else (violations >= 1 and trace is not None)
            )
            and not merged["capped"],
        )
    result.note(
        f"invariants checked: {', '.join(merged['invariants'])}; "
        f"schedule tree partitioned {shards} way(s) at its first decision "
        "point, shard subtrees are disjoint"
    )
    result.note(
        "oracle: the unmutated protocol must survive every (schedule, "
        "crash point) pair; each seeded mutant must be caught with a "
        "replayable minimal failing interleaving"
    )
    return result
