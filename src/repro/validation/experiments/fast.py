"""Minimum-scale presets for every experiment driver.

One entry per ``REGISTRY`` id, each a zero-argument builder returning
the keyword arguments that make the driver run in seconds rather than
minutes (the same scales the fast test-suite variants use).  Consumers:
the JSON-export round-trip tests (``tests/validation/test_export.py``)
and the perf-trajectory seeder (``benchmarks/emit_bench.py``).

These presets trade statistical quality for speed — they exercise every
driver's full plumbing (grids, runner, reporting, export) but are not
the scales EXPERIMENTS.md quotes.
"""

from __future__ import annotations

import inspect
from typing import Callable, Optional

from repro.errors import ValidationError
from repro.explore import LitmusConfig
from repro.hw.arch import IVY_BRIDGE
from repro.units import MIB
from repro.validation.experiments import REGISTRY
from repro.validation.experiments.service import SERVICE_PRESETS
from repro.validation.reporting import ExperimentResult
from repro.workloads.graph500 import Graph500Config
from repro.workloads.graphs import synthetic_power_law, synthetic_scale_free
from repro.workloads.kvstore import KvStoreConfig
from repro.workloads.pagerank import PageRankConfig
from repro.workloads.stream import StreamConfig


def _small_graph_kwargs() -> dict:
    workload = PageRankConfig(
        vertex_count=3_000, edges_per_vertex=5, max_iterations=5,
        tolerance=1e-15,
    )
    graph = synthetic_scale_free(3_000, 5, seed=1)
    return {"workload": workload, "graph": graph}


def _graph500_kwargs() -> dict:
    workload = Graph500Config(vertex_count=3_000, edges_per_vertex=5, roots=1)
    graph = synthetic_scale_free(3_000, 5, seed=1)
    return {"workload": workload, "graph": graph}


def _figure16_kwargs() -> dict:
    # Inflated record/value sizes keep working sets beyond the LLC even
    # at this reduced scale.
    return {
        "pagerank": PageRankConfig(
            vertex_count=100_000, edges_per_vertex=4, max_iterations=2,
            tolerance=1e-15, bytes_per_vertex=256,
        ),
        "kv": KvStoreConfig(
            puts_per_thread=5_000, gets_per_thread=5_000, value_bytes=8192
        ),
    }


def _parallel_pagerank_kwargs() -> dict:
    base = PageRankConfig(
        vertex_count=100_000, edges_per_vertex=4, max_iterations=3,
        tolerance=1e-15, bytes_per_vertex=256,
    )
    graph = synthetic_power_law(100_000, 4, seed=2)
    return {"thread_counts": (1, 4), "base": base, "graph": graph}


#: Experiment id -> zero-argument kwargs builder.
FAST_KWARGS: dict[str, Callable[[], dict]] = {
    "table2": lambda: {
        "archs": (IVY_BRIDGE,), "trials": 2, "iterations": 10_000
    },
    "figure8": lambda: {
        "register_points": 4,
        "stream_config": StreamConfig(
            threads=1, array_bytes=32 * MIB, compute_cycles_per_element=2.5
        ),
    },
    "figure11": lambda: {
        "archs": (IVY_BRIDGE,), "chain_counts": (1, 4),
        "iterations": 120_000, "trials": 1,
    },
    "figure12": lambda: {
        "archs": (IVY_BRIDGE,), "target_latencies_ns": (300.0,),
        "iterations": 120_000, "trials": 2,
    },
    "figure13": lambda: {
        "archs": (IVY_BRIDGE,), "thread_counts": (2,),
        "min_epochs_ms": (0.01, 10.0), "sections": 100,
        "with_compute": False,
    },
    "figure14": lambda: {
        "archs": (IVY_BRIDGE,), "target_latencies_ns": (400.0,),
        "configurations": {"small": (30_000, 30_000)},
        "patterns": {"p": (300, 150)},
    },
    "figure15": lambda: {
        "thread_counts": (1, 2), "puts_per_thread": 3_000,
        "gets_per_thread": 3_000,
    },
    "figure16-latency": lambda: {
        "target_latencies_ns": (500.0,), **_figure16_kwargs()
    },
    "figure16-bandwidth": lambda: {
        "bandwidths_gbps": (1.0, 20.0), **_figure16_kwargs()
    },
    "pagerank-validation": _small_graph_kwargs,
    "graph500-validation": _graph500_kwargs,
    "overhead-study": lambda: {"iterations": 120_000},
    "epoch-size-study": lambda: {
        "max_epochs_ms": (1.0, 100.0), "iterations": 200_000, "trials": 1
    },
    "pcommit-ablation": lambda: {"independent_writes": 8, "barriers": 50},
    "dvfs-ablation": lambda: {"iterations": 150_000},
    "model-ablation": lambda: {"chain_counts": (1, 4), "iterations": 100_000},
    "parallel-pagerank": _parallel_pagerank_kwargs,
    "asymmetric-bandwidth": lambda: {
        "write_bandwidths_gbps": (2.0,), "stream_bytes": 32 * MIB
    },
    "loaded-latency-study": lambda: {
        "alphas": (0.0, 0.5), "iterations": 60_000
    },
    "technology-comparison": lambda: {
        "kv": KvStoreConfig(
            puts_per_thread=8_000, gets_per_thread=8_000, value_bytes=4096
        )
    },
    "kv-write-models": lambda: {
        "kv": KvStoreConfig(
            puts_per_thread=5_000, gets_per_thread=1, flush_writes=True
        )
    },
    "crash-check": lambda: {
        "workload": "kvstore",
        "shards": 2,
        "config": KvStoreConfig(
            puts_per_thread=8, gets_per_thread=0, threads=2, batch_ops=4,
            seed=3,
        ),
    },
    "explore-check": lambda: {
        "workload": "mutex-log",
        "shards": 2,
        "config": LitmusConfig(threads=2, entries_per_thread=1, seed=0),
    },
    "tier-sweep": lambda: {
        "tier_sets": {"3-tier": ((250.0, 350.0), (400.0, 600.0), (700.0, 1100.0))},
        "elements_per_tier": 30_000,
        "dram_elements": 30_000,
    },
    "migration-policy": lambda: {
        "elements_per_tier": 10_000,
        "promote_threshold_accesses": 4_000,
    },
    "sweep-latency-grid": lambda: {"scale": "smoke"},
    "sweep-tier-grid": lambda: {"scale": "smoke"},
    "sweep-migration-grid": lambda: {"scale": "smoke"},
    "sweep-service-grid": lambda: {"scale": "smoke"},
    "service-latency": lambda: SERVICE_PRESETS["latency-smoke"][1](),
    "cache-policy": lambda: SERVICE_PRESETS["policy-smoke"][1](),
}


def run_fast(experiment_id: str, jobs: Optional[int] = None) -> ExperimentResult:
    """Run one experiment at its minimum scale.

    ``jobs`` is forwarded only to drivers whose signature takes it (a few
    ablation studies always run in-process).
    """
    if experiment_id not in REGISTRY:
        raise ValidationError(f"unknown experiment id: {experiment_id!r}")
    if experiment_id not in FAST_KWARGS:
        raise ValidationError(f"no fast preset for {experiment_id!r}")
    driver = REGISTRY[experiment_id]
    kwargs = FAST_KWARGS[experiment_id]()
    if "jobs" in inspect.signature(driver).parameters:
        kwargs["jobs"] = jobs
    return driver(**kwargs)
