"""Overhead and ablation experiments (Sections 3.2, 6, and Figure 2).

* ``run_overhead_study`` — the Section 3.2 numbers: per-epoch processing
  cost, rdpmc vs. PAPI backend, the "switched-off delay injection" mode,
  and overhead amortisation.
* ``run_pcommit_ablation`` — pflush vs. the pcommit write model on an
  independent-writes microbenchmark (Section 6).
* ``run_dvfs_ablation`` — emulation error with frequency scaling enabled
  (why the paper disables DVFS, Section 6).
* ``run_model_ablation`` — Eq. (1) vs. Eq. (2)/(3) across MLP degrees
  (the Figure 2 argument).
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.hw.arch import IVY_BRIDGE, ArchSpec
from repro.hw.machine import Machine
from repro.ops import Commit, Compute
from repro.os.system import SimOS
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import (
    EPOCH_BASE_COST_CYCLES,
    QuartzConfig,
    THREAD_REGISTRATION_COST_CYCLES,
    WriteModel,
)
from repro.quartz.counters import PAPI_BACKEND, RDPMC_BACKEND
from repro.quartz.emulator import Quartz
from repro.sim import Simulator
from repro.units import MIB, MILLISECOND
from repro.validation.metrics import relative_error
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunSpec, run_specs
from repro.workloads.memlat import MemLatConfig, memlat_body


def run_overhead_study(
    arch: ArchSpec = IVY_BRIDGE,
    iterations: int = 400_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Section 3.2: the emulator's own costs and their amortisation."""
    calibration = calibrate_arch(arch)
    result = ExperimentResult(
        experiment_id="overhead-study",
        title="Emulator overhead (Section 3.2)",
        columns=["quantity", "value", "paper_reference"],
    )
    # Fixed constants (charged as compute by the library).
    result.add_row(
        quantity="thread registration (cycles)",
        value=THREAD_REGISTRATION_COST_CYCLES,
        paper_reference="~300,000 cycles",
    )
    sim = Simulator(seed=1)
    pmc = Machine(sim, arch).pmc(0)
    pmc.program(arch.counter_events.all_events(), privileged=True)
    _, rdpmc_cost = RDPMC_BACKEND.read_all(pmc, arch.counter_events)
    _, papi_cost = PAPI_BACKEND.read_all(pmc, arch.counter_events)
    result.add_row(
        quantity="epoch processing, rdpmc (cycles)",
        value=rdpmc_cost + EPOCH_BASE_COST_CYCLES,
        paper_reference="~4000 cycles, half of it counter reads",
    )
    result.add_row(
        quantity="counter read, PAPI-style (cycles)",
        value=papi_cost,
        paper_reference="~30,000 cycles (~8x the rdpmc epoch)",
    )

    # Switched-off injection: epoch machinery on, delays off.  These four
    # runs (native baseline, two switched-off backends, the amortisation
    # run) fan out through the runner.
    memlat = MemLatConfig(iterations=iterations)
    specs = [
        RunSpec(
            workload="memlat", config=memlat, arch_name=arch.name,
            mode="native", seed=800,
        )
    ]
    for backend in ("rdpmc", "papi"):
        specs.append(
            RunSpec(
                workload="memlat", config=memlat, arch_name=arch.name,
                mode="conf1", seed=800,
                quartz=QuartzConfig(
                    nvm_read_latency_ns=calibration.dram_remote_ns,
                    injection_enabled=False,
                    counter_backend=backend,
                    max_epoch_ns=0.5 * MILLISECOND,
                ),
            )
        )
    specs.append(
        RunSpec(
            workload="memlat", config=memlat, arch_name=arch.name,
            mode="conf1", seed=800,
            quartz=QuartzConfig(
                nvm_read_latency_ns=calibration.dram_remote_ns,
                max_epoch_ns=0.5 * MILLISECOND,
            ),
        )
    )
    runs = run_specs(specs, jobs=jobs)
    native = runs[0].workload_result
    for backend, run in zip(("rdpmc", "papi"), runs[1:3]):
        switched_off = run.workload_result
        overhead_pct = 100.0 * (
            switched_off.elapsed_ns / native.elapsed_ns - 1.0
        )
        result.add_row(
            quantity=f"switched-off-injection overhead, {backend} (%)",
            value=overhead_pct,
            paper_reference="<4% for most experiments (rdpmc)",
        )
    # Amortisation: with injection on, overhead hides inside delays.
    stats = runs[3].quartz_stats
    result.add_row(
        quantity="overhead amortized into delays (%)",
        value=100.0 * stats.overhead_amortized_ns / max(stats.overhead_ns, 1e-9),
        paper_reference="fully amortized with proper epoch configuration",
    )
    result.add_row(
        quantity="feedback",
        value=stats.feedback(),
        paper_reference="Section 3.2 statistics",
    )
    return result


def run_pcommit_ablation(
    arch: ArchSpec = IVY_BRIDGE,
    independent_writes: int = 16,
    barriers: int = 200,
    write_latency_ns: float = 1000.0,
) -> ExperimentResult:
    """Section 6: pflush serialises independent writes; pcommit overlaps.

    A microbenchmark persisting ``independent_writes`` object fields per
    barrier (e.g. initialising a persistent object) runs under both write
    models.
    """
    calibration = calibrate_arch(arch)
    result = ExperimentResult(
        experiment_id="pcommit-ablation",
        title="pflush vs clflushopt+pcommit write models",
        columns=["write_model", "elapsed_us", "ns_per_barrier"],
    )
    elapsed_by_model = {}
    for model in (WriteModel.PFLUSH, WriteModel.PCOMMIT):
        sim = Simulator(seed=1)
        machine = Machine(sim, arch)
        os = SimOS(machine)
        quartz = Quartz(
            os,
            QuartzConfig(
                nvm_read_latency_ns=calibration.dram_local_ns * 1.001,
                nvm_write_latency_ns=write_latency_ns,
                write_model=model,
            ),
            calibration=calibration,
        )
        quartz.attach()
        timing: dict = {}

        def body(ctx):
            region = ctx.pmalloc(16 * MIB)
            start = ctx.now_ns
            for _ in range(barriers):
                # Persist independent fields of one object, then barrier.
                for _ in range(independent_writes):
                    yield from ctx.pflush(region, lines=1)
                yield Commit()
                yield Compute(200.0)
            timing["elapsed"] = ctx.now_ns - start

        os.create_thread(body)
        os.run_to_completion()
        elapsed_by_model[model] = timing["elapsed"]
        result.add_row(
            write_model=model.value,
            elapsed_us=timing["elapsed"] / 1000.0,
            ns_per_barrier=timing["elapsed"] / barriers,
        )
    speedup = (
        elapsed_by_model[WriteModel.PFLUSH]
        / elapsed_by_model[WriteModel.PCOMMIT]
    )
    result.note(
        f"pcommit model speedup on {independent_writes} independent writes: "
        f"{speedup:.1f}x (pflush pessimistically serializes, Section 6)"
    )
    return result


def run_dvfs_ablation(
    arch: ArchSpec = IVY_BRIDGE,
    target_ns: float = 600.0,
    iterations: int = 300_000,
    compute_cycles_per_access: float = 100.0,
) -> ExperimentResult:
    """Section 6: DVFS breaks the cycle<->ns translation.

    The workload mixes compute with memory so frequency actually matters;
    with DVFS enabled, stall-cycle counters accrue at a wandering
    frequency while Quartz converts with the nominal one.
    """
    calibration = calibrate_arch(arch)
    result = ExperimentResult(
        experiment_id="dvfs-ablation",
        title="Emulation error with DVFS enabled vs disabled",
        columns=["dvfs", "measured_ns", "error_pct"],
    )
    for dvfs_enabled in (False, True):
        sim = Simulator(seed=4)
        machine = Machine(sim, arch)
        if dvfs_enabled:
            machine.dvfs.enable()
        os = SimOS(machine)
        quartz = Quartz(
            os,
            QuartzConfig(
                nvm_read_latency_ns=target_ns, max_epoch_ns=0.5 * MILLISECOND
            ),
            calibration=calibration,
        )
        quartz.attach()
        out: dict = {}
        os.create_thread(
            memlat_body(MemLatConfig(iterations=iterations), out)
        )
        os.run_to_completion()
        measured = out["result"].measured_latency_ns
        result.add_row(
            dvfs="enabled" if dvfs_enabled else "disabled",
            measured_ns=measured,
            error_pct=100.0 * relative_error(measured, target_ns),
        )
    result.note(
        "the paper disables DVFS to preserve a fixed cycle/ns relationship "
        "(Section 6)"
    )
    return result


def run_model_ablation(
    arch: ArchSpec = IVY_BRIDGE,
    chain_counts: Sequence[int] = (1, 2, 4, 8),
    target_ns: float = 600.0,
    iterations: int = 200_000,
    jobs: Optional[int] = None,
) -> ExperimentResult:
    """Figure 2's argument quantified: Eq. (1) vs Eq. (2)/(3).

    The simple model over-injects by roughly the MLP factor; the
    stall-based model stays on target at every parallelism degree.
    """
    calibrate_arch(arch)
    result = ExperimentResult(
        experiment_id="model-ablation",
        title="Simple (Eq. 1) vs stall-based (Eq. 2/3) latency model",
        columns=["chains", "model", "measured_ns", "error_pct"],
    )
    grid = [
        (chains, model)
        for chains in chain_counts
        for model in ("stalls", "simple")
    ]
    specs = [
        RunSpec(
            workload="memlat",
            config=MemLatConfig(iterations=iterations, chains=chains),
            arch_name=arch.name,
            mode="conf1",
            seed=820,
            quartz=QuartzConfig(
                nvm_read_latency_ns=target_ns,
                latency_model=model,
                max_epoch_ns=0.5 * MILLISECOND,
            ),
        )
        for chains, model in grid
    ]
    for (chains, model), run in zip(grid, run_specs(specs, jobs=jobs)):
        measured = run.workload_result.measured_latency_ns
        result.add_row(
            chains=chains,
            model=model,
            measured_ns=measured,
            error_pct=100.0 * relative_error(measured, target_ns),
        )
    result.note(
        "Eq. 1 counts every miss as serialized, over-injecting by ~MLP x "
        "(Figure 2); Eq. 2/3 stays accurate as parallelism grows"
    )
    return result
