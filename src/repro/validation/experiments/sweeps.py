"""Sweep presets: the thousand-config grids behind ``quartz-repro sweep``.

The tier/migration experiments (PR 6) and the latency studies generate
exactly the grid shapes the ROADMAP's orchestration item anticipates —
hundreds to thousands of :class:`~repro.validation.runner.RunSpec`\\ s per
study.  A :class:`SweepPreset` packages one such grid declaratively:
how to build the specs for a named scale (``smoke``/``small``/``large``),
and how to turn each finished run into one result row.  The sweep engine
(:mod:`repro.validation.sweep`) streams the rows out in submission
order, so a preset's :class:`~repro.validation.reporting.ExperimentResult`
— and its export digest — is byte-identical whether the grid ran on one
job, on N jobs, or across an interrupt/resume boundary.

Each preset is also registered as a plain experiment driver
(``sweep-latency-grid`` …), so the grids run inline — no journal —
through the ordinary ``quartz-repro run`` path, the fast presets, and
the registry-wide export/fault test sweeps.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.errors import ValidationError
from repro.hw.arch import IVY_BRIDGE
from repro.quartz.calibration import calibrate_arch
from repro.quartz.config import EmulationMode, QuartzConfig
from repro.quartz.tiers import MemoryTier
from repro.units import MILLISECOND
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunResult, RunSpec
from repro.validation.sweep import (
    SweepJournal,
    SweepReport,
    run_sweep,
    spec_fingerprint,
)

#: Seed base for sweep grids (distinct from the figure experiments).
_GRID_SEED = 900

#: Base 3-tier read/write ladder the tier grids scale (ns).
_BASE_LADDER = ((250.0, 350.0), (400.0, 600.0), (700.0, 1100.0))


@dataclass(frozen=True)
class SweepPreset:
    """One named grid: spec builder plus per-spec row projection."""

    name: str
    title: str
    columns: tuple
    scales: tuple
    build: Callable[[str], list]
    row: Callable[[RunSpec, RunResult], dict]
    notes: tuple = ()


def _scale_kwargs(preset_name: str, scales: dict, scale: str) -> dict:
    if scale not in scales:
        raise ValidationError(
            f"unknown scale {scale!r} for sweep preset {preset_name!r} "
            f"(choose from {', '.join(sorted(scales))})"
        )
    return scales[scale]


# ----------------------------------------------------------------------
# latency-grid: MemLat across target latency x epoch length x seed
# ----------------------------------------------------------------------

_LATENCY_SCALES = {
    "smoke": dict(
        latencies=(300.0, 500.0), epochs_us=(100.0,), seeds=2,
        iterations=2_000,
    ),
    "small": dict(
        latencies=(200.0, 300.0, 400.0, 500.0, 700.0),
        epochs_us=(100.0, 500.0), seeds=12, iterations=2_000,
    ),
    "large": dict(
        latencies=(
            200.0, 300.0, 400.0, 500.0, 600.0, 700.0, 850.0, 1000.0,
            1300.0, 1700.0,
        ),
        epochs_us=(100.0, 200.0, 500.0, 1000.0, 2000.0),
        seeds=11, iterations=2_000,
    ),
}


def _build_latency_grid(scale: str) -> list:
    from repro.workloads.memlat import MemLatConfig

    kwargs = _scale_kwargs("latency-grid", _LATENCY_SCALES, scale)
    specs = []
    for target_ns in kwargs["latencies"]:
        for epoch_us in kwargs["epochs_us"]:
            for seed_offset in range(kwargs["seeds"]):
                specs.append(
                    RunSpec(
                        workload="memlat",
                        config=MemLatConfig(iterations=kwargs["iterations"]),
                        arch_name=IVY_BRIDGE.name,
                        mode="conf1",
                        seed=_GRID_SEED + seed_offset,
                        quartz=QuartzConfig(
                            nvm_read_latency_ns=target_ns,
                            max_epoch_ns=epoch_us * 1e3,
                        ),
                    )
                )
    return specs


def _latency_grid_row(spec: RunSpec, result: RunResult) -> dict:
    target_ns = spec.quartz.nvm_read_latency_ns
    measured_ns = result.workload_result.measured_latency_ns
    return {
        "arch": spec.arch_name,
        "target_ns": target_ns,
        "epoch_us": spec.quartz.max_epoch_ns / 1e3,
        "seed": spec.seed,
        "measured_ns": measured_ns,
        "error_pct": 100.0 * abs(measured_ns - target_ns) / target_ns,
        "events": result.events,
    }


# ----------------------------------------------------------------------
# tier-grid: tiered MultiLat across ladder scale factor x seed
# ----------------------------------------------------------------------

_TIER_SCALES = {
    "smoke": dict(factors=(1.0, 2.0), seeds=2, elements=3_000),
    "small": dict(
        factors=(1.0, 1.25, 1.5, 2.0, 2.5, 3.0), seeds=6, elements=3_000
    ),
    "large": dict(
        factors=(
            1.0, 1.2, 1.4, 1.6, 1.8, 2.0, 2.4, 2.8, 3.2, 3.6, 4.0, 4.5
        ),
        seeds=18, elements=3_000,
    ),
}


def _scaled_tiers(factor: float, dram_local_ns: float) -> tuple:
    tiers = [MemoryTier("dram", dram_local_ns, dram_local_ns)]
    for index, (read_ns, write_ns) in enumerate(_BASE_LADDER):
        tiers.append(
            MemoryTier(
                f"tier{index + 1}", read_ns * factor, write_ns * factor
            )
        )
    return tuple(tiers)


def _build_tier_grid(scale: str) -> list:
    from repro.workloads.multilat import MultiLatConfig

    kwargs = _scale_kwargs("tier-grid", _TIER_SCALES, scale)
    calibration = calibrate_arch(IVY_BRIDGE)
    elements = kwargs["elements"]
    specs = []
    for factor in kwargs["factors"]:
        tiers = _scaled_tiers(factor, calibration.dram_local_ns)
        config = QuartzConfig(
            mode=EmulationMode.MULTI_TIER,
            tiers=tiers,
            placement_policy="static",
            placement_order=tuple(range(1, len(_BASE_LADDER) + 1)),
            max_epoch_ns=1.0 * MILLISECOND,
        )
        workload = MultiLatConfig(
            dram_elements=elements,
            tier_elements=(elements,) * len(_BASE_LADDER),
        )
        for seed_offset in range(kwargs["seeds"]):
            specs.append(
                RunSpec(
                    workload="multilat", config=workload,
                    arch_name=IVY_BRIDGE.name, mode="conf1",
                    seed=_GRID_SEED + seed_offset, quartz=config,
                )
            )
    return specs


def _tier_grid_row(spec: RunSpec, result: RunResult) -> dict:
    tiers = spec.quartz.tiers
    dram_local_ns = tiers[0].read_latency_ns
    read_targets = tuple(tier.read_latency_ns for tier in tiers[1:])
    error = result.workload_result.tiered_emulation_error(
        dram_local_ns, read_targets
    )
    return {
        "arch": spec.arch_name,
        "tiers": len(tiers),
        "read_targets_ns": "/".join(f"{ns:g}" for ns in read_targets),
        "seed": spec.seed,
        "completion_ms": result.workload_result.elapsed_ns / 1e6,
        "error_pct": 100.0 * error,
        "events": result.events,
    }


# ----------------------------------------------------------------------
# migration-grid: placement policy x promote threshold x seed
# ----------------------------------------------------------------------

_MIGRATION_SCALES = {
    "smoke": dict(thresholds=(2_000,), seeds=1, elements=3_000),
    "small": dict(
        thresholds=(500, 1_000, 2_000, 4_000), seeds=5, elements=3_000
    ),
    "large": dict(
        thresholds=(250, 500, 750, 1_000, 1_500, 2_000, 3_000, 4_000),
        seeds=24, elements=3_000,
    ),
}


def _build_migration_grid(scale: str) -> list:
    from repro.workloads.multilat import MultiLatConfig

    kwargs = _scale_kwargs("migration-grid", _MIGRATION_SCALES, scale)
    calibration = calibrate_arch(IVY_BRIDGE)
    tiers = _scaled_tiers(1.0, calibration.dram_local_ns)
    elements = kwargs["elements"]
    workload = MultiLatConfig(
        dram_elements=elements,
        tier_elements=(elements,) * len(_BASE_LADDER),
    )
    # Threshold only means something to hot-promote; enumerating it for
    # the static policies would just duplicate spec fingerprints.
    cells = [("static", None), ("round-robin", None)]
    cells.extend(
        ("hot-promote", threshold) for threshold in kwargs["thresholds"]
    )
    specs = []
    for policy, threshold in cells:
        policy_kwargs = (
            {"promote_threshold_accesses": threshold}
            if threshold is not None
            else {}
        )
        config = QuartzConfig(
            mode=EmulationMode.MULTI_TIER,
            tiers=tiers,
            placement_policy=policy,
            max_epoch_ns=1.0 * MILLISECOND,
            **policy_kwargs,
        )
        for seed_offset in range(kwargs["seeds"]):
            specs.append(
                RunSpec(
                    workload="multilat", config=workload,
                    arch_name=IVY_BRIDGE.name, mode="conf1",
                    seed=_GRID_SEED + seed_offset, quartz=config,
                )
            )
    return specs


def _migration_grid_row(spec: RunSpec, result: RunResult) -> dict:
    report = (
        result.quartz_stats.tier_report if result.quartz_stats else None
    ) or {"placements": {}, "migrations": 0, "migrated_bytes": 0}
    threshold = spec.quartz.promote_threshold_accesses
    return {
        "arch": spec.arch_name,
        "policy": spec.quartz.placement_policy,
        "promote_threshold": (
            threshold if spec.quartz.placement_policy == "hot-promote" else 0
        ),
        "seed": spec.seed,
        "completion_ms": result.workload_result.elapsed_ns / 1e6,
        "migrations": report["migrations"],
        "migrated_mib": report["migrated_bytes"] / (1024 * 1024),
    }


# ----------------------------------------------------------------------
# service-grid: KV service across tier ladders and bandwidth throttles
# ----------------------------------------------------------------------

_SERVICE_GRID_SCALES = {
    "smoke": dict(
        factors=(1.0,), bandwidths=(2.0,), seeds=1,
        ops=300, keys=4_000, capacity=256,
    ),
    "small": dict(
        factors=(1.0, 1.5, 2.0), bandwidths=(1.0, 2.0, 5.0), seeds=3,
        ops=1_000, keys=20_000, capacity=1_024,
    ),
    "large": dict(
        factors=(1.0, 1.25, 1.5, 2.0, 2.5, 3.0),
        bandwidths=(0.5, 1.0, 2.0, 5.0, 10.0, 20.0), seeds=8,
        ops=2_000, keys=50_000, capacity=2_048,
    ),
}


def _build_service_grid(scale: str) -> list:
    from repro.service.cache import CacheConfig
    from repro.service.kvservice import ServiceConfig
    from repro.service.traces import TraceConfig

    kwargs = _scale_kwargs("service-grid", _SERVICE_GRID_SCALES, scale)
    calibration = calibrate_arch(IVY_BRIDGE)
    workload = ServiceConfig(
        trace=TraceConfig(
            tenants=2,
            ops_per_tenant=kwargs["ops"],
            keys_per_tenant=kwargs["keys"],
            seed=_GRID_SEED,
        ),
        cache=CacheConfig(capacity=kwargs["capacity"]),
        clients_per_tenant=2,
    )
    # Two cell families: the store placed across a scaled tier ladder,
    # and a two-memory NVM with a throttled write-bandwidth ceiling.
    quartz_cells = []
    for factor in kwargs["factors"]:
        quartz_cells.append(
            QuartzConfig(
                mode=EmulationMode.MULTI_TIER,
                tiers=_scaled_tiers(factor, calibration.dram_local_ns),
                placement_policy="static",
                placement_order=tuple(range(1, len(_BASE_LADDER) + 1)),
                max_epoch_ns=1.0 * MILLISECOND,
            )
        )
    for bandwidth in kwargs["bandwidths"]:
        quartz_cells.append(
            QuartzConfig(
                nvm_read_latency_ns=500.0,
                nvm_write_latency_ns=1_000.0,
                nvm_bandwidth_gbps=bandwidth,
            )
        )
    specs = []
    for quartz in quartz_cells:
        for seed_offset in range(kwargs["seeds"]):
            specs.append(
                RunSpec(
                    workload="kvservice", config=workload,
                    arch_name=IVY_BRIDGE.name, mode="service",
                    seed=_GRID_SEED + seed_offset, quartz=quartz,
                )
            )
    return specs


def _service_grid_row(spec: RunSpec, result: RunResult) -> dict:
    quartz = spec.quartz
    if quartz.mode is EmulationMode.MULTI_TIER:
        cell = "tiered"
        tiers = len(quartz.tiers)
        read_ns = quartz.tiers[-1].read_latency_ns
        bandwidth = 0.0
    else:
        cell = "throttled"
        tiers = 2
        read_ns = quartz.nvm_read_latency_ns
        bandwidth = quartz.nvm_bandwidth_gbps or 0.0
    report = result.service_report
    return {
        "arch": spec.arch_name,
        "cell": cell,
        "tiers": tiers,
        "read_ns": read_ns,
        "bandwidth_gbps": bandwidth,
        "seed": spec.seed,
        "ops": report["overall"]["ops"],
        "hit_pct": report["cache"]["totals"]["hit_pct"],
        "p99_us": (report["overall"]["p99_ns"] or 0.0) / 1e3,
        "throughput_kops": report["overall"]["throughput_ops_s"] / 1e3,
    }


# ----------------------------------------------------------------------
# The preset registry
# ----------------------------------------------------------------------

SWEEP_PRESETS: dict[str, SweepPreset] = {
    "latency-grid": SweepPreset(
        name="latency-grid",
        title="MemLat emulation error across a latency x epoch grid",
        columns=(
            "arch", "target_ns", "epoch_us", "seed", "measured_ns",
            "error_pct", "events",
        ),
        scales=tuple(sorted(_LATENCY_SCALES)),
        build=_build_latency_grid,
        row=_latency_grid_row,
        notes=(
            "Conf_1 MemLat per cell; error vs the injected target "
            "latency",
        ),
    ),
    "tier-grid": SweepPreset(
        name="tier-grid",
        title="Tiered MultiLat error across ladder scale factors",
        columns=(
            "arch", "tiers", "read_targets_ns", "seed", "completion_ms",
            "error_pct", "events",
        ),
        scales=tuple(sorted(_TIER_SCALES)),
        build=_build_tier_grid,
        row=_tier_grid_row,
        notes=(
            "base 3-tier ladder scaled per cell; error vs the N-tier "
            "closed form (static placement, one array per tier)",
        ),
    ),
    "service-grid": SweepPreset(
        name="service-grid",
        title="KV service tails across tier ladders and bandwidth throttles",
        columns=(
            "arch", "cell", "tiers", "read_ns", "bandwidth_gbps", "seed",
            "ops", "hit_pct", "p99_us", "throughput_kops",
        ),
        scales=tuple(sorted(_SERVICE_GRID_SCALES)),
        build=_build_service_grid,
        row=_service_grid_row,
        notes=(
            "one multi-tenant service run per cell: tiered cells place "
            "the store across a scaled ladder, throttled cells cap NVM "
            "write bandwidth at 500/1000 ns latency",
        ),
    ),
    "migration-grid": SweepPreset(
        name="migration-grid",
        title="Placement policies x promote thresholds on an N-tier machine",
        columns=(
            "arch", "policy", "promote_threshold", "seed", "completion_ms",
            "migrations", "migrated_mib",
        ),
        scales=tuple(sorted(_MIGRATION_SCALES)),
        build=_build_migration_grid,
        row=_migration_grid_row,
        notes=(
            "same tiered MultiLat per cell; thresholds enumerate only "
            "under hot-promote (other policies ignore them)",
        ),
    ),
}


def get_sweep_preset(name: str) -> SweepPreset:
    if name not in SWEEP_PRESETS:
        raise ValidationError(
            f"unknown sweep preset: {name!r} "
            f"(choose from {', '.join(sorted(SWEEP_PRESETS))})"
        )
    return SWEEP_PRESETS[name]


# ----------------------------------------------------------------------
# Execution: journaled (CLI sweep) and inline (registry drivers)
# ----------------------------------------------------------------------


@dataclass
class SweepRun:
    """One journaled sweep invocation's outcome."""

    preset: str
    scale: str
    result: ExperimentResult
    report: SweepReport


def _execute_preset(
    preset: SweepPreset,
    scale: str,
    specs: Sequence[RunSpec],
    journal: Optional[SweepJournal],
    jobs: Optional[int],
    interrupt_after: Optional[int] = None,
) -> tuple[ExperimentResult, SweepReport]:
    result = ExperimentResult(
        experiment_id=f"sweep-{preset.name}",
        title=preset.title,
        columns=list(preset.columns),
    )

    def consume(spec: RunSpec, run: RunResult) -> None:
        result.add_row(**preset.row(spec, run))

    report = run_sweep(
        specs,
        journal=journal,
        jobs=jobs,
        consume=consume,
        interrupt_after=interrupt_after,
    )
    for note in preset.notes:
        result.note(note)
    result.note(f"scale={scale}; {len(specs)} spec(s) in grid")
    return result, report


def start_sweep(
    preset_name: str,
    scale: str,
    directory: Union[str, Path],
    jobs: Optional[int] = None,
    interrupt_after: Optional[int] = None,
) -> SweepRun:
    """Create a journal in *directory* and run the preset's grid."""
    preset = get_sweep_preset(preset_name)
    specs = preset.build(scale)
    journal = SweepJournal.create(
        directory,
        [spec_fingerprint(spec) for spec in specs],
        name=preset_name,
        knobs={"preset": preset_name, "scale": scale},
    )
    result, report = _execute_preset(
        preset, scale, specs, journal, jobs, interrupt_after
    )
    return SweepRun(preset_name, scale, result, report)


def resume_sweep(
    directory: Union[str, Path],
    jobs: Optional[int] = None,
    interrupt_after: Optional[int] = None,
) -> SweepRun:
    """Resume a journaled sweep: verified checkpoints are reused, only
    the remainder executes, and the merged result is byte-identical to
    an uninterrupted run."""
    journal = SweepJournal.open(directory)
    knobs = journal.header.get("knobs", {})
    preset_name = knobs.get("preset")
    scale = knobs.get("scale")
    if not preset_name or not scale:
        raise ValidationError(
            f"{journal.journal_path}: journal names no preset/scale; "
            "cannot rebuild the grid"
        )
    preset = get_sweep_preset(preset_name)
    specs = preset.build(scale)
    result, report = _execute_preset(
        preset, scale, specs, journal, jobs, interrupt_after
    )
    return SweepRun(preset_name, scale, result, report)


def sweep_status(directory: Union[str, Path]) -> dict:
    """Progress snapshot of a journaled sweep directory."""
    journal = SweepJournal.open(directory)
    try:
        return journal.status()
    finally:
        journal.close()


# ----------------------------------------------------------------------
# Registry drivers (inline, no journal)
# ----------------------------------------------------------------------


def _run_inline(
    preset_name: str, scale: str, jobs: Optional[int]
) -> ExperimentResult:
    preset = get_sweep_preset(preset_name)
    specs = preset.build(scale)
    result, _ = _execute_preset(preset, scale, specs, None, jobs)
    return result


def run_latency_grid(
    scale: str = "small", jobs: Optional[int] = None
) -> ExperimentResult:
    """MemLat error over a latency x epoch grid (streaming sweep)."""
    return _run_inline("latency-grid", scale, jobs)


def run_tier_grid(
    scale: str = "small", jobs: Optional[int] = None
) -> ExperimentResult:
    """Tiered MultiLat error across ladder scale factors (sweep)."""
    return _run_inline("tier-grid", scale, jobs)


def run_migration_grid(
    scale: str = "small", jobs: Optional[int] = None
) -> ExperimentResult:
    """Placement policy x threshold study as a streaming sweep."""
    return _run_inline("migration-grid", scale, jobs)


def run_service_grid(
    scale: str = "small", jobs: Optional[int] = None
) -> ExperimentResult:
    """KV-service tails across tiers and throttles (streaming sweep)."""
    return _run_inline("service-grid", scale, jobs)
