"""Per-figure/table experiment drivers.

Each function regenerates one artefact of the paper's evaluation and
returns an :class:`~repro.validation.reporting.ExperimentResult`.  The
``REGISTRY`` maps CLI names to drivers; every driver accepts scaling
keyword arguments with defaults small enough for CI, and EXPERIMENTS.md
records the scaled-vs-paper parameter mapping.
"""

from repro.validation.experiments.micro import (
    run_epoch_size_study,
    run_figure8,
    run_figure11,
    run_figure12,
    run_table2,
)
from repro.validation.experiments.threads import run_figure13
from repro.validation.experiments.twomem import run_figure14
from repro.validation.experiments.applications import (
    run_figure15,
    run_figure16_bandwidth,
    run_figure16_latency,
    run_graph500_validation,
    run_pagerank_validation,
)
from repro.validation.experiments.overhead import (
    run_dvfs_ablation,
    run_model_ablation,
    run_overhead_study,
    run_pcommit_ablation,
)
from repro.validation.experiments.extensions import (
    run_asymmetric_bandwidth,
    run_kv_write_models,
    run_loaded_latency_study,
    run_parallel_pagerank,
    run_technology_comparison,
)
from repro.validation.experiments.crash import run_crash_check
from repro.validation.experiments.explore import run_explore_check
from repro.validation.experiments.tiers import (
    run_migration_policy,
    run_tier_sweep,
)
from repro.validation.experiments.service import (
    SERVICE_PRESETS,
    run_cache_policy,
    run_service_latency,
)
from repro.validation.experiments.sweeps import (
    SWEEP_PRESETS,
    run_latency_grid,
    run_migration_grid,
    run_service_grid,
    run_tier_grid,
)

#: CLI name -> experiment driver.
REGISTRY = {
    "table2": run_table2,
    "figure8": run_figure8,
    "figure11": run_figure11,
    "figure12": run_figure12,
    "figure13": run_figure13,
    "figure14": run_figure14,
    "figure15": run_figure15,
    "figure16-latency": run_figure16_latency,
    "figure16-bandwidth": run_figure16_bandwidth,
    "pagerank-validation": run_pagerank_validation,
    "graph500-validation": run_graph500_validation,
    "overhead-study": run_overhead_study,
    "epoch-size-study": run_epoch_size_study,
    "pcommit-ablation": run_pcommit_ablation,
    "dvfs-ablation": run_dvfs_ablation,
    "model-ablation": run_model_ablation,
    # Extensions beyond the paper's evaluation (Section 7 agenda).
    "parallel-pagerank": run_parallel_pagerank,
    "asymmetric-bandwidth": run_asymmetric_bandwidth,
    "loaded-latency-study": run_loaded_latency_study,
    "technology-comparison": run_technology_comparison,
    "kv-write-models": run_kv_write_models,
    "crash-check": run_crash_check,
    "explore-check": run_explore_check,
    "tier-sweep": run_tier_sweep,
    "migration-policy": run_migration_policy,
    # The trace-driven multi-tenant KV service (repro.service).
    "service-latency": run_service_latency,
    "cache-policy": run_cache_policy,
    # Streaming sweep grids (see repro.validation.sweep): the same
    # presets `quartz-repro sweep` checkpoints, run inline.
    "sweep-latency-grid": run_latency_grid,
    "sweep-tier-grid": run_tier_grid,
    "sweep-migration-grid": run_migration_grid,
    "sweep-service-grid": run_service_grid,
}

__all__ = ["REGISTRY", "SERVICE_PRESETS", "SWEEP_PRESETS"] + sorted(
    name for name in dir() if name.startswith("run_")
)
