"""Machine-readable experiment export: schema-versioned JSON documents.

Every experiment the CLI (or a script) runs can be serialized to a
single JSON document with three sections:

* ``experiment`` — the :class:`~repro.validation.reporting.ExperimentResult`
  itself (id, title, columns, rows, notes);
* ``manifest`` — a :class:`RunManifest`: everything needed to tell
  whether two runs are comparable — package version, Python version,
  git SHA, the architecture fingerprints / workloads / modes / seeds the
  grid covered, the calibration schema, and the CLI knobs;
* ``telemetry`` — the volatile counters from the PR-1 runner summary
  (wall times, job count, events, calibration cache hits/misses).

Determinism contract: the ``experiment`` and ``manifest`` sections are
**byte-identical for any ``--jobs`` value** (the runner's guarantee
carried into the export); ``telemetry`` is the one legitimately volatile
section.  The manifest's ``content_digest`` is a SHA-256 over the
canonical form (everything except telemetry), so two exports are
comparable by a single field: equal digest ⇔ identical results and
provenance, whatever machine load or parallelism produced them.
"""

from __future__ import annotations

import hashlib
import json
import platform
import subprocess
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro import __version__ as package_version
from repro.errors import ValidationError
from repro.hw.arch import arch_by_name
from repro.quartz.calibration import CALIBRATION_CACHE_SCHEMA, arch_fingerprint
from repro.validation.reporting import ExperimentResult
from repro.validation.runner import RunnerStats

#: Schema identity of the export document.
EXPORT_SCHEMA = "quartz-repro/experiment"
#: Bump when the document layout changes incompatibly.
EXPORT_SCHEMA_VERSION = 1


def git_sha() -> Optional[str]:
    """The current checkout's commit SHA, or ``None`` outside a repo."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    if completed.returncode != 0 or not sha:
        return None
    return sha


@dataclass(frozen=True)
class RunManifest:
    """Provenance attached to every exported experiment.

    Two runs with equal manifests (ignoring ``content_digest``, which
    additionally covers the result rows) were produced by the same code,
    on the same simulated testbeds, from the same seeds — so any
    difference in their rows is a real behaviour change.
    """

    package_version: str
    python_version: str
    git_sha: Optional[str]
    #: arch name -> :func:`~repro.quartz.calibration.arch_fingerprint`.
    archs: dict = field(default_factory=dict)
    workloads: tuple = ()
    modes: tuple = ()
    seeds: tuple = ()
    calibration_seeds: tuple = ()
    calibration_schema: int = CALIBRATION_CACHE_SCHEMA
    #: The CLI/config knobs of the invocation (experiment id, --arch,
    #: --trials, ...).  Volatile knobs (``--jobs``) belong in telemetry.
    knobs: dict = field(default_factory=dict)
    #: The :meth:`~repro.faults.plan.FaultPlan.to_dict` of a faulted
    #: invocation (None for clean runs).  Digest-covered, so a faulted
    #: export can never pass for a clean one.
    faults: Optional[dict] = None
    #: The :meth:`~repro.pmem.crash.CrashPlan.to_dict` of a crash-checked
    #: invocation (None otherwise).  Digest-covered for the same reason:
    #: the crash-point plan is part of what the results mean.
    crash: Optional[dict] = None
    #: The :meth:`~repro.explore.ExplorePlan.to_dict` of a model-checking
    #: invocation (None otherwise).  Digest-covered: pruning and budget
    #: settings decide what "explored exhaustively" means.
    explore: Optional[dict] = None
    #: The service scenario of a KV-service invocation (None otherwise):
    #: trace/cache/client configuration, via
    #: :meth:`~repro.service.kvservice.ServiceConfig.to_dict`.
    #: Digest-covered — the offered load is part of what tails mean.
    service: Optional[dict] = None

    def to_dict(self) -> dict:
        return {
            "package_version": self.package_version,
            "python_version": self.python_version,
            "git_sha": self.git_sha,
            "archs": dict(sorted(self.archs.items())),
            "workloads": list(self.workloads),
            "modes": list(self.modes),
            "seeds": list(self.seeds),
            "calibration_seeds": list(self.calibration_seeds),
            "calibration_schema": self.calibration_schema,
            "knobs": dict(self.knobs),
            "faults": dict(self.faults) if self.faults is not None else None,
            "crash": dict(self.crash) if self.crash is not None else None,
            "explore": (
                dict(self.explore) if self.explore is not None else None
            ),
            "service": (
                dict(self.service) if self.service is not None else None
            ),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RunManifest":
        try:
            return cls(
                package_version=str(payload["package_version"]),
                python_version=str(payload["python_version"]),
                git_sha=payload.get("git_sha"),
                archs=dict(payload.get("archs", {})),
                workloads=tuple(payload.get("workloads", ())),
                modes=tuple(payload.get("modes", ())),
                seeds=tuple(payload.get("seeds", ())),
                calibration_seeds=tuple(payload.get("calibration_seeds", ())),
                calibration_schema=int(
                    payload.get("calibration_schema", CALIBRATION_CACHE_SCHEMA)
                ),
                knobs=dict(payload.get("knobs", {})),
                faults=(
                    dict(payload["faults"])
                    if payload.get("faults") is not None
                    else None
                ),
                crash=(
                    dict(payload["crash"])
                    if payload.get("crash") is not None
                    else None
                ),
                explore=(
                    dict(payload["explore"])
                    if payload.get("explore") is not None
                    else None
                ),
                service=(
                    dict(payload["service"])
                    if payload.get("service") is not None
                    else None
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise ValidationError(f"malformed manifest payload: {error}")


def build_manifest(
    stats: Optional[RunnerStats] = None,
    knobs: Optional[dict] = None,
    faults: Optional[dict] = None,
    crash: Optional[dict] = None,
    explore: Optional[dict] = None,
    service: Optional[dict] = None,
) -> RunManifest:
    """Assemble a manifest from a driver invocation's runner stats.

    ``stats`` is the :func:`~repro.validation.runner.consume_run_stats`
    aggregate (its provenance sets are deterministic for any job count);
    ``knobs`` records the invocation's configuration flags; ``faults``
    is the active :meth:`~repro.faults.plan.FaultPlan.to_dict` (if any);
    ``crash`` the :meth:`~repro.pmem.crash.CrashPlan.to_dict` of a
    crash-checked invocation; ``explore`` the
    :meth:`~repro.explore.ExplorePlan.to_dict` of a model-checking one;
    ``service`` the scenario dict of a KV-service one.
    """
    archs: dict = {}
    workloads: tuple = ()
    modes: tuple = ()
    seeds: tuple = ()
    calibration_seeds: tuple = ()
    if stats is not None:
        archs = {
            name: arch_fingerprint(arch_by_name(name))
            for name in sorted(stats.arch_names)
        }
        workloads = tuple(sorted(stats.workloads))
        modes = tuple(sorted(stats.modes))
        seeds = tuple(sorted(stats.seeds))
        calibration_seeds = tuple(sorted(stats.calibration_seeds))
    return RunManifest(
        package_version=package_version,
        python_version=platform.python_version(),
        git_sha=git_sha(),
        archs=archs,
        workloads=workloads,
        modes=modes,
        seeds=seeds,
        calibration_seeds=calibration_seeds,
        knobs=dict(knobs or {}),
        faults=dict(faults) if faults is not None else None,
        crash=dict(crash) if crash is not None else None,
        explore=dict(explore) if explore is not None else None,
        service=dict(service) if service is not None else None,
    )


# ----------------------------------------------------------------------
# Documents
# ----------------------------------------------------------------------


def canonical_document(document: dict) -> dict:
    """The digest-covered portion: everything except ``telemetry``.

    The manifest's ``content_digest`` field (absent until
    :func:`build_document` stamps it) is also excluded, so the digest
    can be recomputed from a finished document.
    """
    canonical = {
        key: value for key, value in document.items() if key != "telemetry"
    }
    manifest = canonical.get("manifest")
    if isinstance(manifest, dict):
        canonical["manifest"] = {
            key: value
            for key, value in manifest.items()
            if key != "content_digest"
        }
    return canonical


def canonical_json(document: dict) -> str:
    """Minified, key-sorted JSON of the canonical portion."""
    return json.dumps(
        canonical_document(document), sort_keys=True, separators=(",", ":")
    )


def content_digest(document: dict) -> str:
    """SHA-256 hex digest over :func:`canonical_json`."""
    return hashlib.sha256(canonical_json(document).encode("utf-8")).hexdigest()


def experiment_digest(document: dict) -> str:
    """SHA-256 over the ``experiment`` section alone.

    Unlike :func:`content_digest` this ignores the manifest, whose
    ``git_sha`` / version fields legitimately change between commits —
    so it is the digest to pin in golden regression tests: it moves if
    and only if simulated results move.
    """
    section = document.get("experiment")
    if section is None:
        raise ValidationError("document has no 'experiment' section")
    text = json.dumps(section, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def build_document(
    result: ExperimentResult,
    manifest: RunManifest,
    telemetry: Optional[dict] = None,
) -> dict:
    """Assemble the full export document and stamp its content digest."""
    document = {
        "schema": EXPORT_SCHEMA,
        "schema_version": EXPORT_SCHEMA_VERSION,
        "experiment": result.to_dict(),
        "manifest": manifest.to_dict(),
        "telemetry": telemetry,
    }
    document["manifest"]["content_digest"] = content_digest(document)
    return document


def dumps_document(document: dict) -> str:
    """Pretty, key-sorted JSON text of a document (newline-terminated)."""
    return json.dumps(document, indent=2, sort_keys=True) + "\n"


def write_experiment_json(
    path: Union[str, Path],
    result: ExperimentResult,
    stats: Optional[RunnerStats] = None,
    knobs: Optional[dict] = None,
    manifest: Optional[RunManifest] = None,
    faults: Optional[dict] = None,
    crash: Optional[dict] = None,
    explore: Optional[dict] = None,
    service: Optional[dict] = None,
) -> dict:
    """Serialize one experiment to *path*; returns the written document.

    The manifest defaults to :func:`build_manifest` over ``stats``,
    ``knobs``, ``faults``, ``crash``, ``explore``, and ``service``;
    telemetry is taken from ``stats`` when present.
    """
    if manifest is None:
        manifest = build_manifest(
            stats=stats, knobs=knobs, faults=faults, crash=crash,
            explore=explore, service=service,
        )
    telemetry = stats.telemetry() if stats is not None else None
    document = build_document(result, manifest, telemetry=telemetry)
    Path(path).write_text(dumps_document(document), encoding="utf-8")
    return document


def load_experiment_json(path: Union[str, Path]) -> dict:
    """Load and validate an export document written by this module.

    Checks the schema identity and version, verifies the stored content
    digest against the document body, and returns the document dict.
    """
    try:
        document = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as error:
        raise ValidationError(f"cannot load experiment export: {error}")
    if not isinstance(document, dict) or document.get("schema") != EXPORT_SCHEMA:
        raise ValidationError(f"{path}: not a {EXPORT_SCHEMA} document")
    if document.get("schema_version") != EXPORT_SCHEMA_VERSION:
        raise ValidationError(
            f"{path}: unsupported schema version "
            f"{document.get('schema_version')!r} "
            f"(supported: {EXPORT_SCHEMA_VERSION})"
        )
    stored = (document.get("manifest") or {}).get("content_digest")
    if stored is not None and stored != content_digest(document):
        raise ValidationError(
            f"{path}: content digest mismatch (document was modified "
            "after export)"
        )
    return document


def result_from_document(document: dict) -> ExperimentResult:
    """Rebuild the :class:`ExperimentResult` from a loaded document."""
    return ExperimentResult.from_dict(document["experiment"])


def manifest_from_document(document: dict) -> RunManifest:
    """Rebuild the :class:`RunManifest` from a loaded document."""
    return RunManifest.from_dict(document["manifest"])
