"""Streaming, checkpointed sweep orchestration for thousand-config grids.

:func:`~repro.validation.runner.run_specs` fans a grid out and hands the
caller one in-memory result list — fine for a figure's dozen runs, wrong
for the tier×policy×throttle grids the N-tier experiments generate.
This module is the scale-out path:

* **Fingerprinted work queue.**  Every :class:`RunSpec` digests to a
  canonical-form fingerprint (:func:`spec_fingerprint` — the export
  machinery's sorted-key minified-JSON convention applied to the spec
  itself), and a sweep is a queue of fingerprints journaled to disk.
* **Per-spec futures.**  Specs are submitted individually, so an idle
  worker always pulls the next pending spec — a straggler (a crash-check
  shard, a hot-promote migration run) never idles a chunk's worth of
  workers the way a chunked ``pool.map`` does.
* **Streaming results.**  Each finished run is pickled, digested, and
  appended to a JSONL shard file the moment it completes; the in-order
  merge buffers only out-of-order completions (its peak is reported as
  ``stream_merge_peak_rows``), so a 1000-spec sweep never materializes
  the full result list.  Rows reach the caller through a ``consume``
  callback in strict submission order, preserving the byte-identical
  ``--jobs 1`` vs ``--jobs N`` digest guarantee.
* **Checkpoint/resume.**  An interrupted sweep restarts by loading the
  journal's completed-spec records, re-verifying each shard record's
  digest (a tampered or torn record is re-executed, never trusted), and
  running only the remainder.  The merged output — and therefore the
  export digest — is byte-identical to an uninterrupted run.

The journal is two append-only JSONL files in a sweep directory:
``journal.jsonl`` (a header record naming the grid, then one ``done``
record per finished spec) and ``results.jsonl`` (one record per finished
spec carrying the pickled :class:`RunResult` base64-encoded plus its
SHA-256).  Append-only means a crash at any point leaves at worst one
torn trailing record, which verification discards.
"""

from __future__ import annotations

import base64
import enum
import hashlib
import json
import pickle
import sys
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, fields as dataclass_fields, is_dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.errors import RunInterrupted, ValidationError
from repro.faults.context import get_active_faults
from repro.validation import runner as runner_module
from repro.validation.runner import (
    RunResult,
    RunSpec,
    _ensure_stats,
    _prewarm_calibrations,
    _record_result,
    _record_spec,
    _run_one,
    resolve_jobs,
)

#: Schema identity of the sweep journal.
SWEEP_SCHEMA = "quartz-repro/sweep-journal"
#: Bump when the journal layout changes incompatibly.
SWEEP_SCHEMA_VERSION = 1

#: Pinned pickle protocol: shard records must verify across interpreter
#: invocations, so the encoding cannot float with the default.
_PICKLE_PROTOCOL = 4

JOURNAL_FILENAME = "journal.jsonl"
SHARD_FILENAME = "results.jsonl"


# ----------------------------------------------------------------------
# Canonical spec fingerprints
# ----------------------------------------------------------------------


def _canonical_value(value) -> object:
    """Encode one spec field as a JSON-stable value.

    Dataclasses and enums keep their identity (class path + fields), so
    two configs that merely *compare* equal but mean different things
    never collide; anything unencodable falls back to the SHA-256 of its
    pinned-protocol pickle (deterministic for deterministically built
    objects — a seeded synthetic graph, a crash plan).
    """
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return float(value)
    if isinstance(value, enum.Enum):
        return {
            "__enum__": f"{type(value).__module__}.{type(value).__qualname__}",
            "value": _canonical_value(value.value),
        }
    if is_dataclass(value) and not isinstance(value, type):
        return {
            "__dataclass__": (
                f"{type(value).__module__}.{type(value).__qualname__}"
            ),
            "fields": {
                spec_field.name: _canonical_value(
                    getattr(value, spec_field.name)
                )
                for spec_field in dataclass_fields(value)
            },
        }
    if isinstance(value, (list, tuple)):
        return [_canonical_value(item) for item in value]
    if isinstance(value, (set, frozenset)):
        encoded = [_canonical_value(item) for item in value]
        return {"__set__": sorted(encoded, key=_sort_key)}
    if isinstance(value, dict):
        pairs = [
            [_canonical_value(key), _canonical_value(item)]
            for key, item in value.items()
        ]
        return {"__mapping__": sorted(pairs, key=lambda pair: _sort_key(pair[0]))}
    if isinstance(value, bytes):
        return {"__bytes__": base64.b64encode(value).decode("ascii")}
    payload = pickle.dumps(value, _PICKLE_PROTOCOL)
    return {"__pickle_sha256__": hashlib.sha256(payload).hexdigest()}


def _sort_key(encoded) -> str:
    return json.dumps(encoded, sort_keys=True, separators=(",", ":"))


def canonical_spec(spec: RunSpec) -> dict:
    """The canonical (JSON-stable) form of one spec."""
    encoded = _canonical_value(spec)
    assert isinstance(encoded, dict)
    return encoded


def spec_fingerprint(spec: RunSpec) -> str:
    """SHA-256 hex digest over the canonical form of one spec."""
    text = json.dumps(
        canonical_spec(spec), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def grid_digest(fingerprints: Sequence[str]) -> str:
    """Identity of a whole ordered grid (order matters: it is the merge
    order, and therefore part of what the output bytes mean)."""
    return hashlib.sha256("\n".join(fingerprints).encode("ascii")).hexdigest()


# ----------------------------------------------------------------------
# The journal
# ----------------------------------------------------------------------


@dataclass
class ShardRecord:
    """One completed spec as the journal knows it."""

    index: int
    fingerprint: str
    digest: str
    offset: int


class SweepJournal:
    """Append-only on-disk state of one sweep (see module docstring).

    ``journal.jsonl`` line 1 is the header; every further line is a
    ``done`` record ``{index, fingerprint, digest, offset}`` pointing at
    the byte offset of the matching record in ``results.jsonl``.  The
    class never rewrites either file; resuming appends.
    """

    def __init__(self, directory: Union[str, Path], header: dict,
                 completed: dict):
        self.directory = Path(directory)
        self.header = header
        #: fingerprint -> :class:`ShardRecord` (latest wins).
        self.completed = completed
        self._journal_handle = None
        self._shard_append = None
        self._shard_read = None

    # -- paths ---------------------------------------------------------
    @property
    def journal_path(self) -> Path:
        return self.directory / JOURNAL_FILENAME

    @property
    def shard_path(self) -> Path:
        return self.directory / SHARD_FILENAME

    # -- lifecycle -----------------------------------------------------
    @classmethod
    def create(
        cls,
        directory: Union[str, Path],
        fingerprints: Sequence[str],
        name: str = "sweep",
        knobs: Optional[dict] = None,
    ) -> "SweepJournal":
        """Start a fresh sweep directory; refuses to clobber one."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        journal_path = directory / JOURNAL_FILENAME
        if journal_path.exists():
            raise ValidationError(
                f"{journal_path}: sweep journal already exists "
                "(resume it, or point --dir at a fresh directory)"
            )
        header = {
            "type": "header",
            "schema": SWEEP_SCHEMA,
            "schema_version": SWEEP_SCHEMA_VERSION,
            "name": name,
            "total": len(fingerprints),
            "grid_digest": grid_digest(fingerprints),
            "knobs": dict(knobs or {}),
        }
        journal = cls(directory, header, {})
        with open(journal_path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
        (directory / SHARD_FILENAME).touch()
        return journal

    @classmethod
    def open(cls, directory: Union[str, Path]) -> "SweepJournal":
        """Load an existing journal (header + completed records).

        A torn trailing line — the signature of a crash mid-append — is
        skipped; shard digests are *not* verified here (that happens
        per-record before reuse, see :meth:`verify`).
        """
        directory = Path(directory)
        journal_path = directory / JOURNAL_FILENAME
        try:
            lines = journal_path.read_text(encoding="utf-8").splitlines()
        except OSError as error:
            raise ValidationError(f"cannot open sweep journal: {error}")
        if not lines:
            raise ValidationError(f"{journal_path}: empty sweep journal")
        try:
            header = json.loads(lines[0])
        except ValueError as error:
            raise ValidationError(f"{journal_path}: corrupt header: {error}")
        if header.get("schema") != SWEEP_SCHEMA:
            raise ValidationError(
                f"{journal_path}: not a {SWEEP_SCHEMA} journal"
            )
        if header.get("schema_version") != SWEEP_SCHEMA_VERSION:
            raise ValidationError(
                f"{journal_path}: unsupported journal version "
                f"{header.get('schema_version')!r} "
                f"(supported: {SWEEP_SCHEMA_VERSION})"
            )
        completed: dict = {}
        for line in lines[1:]:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
                if record.get("type") != "done":
                    continue
                shard = ShardRecord(
                    index=int(record["index"]),
                    fingerprint=str(record["fingerprint"]),
                    digest=str(record["digest"]),
                    offset=int(record["offset"]),
                )
            except (KeyError, TypeError, ValueError):
                continue  # torn trailing record: the spec just re-runs
            completed[shard.fingerprint] = shard
        return cls(directory, header, completed)

    def close(self) -> None:
        for handle in (
            self._journal_handle, self._shard_append, self._shard_read
        ):
            if handle is not None:
                handle.close()
        self._journal_handle = None
        self._shard_append = None
        self._shard_read = None

    def __enter__(self) -> "SweepJournal":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- recording -----------------------------------------------------
    def record_result(
        self, index: int, fingerprint: str, result: RunResult
    ) -> ShardRecord:
        """Append one finished run: shard record first, then the journal
        ``done`` line — so a crash between the two loses nothing (an
        unreferenced shard line is dead weight, not corruption)."""
        payload = pickle.dumps(result, _PICKLE_PROTOCOL)
        digest = hashlib.sha256(payload).hexdigest()
        if self._shard_append is None:
            self._shard_append = open(self.shard_path, "a", encoding="utf-8")
        self._shard_append.seek(0, 2)
        offset = self._shard_append.tell()
        self._shard_append.write(
            json.dumps(
                {
                    "index": index,
                    "fingerprint": fingerprint,
                    "digest": digest,
                    "payload": base64.b64encode(payload).decode("ascii"),
                },
                sort_keys=True,
            )
            + "\n"
        )
        self._shard_append.flush()
        if self._journal_handle is None:
            self._journal_handle = open(
                self.journal_path, "a", encoding="utf-8"
            )
        record = ShardRecord(
            index=index, fingerprint=fingerprint, digest=digest, offset=offset
        )
        self._journal_handle.write(
            json.dumps(
                {
                    "type": "done",
                    "index": index,
                    "fingerprint": fingerprint,
                    "digest": digest,
                    "offset": offset,
                },
                sort_keys=True,
            )
            + "\n"
        )
        self._journal_handle.flush()
        self.completed[fingerprint] = record
        return record

    # -- reuse ---------------------------------------------------------
    def _read_shard_entry(self, record: ShardRecord) -> Optional[dict]:
        if self._shard_read is None:
            try:
                self._shard_read = open(
                    self.shard_path, "r", encoding="utf-8"
                )
            except OSError:
                return None
        try:
            self._shard_read.seek(record.offset)
            line = self._shard_read.readline()
            entry = json.loads(line)
        except (OSError, ValueError):
            return None
        if (
            entry.get("fingerprint") != record.fingerprint
            or entry.get("digest") != record.digest
        ):
            return None
        try:
            payload = base64.b64decode(entry["payload"], validate=True)
        except (KeyError, ValueError):
            return None
        if hashlib.sha256(payload).hexdigest() != record.digest:
            return None
        entry["_payload_bytes"] = payload
        return entry

    def verify(self, record: ShardRecord) -> bool:
        """Tamper check: does the shard record still match its digest?"""
        return self._read_shard_entry(record) is not None

    def load_result(self, record: ShardRecord) -> RunResult:
        """Load one checkpointed result, verifying before unpickling."""
        entry = self._read_shard_entry(record)
        if entry is None:
            raise ValidationError(
                f"{self.shard_path}: shard record for "
                f"{record.fingerprint[:12]} failed its digest check "
                "(tampered or torn)"
            )
        result = pickle.loads(entry["_payload_bytes"])
        if not isinstance(result, RunResult):
            raise ValidationError(
                f"{self.shard_path}: shard record for "
                f"{record.fingerprint[:12]} is not a RunResult"
            )
        return result

    # -- introspection -------------------------------------------------
    def status(self) -> dict:
        """Progress snapshot for ``quartz-repro sweep status``."""
        total = int(self.header.get("total", 0))
        done = len(self.completed)
        return {
            "name": self.header.get("name"),
            "knobs": dict(self.header.get("knobs", {})),
            "total": total,
            "done": done,
            "remaining": max(0, total - done),
            "grid_digest": self.header.get("grid_digest"),
            "journal": str(self.journal_path),
            "shards": str(self.shard_path),
        }


# ----------------------------------------------------------------------
# The engine
# ----------------------------------------------------------------------


@dataclass
class SweepReport:
    """What one :func:`run_sweep` invocation did."""

    total: int = 0
    #: Specs actually executed this invocation.
    executed: int = 0
    #: Specs satisfied from verified checkpoint records.
    skipped: int = 0
    #: Checkpoint records that failed verification and were re-executed.
    tampered: int = 0
    #: High-water mark of the streaming merge's out-of-order buffer.
    peak_buffered: int = 0


def run_sweep(
    specs: Sequence[RunSpec],
    journal: Optional[SweepJournal] = None,
    jobs: Optional[int] = None,
    consume: Optional[Callable[[RunSpec, RunResult], None]] = None,
    interrupt_after: Optional[int] = None,
) -> SweepReport:
    """Execute a grid as a streaming, checkpointed work queue.

    ``consume(spec, result)`` is called exactly once per spec, in
    submission order, as soon as each result is mergeable — never with
    the full list in memory.  With a ``journal``, finished specs are
    checkpointed as they complete and verified checkpoints from earlier
    invocations are reused instead of re-executed.

    ``interrupt_after`` is the deterministic crash point the resume
    tests and the CI smoke ride on: after that many fresh completions
    are journaled the sweep raises
    :class:`~repro.errors.RunInterrupted`, exactly as Ctrl-C would.

    Raises :class:`~repro.errors.RunInterrupted` on interruption; the
    partial :class:`~repro.validation.runner.RunnerStats` window (stop
    reason ``"interrupted"``) is recorded first, and every completed
    spec is already journaled.
    """
    jobs = resolve_jobs(jobs)
    if runner_module._trace_writer is not None:
        jobs = 1  # single-writer JSONL trace stream (same results)
    specs = list(specs)
    total = len(specs)
    fingerprints = [spec_fingerprint(spec) for spec in specs]
    if journal is not None:
        expected = journal.header.get("grid_digest")
        if expected != grid_digest(fingerprints):
            raise ValidationError(
                "sweep journal does not match this grid (grid digest "
                f"{grid_digest(fingerprints)[:12]} != journal "
                f"{str(expected)[:12]}); was the journal created for a "
                "different preset/scale?"
            )
    stats = _ensure_stats(jobs)
    for spec in specs:
        _record_spec(stats, spec)
    started = time.perf_counter()

    # Which checkpointed records are trustworthy?
    reusable: dict = {}
    report = SweepReport(total=total)
    if journal is not None:
        for fingerprint in dict.fromkeys(fingerprints):
            record = journal.completed.get(fingerprint)
            if record is None:
                continue
            if journal.verify(record):
                reusable[fingerprint] = record
            else:
                report.tampered += 1
                print(
                    f"note: checkpointed result {fingerprint[:12]} failed "
                    "its digest check; re-executing that spec",
                    file=sys.stderr,
                )
    todo = [
        index
        for index, fingerprint in enumerate(fingerprints)
        if fingerprint not in reusable
    ]
    report.skipped = total - len(todo)
    stats.specs_skipped += report.skipped
    stats.queue_depth = max(stats.queue_depth, len(todo))

    context = get_active_faults()
    fault_context = (
        (context.plan, context.check_invariants)
        if context is not None and context.active
        else None
    )

    def payload(index: int):
        if fault_context is not None:
            return (index, specs[index], fault_context)
        return (index, specs[index])

    # Streaming in-order merge state.
    next_index = 0
    pending: dict = {}
    done_indices: set = set()

    def drain() -> None:
        nonlocal next_index
        while next_index < total:
            fingerprint = fingerprints[next_index]
            if next_index in pending:
                result = pending.pop(next_index)
            elif fingerprint in reusable:
                result = journal.load_result(reusable[fingerprint])
                result.index = next_index
            else:
                break
            if consume is not None:
                consume(specs[next_index], result)
            next_index += 1

    def finish_one(
        index: int, result: RunResult, check_interrupt: bool = True
    ) -> None:
        report.executed += 1
        done_indices.add(index)
        if journal is not None:
            journal.record_result(index, fingerprints[index], result)
        _record_result(stats, result)
        pending[index] = result
        report.peak_buffered = max(report.peak_buffered, len(pending))
        stats.stream_merge_peak_rows = max(
            stats.stream_merge_peak_rows, len(pending)
        )
        drain()
        if (
            check_interrupt
            and interrupt_after is not None
            and report.executed >= interrupt_after
        ):
            raise KeyboardInterrupt

    def record_interrupt(error: BaseException) -> RunInterrupted:
        stats.wall_s += time.perf_counter() - started
        stats.stop_reason = "interrupted"
        progress = report.executed + report.skipped
        interrupt = RunInterrupted(
            f"sweep interrupted ({type(error).__name__}): {progress} of "
            f"{total} spec(s) checkpointed; resume skips them",
            completed=progress,
            total=total,
        )
        return interrupt

    try:
        remaining = list(todo)
        if jobs > 1 and len(remaining) > 1:
            _prewarm_calibrations([specs[index] for index in remaining])
            try:
                pool = ProcessPoolExecutor(
                    max_workers=min(jobs, len(remaining))
                )
            except (NotImplementedError, OSError, PermissionError) as error:
                print(
                    f"note: process pool unavailable ({error!r}); "
                    "running in-process",
                    file=sys.stderr,
                )
            else:
                future_index: dict = {}
                try:
                    future_index = {
                        pool.submit(_run_one, payload(index)): index
                        for index in remaining
                    }
                    for future in as_completed(future_index):
                        finish_one(future_index[future], future.result())
                except (KeyboardInterrupt, BrokenProcessPool) as error:
                    for future in future_index:
                        future.cancel()
                    pool.shutdown(wait=False, cancel_futures=True)
                    # Checkpoint runs that finished but were not yet
                    # merged — an interrupt wastes nothing journaled.
                    for future, index in future_index.items():
                        if index in done_indices or not future.done():
                            continue
                        if future.cancelled():
                            continue
                        try:
                            if future.exception() is None:
                                finish_one(
                                    index, future.result(),
                                    check_interrupt=False,
                                )
                        except Exception:
                            pass
                    raise record_interrupt(error) from error
                except pickle.PicklingError as error:
                    pool.shutdown(wait=True, cancel_futures=True)
                    print(
                        f"note: process pool unavailable ({error!r}); "
                        "running in-process",
                        file=sys.stderr,
                    )
                else:
                    pool.shutdown()
        remaining = [index for index in todo if index not in done_indices]
        try:
            for index in remaining:
                finish_one(index, _run_one(payload(index)))
        except KeyboardInterrupt as error:
            raise record_interrupt(error) from error
        drain()
    finally:
        if journal is not None:
            journal.close()
    if next_index != total:
        raise ValidationError(
            f"sweep merge incomplete: consumed {next_index} of {total} "
            "spec(s) (internal error)"
        )
    stats.wall_s += time.perf_counter() - started
    return report
