"""Validation methodology of Section 4.3 and the per-figure experiments.

``repro.validation.configs`` provides the paper's two testbed
configurations: **Conf_1** (local memory + Quartz emulating a slower
latency) and **Conf_2** (memory physically bound to the remote socket via
the numactl analogue).  Emulation error compares the two.

``repro.validation.experiments`` has one module per table/figure; see
DESIGN.md's experiment index.  ``repro.validation.runner`` executes
declarative grids of runs (:class:`RunSpec`), optionally across worker
processes, with byte-identical results for any job count.
``repro.validation.sweep`` layers a streaming, checkpointed work queue
on top (journaled resume-after-crash, same digest guarantee).
"""

from repro.validation.configs import RunOutcome, run_conf1, run_conf2, run_native
from repro.validation.metrics import TrialStats, relative_error, summarize
from repro.validation.reporting import ExperimentResult, render_table
from repro.validation.runner import RunResult, RunSpec, RunnerStats, run_specs
from repro.validation.sweep import (
    SweepJournal,
    SweepReport,
    run_sweep,
    spec_fingerprint,
)

__all__ = [
    "ExperimentResult",
    "RunOutcome",
    "RunResult",
    "RunSpec",
    "RunnerStats",
    "SweepJournal",
    "SweepReport",
    "TrialStats",
    "relative_error",
    "render_table",
    "run_conf1",
    "run_conf2",
    "run_native",
    "run_specs",
    "run_sweep",
    "spec_fingerprint",
    "summarize",
]
