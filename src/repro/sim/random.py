"""Deterministic, named random streams for the simulator.

Every stochastic element of the model (performance-counter noise, workload
data, measured-latency jitter) draws from its own named stream so that
adding randomness to one component never perturbs another.  Stream seeds
are derived with CRC32, which is stable across interpreter runs (unlike
``hash(str)``).
"""

from __future__ import annotations

import random
import zlib


class RandomStreams:
    """A factory of independent, reproducible ``random.Random`` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the stream for *name*, creating it deterministically."""
        existing = self._streams.get(name)
        if existing is not None:
            return existing
        derived = (self.seed * 0x9E3779B1 + zlib.crc32(name.encode("utf-8"))) & 0xFFFFFFFF
        stream = random.Random(derived)
        self._streams[name] = stream
        return stream

    def fork(self, salt: int) -> "RandomStreams":
        """Derive an independent family of streams (e.g. per trial)."""
        return RandomStreams(seed=(self.seed * 1_000_003 + salt) & 0x7FFFFFFF)
