"""The discrete-event simulator loop."""

from __future__ import annotations

import heapq
from typing import Callable, Iterator, Optional

from repro.errors import SimulationError
from repro.sim.events import ScheduledEvent
from repro.sim.random import RandomStreams


class Simulator:
    """A single-clock discrete-event simulator.

    Time is a float number of nanoseconds starting at zero.  Events
    scheduled at equal times fire in scheduling order (FIFO), which keeps
    runs deterministic.

    The simulator owns a :class:`~repro.sim.random.RandomStreams` factory so
    every model component can draw reproducible randomness without sharing a
    stream.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        self._heap: list[ScheduledEvent] = []
        self._seq = 0
        self._events_dispatched = 0
        self.random = RandomStreams(seed=seed)
        #: Optional hook mapping a relative delay to a perturbed delay —
        #: the fault layer's timer-jitter/drift seam.  Must return a
        #: non-negative float; None (the default) costs one attribute
        #: check per schedule.
        self.schedule_interceptor: Optional[Callable[[float], float]] = None
        #: Optional hook invoked with each event as it is dispatched,
        #: after the clock advances — the invariant monitor's view of
        #: clock monotonicity and FIFO tie-breaking.
        self.dispatch_observer: Optional[Callable[[ScheduledEvent], None]] = None

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* to run ``delay_ns`` from now."""
        if self.schedule_interceptor is not None:
            delay_ns = self.schedule_interceptor(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        return self.schedule_at(self.now + delay_ns, callback)

    def schedule_at(self, time_ns: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated time ``time_ns``."""
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        event = ScheduledEvent(time_ns, self._seq, callback)
        self._seq += 1
        heapq.heappush(self._heap, event)
        return event

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next pending event.  Returns False if none remain."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self.now = event.time
            self._events_dispatched += 1
            if self.dispatch_observer is not None:
                self.dispatch_observer(event)
            event._fire()
            return True
        return False

    def run(
        self,
        until_ns: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> str:
        """Run until the event heap drains, *until_ns* passes, or
        *max_events* more events have been dispatched.

        Returns the stop reason:

        * ``"drained"`` — no pending events remain.  With ``until_ns``
          the clock still advances to the horizon.
        * ``"until"`` — the next pending event lies beyond ``until_ns``;
          the clock is advanced to exactly ``until_ns`` (later events
          stay queued).
        * ``"max-events"`` — the budget ran out with events still
          pending inside the horizon.  The clock advances to the earlier
          of the next pending event and ``until_ns``, so the two bounds
          compose: time never passes an undispatched event and never
          passes the horizon.
        """
        budget = max_events
        while self._heap:
            event = self._next_pending()
            if event is None:
                break
            if until_ns is not None and event.time > until_ns:
                self.now = max(self.now, until_ns)
                return "until"
            if budget is not None:
                if budget <= 0:
                    if until_ns is not None:
                        self.now = max(self.now, min(event.time, until_ns))
                    return "max-events"
                budget -= 1
            self.step()
        if until_ns is not None:
            self.now = max(self.now, until_ns)
        return "drained"

    def run_until_condition(
        self,
        predicate: Callable[[], bool],
        max_events: int = 50_000_000,
    ) -> None:
        """Run until *predicate* becomes true.

        Raises :class:`SimulationError` if the heap drains (or the event
        budget is exhausted) first — usually a deadlock in the modelled
        system.
        """
        remaining = max_events
        while not predicate():
            if remaining <= 0:
                raise SimulationError("event budget exhausted before condition held")
            if not self.step():
                raise SimulationError(
                    "event heap drained before condition held (deadlock?)"
                )
            remaining -= 1

    def _next_pending(self) -> Optional[ScheduledEvent]:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0] if self._heap else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_event_count(self) -> int:
        """Number of still-pending (non-cancelled) events."""
        return sum(1 for e in self._heap if e.pending)

    @property
    def events_dispatched(self) -> int:
        """Total events fired since construction."""
        return self._events_dispatched

    def spawn(self, generator: Iterator, name: str = "process"):
        """Create and start a :class:`~repro.sim.process.Process`.

        Imported lazily to avoid a circular import between kernel and
        process modules.
        """
        from repro.sim.process import Process

        return Process(self, generator, name=name)
