"""The discrete-event simulator loop.

The kernel dispatches through one of two loops sharing identical
semantics:

* the **fast path** — taken whenever no :attr:`Simulator.dispatch_observer`
  is armed.  A tight loop with the heap, ``heappop`` and the event free
  list bound to locals, slot-direct attribute access (no property calls),
  and batched bookkeeping: ``events_dispatched`` and the pending-event
  counter are reconciled when the loop exits rather than per event.
  Fired events with no outside references are recycled through a
  free list, so steady-state dispatch allocates nothing.
* the **observable path** — taken while a dispatch observer (the
  invariant monitor's seam) is armed.  Every event flows through the
  observer exactly as before the fast path existed, with counters exact
  at each dispatch.

Arming or disarming the observer mid-run is honoured: the loops check a
wake flag each iteration and :meth:`Simulator.run` re-selects the path.
Both paths dispatch byte-identical event sequences — the fast path is a
pure mechanical specialisation, never a semantic fork.

Cancellation is lazy (O(1)), but no longer unbounded: the simulator
counts cancelled entries still in the heap and compacts in place once
they exceed half of a non-trivial heap, preserving FIFO tie-break order
(the (time, seq) total order survives re-heapification).
"""

from __future__ import annotations

from heapq import heapify as _heapify, heappop as _heappop, heappush as _heappush
from sys import getrefcount, maxsize
from typing import Callable, Iterator, Optional

from repro.errors import SimulationError
from repro.sim.events import ScheduledEvent
from repro.sim.random import RandomStreams

_INF = float("inf")

#: Fired/cancelled events kept for reuse; beyond this the GC takes over.
_POOL_MAX = 4096
#: Compact only heaps larger than this (small heaps drain fast anyway).
_COMPACT_MIN_HEAP = 1024


class Simulator:
    """A single-clock discrete-event simulator.

    Time is a float number of nanoseconds starting at zero.  Events
    scheduled at equal times fire in scheduling order (FIFO), which keeps
    runs deterministic.

    The simulator owns a :class:`~repro.sim.random.RandomStreams` factory so
    every model component can draw reproducible randomness without sharing a
    stream.
    """

    def __init__(self, seed: int = 0):
        self.now: float = 0.0
        #: Heap entries are ``(time, seq, event)`` tuples: heapq then
        #: compares floats and ints in C, never reaching a Python-level
        #: ``__lt__`` — the single largest dispatch cost in the
        #: event-object heap layout this replaced.  ``seq`` is unique,
        #: so the event object itself is never compared.
        self._heap: list[tuple[float, int, ScheduledEvent]] = []
        self._seq = 0
        self._events_dispatched = 0
        #: Live count of still-pending events (maintained on schedule,
        #: cancel, and fire — never recomputed by scanning the heap).
        self._pending = 0
        #: Cancelled entries still sitting in the heap.
        self._cancelled_in_heap = 0
        #: Times the heap was compacted (introspection/bench counter).
        self.compactions = 0
        #: Free list of fired events with no outside references.
        self._free: list[ScheduledEvent] = []
        #: Set by :meth:`request_stop`; consumed by the run loops.
        self._stop = False
        #: One-bit doorbell the run loops poll: stop requested or an
        #: observer armed mid-run.
        self._wake = False
        self.random = RandomStreams(seed=seed)
        #: Optional hook mapping a relative delay to a perturbed delay —
        #: the fault layer's timer-jitter/drift seam.  Must return a
        #: non-negative float; None (the default) costs one attribute
        #: check per schedule.
        self.schedule_interceptor: Optional[Callable[[float], float]] = None
        self._dispatch_observer: Optional[
            Callable[[ScheduledEvent], None]
        ] = None

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------
    @property
    def dispatch_observer(self) -> Optional[Callable[[ScheduledEvent], None]]:
        """Optional hook invoked with each event as it is dispatched,
        after the clock advances — the invariant monitor's view of
        clock monotonicity and FIFO tie-breaking.  While armed, dispatch
        runs on the observable path; arming mid-run takes effect before
        the next event fires."""
        return self._dispatch_observer

    @dispatch_observer.setter
    def dispatch_observer(
        self, hook: Optional[Callable[[ScheduledEvent], None]]
    ) -> None:
        self._dispatch_observer = hook
        if hook is not None:
            self._wake = True  # kick a fast loop onto the observable path

    def request_stop(self) -> None:
        """Ask the running dispatch loop to return ``"stopped"`` before
        the next event fires.  Sticky until a run loop consumes it."""
        self._stop = True
        self._wake = True

    def cancel_stop(self) -> None:
        """Withdraw a pending :meth:`request_stop` (e.g. new work arrived
        in the same callback that requested the stop)."""
        self._stop = False

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay_ns: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* to run ``delay_ns`` from now."""
        interceptor = self.schedule_interceptor
        if interceptor is not None:
            delay_ns = interceptor(delay_ns)
        if delay_ns < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay_ns})")
        seq = self._seq
        self._seq = seq + 1
        time_ns = self.now + delay_ns
        free = self._free
        if free:
            event = free.pop()
            event.time = time_ns
            event.seq = seq
            event.callback = callback
            event._cancelled = False
            event._fired = False
        else:
            event = ScheduledEvent(time_ns, seq, callback, self)
        _heappush(self._heap, (time_ns, seq, event))
        self._pending += 1
        return event

    def schedule_at(self, time_ns: float, callback: Callable[[], None]) -> ScheduledEvent:
        """Schedule *callback* at absolute simulated time ``time_ns``."""
        if time_ns < self.now:
            raise SimulationError(
                f"cannot schedule at t={time_ns} before now={self.now}"
            )
        seq = self._seq
        self._seq = seq + 1
        free = self._free
        if free:
            event = free.pop()
            event.time = time_ns
            event.seq = seq
            event.callback = callback
            event._cancelled = False
            event._fired = False
        else:
            event = ScheduledEvent(time_ns, seq, callback, self)
        _heappush(self._heap, (time_ns, seq, event))
        self._pending += 1
        return event

    # ------------------------------------------------------------------
    # Cancellation hygiene
    # ------------------------------------------------------------------
    def _note_cancel(self) -> None:
        """Called by :meth:`ScheduledEvent.cancel` exactly once per event."""
        self._pending -= 1
        cancelled = self._cancelled_in_heap + 1
        self._cancelled_in_heap = cancelled
        heap = self._heap
        if len(heap) > _COMPACT_MIN_HEAP and cancelled * 2 > len(heap):
            self._compact()

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify, in place.

        In-place (``heap[:] = ...``) so a running dispatch loop's local
        binding stays valid.  FIFO tie-break order is preserved: events
        are totally ordered by (time, seq), so re-heapifying cannot
        reorder equal-time dispatches.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if not entry[2]._cancelled]
        _heapify(heap)
        self._cancelled_in_heap = 0
        self.compactions += 1

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Dispatch the next pending event.  Returns False if none remain."""
        heap = self._heap
        while heap:
            time_ns, _, event = _heappop(heap)
            if event._cancelled:
                self._cancelled_in_heap -= 1
                continue
            self.now = time_ns
            self._events_dispatched += 1
            self._pending -= 1
            observer = self._dispatch_observer
            if observer is not None:
                observer(event)
            event._fire()
            return True
        return False

    def run(
        self,
        until_ns: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> str:
        """Run until the event heap drains, *until_ns* passes, *max_events*
        more events have been dispatched, or a stop is requested.

        Returns the stop reason:

        * ``"drained"`` — no pending events remain.  With ``until_ns``
          the clock still advances to the horizon.
        * ``"until"`` — the next pending event lies beyond ``until_ns``;
          the clock is advanced to exactly ``until_ns`` (later events
          stay queued).
        * ``"max-events"`` — the budget ran out with events still
          pending inside the horizon.  The clock advances to the earlier
          of the next pending event and ``until_ns``, so the two bounds
          compose: time never passes an undispatched event and never
          passes the horizon.
        * ``"stopped"`` — :meth:`request_stop` was called (usually from
          a callback); no further event was dispatched after it.
        """
        remaining = max_events
        while True:
            if self._dispatch_observer is None and not self._wake:
                reason, dispatched = self._run_fast(until_ns, remaining)
            else:
                reason, dispatched = self._run_observed(until_ns, remaining)
            if remaining is not None:
                remaining -= dispatched
            if reason is not None:
                return reason
            # reason None: the active loop yielded so the other could
            # take over (observer armed or disarmed mid-run).

    def _run_fast(
        self, until_ns: Optional[float], max_events: Optional[int]
    ) -> tuple[Optional[str], int]:
        """The no-hooks dispatch loop (see module docstring)."""
        heap = self._heap
        pop = _heappop
        push = _heappush
        free = self._free
        refcount = getrefcount
        until = _INF if until_ns is None else until_ns
        budget = maxsize if max_events is None else max_events
        dispatched = 0
        try:
            while heap:
                # Pop eagerly: the common iteration dispatches, so one
                # heap operation replaces peek-then-pop.  The rare exits
                # (wake, horizon, budget) push the entry straight back —
                # it was the minimum, so the heap order is unchanged.
                # Unpacking (not binding the tuple) drops the entry's
                # last reference, keeping the refcount gate meaningful.
                time_ns, seq, event = pop(heap)
                if event._cancelled:
                    self._cancelled_in_heap -= 1
                    if refcount(event) == 2 and len(free) < _POOL_MAX:
                        event.callback = None
                        free.append(event)
                    continue
                if self._wake:
                    push(heap, (time_ns, seq, event))
                    self._wake = False
                    if self._stop:
                        self._stop = False
                        return "stopped", dispatched
                    return None, dispatched  # observer armed: switch loops
                if time_ns > until:
                    push(heap, (time_ns, seq, event))
                    if until > self.now:
                        self.now = until
                    return "until", dispatched
                if dispatched >= budget:
                    push(heap, (time_ns, seq, event))
                    if until_ns is not None:
                        self.now = max(self.now, min(time_ns, until))
                    return "max-events", dispatched
                self.now = time_ns
                event._fired = True
                dispatched += 1
                event.callback()
                if refcount(event) == 2 and len(free) < _POOL_MAX:
                    event.callback = None
                    free.append(event)
        finally:
            self._events_dispatched += dispatched
            self._pending -= dispatched
        if self._wake:
            self._wake = False
            if self._stop:
                self._stop = False
                return "stopped", 0
        if until_ns is not None and until_ns > self.now:
            self.now = until_ns
        return "drained", 0

    def _run_observed(
        self, until_ns: Optional[float], max_events: Optional[int]
    ) -> tuple[Optional[str], int]:
        """The hook-visible dispatch loop: exact counters, observer seam."""
        heap = self._heap
        budget = maxsize if max_events is None else max_events
        dispatched = 0
        while heap:
            time_ns, _, event = heap[0]
            if event._cancelled:
                _heappop(heap)
                self._cancelled_in_heap -= 1
                continue
            if self._wake:
                self._wake = False
                if self._stop:
                    self._stop = False
                    return "stopped", dispatched
            observer = self._dispatch_observer
            if observer is None:
                return None, dispatched  # observer disarmed: fast path
            if until_ns is not None and time_ns > until_ns:
                self.now = max(self.now, until_ns)
                return "until", dispatched
            if dispatched >= budget:
                if until_ns is not None:
                    self.now = max(self.now, min(time_ns, until_ns))
                return "max-events", dispatched
            _heappop(heap)
            self.now = time_ns
            self._events_dispatched += 1
            self._pending -= 1
            dispatched += 1
            observer(event)
            event._fire()
        if self._wake:
            self._wake = False
            if self._stop:
                self._stop = False
                return "stopped", dispatched
        if until_ns is not None:
            self.now = max(self.now, until_ns)
        return "drained", dispatched

    def run_until_condition(
        self,
        predicate: Callable[[], bool],
        max_events: int = 50_000_000,
    ) -> None:
        """Run until *predicate* becomes true.

        The predicate is re-evaluated between events, so this is the
        slow, fully-general form — prefer :meth:`request_stop` from a
        callback when the completion condition has a natural owner (see
        ``SimOS.run_to_completion``).

        Raises :class:`SimulationError` if the heap drains (or the event
        budget is exhausted) first — usually a deadlock in the modelled
        system.
        """
        remaining = max_events
        while not predicate():
            if remaining <= 0:
                raise SimulationError("event budget exhausted before condition held")
            if not self.step():
                raise SimulationError(
                    "event heap drained before condition held (deadlock?)"
                )
            remaining -= 1

    def _next_pending(self) -> Optional[ScheduledEvent]:
        heap = self._heap
        while heap and heap[0][2]._cancelled:
            _heappop(heap)
            self._cancelled_in_heap -= 1
        return heap[0][2] if heap else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def pending_event_count(self) -> int:
        """Number of still-pending (non-cancelled) events.

        Maintained as a live counter on schedule/cancel/fire — O(1),
        never a heap scan.  During a fast-path run the fired share is
        reconciled when the loop exits; it is exact whenever client code
        can observe it between runs, steps, or observable dispatches.
        """
        return self._pending

    @property
    def cancelled_event_count(self) -> int:
        """Cancelled entries still occupying heap slots (pre-compaction)."""
        return self._cancelled_in_heap

    @property
    def events_dispatched(self) -> int:
        """Total events fired since construction."""
        return self._events_dispatched

    def spawn(self, generator: Iterator, name: str = "process"):
        """Create and start a :class:`~repro.sim.process.Process`.

        Imported lazily to avoid a circular import between kernel and
        process modules.
        """
        from repro.sim.process import Process

        return Process(self, generator, name=name)
