"""Cancellable scheduled events for the discrete-event kernel."""

from __future__ import annotations

from typing import Callable, Optional, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class ScheduledEvent:
    """A callback scheduled at a simulated time, cancellable before firing.

    Cancellation is lazy: the heap entry stays in place and is discarded
    when popped.  This makes :meth:`cancel` O(1), which matters because the
    core model cancels and reschedules completion events whenever a signal
    interrupts an in-flight memory activity.  The owning simulator keeps a
    live count of cancelled entries and compacts the heap when they
    dominate, so cancel-heavy runs cannot grow the heap without bound.

    Instances are pooled by the kernel's fast dispatch path: once fired
    (or popped cancelled) with no outside references left, an event is
    reset and reused for a later :meth:`Simulator.schedule` call.  Holding
    a reference to an event keeps it out of the pool, so handles returned
    to callers always describe the event they scheduled.
    """

    __slots__ = ("time", "seq", "callback", "sim", "_cancelled", "_fired")

    def __init__(
        self,
        time: float,
        seq: int,
        callback: Callable[[], None],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.seq = seq
        self.callback = callback
        self.sim = sim
        self._cancelled = False
        self._fired = False

    def cancel(self) -> None:
        """Prevent the event from firing.  Idempotent; no-op if already fired."""
        if self._cancelled or self._fired:
            return
        self._cancelled = True
        sim = self.sim
        if sim is not None:
            sim._note_cancel()

    @property
    def cancelled(self) -> bool:
        """True if :meth:`cancel` was called before the event fired."""
        return self._cancelled

    @property
    def fired(self) -> bool:
        """True once the callback has been invoked."""
        return self._fired

    @property
    def pending(self) -> bool:
        """True while the event is still scheduled to fire."""
        return not self._cancelled and not self._fired

    def _fire(self) -> None:
        self._fired = True
        self.callback()

    def __lt__(self, other: "ScheduledEvent") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else ("fired" if self._fired else "pending")
        return f"ScheduledEvent(t={self.time!r}, seq={self.seq}, {state})"
