"""Discrete-event simulation kernel.

The kernel is deliberately tiny: a cancellable event heap
(:mod:`repro.sim.events`), a simulator loop (:mod:`repro.sim.kernel`), and
generator-based processes with interrupt support
(:mod:`repro.sim.process`).  Everything else in the reproduction — the
hardware model, the OS layer, Quartz itself — is built out of these three
pieces.
"""

from repro.sim.events import ScheduledEvent
from repro.sim.kernel import Simulator
from repro.sim.process import Condition, Interrupt, Process, Timeout

__all__ = [
    "Condition",
    "Interrupt",
    "Process",
    "ScheduledEvent",
    "Simulator",
    "Timeout",
]
