"""Generator-based processes with interrupt support.

A :class:`Process` wraps a Python generator.  The generator yields
*waitables*:

* :class:`Timeout` — resume after a simulated delay;
* :class:`Condition` — resume when another entity fires the condition
  (the fired value becomes the result of the ``yield``);
* another :class:`Process` — resume when it finishes (its return value
  becomes the result of the ``yield``).

While suspended, a process may be **interrupted**
(:meth:`Process.interrupt`): the pending wait is cancelled and an
:class:`Interrupt` exception carrying a payload is thrown into the
generator at the ``yield`` point.  This is the mechanism the simulated OS
uses to deliver POSIX-style signals — exactly how the Quartz monitor thread
forces application threads to close their epochs (paper Section 3.1,
Figure 5, step 2).
"""

from __future__ import annotations

from typing import Any, Iterator, Optional, TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:
    from repro.sim.kernel import Simulator


class Interrupt(Exception):
    """Thrown into a process generator when it is interrupted."""

    def __init__(self, payload: Any = None):
        super().__init__(payload)
        self.payload = payload


class Timeout:
    """Yieldable: suspend the process for ``delay_ns`` simulated time."""

    __slots__ = ("delay_ns",)

    def __init__(self, delay_ns: float):
        if delay_ns < 0:
            raise SimulationError(f"negative timeout: {delay_ns}")
        self.delay_ns = delay_ns

    def __repr__(self) -> str:
        return f"Timeout({self.delay_ns!r})"


class Condition:
    """A one-shot waitable that processes can block on.

    Multiple processes may wait; all are resumed (in wait order) when the
    condition fires.  Waiting on an already-fired condition resumes on the
    next dispatch with the fired value.
    """

    __slots__ = ("sim", "name", "fired", "value", "_waiters")

    def __init__(self, sim: "Simulator", name: str = "condition"):
        self.sim = sim
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: list[Process] = []

    def fire(self, value: Any = None) -> None:
        """Fire the condition, resuming all waiters with *value*."""
        if self.fired:
            raise SimulationError(f"condition {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for process in waiters:
            process._schedule_resume(value=value)

    def _add_waiter(self, process: "Process") -> None:
        if self.fired:
            process._schedule_resume(value=self.value)
        else:
            self._waiters.append(process)

    def _remove_waiter(self, process: "Process") -> None:
        if process in self._waiters:
            self._waiters.remove(process)

    def __repr__(self) -> str:
        state = f"fired={self.value!r}" if self.fired else f"{len(self._waiters)} waiters"
        return f"Condition({self.name!r}, {state})"


class Process:
    """A running generator-based simulation process."""

    def __init__(self, sim: "Simulator", generator: Iterator, name: str = "process"):
        self.sim = sim
        self.name = name
        self._generator = generator
        self.done = False
        self.result: Any = None
        self.failure: Optional[BaseException] = None
        #: Fires with the generator's return value when the process ends.
        self.done_condition = Condition(sim, name=f"{name}.done")
        self._pending_event = None  # ScheduledEvent for a resume, if any
        self._waiting_on: Optional[Condition] = None
        self._running = False
        # The resume value/exception ride on the process (a process has at
        # most one pending resume), and the kernel callback is bound once —
        # so resuming allocates no per-resume closure.  ``sim.schedule`` is
        # also bound once: the resume path is the hottest process code.
        self._resume_value: Any = None
        self._resume_exc: Optional[BaseException] = None
        self._resume = self._resume_step
        self._sim_schedule = sim.schedule
        # Start the process on the next dispatch at the current time.
        self._schedule_resume(value=None)

    # ------------------------------------------------------------------
    # Resumption machinery
    # ------------------------------------------------------------------
    def _resume_step(self) -> None:
        """The kernel callback: advance the generator one step."""
        value, exc = self._resume_value, self._resume_exc
        self._resume_value = None
        self._resume_exc = None
        self._pending_event = None
        self._waiting_on = None
        self._running = True
        try:
            if exc is not None:
                yielded = self._generator.throw(exc)
            else:
                yielded = self._generator.send(value)
        except StopIteration as stop:
            self._finish(result=stop.value)
            return
        except Interrupt as leaked:
            # An Interrupt escaping the generator means the workload did not
            # install a handler; treat as abnormal termination.
            self._finish(failure=leaked)
            return
        finally:
            self._running = False
        if type(yielded) is Timeout:
            # Inlined hot branch of _wait_on: a Timeout wait is what
            # every Compute/Spin op becomes, so it skips the extra call.
            self._pending_event = self._sim_schedule(
                yielded.delay_ns, self._resume
            )
            return
        self._wait_on(yielded)

    def _schedule_resume(
        self, value: Any = None, exc: Optional[BaseException] = None
    ) -> None:
        if self.done:
            raise SimulationError(f"cannot resume finished process {self.name!r}")
        pending = self._pending_event
        if pending is not None and not pending._cancelled and not pending._fired:
            raise SimulationError(f"process {self.name!r} already has a pending resume")
        self._resume_value = value
        self._resume_exc = exc
        self._pending_event = self._sim_schedule(0.0, self._resume)

    def _wait_on(self, yielded: Any) -> None:
        if isinstance(yielded, Timeout):
            # The resume slots are already clear (_resume_step consumed
            # them before advancing the generator).
            self._pending_event = self._sim_schedule(
                yielded.delay_ns, self._resume
            )
        elif isinstance(yielded, Condition):
            self._waiting_on = yielded
            yielded._add_waiter(self)
        elif isinstance(yielded, Process):
            self._waiting_on = yielded.done_condition
            yielded.done_condition._add_waiter(self)
        else:
            raise SimulationError(
                f"process {self.name!r} yielded unsupported value {yielded!r}"
            )

    def _finish(
        self, result: Any = None, failure: Optional[BaseException] = None
    ) -> None:
        self.done = True
        self.result = result
        self.failure = failure
        if failure is not None and not self.done_condition._waiters:
            raise failure
        self.done_condition.fire(result)

    # ------------------------------------------------------------------
    # Interrupts
    # ------------------------------------------------------------------
    def interrupt(self, payload: Any = None) -> bool:
        """Cancel the process's current wait and throw :class:`Interrupt`.

        Returns False (and does nothing) if the process already finished —
        interrupt/exit races are benign, exactly like signalling a thread
        that has just terminated.
        """
        if self.done:
            return False
        if self._running:
            raise SimulationError(
                f"cannot interrupt process {self.name!r} while it is on-stack"
            )
        if self._pending_event is not None and self._pending_event.pending:
            self._pending_event.cancel()
            self._pending_event = None
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        self._schedule_resume(exc=Interrupt(payload))
        return True

    @property
    def interruptible(self) -> bool:
        """True if the process is suspended and can receive an interrupt."""
        return not self.done and not self._running

    def __repr__(self) -> str:
        state = "done" if self.done else ("running" if self._running else "waiting")
        return f"Process({self.name!r}, {state})"
