"""Benchmark workloads from the paper's evaluation (Section 4).

Microbenchmarks:

* :mod:`repro.workloads.memlat` — the pointer-chasing, MLP-configurable
  latency benchmark (Section 4.4);
* :mod:`repro.workloads.stream` — the STREAM *copy* kernel used for
  bandwidth-throttling validation (Figure 8);
* :mod:`repro.workloads.multithreaded` — N threads x K critical sections
  (Section 4.5);
* :mod:`repro.workloads.multilat` — two-array DRAM/NVM chase with
  configurable access patterns (Section 4.6).

Applications (Section 4.7):

* :mod:`repro.workloads.kvstore` — a B+-tree key-value store standing in
  for MassTree;
* :mod:`repro.workloads.pagerank` — power-iteration PageRank on a
  synthetic scale-free graph;
* :mod:`repro.workloads.graphs` — the shared graph substrate;
* :mod:`repro.workloads.graph500` — level-synchronous BFS (the Graph500
  kernel referenced in Section 7).
"""

from repro.workloads.memlat import MemLatConfig, MemLatResult, memlat_body
from repro.workloads.multilat import MultiLatConfig, MultiLatResult, multilat_body
from repro.workloads.multithreaded import (
    MultiThreadedConfig,
    MultiThreadedResult,
    multithreaded_main_body,
)
from repro.workloads.stream import StreamConfig, StreamResult, stream_main_body

__all__ = [
    "MemLatConfig",
    "MemLatResult",
    "MultiLatConfig",
    "MultiLatResult",
    "MultiThreadedConfig",
    "MultiThreadedResult",
    "StreamConfig",
    "StreamResult",
    "memlat_body",
    "multilat_body",
    "multithreaded_main_body",
    "stream_main_body",
]
