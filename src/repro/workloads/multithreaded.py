"""The *Multi-Threaded* benchmark of Section 4.5.

Parameters straight from the paper:

* ``N`` — threads to spawn;
* ``K`` — critical sections each thread executes;
* ``cs_dur`` — pointer-chasing iterations (MemLat-style) *inside* each
  critical section;
* ``out_dur`` — pointer-chasing iterations *between* critical sections.

All threads contend on one mutex, so correct emulation requires the
delays accumulated inside a critical section to be injected before the
lock release (Figure 4b) — exactly what the min-epoch mechanism under
test enables.  Each thread chases its own array (the critical section
protects a logical resource, not the memory).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import (
    JoinThread,
    MemBatch,
    MutexLock,
    MutexUnlock,
    PatternKind,
    SpawnThread,
)
from repro.os.sync import Mutex
from repro.units import MIB


@dataclass(frozen=True)
class MultiThreadedConfig:
    """Parameters of one Multi-Threaded run (paper names in comments)."""

    threads: int = 2  # N
    sections: int = 200  # K
    cs_iterations: int = 100  # cs_dur
    out_iterations: int = 0  # out_dur (0 = the "cs only" extreme case)
    array_bytes: int = 256 * MIB

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError(f"need at least one thread: {self.threads}")
        if self.sections < 1:
            raise WorkloadError(f"need at least one section: {self.sections}")
        if self.cs_iterations < 1:
            raise WorkloadError(
                f"critical sections must do work: {self.cs_iterations}"
            )
        if self.out_iterations < 0:
            raise WorkloadError(
                f"outside iterations cannot be negative: {self.out_iterations}"
            )


@dataclass
class MultiThreadedResult:
    """Output of one Multi-Threaded run."""

    config: MultiThreadedConfig
    elapsed_ns: float
    lock_acquisitions: int
    contended_acquisitions: int

    @property
    def total_cs_iterations(self) -> int:
        """Pointer-chase iterations executed inside critical sections."""
        return self.config.threads * self.config.sections * self.config.cs_iterations


def _worker_body(ctx, config: MultiThreadedConfig, mutex: Mutex):
    region = ctx.malloc(
        config.array_bytes, page_size=PageSize.HUGE_2M, label="mt-chase"
    )
    for _ in range(config.sections):
        yield MutexLock(mutex)
        yield MemBatch(
            region,
            accesses=config.cs_iterations,
            pattern=PatternKind.CHASE,
            label="mt-cs",
        )
        yield MutexUnlock(mutex)
        if config.out_iterations:
            yield MemBatch(
                region,
                accesses=config.out_iterations,
                pattern=PatternKind.CHASE,
                label="mt-out",
            )


def multithreaded_main_body(config: MultiThreadedConfig, out: dict):
    """Main-thread body: forks N workers over one shared mutex."""

    def body(ctx):
        mutex = Mutex(ctx.os, name="mt-benchmark")
        start = ctx.now_ns
        workers = []
        for index in range(config.threads):
            workers.append(
                (
                    yield SpawnThread(
                        _worker_body, name=f"mt{index}", args=(config, mutex)
                    )
                )
            )
        for worker in workers:
            yield JoinThread(worker)
        out["result"] = MultiThreadedResult(
            config=config,
            elapsed_ns=ctx.now_ns - start,
            lock_acquisitions=mutex.acquisitions,
            contended_acquisitions=mutex.contended_acquisitions,
        )
        return out["result"]

    return body
