"""The key-value store workload — MassTree's stand-in (Section 4.7).

The paper runs MassTree with 1-8 threads and reports put/s and get/s.
Here each thread owns a key partition backed by a real
:class:`~repro.workloads.btree.BPlusTree` (functional: gets return what
puts stored) living in a pmalloc'd arena.  For every batch of operations
the workload charges the memory hierarchy one dependent random access per
tree level, with the level's true node-count footprint — the
latency-sensitive pointer-walk behaviour that makes MassTree throughput
collapse as NVM latency grows (Figure 16).

Phases are barrier-separated like the original benchmark: all threads
load (puts, timed), then all threads query (gets, timed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import Commit, JoinThread, MemBatch, PatternKind, SpawnThread
from repro.units import CACHE_LINE_BYTES, MIB
from repro.workloads.btree import BPlusTree


@dataclass(frozen=True)
class KvRecordLayout:
    """The on-PM record shape shared by every KV-store incarnation.

    One place defines how a key maps to its stored payload and how much
    persistent memory records and index nodes occupy — the
    microbenchmark (:func:`kvstore_main_body`), the crash-checkable
    variant (:class:`RecoverableKvStore`), and the service-layer store
    (:mod:`repro.service.kvservice`) all derive their footprints and
    value codecs from the same layout, so a latency comparison between
    them is apples-to-apples.
    """

    node_order: int = 16
    node_bytes: int = 512
    value_bytes: int = 1024

    def __post_init__(self) -> None:
        if self.node_order < 2:
            raise WorkloadError(f"node order must be >= 2: {self.node_order}")
        if self.node_bytes < CACHE_LINE_BYTES:
            raise WorkloadError(
                f"node smaller than a cache line: {self.node_bytes}"
            )
        if self.value_bytes < 1:
            raise WorkloadError(f"value size must be positive: {self.value_bytes}")

    # -- key codec ------------------------------------------------------
    def value_checksum(self, key: int, salt: int = 0) -> int:
        """The integer a put stores (and a verified get expects)."""
        return key * 31 + salt

    def value_payload(self, key: int, salt: int = 0) -> tuple:
        """The durable line payload of one record (persistence domain)."""
        return ("val", key, self.value_checksum(key, salt))

    # -- value/index sizing ---------------------------------------------
    def value_footprint(self, records: int) -> int:
        """Working-set bytes of the value heap for *records* live records."""
        return max(64, records * self.value_bytes)

    def arena_bytes(self, records: int) -> int:
        """PM arena size for a store holding *records* records."""
        node_estimate = (records * 2 // self.node_order + 64) * self.node_bytes
        value_estimate = records * self.value_bytes
        return max(64 * MIB, 4 * node_estimate + 2 * value_estimate)

    def header_arena_bytes(self, records: int) -> int:
        """PM arena size of the header-indexed durable log variant."""
        return max(MIB, (1 + records) * CACHE_LINE_BYTES)

    def level_footprints(self, records: int) -> tuple:
        """Analytic per-level index footprints, root first (bytes).

        The microbenchmark walks a real
        :meth:`~repro.workloads.btree.BPlusTree.level_footprints`; the
        service store holds key counts far too large to materialise, so
        it prices the same dependent walk from half-full-node tree
        arithmetic instead.
        """
        if records <= 0:
            return (self.node_bytes,)
        # B+-tree nodes run half full in steady state.
        per_node = max(1, self.node_order // 2)
        counts = [max(1, -(-records // per_node))]
        while counts[0] > 1:
            counts.insert(0, max(1, -(-counts[0] // per_node)))
        return tuple(count * self.node_bytes for count in counts)

    def to_dict(self) -> dict:
        return {
            "node_order": self.node_order,
            "node_bytes": self.node_bytes,
            "value_bytes": self.value_bytes,
        }


def layout_for(config: "KvStoreConfig") -> KvRecordLayout:
    """The record layout a :class:`KvStoreConfig` implies."""
    return KvRecordLayout(
        node_order=config.node_order,
        node_bytes=config.node_bytes,
        value_bytes=config.value_bytes,
    )


@dataclass(frozen=True)
class KvStoreConfig:
    """Parameters of one KV-store run."""

    #: Keys each thread inserts during the put phase.
    puts_per_thread: int = 20_000
    #: Lookups each thread performs during the get phase.
    gets_per_thread: int = 20_000
    threads: int = 1
    #: B+-tree fan-out and modelled node size.
    node_order: int = 16
    node_bytes: int = 512
    #: Stored value size; the value heap is the store's bulk footprint
    #: (values dominate memory in KV stores, and put/get each touch one).
    value_bytes: int = 1024
    #: Operations charged to the memory system per batch.
    batch_ops: int = 500
    #: Key-comparison / node-search / protocol work per level visit
    #: (MassTree-class stores spend well under a microsecond of CPU per
    #: operation; ~180 cycles x 4 levels here).
    compute_cycles_per_level: float = 180.0
    #: Store the tree in persistent memory (pmalloc).
    persistent: bool = True
    #: pflush the touched leaf line after every put (needs Quartz write
    #: emulation to cost anything extra).
    flush_writes: bool = False
    seed: int = 0

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError(f"need at least one thread: {self.threads}")
        if self.puts_per_thread < 1:
            raise WorkloadError("puts_per_thread must be positive")
        if self.gets_per_thread < 0:
            raise WorkloadError("gets_per_thread cannot be negative")
        if self.batch_ops < 1:
            raise WorkloadError(f"batch size must be positive: {self.batch_ops}")


@dataclass
class KvStoreResult:
    """Output of one KV-store run."""

    config: KvStoreConfig
    put_phase_ns: float
    get_phase_ns: float
    total_puts: int
    total_gets: int
    #: Lookups whose value matched what was stored (functional check).
    verified_gets: int
    final_sizes: list[int] = field(default_factory=list)

    @property
    def puts_per_second(self) -> float:
        """Aggregate put throughput (the Figure 15/16 metric)."""
        if self.put_phase_ns <= 0:
            return 0.0
        return self.total_puts / self.put_phase_ns * 1e9

    @property
    def gets_per_second(self) -> float:
        """Aggregate get throughput."""
        if self.get_phase_ns <= 0:
            return 0.0
        return self.total_gets / self.get_phase_ns * 1e9


def _arena_bytes(config: KvStoreConfig) -> int:
    return layout_for(config).arena_bytes(config.puts_per_thread)


def _tree_traffic(ctx, tree, arena, ops, config, is_put):
    """Charge one batch of tree operations to the memory system.

    One dependent node fetch per tree level (footprint = the level's
    node count), then one access to the value heap — the bulk footprint
    that misses the LLC on realistic store sizes.
    """
    for footprint in tree.level_footprints(config.node_bytes):
        yield MemBatch(
            arena,
            accesses=ops,
            pattern=PatternKind.RANDOM,
            footprint_bytes=min(footprint, arena.size_bytes),
            compute_cycles_per_access=config.compute_cycles_per_level,
            label="kv-level",
        )
    value_footprint = min(
        layout_for(config).value_footprint(len(tree)), arena.size_bytes
    )
    if is_put:
        yield MemBatch(
            arena,
            accesses=ops,
            pattern=PatternKind.RANDOM,
            footprint_bytes=value_footprint,
            is_store=True,
            label="kv-value-write",
        )
        if config.flush_writes:
            # Persist each put's value line, then a persistence barrier
            # for the batch (clflushopt + pcommit semantics; under the
            # pessimistic pflush model each line already stall-waited).
            yield from ctx.pflush(arena, lines=ops)
            yield Commit()
    else:
        yield MemBatch(
            arena,
            accesses=ops,
            pattern=PatternKind.RANDOM,
            footprint_bytes=value_footprint,
            label="kv-value-read",
        )


def _put_worker(ctx, config: KvStoreConfig, tree: BPlusTree, arena, thread_index):
    rng = ctx.rng("kv-put")
    layout = layout_for(config)
    keys = list(
        range(thread_index, thread_index + config.threads * config.puts_per_thread,
              config.threads)
    )
    rng.shuffle(keys)
    done = 0
    while done < len(keys):
        batch = keys[done : done + config.batch_ops]
        for key in batch:
            tree.insert(key, layout.value_checksum(key, thread_index))
        yield from _tree_traffic(ctx, tree, arena, len(batch), config, is_put=True)
        done += len(batch)
    return done


def _get_worker(ctx, config: KvStoreConfig, tree: BPlusTree, arena, thread_index):
    rng = ctx.rng("kv-get")
    layout = layout_for(config)
    key_space = config.threads * config.puts_per_thread
    verified = 0
    done = 0
    while done < config.gets_per_thread:
        batch = min(config.batch_ops, config.gets_per_thread - done)
        for _ in range(batch):
            key = rng.randrange(key_space // config.threads) * config.threads
            key += thread_index
            value = tree.get(key)
            if value == layout.value_checksum(key, thread_index):
                verified += 1
        yield from _tree_traffic(ctx, tree, arena, batch, config, is_put=False)
        done += batch
    return verified


def kvstore_main_body(config: KvStoreConfig, out: dict):
    """Main-thread body: barrier-separated put and get phases."""

    def body(ctx):
        trees = [BPlusTree(order=config.node_order) for _ in range(config.threads)]
        alloc = ctx.pmalloc if config.persistent else ctx.malloc
        arenas = [
            alloc(
                _arena_bytes(config),
                page_size=PageSize.HUGE_2M,
                label=f"kv-arena{index}",
            )
            for index in range(config.threads)
        ]
        # -- put phase ----------------------------------------------------
        put_start = ctx.now_ns
        workers = []
        for index in range(config.threads):
            workers.append(
                (
                    yield SpawnThread(
                        _put_worker,
                        name=f"kv-put{index}",
                        args=(config, trees[index], arenas[index], index),
                    )
                )
            )
        total_puts = 0
        for worker in workers:
            total_puts += yield JoinThread(worker)
        put_elapsed = ctx.now_ns - put_start
        # -- get phase ----------------------------------------------------
        get_start = ctx.now_ns
        workers = []
        for index in range(config.threads):
            workers.append(
                (
                    yield SpawnThread(
                        _get_worker,
                        name=f"kv-get{index}",
                        args=(config, trees[index], arenas[index], index),
                    )
                )
            )
        verified = 0
        for worker in workers:
            verified += yield JoinThread(worker)
        get_elapsed = ctx.now_ns - get_start
        out["result"] = KvStoreResult(
            config=config,
            put_phase_ns=put_elapsed,
            get_phase_ns=get_elapsed,
            total_puts=total_puts,
            total_gets=config.threads * config.gets_per_thread,
            verified_gets=verified,
            final_sizes=[len(tree) for tree in trees],
        )
        return out["result"]

    return body


# ----------------------------------------------------------------------
# Crash-checkable variant (repro.pmem)
# ----------------------------------------------------------------------


def committed_key_sequence(config: KvStoreConfig, thread_index: int) -> list:
    """The deterministic insertion order of one put worker.

    Shared by the workload body and :meth:`RecoverableKvStore.recover`
    so recovery can recompute exactly which keys the persisted header
    claims committed — a plain seeded shuffle, independent of thread
    names and simulator streams.
    """
    keys = list(
        range(
            thread_index,
            thread_index + config.threads * config.puts_per_thread,
            config.threads,
        )
    )
    random.Random(config.seed * 1_000_003 + thread_index).shuffle(keys)
    return keys


def _kv_arena_label(thread_index: int) -> str:
    return f"pmkv-{thread_index}"


def _kv_value_payload(key: int, thread_index: int) -> tuple:
    # The key codec is layout-independent (payloads are whole lines);
    # delegate to the shared layout so the codec has one definition.
    return KvRecordLayout().value_payload(key, thread_index)


def _pm_arena_bytes(config: KvStoreConfig) -> int:
    return layout_for(config).header_arena_bytes(config.puts_per_thread)


def _recoverable_put_worker(ctx, config, domain, mutant, thread_index):
    """Header-indexed durable log: line 0 counts committed puts, line
    ``1+i`` holds the i-th value.

    Correct protocol per batch: persist the values, *then* persist the
    header that makes them reachable.  The mutants break exactly that:
    ``missing-flush`` never flushes values, ``misordered-barrier``
    commits the header before them.
    """
    arena = ctx.pmalloc(
        _pm_arena_bytes(config),
        page_size=PageSize.HUGE_2M,
        label=_kv_arena_label(thread_index),
    )
    keys = committed_key_sequence(config, thread_index)
    done = 0
    while done < len(keys):
        batch = keys[done : done + config.batch_ops]
        first_line = 1 + done
        for offset, key in enumerate(batch):
            domain.record(
                arena, first_line + offset, _kv_value_payload(key, thread_index)
            )
        yield MemBatch(
            arena,
            accesses=len(batch),
            pattern=PatternKind.RANDOM,
            footprint_bytes=max(
                CACHE_LINE_BYTES,
                min(len(keys) * config.value_bytes, arena.size_bytes),
            ),
            is_store=True,
            label="pmkv-value-write",
        )
        if mutant is None:
            yield from ctx.pflush(arena, lines=len(batch), line=first_line)
            yield Commit()
        done += len(batch)
        domain.record(arena, 0, ("count", done))
        yield MemBatch(
            arena,
            accesses=1,
            pattern=PatternKind.RANDOM,
            footprint_bytes=CACHE_LINE_BYTES,
            is_store=True,
            label="pmkv-header-write",
        )
        yield from ctx.pflush(arena, lines=1, line=0)
        yield Commit()
        if mutant == "misordered-barrier":
            # The broken ordering: data persists only *after* the header
            # already claimed it — a crash in between loses committed keys.
            yield from ctx.pflush(arena, lines=len(batch), line=first_line)
            yield Commit()
    return done


def recoverable_kvstore_body(
    config: KvStoreConfig, out: dict, domain, mutant: Optional[str] = None
):
    """Body factory for the crash-checkable put phase."""

    def body(ctx):
        workers = []
        for index in range(config.threads):
            workers.append(
                (
                    yield SpawnThread(
                        _recoverable_put_worker,
                        name=f"pmkv-put{index}",
                        args=(config, domain, mutant, index),
                    )
                )
            )
        total = 0
        for worker in workers:
            total += yield JoinThread(worker)
        out["result"] = {
            "committed_puts": total,
            "threads": config.threads,
            "mutant": mutant,
        }
        return out["result"]

    return body


class RecoverableKvStore:
    """Crash-checkable KV store (see :mod:`repro.pmem.checker`)."""

    workload_id = "kvstore"

    def __init__(self, config: KvStoreConfig, mutant: Optional[str] = None):
        self.config = config
        self.mutant = mutant

    def invariants(self) -> tuple:
        return ("committed-prefix-durable",)

    def body_factory(self, domain, out: dict):
        return recoverable_kvstore_body(self.config, out, domain, self.mutant)

    def recover(self, image) -> list:
        """Restart-time check: every key the header commits is durable."""
        issues = []
        for thread_index in range(self.config.threads):
            lines = image.lines(_kv_arena_label(thread_index))
            header = lines.get(0)
            if header is None:
                continue  # nothing committed: trivially consistent
            committed = header[1]
            keys = committed_key_sequence(self.config, thread_index)
            for position in range(committed):
                expected = _kv_value_payload(keys[position], thread_index)
                got = lines.get(1 + position)
                if got != expected:
                    issues.append(
                        {
                            "invariant": "committed-prefix-durable",
                            "detail": (
                                f"thread {thread_index}: header commits "
                                f"{committed} put(s) but key "
                                f"{keys[position]} (line {1 + position}) "
                                f"holds {got!r}"
                            ),
                        }
                    )
        return issues

