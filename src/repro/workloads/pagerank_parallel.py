"""Barrier-synchronised parallel PageRank — a Section 7 extension.

The paper's PageRank is single-threaded; its future work asks for
emulation support of "other parallel programming constructs such as
OpenMP primitives".  This workload exercises exactly that: a
bulk-synchronous-parallel PageRank where worker threads own
edge-balanced vertex ranges, gather/scatter their share of each
iteration's traffic, and meet at a :class:`~repro.os.sync.Barrier`
(Quartz interposes on the barrier to inject accumulated delay before
arrival, so per-iteration skew propagates correctly).

The numerics remain exact: ranks match the sequential implementation
bit-for-bit because each worker computes its own destination range with
the same contribution formula.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import BarrierWait, JoinThread, MemBatch, PatternKind, SpawnThread
from repro.os.sync import Barrier
from repro.units import MIB
from repro.workloads.graphs import CsrGraph
from repro.workloads.pagerank import PageRankConfig, PageRankResult, default_graph


@dataclass(frozen=True)
class ParallelPageRankConfig:
    """Parallel-run parameters wrapping a base PageRank config."""

    base: PageRankConfig = PageRankConfig()
    threads: int = 4

    def __post_init__(self) -> None:
        if self.threads < 1:
            raise WorkloadError(f"need at least one thread: {self.threads}")


def _partition_by_edges(graph: CsrGraph, parts: int) -> list[tuple[int, int]]:
    """Split vertices into ranges with roughly equal in-edge counts."""
    targets = [
        round(index * graph.edge_count / parts) for index in range(parts + 1)
    ]
    boundaries = np.searchsorted(graph.row_ptr, targets, side="left")
    boundaries[0], boundaries[-1] = 0, graph.vertex_count
    return [
        (int(boundaries[index]), int(boundaries[index + 1]))
        for index in range(parts)
    ]


class _SharedState:
    """Cross-thread iteration state (plain Python, DES-atomic)."""

    def __init__(self, graph: CsrGraph, config: PageRankConfig):
        self.graph = graph
        self.config = config
        self.out_degree = np.maximum(graph.out_degrees(), 1)
        self.src = np.repeat(
            np.arange(graph.vertex_count), np.diff(graph.row_ptr)
        )
        self.dst = graph.col.astype(np.int64)
        self.ranks = np.full(graph.vertex_count, 1.0 / graph.vertex_count)
        self.next_ranks = np.zeros(graph.vertex_count)
        self.residual = np.inf
        self.iterations = 0
        self.done = False


def _worker_body(ctx, shared: _SharedState, regions, vertex_range, barrier):
    config = shared.config
    graph = shared.graph
    low, high = vertex_range
    edge_low = int(graph.row_ptr[low])
    edge_high = int(graph.row_ptr[high])
    my_edges = edge_high - edge_low
    my_vertices = high - low
    teleport = (1.0 - config.damping) / graph.vertex_count
    row_region, edge_region, rank_region, next_region = regions
    hot = int(my_edges * config.hot_access_fraction)
    cold = my_edges - hot
    while not shared.done:
        # -- this worker's share of the iteration's memory traffic ------
        if my_vertices:
            yield MemBatch(
                row_region, my_vertices, PatternKind.SEQUENTIAL,
                stride_bytes=8, label="ppr-rowptr",
            )
        if my_edges:
            yield MemBatch(
                edge_region, my_edges, PatternKind.SEQUENTIAL, stride_bytes=4,
                compute_cycles_per_access=config.compute_cycles_per_edge,
                label="ppr-edges",
            )
            if hot:
                yield MemBatch(
                    rank_region, hot, PatternKind.RANDOM,
                    footprint_bytes=min(
                        4 * MIB,
                        graph.vertex_count * config.bytes_per_vertex,
                    ),
                    parallelism=config.gather_parallelism,
                    label="ppr-gather-hot",
                )
            if cold:
                yield MemBatch(
                    rank_region, cold, PatternKind.RANDOM,
                    footprint_bytes=graph.vertex_count * config.bytes_per_vertex,
                    parallelism=config.gather_parallelism,
                    label="ppr-gather-cold",
                )
        if my_vertices:
            yield MemBatch(
                next_region, my_vertices, PatternKind.SEQUENTIAL,
                stride_bytes=config.bytes_per_vertex, is_store=True,
                label="ppr-scatter",
            )
        # -- this worker's share of the numerics --------------------------
        # The graph is symmetric, so CSR rows double as in-edge lists:
        # row vertices of [low, high) are the *destinations* this worker
        # owns and the column entries are the contributing sources.
        sources = shared.dst[edge_low:edge_high]
        destinations = shared.src[edge_low:edge_high]
        contributions = shared.ranks[sources] / shared.out_degree[sources]
        partial = np.bincount(
            destinations - low, weights=contributions, minlength=my_vertices
        )[:my_vertices]
        shared.next_ranks[low:high] = teleport + config.damping * partial
        yield BarrierWait(barrier)  # all partials written
        if low == 0:  # one designated thread advances the iteration
            shared.residual = float(
                np.abs(shared.next_ranks - shared.ranks).sum()
            )
            shared.ranks, shared.next_ranks = (
                shared.next_ranks.copy(), shared.next_ranks,
            )
            shared.iterations += 1
            shared.done = (
                shared.iterations >= config.max_iterations
                or shared.residual < config.tolerance
            )
        yield BarrierWait(barrier)  # iteration state published


def parallel_pagerank_body(
    config: ParallelPageRankConfig, out: dict, graph: Optional[CsrGraph] = None
):
    """Main-thread body factory; result lands in ``out['result']``."""

    def body(ctx):
        nonlocal graph
        if graph is None:
            graph = default_graph(config.base)
        base = config.base
        n, m = graph.vertex_count, graph.edge_count
        alloc = ctx.pmalloc if base.persistent else ctx.malloc
        regions = (
            alloc(max(64, (n + 1) * 8), label="ppr-rowptr"),
            alloc(max(64, m * 4), label="ppr-edges"),
            alloc(max(64, n * base.bytes_per_vertex),
                  page_size=PageSize.HUGE_2M, label="ppr-ranks"),
            alloc(max(64, n * base.bytes_per_vertex),
                  page_size=PageSize.HUGE_2M, label="ppr-next"),
        )
        shared = _SharedState(graph, base)
        barrier = Barrier(ctx.os, parties=config.threads, name="ppr")
        ranges = _partition_by_edges(graph, config.threads)
        start = ctx.now_ns
        workers = []
        for index, vertex_range in enumerate(ranges):
            workers.append(
                (
                    yield SpawnThread(
                        _worker_body,
                        name=f"ppr{index}",
                        args=(shared, regions, vertex_range, barrier),
                    )
                )
            )
        for worker in workers:
            yield JoinThread(worker)
        out["result"] = PageRankResult(
            config=base,
            iterations=shared.iterations,
            residual=shared.residual,
            elapsed_ns=ctx.now_ns - start,
            ranks=shared.ranks,
        )
        return out["result"]

    return body
