"""MultiLat — the two-memory validation benchmark of Section 4.6.

A tailored MemLat extension: one pointer chain spread over *two* arrays,
the first in DRAM (``malloc``) and the second in NVM (``pmalloc``,
i.e. the sibling socket's DRAM under the virtual topology).  A recursive
access pattern — e.g. 200 DRAM accesses followed by 100 NVM accesses —
repeats until every element of both arrays has been read once.

The validation property: if the emulator splits stall cycles correctly
(Eq. 4), completion time is simply
``Num_DRAM * DRAM_lat + Num_NVM * NVM_lat`` *independent of the access
pattern* — which is what Figure 14 checks across four patterns and two
array-size configurations.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.units import MIB


@dataclass(frozen=True)
class MultiLatConfig:
    """Parameters of one MultiLat run."""

    #: Elements (one access each) in the DRAM-resident array (Num^DRAM).
    dram_elements: int = 200_000
    #: Elements in the NVM-resident array (Num^NVM).
    nvm_elements: int = 100_000
    #: Accesses per pattern repetition: (DRAM run, NVM run);
    #: e.g. (200, 100) is the paper's Pattern-4.
    pattern: tuple[int, int] = (200, 100)
    #: Array sizes; must dwarf the LLC (every access misses).
    dram_array_bytes: int = 4096 * MIB
    nvm_array_bytes: int = 4096 * MIB

    def __post_init__(self) -> None:
        if self.dram_elements < 0 or self.nvm_elements < 0:
            raise WorkloadError("element counts cannot be negative")
        if self.dram_elements + self.nvm_elements == 0:
            raise WorkloadError("benchmark needs at least one access")
        dram_run, nvm_run = self.pattern
        if dram_run <= 0 or nvm_run <= 0:
            raise WorkloadError(f"pattern runs must be positive: {self.pattern}")
        if min(self.dram_array_bytes, self.nvm_array_bytes) < 64 * MIB:
            raise WorkloadError("arrays must be much larger than the LLC")


@dataclass
class MultiLatResult:
    """Output of one MultiLat run."""

    config: MultiLatConfig
    elapsed_ns: float

    def expected_completion_ns(
        self, dram_latency_ns: float, nvm_latency_ns: float
    ) -> float:
        """The Section 4.6 closed form: CT = N_D*lat_D + N_N*lat_N."""
        return (
            self.config.dram_elements * dram_latency_ns
            + self.config.nvm_elements * nvm_latency_ns
        )

    def emulation_error(
        self, dram_latency_ns: float, nvm_latency_ns: float
    ) -> float:
        """Relative error vs. the closed-form expectation."""
        expected = self.expected_completion_ns(dram_latency_ns, nvm_latency_ns)
        return abs(self.elapsed_ns - expected) / expected


def multilat_body(config: MultiLatConfig, out: dict):
    """Workload body factory; the result lands in ``out['result']``."""

    def body(ctx):
        dram = ctx.malloc(
            config.dram_array_bytes, page_size=PageSize.HUGE_2M, label="multilat-dram"
        )
        nvm = ctx.pmalloc(
            config.nvm_array_bytes, page_size=PageSize.HUGE_2M, label="multilat-nvm"
        )
        dram_left = config.dram_elements
        nvm_left = config.nvm_elements
        dram_run, nvm_run = config.pattern
        start = ctx.now_ns
        while dram_left > 0 or nvm_left > 0:
            if dram_left > 0:
                burst = min(dram_run, dram_left)
                dram_left -= burst
                yield MemBatch(
                    dram, burst, PatternKind.CHASE, label="multilat-dram"
                )
            if nvm_left > 0:
                burst = min(nvm_run, nvm_left)
                nvm_left -= burst
                yield MemBatch(nvm, burst, PatternKind.CHASE, label="multilat-nvm")
        out["result"] = MultiLatResult(
            config=config, elapsed_ns=ctx.now_ns - start
        )
        return out["result"]

    return body
