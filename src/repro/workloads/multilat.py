"""MultiLat — the two-memory validation benchmark of Section 4.6.

A tailored MemLat extension: one pointer chain spread over *two* arrays,
the first in DRAM (``malloc``) and the second in NVM (``pmalloc``,
i.e. the sibling socket's DRAM under the virtual topology).  A recursive
access pattern — e.g. 200 DRAM accesses followed by 100 NVM accesses —
repeats until every element of both arrays has been read once.

The validation property: if the emulator splits stall cycles correctly
(Eq. 4), completion time is simply
``Num_DRAM * DRAM_lat + Num_NVM * NVM_lat`` *independent of the access
pattern* — which is what Figure 14 checks across four patterns and two
array-size configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.units import MIB


@dataclass(frozen=True)
class MultiLatConfig:
    """Parameters of one MultiLat run.

    The default form is the paper's two-array benchmark.  Setting
    ``tier_elements`` switches to the N-tier generalization: one
    pmalloc'd array per emulated tier (allocation order matters — pin
    placement with a static ``placement_order`` of ``(1, 2, ..., K)``
    so array *i* lands in tier *i*), with the recursive pattern cycling
    DRAM then each tier in turn.  ``nvm_elements`` is ignored in that
    form; the closed form becomes
    ``N_DRAM * lat_DRAM + sum_i N_i * lat_i``.
    """

    #: Elements (one access each) in the DRAM-resident array (Num^DRAM).
    dram_elements: int = 200_000
    #: Elements in the NVM-resident array (Num^NVM).
    nvm_elements: int = 100_000
    #: Accesses per pattern repetition: (DRAM run, NVM run);
    #: e.g. (200, 100) is the paper's Pattern-4.
    pattern: tuple[int, int] = (200, 100)
    #: Array sizes; must dwarf the LLC (every access misses).
    dram_array_bytes: int = 4096 * MIB
    nvm_array_bytes: int = 4096 * MIB
    #: N-tier form: elements per emulated tier (one array each).
    tier_elements: Optional[tuple[int, ...]] = None
    #: N-tier form: accesses per repetition per tier (defaults to the
    #: DRAM run scaled by each tier's element share).
    tier_pattern: Optional[tuple[int, ...]] = None

    def __post_init__(self) -> None:
        if self.dram_elements < 0 or self.nvm_elements < 0:
            raise WorkloadError("element counts cannot be negative")
        dram_run, nvm_run = self.pattern
        if dram_run <= 0 or nvm_run <= 0:
            raise WorkloadError(f"pattern runs must be positive: {self.pattern}")
        if min(self.dram_array_bytes, self.nvm_array_bytes) < 64 * MIB:
            raise WorkloadError("arrays must be much larger than the LLC")
        if self.tier_elements is None:
            if self.tier_pattern is not None:
                raise WorkloadError("tier_pattern requires tier_elements")
            if self.dram_elements + self.nvm_elements == 0:
                raise WorkloadError("benchmark needs at least one access")
            return
        if not self.tier_elements:
            raise WorkloadError("tier_elements cannot be empty")
        if any(count < 0 for count in self.tier_elements):
            raise WorkloadError("element counts cannot be negative")
        if self.dram_elements + sum(self.tier_elements) == 0:
            raise WorkloadError("benchmark needs at least one access")
        if self.tier_pattern is not None:
            if len(self.tier_pattern) != len(self.tier_elements):
                raise WorkloadError(
                    f"tier_pattern has {len(self.tier_pattern)} runs for "
                    f"{len(self.tier_elements)} tiers"
                )
            if any(run <= 0 for run in self.tier_pattern):
                raise WorkloadError(
                    f"pattern runs must be positive: {self.tier_pattern}"
                )

    @property
    def effective_tier_pattern(self) -> tuple[int, ...]:
        """Per-tier burst lengths of the N-tier form."""
        assert self.tier_elements is not None
        if self.tier_pattern is not None:
            return self.tier_pattern
        dram_run, _ = self.pattern
        total = max(1, self.dram_elements)
        return tuple(
            max(1, round(dram_run * count / total))
            for count in self.tier_elements
        )


@dataclass
class MultiLatResult:
    """Output of one MultiLat run."""

    config: MultiLatConfig
    elapsed_ns: float

    def expected_completion_ns(
        self, dram_latency_ns: float, nvm_latency_ns: float
    ) -> float:
        """The Section 4.6 closed form: CT = N_D*lat_D + N_N*lat_N."""
        return (
            self.config.dram_elements * dram_latency_ns
            + self.config.nvm_elements * nvm_latency_ns
        )

    def emulation_error(
        self, dram_latency_ns: float, nvm_latency_ns: float
    ) -> float:
        """Relative error vs. the closed-form expectation."""
        expected = self.expected_completion_ns(dram_latency_ns, nvm_latency_ns)
        return abs(self.elapsed_ns - expected) / expected

    def expected_tiered_completion_ns(
        self, dram_latency_ns: float, tier_latencies_ns: "tuple[float, ...]"
    ) -> float:
        """N-tier closed form: CT = N_DRAM*lat_DRAM + sum_i N_i*lat_i."""
        assert self.config.tier_elements is not None
        if len(tier_latencies_ns) != len(self.config.tier_elements):
            raise WorkloadError(
                f"{len(tier_latencies_ns)} latencies for "
                f"{len(self.config.tier_elements)} tiers"
            )
        return self.config.dram_elements * dram_latency_ns + sum(
            count * latency
            for count, latency in zip(self.config.tier_elements, tier_latencies_ns)
        )

    def tiered_emulation_error(
        self, dram_latency_ns: float, tier_latencies_ns: "tuple[float, ...]"
    ) -> float:
        """Relative error vs. the N-tier closed form."""
        expected = self.expected_tiered_completion_ns(
            dram_latency_ns, tier_latencies_ns
        )
        return abs(self.elapsed_ns - expected) / expected


def multilat_body(config: MultiLatConfig, out: dict):
    """Workload body factory; the result lands in ``out['result']``."""

    if config.tier_elements is not None:
        return _tiered_multilat_body(config, out)

    def body(ctx):
        dram = ctx.malloc(
            config.dram_array_bytes, page_size=PageSize.HUGE_2M, label="multilat-dram"
        )
        nvm = ctx.pmalloc(
            config.nvm_array_bytes, page_size=PageSize.HUGE_2M, label="multilat-nvm"
        )
        dram_left = config.dram_elements
        nvm_left = config.nvm_elements
        dram_run, nvm_run = config.pattern
        start = ctx.now_ns
        while dram_left > 0 or nvm_left > 0:
            if dram_left > 0:
                burst = min(dram_run, dram_left)
                dram_left -= burst
                yield MemBatch(
                    dram, burst, PatternKind.CHASE, label="multilat-dram"
                )
            if nvm_left > 0:
                burst = min(nvm_run, nvm_left)
                nvm_left -= burst
                yield MemBatch(nvm, burst, PatternKind.CHASE, label="multilat-nvm")
        out["result"] = MultiLatResult(
            config=config, elapsed_ns=ctx.now_ns - start
        )
        return out["result"]

    return body


def _tiered_multilat_body(config: MultiLatConfig, out: dict):
    """The N-tier MultiLat: one array per emulated tier.

    Arrays are pmalloc'd in tier order, so a static placement order of
    ``(1, 2, ..., K)`` pins array *i* to tier *i* and the closed form
    holds per tier.  The recursive pattern cycles DRAM, then each tier.
    """

    def body(ctx):
        assert config.tier_elements is not None
        dram = ctx.malloc(
            config.dram_array_bytes, page_size=PageSize.HUGE_2M,
            label="multilat-dram",
        )
        arrays = [
            ctx.pmalloc(
                config.nvm_array_bytes, page_size=PageSize.HUGE_2M,
                label=f"multilat-tier{index + 1}",
            )
            for index in range(len(config.tier_elements))
        ]
        dram_left = config.dram_elements
        tier_left = list(config.tier_elements)
        dram_run, _ = config.pattern
        tier_runs = config.effective_tier_pattern
        start = ctx.now_ns
        while dram_left > 0 or any(left > 0 for left in tier_left):
            if dram_left > 0:
                burst = min(dram_run, dram_left)
                dram_left -= burst
                yield MemBatch(
                    dram, burst, PatternKind.CHASE, label="multilat-dram"
                )
            for index, array in enumerate(arrays):
                if tier_left[index] <= 0:
                    continue
                burst = min(tier_runs[index], tier_left[index])
                tier_left[index] -= burst
                yield MemBatch(
                    array, burst, PatternKind.CHASE,
                    label=f"multilat-tier{index + 1}",
                )
        out["result"] = MultiLatResult(
            config=config, elapsed_ns=ctx.now_ns - start
        )
        return out["result"]

    return body
