"""A from-scratch B+-tree — the data structure behind the KV store.

Stands in for MassTree (Section 4.7): what the paper's sensitivity study
exercises is a balanced search tree whose lookups are *dependent* node
fetches (one per level) over a footprint much larger than the LLC.  The
tree here is fully functional — sorted iteration, upserts, splits — and
additionally tracks per-level node counts so the workload layer can
charge the memory system a realistic footprint for each level it
traverses.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from typing import Any, Iterator, Optional

from repro.errors import WorkloadError


class _Node:
    __slots__ = ("keys", "values", "children")

    def __init__(self, leaf: bool):
        self.keys: list = []
        self.values: Optional[list] = [] if leaf else None
        self.children: Optional[list["_Node"]] = None if leaf else []

    @property
    def is_leaf(self) -> bool:
        return self.children is None


class BPlusTree:
    """An order-``order`` B+-tree mapping sortable keys to values."""

    def __init__(self, order: int = 16):
        if order < 3:
            raise WorkloadError(f"order must be at least 3: {order}")
        self.order = order
        self._root = _Node(leaf=True)
        self.size = 0
        #: Nodes per level, index 0 = root level, last = leaves.
        self.level_counts: list[int] = [1]

    @property
    def depth(self) -> int:
        """Number of levels (1 for a lone leaf root)."""
        return len(self.level_counts)

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def get(self, key, default: Any = None) -> Any:
        """Value stored under *key*, or *default*."""
        node = self._root
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            node = node.children[index]
        index = bisect_left(node.keys, key)
        if index < len(node.keys) and node.keys[index] == key:
            return node.values[index]
        return default

    def __contains__(self, key) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel

    def __len__(self) -> int:
        return self.size

    # ------------------------------------------------------------------
    # Insert (upsert)
    # ------------------------------------------------------------------
    def insert(self, key, value) -> None:
        """Insert or replace *key*."""
        split = self._insert(self._root, 0, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self.level_counts.insert(0, 1)

    def _insert(self, node: _Node, depth: int, key, value):
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self.size += 1
            if len(node.keys) <= self.order:
                return None
            return self._split_leaf(node, depth)
        index = bisect_right(node.keys, key)
        split = self._insert(node.children[index], depth + 1, key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.keys) <= self.order:
            return None
        return self._split_inner(node, depth)

    def _split_leaf(self, node: _Node, depth: int):
        middle = len(node.keys) // 2
        right = _Node(leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        self.level_counts[depth] += 1
        return right.keys[0], right

    def _split_inner(self, node: _Node, depth: int):
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(leaf=False)
        right.keys = node.keys[middle + 1 :]
        right.children = node.children[middle + 1 :]
        node.keys = node.keys[:middle]
        node.children = node.children[: middle + 1]
        self.level_counts[depth] += 1
        return separator, right

    # ------------------------------------------------------------------
    # Iteration / introspection
    # ------------------------------------------------------------------
    def items(self) -> Iterator[tuple]:
        """All (key, value) pairs in key order."""
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        stack_done = False
        # Leaves are not chained (splits keep it simple); walk the tree.
        yield from self._iter_node(self._root)
        del node, stack_done

    def _iter_node(self, node: _Node) -> Iterator[tuple]:
        if node.is_leaf:
            yield from zip(node.keys, node.values)
            return
        for child in node.children:
            yield from self._iter_node(child)

    def level_footprints(self, node_bytes: int) -> list[int]:
        """Approximate bytes of each level (root first) for cache models."""
        if node_bytes <= 0:
            raise WorkloadError(f"node size must be positive: {node_bytes}")
        return [count * node_bytes for count in self.level_counts]

    def check_invariants(self) -> None:
        """Structural validation (test hook): sorted keys, balanced depth,
        bounded fan-out, level counts consistent."""
        counted = [0] * self.depth
        leaf_depths: set[int] = set()

        def walk(node: _Node, depth: int, low, high) -> None:
            counted[depth] += 1
            if list(node.keys) != sorted(node.keys):
                raise WorkloadError("unsorted node keys")
            for key in node.keys:
                if (low is not None and key < low) or (
                    high is not None and key >= high
                ):
                    raise WorkloadError("key outside separator bounds")
            if len(node.keys) > self.order:
                raise WorkloadError("node overflow")
            if node.is_leaf:
                leaf_depths.add(depth)
                return
            if len(node.children) != len(node.keys) + 1:
                raise WorkloadError("inner fan-out mismatch")
            bounds = [low, *node.keys, high]
            for index, child in enumerate(node.children):
                walk(child, depth + 1, bounds[index], bounds[index + 1])

        walk(self._root, 0, None, None)
        if len(leaf_depths) != 1:
            raise WorkloadError(f"unbalanced leaves at depths {leaf_depths}")
        if counted != self.level_counts:
            raise WorkloadError(
                f"level counts drifted: tracked {self.level_counts}, "
                f"actual {counted}"
            )
