"""MemLat — the memory-latency benchmark of Section 4.4.

From the paper: *"a memory-latency bound pointer-chasing benchmark with a
configurable degree of memory access parallelism.  The benchmark creates a
pointer chain as an array of 64-bit integer elements.  The contents of
each element dictate which one is read next; each element is read exactly
once.  We choose the array size to be much larger than the last-level
cache so that each access results in a cache miss served from memory."*

Multiple independent chains create memory-level parallelism; 2 MB
hugepages minimise TLB walks.  MemLat doubles as a latency *measurement*
tool (like Intel's Memory Latency Checker): completion time divided by
per-chain iterations is the average serialized access latency — the
quantity compared against the emulation target in Figure 12.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.units import MIB


@dataclass(frozen=True)
class MemLatConfig:
    """Parameters of one MemLat run."""

    #: Array size; must be much larger than the LLC (the all-miss
    #: property the model relies on).  Matches the calibration footprint
    #: so measured latencies are directly comparable.
    array_bytes: int = 4096 * MIB
    #: Pointer-chase iterations per chain.
    iterations: int = 200_000
    #: Independent chains = degree of memory access parallelism.
    chains: int = 1
    #: Back the array with 2 MB hugepages (the paper's setting).
    hugepages: bool = True
    #: Allocate the array with pmalloc (virtual NVM in two-memory mode).
    persistent: bool = False
    #: Write the chain before chasing it (cold-start realism).
    initialize: bool = True

    def __post_init__(self) -> None:
        if self.array_bytes < 64 * MIB:
            raise WorkloadError(
                "MemLat array must be >> LLC; use at least 64 MiB "
                f"(got {self.array_bytes})"
            )
        if self.iterations <= 0:
            raise WorkloadError(f"iterations must be positive: {self.iterations}")
        if self.chains < 1:
            raise WorkloadError(f"need at least one chain: {self.chains}")


@dataclass
class MemLatResult:
    """Output of one MemLat run."""

    config: MemLatConfig
    elapsed_ns: float
    total_accesses: int

    @property
    def measured_latency_ns(self) -> float:
        """Average serialized access latency (the MLC-style measurement).

        Independent chains overlap, so latency is per *iteration* (one
        serialized step across all chains), not per access.
        """
        return self.elapsed_ns / self.config.iterations

    @property
    def accesses_per_second(self) -> float:
        """Throughput in accesses per second."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.total_accesses / self.elapsed_ns * 1e9


def memlat_body(config: MemLatConfig, out: dict):
    """Workload body factory; the result lands in ``out['result']``."""

    def body(ctx):
        page = PageSize.HUGE_2M if config.hugepages else PageSize.SMALL_4K
        if config.persistent:
            region = ctx.pmalloc(config.array_bytes, page_size=page, label="memlat")
        else:
            region = ctx.malloc(config.array_bytes, page_size=page, label="memlat")
        if config.initialize:
            # Build the chain: write one next-pointer per element that the
            # chase will visit (the chain spans the whole array but only
            # ``iterations`` elements per chain exist to be linked).
            yield MemBatch(
                region,
                accesses=config.iterations * config.chains,
                pattern=PatternKind.RANDOM,
                is_store=True,
                parallelism=4,
                label="memlat-init",
            )
        total_accesses = config.iterations * config.chains
        start = ctx.now_ns
        yield MemBatch(
            region,
            accesses=total_accesses,
            pattern=PatternKind.CHASE,
            parallelism=config.chains,
            label="memlat-chase",
        )
        out["result"] = MemLatResult(
            config=config,
            elapsed_ns=ctx.now_ns - start,
            total_accesses=total_accesses,
        )
        return out["result"]

    return body
