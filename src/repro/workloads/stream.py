"""The STREAM benchmark kernels (Figure 8 uses *copy*).

All four classic kernels are available; each is modelled as one fused
non-temporal store stream whose DRAM traffic covers every array the
kernel touches (they overlap in hardware):

* ``copy``:  ``c[i] = a[i]``            — 2 arrays, no arithmetic;
* ``scale``: ``b[i] = q * c[i]``        — 2 arrays, 1 multiply;
* ``add``:   ``c[i] = a[i] + b[i]``     — 3 arrays, 1 add;
* ``triad``: ``a[i] = b[i] + q * c[i]`` — 3 arrays, multiply-add.

Reported bandwidth counts the bytes of every array touched per element,
exactly as STREAM does.  The work is forked across several threads so
the memory controller saturates — matching the paper's SSE-streaming
bandwidth helper.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WorkloadError
from repro.ops import JoinThread, MemBatch, PatternKind, SpawnThread
from repro.units import CACHE_LINE_BYTES, MIB

#: kernel name -> (arrays touched, arithmetic cycles per element).
STREAM_KERNELS: dict[str, tuple[int, float]] = {
    "copy": (2, 0.0),
    "scale": (2, 0.5),
    "add": (3, 0.5),
    "triad": (3, 1.0),
}


@dataclass(frozen=True)
class StreamConfig:
    """Parameters of one STREAM run."""

    #: Size of each array.
    array_bytes: int = 256 * MIB
    #: Worker threads splitting the arrays.
    threads: int = 4
    #: Passes over the arrays.
    passes: int = 1
    #: Which STREAM kernel to run.
    kernel: str = "copy"
    #: Loop/index work per 8-byte element; bounds a single thread's
    #: attainable bandwidth below the controller peak (the plateau of
    #: Figure 8 sits at the *application's* maximum, not the machine's).
    compute_cycles_per_element: float = 1.0

    def __post_init__(self) -> None:
        if self.array_bytes < MIB:
            raise WorkloadError(f"array too small: {self.array_bytes}")
        if self.threads < 1:
            raise WorkloadError(f"need at least one thread: {self.threads}")
        if self.passes < 1:
            raise WorkloadError(f"need at least one pass: {self.passes}")
        if self.kernel not in STREAM_KERNELS:
            raise WorkloadError(
                f"unknown STREAM kernel {self.kernel!r}; "
                f"known: {sorted(STREAM_KERNELS)}"
            )

    @property
    def arrays_touched(self) -> int:
        """Arrays the kernel reads or writes per element."""
        return STREAM_KERNELS[self.kernel][0]

    @property
    def arithmetic_cycles(self) -> float:
        """FLOP work per element on top of the loop overhead."""
        return STREAM_KERNELS[self.kernel][1]


@dataclass
class StreamResult:
    """Output of one STREAM run."""

    config: StreamConfig
    elapsed_ns: float

    @property
    def bytes_moved(self) -> int:
        """Total traffic: every touched array, every pass."""
        return (
            self.config.arrays_touched
            * self.config.array_bytes
            * self.config.passes
        )

    @property
    def bandwidth_bytes_per_ns(self) -> float:
        """Achieved copy bandwidth (bytes/ns == GB/s)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.bytes_moved / self.elapsed_ns


def _worker_body(ctx, destination, chunk_bytes, passes, compute_cycles,
                 arrays_touched, kernel):
    elements = chunk_bytes // 8
    for _ in range(passes):
        # One fused loop per pass: a non-temporal store stream whose DRAM
        # traffic covers every array the kernel touches (source reads
        # overlap the destination writes in hardware, so modelling them
        # as one flow keeps the Figure 8 knee sharp).
        yield MemBatch(
            destination,
            accesses=elements,
            pattern=PatternKind.SEQUENTIAL,
            stride_bytes=8,
            footprint_bytes=chunk_bytes,
            compute_cycles_per_access=compute_cycles,
            is_store=True,
            non_temporal=True,
            dram_bytes_multiplier=float(arrays_touched),
            label=f"stream-{kernel}",
        )


def stream_main_body(config: StreamConfig, out: dict):
    """Main-thread body: forks workers, times the copy, fills ``out``."""

    def body(ctx):
        chunk = _align_down(config.array_bytes // config.threads)
        if chunk == 0:
            raise WorkloadError("array too small for the thread count")
        destinations = [
            ctx.malloc(chunk, label=f"stream-dst{index}")
            for index in range(config.threads)
        ]
        compute = config.compute_cycles_per_element + config.arithmetic_cycles
        start = ctx.now_ns
        workers = []
        for index in range(config.threads):
            workers.append(
                (
                    yield SpawnThread(
                        _worker_body,
                        name=f"stream{index}",
                        args=(
                            destinations[index], chunk, config.passes,
                            compute, config.arrays_touched, config.kernel,
                        ),
                    )
                )
            )
        for worker in workers:
            yield JoinThread(worker)
        out["result"] = StreamResult(config=config, elapsed_ns=ctx.now_ns - start)
        return out["result"]

    return body


def _align_down(value: int) -> int:
    return value // CACHE_LINE_BYTES * CACHE_LINE_BYTES
