"""Synthetic scale-free graphs — the substrate for PageRank and BFS.

The paper's PageRank runs on a 4.8M-vertex / 69M-edge web crawl we do not
have; per the substitution rule we generate preferential-attachment
(Barabási–Albert style) graphs, which preserve the property that matters
for the memory model: a heavy-tailed degree distribution driving random
accesses over a rank/visited vector much larger than the LLC.  Sizes are
scaled down (documented in EXPERIMENTS.md) but configurable.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import numpy as np

from repro.errors import WorkloadError


@dataclass(frozen=True)
class CsrGraph:
    """A directed graph in compressed-sparse-row form.

    Undirected source graphs are stored with both edge directions, so
    ``edge_count`` counts directed arcs.
    """

    vertex_count: int
    row_ptr: np.ndarray  # int64, len = vertex_count + 1
    col: np.ndarray  # int32, len = edge_count

    def __post_init__(self) -> None:
        if len(self.row_ptr) != self.vertex_count + 1:
            raise WorkloadError("row_ptr length must be vertex_count + 1")
        if self.row_ptr[0] != 0 or self.row_ptr[-1] != len(self.col):
            raise WorkloadError("row_ptr must span the column array")

    @property
    def edge_count(self) -> int:
        """Number of directed arcs."""
        return int(len(self.col))

    def out_degrees(self) -> np.ndarray:
        """Out-degree of every vertex."""
        return np.diff(self.row_ptr)

    def neighbors(self, vertex: int) -> np.ndarray:
        """Successors of one vertex."""
        return self.col[self.row_ptr[vertex] : self.row_ptr[vertex + 1]]


def synthetic_scale_free(
    vertex_count: int, edges_per_vertex: int, seed: int = 0
) -> CsrGraph:
    """Preferential-attachment graph, symmetrised into CSR form.

    Each new vertex attaches to ``edges_per_vertex`` existing vertices
    sampled proportionally to degree (by drawing from the running
    endpoint list), yielding the heavy-tailed degree distribution of web
    and social graphs.
    """
    if vertex_count < 2:
        raise WorkloadError(f"need at least two vertices: {vertex_count}")
    if edges_per_vertex < 1:
        raise WorkloadError(f"need at least one edge per vertex: {edges_per_vertex}")
    if edges_per_vertex >= vertex_count:
        raise WorkloadError("edges_per_vertex must be below vertex_count")
    rng = random.Random(seed)
    sources: list[int] = []
    targets: list[int] = []
    # Every draw lands in this list twice, making sampling degree-biased.
    endpoint_pool: list[int] = [0]
    for vertex in range(1, vertex_count):
        attach_count = min(edges_per_vertex, vertex)
        chosen: set[int] = set()
        while len(chosen) < attach_count:
            chosen.add(endpoint_pool[rng.randrange(len(endpoint_pool))])
        for target in chosen:
            sources.append(vertex)
            targets.append(target)
            endpoint_pool.append(vertex)
            endpoint_pool.append(target)
    # Symmetrise: store both arc directions.
    src = np.concatenate([np.array(sources), np.array(targets)])
    dst = np.concatenate([np.array(targets), np.array(sources)])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=vertex_count)
    row_ptr = np.zeros(vertex_count + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    return CsrGraph(
        vertex_count=vertex_count,
        row_ptr=row_ptr,
        col=dst.astype(np.int32),
    )


def synthetic_power_law(
    vertex_count: int,
    avg_degree: int,
    exponent: float = 2.1,
    seed: int = 0,
) -> CsrGraph:
    """Large power-law graph via the configuration model (vectorised).

    Used for experiment-scale graphs (hundreds of thousands of vertices)
    where the per-edge Python loop of :func:`synthetic_scale_free` would
    be too slow.  Degrees are Zipf-distributed with the given exponent
    (clipped), stubs are shuffled and paired; self-loops are dropped.
    """
    if vertex_count < 2:
        raise WorkloadError(f"need at least two vertices: {vertex_count}")
    if avg_degree < 1:
        raise WorkloadError(f"need at least one edge per vertex: {avg_degree}")
    if exponent <= 1.0:
        raise WorkloadError(f"exponent must exceed 1: {exponent}")
    rng = np.random.default_rng(seed)
    degrees = rng.zipf(exponent, size=vertex_count).astype(np.int64)
    degrees = np.clip(degrees, 1, max(2, vertex_count // 10))
    # Scale to the requested average degree.
    degrees = np.maximum(
        1, (degrees * (avg_degree * vertex_count / degrees.sum())).astype(np.int64)
    )
    if degrees.sum() % 2 == 1:
        degrees[0] += 1
    stubs = np.repeat(np.arange(vertex_count, dtype=np.int64), degrees)
    rng.shuffle(stubs)
    half = len(stubs) // 2
    endpoint_a, endpoint_b = stubs[:half], stubs[half : 2 * half]
    keep = endpoint_a != endpoint_b
    endpoint_a, endpoint_b = endpoint_a[keep], endpoint_b[keep]
    src = np.concatenate([endpoint_a, endpoint_b])
    dst = np.concatenate([endpoint_b, endpoint_a])
    order = np.argsort(src, kind="stable")
    src, dst = src[order], dst[order]
    counts = np.bincount(src, minlength=vertex_count)
    row_ptr = np.zeros(vertex_count + 1, dtype=np.int64)
    np.cumsum(counts, out=row_ptr[1:])
    return CsrGraph(
        vertex_count=vertex_count,
        row_ptr=row_ptr,
        col=dst.astype(np.int32),
    )
