"""PageRank — the single-threaded Big Data application of Section 4.7.

The paper uses Gleich et al.'s linear-system PageRank on a 4.8M/69M web
graph (converging after 64 iterations).  We run real power iteration
(damped, L1 convergence test) over a synthetic scale-free graph, computing
genuine ranks with numpy while charging the memory system for the traffic
each iteration generates:

* a sequential pass over the CSR row pointers and edge array;
* ``edge_count`` random reads of the rank vector — the latency-sensitive
  part (the rank vector is much larger than the LLC for realistic sizes);
* a sequential store pass writing the next rank vector.

Under Quartz the arrays live in persistent memory (``pmalloc``), so the
emulator's injected delays stretch exactly the phases a slower NVM would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import MemBatch, PatternKind
from repro.units import MIB
from repro.workloads.graphs import (
    CsrGraph,
    synthetic_power_law,
    synthetic_scale_free,
)


def default_graph(config: "PageRankConfig") -> CsrGraph:
    """The graph a config implies: exact preferential attachment for
    small instances, the vectorised configuration model at scale."""
    if config.vertex_count >= 50_000:
        return synthetic_power_law(
            config.vertex_count, config.edges_per_vertex, seed=config.seed
        )
    return synthetic_scale_free(
        config.vertex_count, config.edges_per_vertex, seed=config.seed
    )


@dataclass(frozen=True)
class PageRankConfig:
    """Parameters of one PageRank run."""

    vertex_count: int = 600_000
    edges_per_vertex: int = 6
    damping: float = 0.85
    tolerance: float = 1e-7
    max_iterations: int = 100
    seed: int = 0
    #: Allocate graph + rank vectors with pmalloc (NVM under Quartz).
    persistent: bool = True
    #: CPU work per edge (rank scaling, compare-and-add, branch).
    compute_cycles_per_edge: float = 16.0
    #: Bytes per vertex record in the rank structure (rank + out-degree +
    #: metadata padded to a cache line, the common struct-of-vertex
    #: layout).  Makes the gather footprint vertex_count * 64 B.
    bytes_per_vertex: int = 64
    #: Fraction of rank-gather accesses landing on the hot (hub) vertices
    #: that stay LLC-resident — power-law graphs concentrate accesses on
    #: high-degree hubs.
    hot_access_fraction: float = 0.45
    #: Independent rank loads in flight (OOO window over edge lists).
    gather_parallelism: int = 10

    def __post_init__(self) -> None:
        if not 0.0 < self.damping < 1.0:
            raise WorkloadError(f"damping must be in (0,1): {self.damping}")
        if self.tolerance <= 0:
            raise WorkloadError(f"tolerance must be positive: {self.tolerance}")
        if self.max_iterations < 1:
            raise WorkloadError(f"need at least one iteration: {self.max_iterations}")
        if not 0.0 <= self.hot_access_fraction < 1.0:
            raise WorkloadError(
                f"hot fraction must be in [0,1): {self.hot_access_fraction}"
            )
        if self.gather_parallelism < 1:
            raise WorkloadError(
                f"gather parallelism must be >= 1: {self.gather_parallelism}"
            )


@dataclass
class PageRankResult:
    """Output of one PageRank run."""

    config: PageRankConfig
    iterations: int
    residual: float
    elapsed_ns: float
    ranks: np.ndarray

    @property
    def converged(self) -> bool:
        """True if the L1 residual dropped below tolerance."""
        return self.residual < self.config.tolerance

    @property
    def top_vertex(self) -> int:
        """Highest-ranked vertex (sanity hook: hubs should win)."""
        return int(np.argmax(self.ranks))


def pagerank_body(
    config: PageRankConfig, out: dict, graph: Optional[CsrGraph] = None
):
    """Workload body factory; result lands in ``out['result']``."""

    def body(ctx):
        nonlocal graph
        if graph is None:
            graph = default_graph(config)
        n = graph.vertex_count
        m = graph.edge_count
        alloc = ctx.pmalloc if config.persistent else ctx.malloc
        # Layout: CSR row pointers, edge array, two vertex-record vectors.
        row_region = alloc(max(64, (n + 1) * 8), label="pr-rowptr")
        edge_region = alloc(max(64, m * 4), label="pr-edges")
        rank_region = alloc(
            max(64, n * config.bytes_per_vertex),
            page_size=PageSize.HUGE_2M,
            label="pr-ranks",
        )
        next_region = alloc(
            max(64, n * config.bytes_per_vertex),
            page_size=PageSize.HUGE_2M,
            label="pr-next",
        )
        hot_accesses = int(m * config.hot_access_fraction)
        cold_accesses = m - hot_accesses

        # Real numerics: contributions pushed along arcs.
        out_degree = np.maximum(graph.out_degrees(), 1)
        src = np.repeat(np.arange(n), np.diff(graph.row_ptr))
        dst = graph.col.astype(np.int64)
        ranks = np.full(n, 1.0 / n)
        teleport = (1.0 - config.damping) / n
        start = ctx.now_ns
        iterations = 0
        residual = np.inf
        while iterations < config.max_iterations and residual >= config.tolerance:
            # -- memory traffic of one iteration ------------------------
            yield MemBatch(
                row_region, n, PatternKind.SEQUENTIAL, stride_bytes=8,
                label="pr-rowptr-scan",
            )
            yield MemBatch(
                edge_region, m, PatternKind.SEQUENTIAL, stride_bytes=4,
                compute_cycles_per_access=config.compute_cycles_per_edge,
                label="pr-edge-scan",
            )
            if hot_accesses:
                # Hub ranks: concentrated accesses that stay LLC-resident.
                yield MemBatch(
                    rank_region, hot_accesses, PatternKind.RANDOM,
                    footprint_bytes=min(4 * MIB, n * config.bytes_per_vertex),
                    parallelism=config.gather_parallelism,
                    label="pr-gather-hot",
                )
            if cold_accesses:
                yield MemBatch(
                    rank_region, cold_accesses, PatternKind.RANDOM,
                    footprint_bytes=n * config.bytes_per_vertex,
                    parallelism=config.gather_parallelism,
                    label="pr-gather-cold",
                )
            yield MemBatch(
                next_region, n, PatternKind.SEQUENTIAL,
                stride_bytes=config.bytes_per_vertex,
                is_store=True, label="pr-scatter",
            )
            # -- the actual numerics ------------------------------------
            contributions = ranks[src] / out_degree[src]
            next_ranks = teleport + config.damping * np.bincount(
                dst, weights=contributions, minlength=n
            )
            residual = float(np.abs(next_ranks - ranks).sum())
            ranks = next_ranks
            iterations += 1
        out["result"] = PageRankResult(
            config=config,
            iterations=iterations,
            residual=residual,
            elapsed_ns=ctx.now_ns - start,
            ranks=ranks,
        )
        return out["result"]

    return body
