"""Graph500-style BFS — the extended-validation workload of Section 7.

The paper's conclusion reports <12% error for the Graph500 reference
implementation on HP's hardware latency emulator.  We implement the
Graph500 kernel-2 shape: level-synchronous BFS from sampled roots,
building a real parent tree (validated like the benchmark's own checker)
while charging the memory system per level:

* a sequential scan of the frontier;
* one random access into the visited/parent structure per inspected edge
  (the latency-bound part — the structure must exceed the LLC for the
  benchmark to be meaningful, as at real Graph500 scales);
* a sequential read of the adjacency of the frontier.

The traversal itself is vectorised with numpy so multi-million-vertex
graphs run in seconds.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.errors import WorkloadError
from repro.hw.topology import PageSize
from repro.ops import Commit, MemBatch, PatternKind
from repro.units import CACHE_LINE_BYTES, MIB
from repro.workloads.graphs import (
    CsrGraph,
    synthetic_power_law,
    synthetic_scale_free,
)


@dataclass(frozen=True)
class Graph500Config:
    """Parameters of one BFS (Graph500 kernel-2 style) run."""

    vertex_count: int = 2_000_000
    edges_per_vertex: int = 4
    roots: int = 1
    seed: int = 0
    persistent: bool = True
    compute_cycles_per_edge: float = 8.0
    #: Bytes of per-vertex BFS state (parent pointer + visited flag +
    #: level, as in reference implementations).
    bytes_per_vertex: int = 16
    #: Independent visited-probe loads in flight.
    probe_parallelism: int = 8

    def __post_init__(self) -> None:
        if self.roots < 1:
            raise WorkloadError(f"need at least one root: {self.roots}")
        if self.bytes_per_vertex < 1:
            raise WorkloadError(
                f"vertex state must have a size: {self.bytes_per_vertex}"
            )


@dataclass
class Graph500Result:
    """Output of one BFS run."""

    config: Graph500Config
    traversed_edges: int
    elapsed_ns: float
    #: Parent array of the last BFS (for validation).
    parents: np.ndarray

    @property
    def teps(self) -> float:
        """Traversed edges per second (the Graph500 metric)."""
        if self.elapsed_ns <= 0:
            return 0.0
        return self.traversed_edges / self.elapsed_ns * 1e9


def default_graph(config: Graph500Config) -> CsrGraph:
    """The graph a config implies (exact generator for small instances)."""
    if config.vertex_count >= 50_000:
        return synthetic_power_law(
            config.vertex_count, config.edges_per_vertex, seed=config.seed
        )
    return synthetic_scale_free(
        config.vertex_count, config.edges_per_vertex, seed=config.seed
    )


def validate_bfs_tree(graph: CsrGraph, root: int, parents: np.ndarray) -> bool:
    """Graph500-style check: every reached vertex's parent edge exists
    and the root is its own parent."""
    if parents[root] != root:
        return False
    for vertex in range(graph.vertex_count):
        parent = parents[vertex]
        if parent < 0 or vertex == root:
            continue
        if vertex not in graph.neighbors(parent):
            return False
    return True


def _expand_frontier(
    graph: CsrGraph, frontier: np.ndarray, parents: np.ndarray
) -> tuple[np.ndarray, int]:
    """Vectorised level expansion: returns (next frontier, edges inspected)."""
    starts = graph.row_ptr[frontier]
    counts = graph.row_ptr[frontier + 1] - starts
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), 0
    # Index every edge of the frontier: starts repeated, plus a running
    # within-vertex offset.
    bases = np.repeat(starts, counts)
    resets = np.repeat(np.cumsum(counts) - counts, counts)
    offsets = np.arange(total, dtype=np.int64) - resets
    neighbors = graph.col[bases + offsets].astype(np.int64)
    sources = np.repeat(frontier, counts)
    unvisited = parents[neighbors] < 0
    neighbors = neighbors[unvisited]
    sources = sources[unvisited]
    if neighbors.size == 0:
        return np.empty(0, dtype=np.int64), total
    fresh, first_index = np.unique(neighbors, return_index=True)
    parents[fresh] = sources[first_index]
    return fresh, total


def graph500_body(
    config: Graph500Config, out: dict, graph: Optional[CsrGraph] = None
):
    """Workload body factory; result lands in ``out['result']``."""

    def body(ctx):
        nonlocal graph
        if graph is None:
            graph = default_graph(config)
        n = graph.vertex_count
        alloc = ctx.pmalloc if config.persistent else ctx.malloc
        edge_region = alloc(max(64, graph.edge_count * 4), label="bfs-edges")
        visited_region = alloc(
            max(64, n * config.bytes_per_vertex),
            page_size=PageSize.HUGE_2M,
            label="bfs-visited",
        )
        frontier_region = alloc(max(64, n * 8), label="bfs-frontier")

        rng = random.Random(config.seed)
        roots = [rng.randrange(n) for _ in range(config.roots)]
        total_traversed = 0
        parents = np.full(n, -1, dtype=np.int64)
        start = ctx.now_ns
        for root in roots:
            parents = np.full(n, -1, dtype=np.int64)
            parents[root] = root
            frontier = np.array([root], dtype=np.int64)
            while frontier.size:
                # -- memory traffic of this level ----------------------
                yield MemBatch(
                    frontier_region,
                    int(frontier.size),
                    PatternKind.SEQUENTIAL,
                    stride_bytes=8,
                    label="bfs-frontier-scan",
                )
                level_edges = int(
                    (graph.row_ptr[frontier + 1] - graph.row_ptr[frontier]).sum()
                )
                if level_edges:
                    yield MemBatch(
                        edge_region,
                        level_edges,
                        PatternKind.SEQUENTIAL,
                        stride_bytes=4,
                        compute_cycles_per_access=config.compute_cycles_per_edge,
                        label="bfs-adjacency",
                    )
                    yield MemBatch(
                        visited_region,
                        level_edges,
                        PatternKind.RANDOM,
                        footprint_bytes=n * config.bytes_per_vertex,
                        parallelism=config.probe_parallelism,
                        label="bfs-visited-probe",
                    )
                # -- the actual traversal (vectorised) ------------------
                frontier, inspected = _expand_frontier(graph, frontier, parents)
                total_traversed += inspected
        out["result"] = Graph500Result(
            config=config,
            traversed_edges=total_traversed,
            elapsed_ns=ctx.now_ns - start,
            parents=parents,
        )
        return out["result"]

    return body


# ----------------------------------------------------------------------
# Crash-checkable variant (repro.pmem)
# ----------------------------------------------------------------------

PMBFS_LABEL = "pmbfs"


def _bfs_arena_bytes(vertex_count: int) -> int:
    return max(MIB, (vertex_count + 1) * CACHE_LINE_BYTES)


def _bfs_parent_levels(
    graph: CsrGraph, root: int
) -> tuple[np.ndarray, np.ndarray]:
    """Deterministic replay of the BFS the recoverable body runs.

    Shared by recovery so it can recompute, from the graph alone, exactly
    which ``(vertex, parent, level)`` records the persisted header claims
    durable.  Must stay in lockstep with the body's use of
    :func:`_expand_frontier`.
    """
    parents = np.full(graph.vertex_count, -1, dtype=np.int64)
    levels = np.full(graph.vertex_count, -1, dtype=np.int64)
    parents[root] = root
    levels[root] = 0
    frontier = np.array([root], dtype=np.int64)
    level = 0
    while frontier.size:
        frontier, _ = _expand_frontier(graph, frontier, parents)
        level += 1
        levels[frontier] = level
    return parents, levels


def _contiguous_runs(vertices: list):
    """Yield ``(start, length)`` for maximal runs of consecutive ints.

    Input must be sorted ascending (``_expand_frontier`` returns the
    frontier via ``np.unique``, so level output already is).
    """
    start = prev = None
    for vertex in vertices:
        if start is None:
            start = prev = vertex
        elif vertex == prev + 1:
            prev = vertex
        else:
            yield start, prev - start + 1
            start = prev = vertex
    if start is not None:
        yield start, prev - start + 1


def recoverable_graph500_body(
    config: Graph500Config,
    out: dict,
    domain,
    mutant: Optional[str] = None,
    graph: Optional[CsrGraph] = None,
):
    """Crash-checkable BFS: a durable, header-indexed parent tree.

    Line 0 holds ``("levels", L, root)`` — the claim that every vertex of
    BFS level <= L has a durable ``("parent", v, parent, level)`` record
    at line ``1 + v``.  Correct protocol per level: persist the fresh
    parent records, then the header.  ``missing-flush`` never flushes
    parent records; ``misordered-barrier`` persists them only after the
    header already claimed them.
    """

    def body(ctx):
        nonlocal graph
        if graph is None:
            graph = default_graph(config)
        n = graph.vertex_count
        arena = ctx.pmalloc(
            _bfs_arena_bytes(n), page_size=PageSize.HUGE_2M, label=PMBFS_LABEL
        )
        # Mirrors graph500_body's root sampling (first root).
        root = random.Random(config.seed).randrange(n)
        parents = np.full(n, -1, dtype=np.int64)
        parents[root] = root

        def flush_level(vertices):
            for run_start, run_length in _contiguous_runs(vertices):
                yield from ctx.pflush(
                    arena, lines=run_length, line=1 + run_start
                )
            yield Commit()

        frontier = np.array([root], dtype=np.int64)
        fresh = [root]
        domain.record(arena, 1 + root, ("parent", root, root, 0))
        level = 0
        traversed = 0
        while True:
            # Persist this level's parent records...
            yield MemBatch(
                arena,
                accesses=len(fresh),
                pattern=PatternKind.RANDOM,
                footprint_bytes=max(
                    CACHE_LINE_BYTES, n * config.bytes_per_vertex
                ),
                is_store=True,
                label="pmbfs-parent-write",
            )
            if mutant is None:
                yield from flush_level(fresh)
            # ...then the header that makes them reachable.
            domain.record(arena, 0, ("levels", level, root))
            yield MemBatch(
                arena,
                accesses=1,
                pattern=PatternKind.RANDOM,
                footprint_bytes=CACHE_LINE_BYTES,
                is_store=True,
                label="pmbfs-header-write",
            )
            yield from ctx.pflush(arena, lines=1, line=0)
            yield Commit()
            if mutant == "misordered-barrier":
                yield from flush_level(fresh)
            next_frontier, inspected = _expand_frontier(
                graph, frontier, parents
            )
            traversed += inspected
            if inspected:
                yield MemBatch(
                    arena,
                    accesses=inspected,
                    pattern=PatternKind.RANDOM,
                    footprint_bytes=max(
                        CACHE_LINE_BYTES, n * config.bytes_per_vertex
                    ),
                    parallelism=config.probe_parallelism,
                    label="pmbfs-visited-probe",
                )
            if next_frontier.size == 0:
                break
            level += 1
            fresh = [int(vertex) for vertex in next_frontier]
            for vertex in fresh:
                domain.record(
                    arena,
                    1 + vertex,
                    ("parent", vertex, int(parents[vertex]), level),
                )
            frontier = next_frontier
        out["result"] = {
            "root": root,
            "levels": level,
            "reached": int((parents >= 0).sum()),
            "traversed_edges": traversed,
            "mutant": mutant,
        }
        return out["result"]

    return body


class RecoverableGraph500:
    """Crash-checkable BFS (see :mod:`repro.pmem.checker`)."""

    workload_id = "graph500"

    def __init__(self, config: Graph500Config, mutant: Optional[str] = None):
        self.config = config
        self.mutant = mutant
        self._graph: Optional[CsrGraph] = None
        self._replay_cache: dict = {}

    def invariants(self) -> tuple:
        return ("reached-prefix-durable", "parent-edge-exists")

    def body_factory(self, domain, out: dict):
        return recoverable_graph500_body(
            self.config, out, domain, self.mutant
        )

    def _replay(self, root: int):
        if self._graph is None:
            self._graph = default_graph(self.config)
        if root not in self._replay_cache:
            self._replay_cache[root] = _bfs_parent_levels(self._graph, root)
        return self._graph, self._replay_cache

    def recover(self, image) -> list:
        """Restart-time check: the durable tree matches the header claim."""
        issues: list = []
        lines = image.lines(PMBFS_LABEL)
        header = lines.get(0)
        if header is None:
            return issues  # nothing committed: trivially consistent
        _, claimed_level, root = header
        graph, cache = self._replay(root)
        parents, levels = cache[root]
        for vertex in range(graph.vertex_count):
            level = int(levels[vertex])
            if level < 0 or level > claimed_level:
                continue
            expected = ("parent", vertex, int(parents[vertex]), level)
            got = lines.get(1 + vertex)
            if got != expected:
                issues.append(
                    {
                        "invariant": "reached-prefix-durable",
                        "detail": (
                            f"header claims level {claimed_level} but "
                            f"vertex {vertex} (level {level}) holds "
                            f"{got!r}, expected {expected!r}"
                        ),
                    }
                )
        # Graph500-style structural validation of whatever *is* durable.
        for line, payload in lines.items():
            if line == 0:
                continue
            _, vertex, parent, level = payload
            if vertex == parent:
                continue
            if vertex not in graph.neighbors(parent):
                issues.append(
                    {
                        "invariant": "parent-edge-exists",
                        "detail": (
                            f"durable record claims parent {parent} for "
                            f"vertex {vertex} but the graph has no such "
                            f"edge"
                        ),
                    }
                )
        return issues
