"""Assembly of a full simulated testbed machine.

A :class:`Machine` wires together the pieces of one of the paper's
dual-socket servers (Figure 9): per-socket cores with PMC files, one
memory controller + DRAM node per socket, a shared DVFS governor, and
per-socket analytic cache models.  NUMA node *i* is the DRAM directly
attached to socket *i*; accesses from socket *s* to node *n != s* pay the
remote latency of Table 2.
"""

from __future__ import annotations

from repro.errors import HardwareError
from repro.hw.arch import ArchSpec
from repro.hw.cache import AnalyticCacheModel
from repro.hw.core import Core
from repro.hw.dvfs import DvfsGovernor
from repro.hw.memory import MemoryController
from repro.hw.pmc import PmcFile
from repro.hw.topology import MemoryRegion, NodeAddressSpace, PageSize
from repro.sim import Simulator
from repro.units import GIB


class Machine:
    """One dual-socket simulated server."""

    def __init__(
        self,
        sim: Simulator,
        arch: ArchSpec,
        dram_per_node_bytes: int = 256 * GIB,
        latency_jitter: bool = False,
        loaded_latency_alpha: float = 0.0,
        rw_throttle_supported: bool = False,
    ):
        self.sim = sim
        self.arch = arch
        # Section 6 of the paper notes that *loaded* memory latency rises
        # with memory-system utilisation; alpha > 0 enables a quadratic
        # queueing penalty on top of the unloaded Table 2 latencies.
        if loaded_latency_alpha < 0:
            raise HardwareError(
                f"loaded-latency alpha cannot be negative: {loaded_latency_alpha}"
            )
        self.loaded_latency_alpha = loaded_latency_alpha
        # Real testbeds measure slightly different latencies run to run
        # (the min/avg/max columns of Table 2).  With jitter enabled the
        # machine instance draws its actual latencies from those ranges.
        if latency_jitter:
            rng = sim.random.stream("machine-latency")
            self._dram_local_ns = rng.triangular(
                arch.dram_local.min_ns, arch.dram_local.max_ns,
                arch.dram_local.avg_ns,
            )
            self._dram_remote_ns = rng.triangular(
                arch.dram_remote.min_ns, arch.dram_remote.max_ns,
                arch.dram_remote.avg_ns,
            )
        else:
            self._dram_local_ns = arch.dram_local.avg_ns
            self._dram_remote_ns = arch.dram_remote.avg_ns
        self.nodes = [
            NodeAddressSpace(node, dram_per_node_bytes)
            for node in range(arch.sockets)
        ]
        # rw_throttle_supported models hypothetical future silicon with
        # the separate read/write registers actually wired up (the paper
        # found them non-functional on all three testbeds, footnote 2).
        self.controllers = [
            MemoryController(
                sim,
                node,
                peak_bw_bytes_per_ns=arch.peak_bw_bytes_per_ns,
                channels=arch.memory_channels,
                rw_throttle_supported=rw_throttle_supported,
            )
            for node in range(arch.sockets)
        ]
        # One Core/PmcFile per *logical* CPU (hyperthread); the paper's
        # testbeds are all two-way hyper-threaded (Section 4.1).
        total_logical = arch.sockets * arch.cores_per_socket * arch.smt
        self.cores = [Core(self, core_id) for core_id in range(total_logical)]
        self.pmcs = [PmcFile(sim, arch, core_id) for core_id in range(total_logical)]
        self.dvfs = DvfsGovernor(nominal_ghz=arch.freq_ghz)
        self.dvfs.disable()  # the paper's required configuration
        self._cache_models = [AnalyticCacheModel(arch) for _ in range(arch.sockets)]

    # ------------------------------------------------------------------
    # Component lookup
    # ------------------------------------------------------------------
    @property
    def logical_cores_per_socket(self) -> int:
        """Hardware thread contexts per socket (cores x SMT)."""
        return self.arch.cores_per_socket * self.arch.smt

    def core(self, core_id: int) -> Core:
        """Logical core by global id."""
        return self.cores[core_id]

    def physical_core_of(self, core_id: int) -> int:
        """Physical core index behind a logical core id."""
        within = core_id % self.logical_cores_per_socket
        return within % self.arch.cores_per_socket

    def pmc(self, core_id: int) -> PmcFile:
        """PMC file of one core."""
        return self.pmcs[core_id]

    def controller(self, node: int) -> MemoryController:
        """Memory controller of one NUMA node."""
        return self.controllers[node]

    def cache_model(self, socket: int) -> AnalyticCacheModel:
        """The analytic cache model of one socket's hierarchy."""
        return self._cache_models[socket]

    def cores_of_socket(self, socket: int) -> list[Core]:
        """All logical cores on one socket."""
        per = self.logical_cores_per_socket
        return self.cores[socket * per : (socket + 1) * per]

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def allocate(
        self,
        size_bytes: int,
        node: int,
        page_size: PageSize = PageSize.SMALL_4K,
        label: str = "",
        persistent: bool = False,
    ) -> MemoryRegion:
        """Allocate a region on a specific node (numa_alloc_onnode)."""
        if not 0 <= node < len(self.nodes):
            raise HardwareError(f"no such NUMA node: {node}")
        return self.nodes[node].allocate(
            size_bytes, page_size=page_size, label=label, persistent=persistent
        )

    def free(self, region: MemoryRegion) -> None:
        """Release a region back to its node."""
        self.nodes[region.node].free(region)

    def dram_latency_ns(self, socket: int, node: int) -> float:
        """DRAM access latency from *socket* to *node*.

        The unloaded Table 2 value, optionally inflated by the
        loaded-latency model: ``lat * (1 + alpha * utilization^2)`` of the
        target node's memory controller (Section 6's observation that
        measured latency rises with memory-system load).
        """
        base = self._dram_local_ns if socket == node else self._dram_remote_ns
        if self.loaded_latency_alpha > 0:
            utilization = self.controllers[node].utilization
            base *= 1.0 + self.loaded_latency_alpha * utilization * utilization
        return base

    # ------------------------------------------------------------------
    # LLC sharing
    # ------------------------------------------------------------------
    def set_llc_sharers(self, socket: int, sharers: int) -> None:
        """Tell the cache model how many threads compete for socket's LLC."""
        if sharers < 1:
            raise HardwareError(f"sharers must be >= 1: {sharers}")
        self._cache_models[socket].llc_sharers = sharers
