"""Simulated hardware substrate.

Models the paper's three dual-socket Intel Xeon testbeds (Section 4.1):
architecture specs with Table 1 performance-counter event sets and Table 2
memory latencies (:mod:`repro.hw.arch`), NUMA topology and memory regions
(:mod:`repro.hw.topology`), cache hierarchy (:mod:`repro.hw.cache`), TLB
(:mod:`repro.hw.tlb`), memory controllers with thermal-throttle registers
(:mod:`repro.hw.memory`), performance counters (:mod:`repro.hw.pmc`), DVFS
(:mod:`repro.hw.dvfs`), the core execution engine (:mod:`repro.hw.core`),
and the assembled machine (:mod:`repro.hw.machine`).
"""

from repro.hw.arch import (
    ALL_ARCHS,
    HASWELL,
    IVY_BRIDGE,
    SANDY_BRIDGE,
    ArchSpec,
    CounterEventSet,
    arch_by_name,
)
from repro.hw.machine import Machine
from repro.hw.topology import MemoryRegion, PageSize

__all__ = [
    "ALL_ARCHS",
    "ArchSpec",
    "CounterEventSet",
    "HASWELL",
    "IVY_BRIDGE",
    "Machine",
    "MemoryRegion",
    "PageSize",
    "SANDY_BRIDGE",
    "arch_by_name",
]
