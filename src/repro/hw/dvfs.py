"""Dynamic voltage/frequency scaling model.

Section 6 of the paper: Quartz translates between stall *cycles* and delay
*nanoseconds* through the nominal frequency, so DVFS — which changes the
actual frequency under load — breaks the translation, and the authors
disable it.  This model exists so the reproduction can quantify that
requirement (the DVFS ablation benchmark): when enabled, each core's
effective frequency wanders deterministically below nominal, stall-cycle
counters accrue at the *effective* frequency, and Quartz's fixed-frequency
conversion becomes wrong by the same factor.

The TSC remains invariant (constant-rate) as on every modern Xeon, so
Quartz's ``rdtscp`` spin loops stay accurate even with DVFS on — only the
cycle-denominated counters drift.
"""

from __future__ import annotations

import math

from repro.errors import HardwareError


class DvfsGovernor:
    """Deterministic pseudo-load frequency governor.

    With DVFS enabled the effective frequency of core *c* at time *t* is::

        f(c, t) = f_nom * (1 - depth * (0.5 + 0.5 * sin(2*pi*t/period + phase_c)))

    i.e. it oscillates between ``f_nom`` and ``f_nom * (1 - depth)``.
    Deterministic by construction so experiments are reproducible.
    """

    def __init__(self, nominal_ghz: float, depth: float = 0.15,
                 period_ns: float = 2_000_000.0):
        if not 0.0 <= depth < 1.0:
            raise HardwareError(f"DVFS depth must be in [0,1): {depth}")
        if period_ns <= 0:
            raise HardwareError(f"DVFS period must be positive: {period_ns}")
        self.nominal_ghz = nominal_ghz
        self.depth = depth
        self.period_ns = period_ns
        self.enabled = False

    def disable(self) -> None:
        """Pin every core at nominal frequency (the paper's setting)."""
        self.enabled = False

    def enable(self) -> None:
        """Let frequencies wander (the ablation setting)."""
        self.enabled = True

    def frequency_ghz(self, core_id: int, now_ns: float) -> float:
        """Effective frequency of *core_id* at simulated time *now_ns*."""
        if not self.enabled:
            return self.nominal_ghz
        phase = core_id * 0.7
        wave = 0.5 + 0.5 * math.sin(2.0 * math.pi * now_ns / self.period_ns + phase)
        return self.nominal_ghz * (1.0 - self.depth * wave)
