"""Cache hierarchy models.

Two models with one job: decide, for a batch of memory accesses, how many
hit each cache level and how many reach DRAM.

* :class:`SetAssociativeCache` / :class:`CacheHierarchySim` — a functional
  set-associative LRU simulator operated address-by-address.  Used by unit
  tests and to cross-validate the analytic model.

* :class:`AnalyticCacheModel` — the production model.  It maps a
  :class:`~repro.ops.MemBatch` to per-level hit counts in O(1) using
  capacity arguments, which is what lets the reproduction run the paper's
  multi-second workloads (tens of millions of accesses) in milliseconds.

The analytic model also accounts for the two effects the paper calls out
as breaking the "simple model" of Eq. (1) (Section 2.2): cache hits (only
LLC misses reach memory) and hardware prefetching (prefetched lines retire
as LLC hits yet still consume DRAM bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import HardwareError
from repro.hw.arch import ArchSpec
from repro.ops import MemBatch, PatternKind
from repro.units import CACHE_LINE_BYTES


# ----------------------------------------------------------------------
# Detailed functional simulator (for tests / cross-validation)
# ----------------------------------------------------------------------
class SetAssociativeCache:
    """A classic set-associative LRU cache over line addresses."""

    def __init__(self, capacity_bytes: int, ways: int,
                 line_bytes: int = CACHE_LINE_BYTES):
        if capacity_bytes <= 0 or ways <= 0:
            raise HardwareError("cache capacity and ways must be positive")
        lines = capacity_bytes // line_bytes
        if lines % ways != 0:
            raise HardwareError(
                f"capacity {capacity_bytes} not divisible into {ways}-way sets"
            )
        self.line_bytes = line_bytes
        self.ways = ways
        self.sets = lines // ways
        # Each set is an ordered dict-like list of line tags (MRU last).
        self._sets: list[list[int]] = [[] for _ in range(self.sets)]
        self.hits = 0
        self.misses = 0

    def access(self, address: int) -> bool:
        """Touch *address*; returns True on hit.  Misses allocate."""
        line = address // self.line_bytes
        index = line % self.sets
        tag = line // self.sets
        entries = self._sets[index]
        if tag in entries:
            entries.remove(tag)
            entries.append(tag)
            self.hits += 1
            return True
        self.misses += 1
        entries.append(tag)
        if len(entries) > self.ways:
            entries.pop(0)
        return False

    @property
    def hit_rate(self) -> float:
        """Lifetime hit rate; 0 when never accessed."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_stats(self) -> None:
        """Zero the hit/miss counters without flushing contents."""
        self.hits = 0
        self.misses = 0


class CacheHierarchySim:
    """L1/L2/L3 functional hierarchy (inclusive allocation on miss)."""

    def __init__(self, arch: ArchSpec):
        self.l1 = SetAssociativeCache(arch.l1d_bytes, ways=8)
        self.l2 = SetAssociativeCache(arch.l2_bytes, ways=8)
        self.l3 = SetAssociativeCache(arch.l3_bytes, ways=20)

    def access(self, address: int) -> str:
        """Touch *address*; returns the level that served it."""
        if self.l1.access(address):
            return "l1"
        if self.l2.access(address):
            return "l2"
        if self.l3.access(address):
            return "l3"
        return "dram"


# ----------------------------------------------------------------------
# Analytic model (production path)
# ----------------------------------------------------------------------
@dataclass
class BatchProfile:
    """How one :class:`MemBatch` resolves against the memory hierarchy.

    Counts are floats (batches are statistically, not individually,
    resolved).  ``demand_dram_loads`` excludes prefetch-covered lines,
    which appear in ``prefetched_lines`` instead: those retire as LLC hits
    (the PMC view) but still transfer bytes.
    """

    accesses: int
    l1_hits: float = 0.0
    l2_hits: float = 0.0
    l3_hits: float = 0.0
    demand_dram_loads: float = 0.0
    prefetched_lines: float = 0.0
    effective_mlp: float = 1.0
    tlb_walks: float = 0.0
    dram_bytes: float = 0.0
    is_store: bool = False

    @property
    def serialized_dram_accesses(self) -> float:
        """Demand misses divided by memory-level parallelism.

        This is the quantity Quartz's Eq. (2) tries to recover from stall
        cycles: the number of memory trips actually on the critical path.
        """
        return self.demand_dram_loads / self.effective_mlp

    @property
    def serialized_l3_hits(self) -> float:
        """LLC hits on the critical path (same MLP as the miss stream)."""
        return (self.l3_hits + self.prefetched_lines) / self.effective_mlp

    @property
    def pmc_l3_hits(self) -> float:
        """What the L3-hit performance event reports (loads only)."""
        if self.is_store:
            return 0.0
        return self.l3_hits + self.prefetched_lines

    @property
    def pmc_dram_loads(self) -> float:
        """What the LLC-miss performance events report (loads only)."""
        if self.is_store:
            return 0.0
        return self.demand_dram_loads


class AnalyticCacheModel:
    """Capacity-based cache model for one socket's hierarchy.

    ``llc_sharers`` models destructive LLC sharing: with *k* active threads
    on the socket, each effectively owns ``L3/k``.
    """

    #: Instruction-level parallelism assumed for independent (RANDOM)
    #: access streams when the workload does not say otherwise.
    DEFAULT_RANDOM_PARALLELISM = 1

    def __init__(self, arch: ArchSpec):
        self.arch = arch
        self.llc_sharers = 1

    # -- capacity helpers ------------------------------------------------
    def _effective_l3(self) -> float:
        return self.arch.l3_bytes / max(1, self.llc_sharers)

    @staticmethod
    def _resident_fraction(capacity: float, footprint: float) -> float:
        """P(line resident) for a working set of *footprint* bytes."""
        if footprint <= 0:
            return 1.0
        return min(1.0, capacity / footprint)

    # -- main entry point --------------------------------------------------
    def resolve(self, batch: MemBatch) -> BatchProfile:
        """Resolve a batch into per-level hit/miss counts."""
        batch.region.require_live()
        if batch.accesses == 0:
            return BatchProfile(accesses=0, is_store=batch.is_store)
        if batch.non_temporal and not batch.is_store:
            raise HardwareError("non-temporal hint is only meaningful for stores")
        if batch.pattern is PatternKind.SEQUENTIAL:
            profile = self._resolve_sequential(batch)
        else:
            profile = self._resolve_irregular(batch)
        profile.tlb_walks = self._tlb_walks(batch, profile)
        profile.dram_bytes *= batch.dram_bytes_multiplier
        return profile

    # -- pattern-specific resolution ----------------------------------------
    def _resolve_irregular(self, batch: MemBatch) -> BatchProfile:
        """CHASE and RANDOM: uniform accesses over the footprint."""
        footprint = float(batch.effective_footprint)
        arch = self.arch
        p_l1 = self._resident_fraction(arch.l1d_bytes, footprint)
        p_l2c = self._resident_fraction(arch.l2_bytes, footprint)
        p_l3c = self._resident_fraction(self._effective_l3(), footprint)
        n = batch.accesses
        l1_hits = n * p_l1
        l2_hits = n * max(0.0, p_l2c - p_l1)
        l3_hits = n * max(0.0, p_l3c - p_l2c)
        misses = n * (1.0 - p_l3c)
        mlp = min(batch.parallelism, arch.mshr_count)
        bytes_per_miss = CACHE_LINE_BYTES
        if batch.is_store and not batch.non_temporal:
            # Read-for-ownership plus eventual writeback.
            bytes_per_miss = 2 * CACHE_LINE_BYTES
        return BatchProfile(
            accesses=n,
            l1_hits=l1_hits,
            l2_hits=l2_hits,
            l3_hits=l3_hits,
            demand_dram_loads=misses,
            prefetched_lines=0.0,
            effective_mlp=float(max(1, mlp)),
            dram_bytes=misses * bytes_per_miss,
            is_store=batch.is_store,
        )

    def _resolve_sequential(self, batch: MemBatch) -> BatchProfile:
        """Streaming access: prefetcher-covered, line-granular misses."""
        arch = self.arch
        n = batch.accesses
        accesses_per_line = max(1.0, CACHE_LINE_BYTES / batch.stride_bytes)
        lines_touched = n / accesses_per_line
        footprint = float(batch.effective_footprint)
        resident = self._resident_fraction(self._effective_l3(), footprint)
        line_misses = lines_touched * (1.0 - resident)
        if batch.non_temporal:
            # Streaming stores bypass the hierarchy entirely: every line
            # goes straight to memory, no RFO, no demand-load stall.
            return BatchProfile(
                accesses=n,
                l1_hits=0.0,
                demand_dram_loads=0.0,
                prefetched_lines=line_misses,
                effective_mlp=float(arch.mshr_count),
                dram_bytes=lines_touched * CACHE_LINE_BYTES,
                is_store=True,
            )
        covered = line_misses * arch.prefetch_coverage
        demand = line_misses - covered
        resident_lines = lines_touched - line_misses
        # Within-line re-accesses hit L1.
        l1_hits = n - lines_touched
        bytes_per_line = CACHE_LINE_BYTES
        if batch.is_store:
            bytes_per_line = 2 * CACHE_LINE_BYTES
        return BatchProfile(
            accesses=n,
            l1_hits=l1_hits,
            l2_hits=0.0,
            l3_hits=resident_lines,
            demand_dram_loads=demand,
            prefetched_lines=covered,
            effective_mlp=float(arch.mshr_count),
            dram_bytes=line_misses * bytes_per_line,
            is_store=batch.is_store,
        )

    # -- TLB ------------------------------------------------------------------
    def _tlb_walks(self, batch: MemBatch, profile: BatchProfile) -> float:
        """Page walks triggered by the batch.

        Irregular patterns walk with probability 1 - coverage when the
        footprint exceeds TLB reach; sequential patterns only walk at page
        boundaries.  2 MB hugepages extend reach 512x, which is why MemLat
        uses them (Section 4.4).
        """
        arch = self.arch
        page = int(batch.region.page_size)
        entries = (
            arch.dtlb_entries_2m if page >= 2 * 1024 * 1024 else arch.dtlb_entries_4k
        )
        reach = entries * page
        footprint = float(batch.effective_footprint)
        if batch.pattern is PatternKind.SEQUENTIAL:
            lines_per_page = page / CACHE_LINE_BYTES
            lines = batch.accesses / max(
                1.0, CACHE_LINE_BYTES / batch.stride_bytes
            )
            if footprint <= reach:
                return 0.0
            return lines / lines_per_page
        p_tlb_miss = max(0.0, 1.0 - reach / footprint) if footprint > 0 else 0.0
        return batch.accesses * p_tlb_miss
