"""NUMA topology primitives: nodes, memory regions, address allocation.

The validation methodology of the paper (Section 4.3, Figure 9) depends on
a two-socket NUMA machine where each socket has directly-attached DRAM and
remote accesses are physically slower.  A :class:`MemoryRegion` records
which node backs an allocation so the cache/memory model can charge the
right latency and the right memory controller.
"""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field

from repro.errors import HardwareError
from repro.units import CACHE_LINE_BYTES


class PageSize(enum.IntEnum):
    """Virtual-memory page sizes.

    The paper's MemLat runs use 2 MB hugepages "to minimize memory accesses
    due to TLB misses" (Section 4.4); the TLB model honours this choice.
    """

    SMALL_4K = 4 * 1024
    HUGE_2M = 2 * 1024 * 1024


_region_ids = itertools.count(1)


@dataclass
class MemoryRegion:
    """A contiguous allocation on one NUMA node.

    ``base`` addresses are assigned by a per-machine bump allocator; the
    detailed set-associative cache simulator uses them, while the analytic
    model only needs ``node``/``size_bytes``/``page_size``.
    """

    node: int
    size_bytes: int
    base: int
    page_size: PageSize = PageSize.SMALL_4K
    label: str = ""
    persistent: bool = False
    region_id: int = field(default_factory=lambda: next(_region_ids))
    freed: bool = False

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise HardwareError(f"region size must be positive: {self.size_bytes}")
        if self.base % CACHE_LINE_BYTES != 0:
            raise HardwareError(f"region base {self.base:#x} not line-aligned")

    @property
    def end(self) -> int:
        """One past the last byte of the region."""
        return self.base + self.size_bytes

    @property
    def lines(self) -> int:
        """Number of cache lines spanned by the region."""
        return (self.size_bytes + CACHE_LINE_BYTES - 1) // CACHE_LINE_BYTES

    def pages(self) -> int:
        """Number of pages spanned by the region."""
        return (self.size_bytes + self.page_size - 1) // self.page_size

    def require_live(self) -> None:
        """Raise if the region was freed (use-after-free in a workload)."""
        if self.freed:
            raise HardwareError(
                f"use after free of region {self.region_id} ({self.label!r})"
            )


class NodeAddressSpace:
    """Bump allocator handing out line-aligned addresses on one node.

    Node *n*'s addresses live in the range ``[n << 44, (n + 1) << 44)`` so
    regions on different nodes can never collide and an address's home node
    is recoverable by shifting.
    """

    NODE_SHIFT = 44

    def __init__(self, node: int, capacity_bytes: int):
        self.node = node
        self.capacity_bytes = capacity_bytes
        self._next = node << self.NODE_SHIFT
        self._allocated = 0

    def allocate(
        self,
        size_bytes: int,
        page_size: PageSize = PageSize.SMALL_4K,
        label: str = "",
        persistent: bool = False,
    ) -> MemoryRegion:
        """Carve a new region out of this node's memory."""
        if size_bytes <= 0:
            raise HardwareError(f"allocation size must be positive: {size_bytes}")
        if self._allocated + size_bytes > self.capacity_bytes:
            raise HardwareError(
                f"node {self.node} out of memory: "
                f"{self._allocated + size_bytes} > {self.capacity_bytes}"
            )
        aligned = _round_up(size_bytes, CACHE_LINE_BYTES)
        base = _round_up(self._next, int(page_size))
        region = MemoryRegion(
            node=self.node,
            size_bytes=size_bytes,
            base=base,
            page_size=page_size,
            label=label,
            persistent=persistent,
        )
        self._next = base + aligned
        self._allocated += aligned
        return region

    def free(self, region: MemoryRegion) -> None:
        """Release a region (bump allocator: space is not reused)."""
        if region.node != self.node:
            raise HardwareError(
                f"region on node {region.node} freed on node {self.node}"
            )
        if region.freed:
            raise HardwareError(f"double free of region {region.region_id}")
        region.freed = True
        self._allocated -= _round_up(region.size_bytes, CACHE_LINE_BYTES)

    @property
    def allocated_bytes(self) -> int:
        """Bytes currently allocated (live regions)."""
        return self._allocated

    @staticmethod
    def node_of_address(address: int) -> int:
        """Recover the home node of an address."""
        return address >> NodeAddressSpace.NODE_SHIFT


def _round_up(value: int, multiple: int) -> int:
    return (value + multiple - 1) // multiple * multiple
