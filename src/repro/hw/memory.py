"""Per-socket memory controllers with thermal throttling and fluid flows.

Two responsibilities, matching the paper:

* **Thermal-control throttling (Section 2.1).**  Each controller exposes a
  12-bit register modelled on ``THRT_PWR_DIMM_[0:2]``.  Programming it
  scales the controller's service bandwidth *linearly* in register space —
  the property the paper verifies in Figure 8.  The register requires
  privileged access, which the simulated kernel module enforces.

* **Bandwidth arbitration.**  Concurrent memory activities are *flows*
  sharing the controller with max-min fairness (progressive filling).
  Each flow carries a rate cap — the fastest its issuing core could
  consume data given access latency and MLP — so uncontended latency-bound
  traffic finishes in exactly its latency-bound time, while streaming
  traffic saturates the (possibly throttled) controller.  This is how
  bandwidth throttling slows applications down without any explicit
  latency model, mirroring real DRAM thermal throttling.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Optional, TYPE_CHECKING

from repro.errors import HardwareError
from repro.sim import Condition, Simulator

if TYPE_CHECKING:
    from repro.sim.events import ScheduledEvent

#: Width of the thermal throttle register (12 bits, per Intel datasheet).
THROTTLE_REGISTER_BITS = 12
#: Maximum programmable register value.
THROTTLE_REGISTER_MAX = (1 << THROTTLE_REGISTER_BITS) - 1

_flow_ids = itertools.count(1)


@dataclass
class FlowStats:
    """Lifetime transfer statistics for one flow."""

    submitted_bytes: float = 0.0
    transferred_bytes: float = 0.0


class MemoryFlow:
    """A byte stream being serviced by a controller.

    ``rate_cap`` (bytes/ns) bounds how fast the issuer can consume data;
    the controller may assign any rate up to the cap.  ``done`` fires when
    all bytes have been transferred.
    """

    def __init__(self, sim: Simulator, total_bytes: float, rate_cap: float,
                 label: str = "flow", kind: str = "read"):
        if total_bytes < 0:
            raise HardwareError(f"negative flow size: {total_bytes}")
        if rate_cap <= 0:
            raise HardwareError(f"flow rate cap must be positive: {rate_cap}")
        if kind not in ("read", "write"):
            raise HardwareError(f"flow kind must be read/write: {kind!r}")
        self.flow_id = next(_flow_ids)
        self.label = label
        self.kind = kind
        self.total_bytes = float(total_bytes)
        self.rate_cap = float(rate_cap)
        self.transferred = 0.0
        self.assigned_rate = 0.0
        self.done = Condition(sim, name=f"{label}.done")
        self._last_update_ns = sim.now
        self._completion_event: Optional["ScheduledEvent"] = None
        self.withdrawn = False

    @property
    def remaining_bytes(self) -> float:
        """Bytes not yet transferred."""
        return max(0.0, self.total_bytes - self.transferred)

    @property
    def fraction_done(self) -> float:
        """Progress in [0, 1]; empty flows count as complete."""
        if self.total_bytes <= 0:
            return 1.0
        return min(1.0, self.transferred / self.total_bytes)

    def __repr__(self) -> str:
        return (
            f"MemoryFlow({self.label!r}, {self.transferred:.0f}/"
            f"{self.total_bytes:.0f}B @cap {self.rate_cap:.3f}B/ns)"
        )


class MemoryController:
    """One socket's integrated memory controller."""

    def __init__(
        self,
        sim: Simulator,
        node: int,
        peak_bw_bytes_per_ns: float,
        channels: int,
        rw_throttle_supported: bool = False,
    ):
        if peak_bw_bytes_per_ns <= 0:
            raise HardwareError("peak bandwidth must be positive")
        if channels <= 0:
            raise HardwareError("need at least one channel")
        self.sim = sim
        self.node = node
        self.peak_bw = float(peak_bw_bytes_per_ns)
        self.channels = channels
        self._throttle_register = THROTTLE_REGISTER_MAX
        #: Separate read/write throttle registers (Section 2.1 describes
        #: them in the Intel manuals; footnote 2: "not yet broadly
        #: available in many latest processors" — so programming them on
        #: the paper-era parts raises UnsupportedFeatureError).
        self.rw_throttle_supported = rw_throttle_supported
        self._read_register = THROTTLE_REGISTER_MAX
        self._write_register = THROTTLE_REGISTER_MAX
        self._flows: list[MemoryFlow] = []
        self.total_bytes_served = 0.0

    # ------------------------------------------------------------------
    # Thermal throttling (Section 2.1)
    # ------------------------------------------------------------------
    @property
    def throttle_register(self) -> int:
        """Current value of the (modelled) THRT_PWR_DIMM register."""
        return self._throttle_register

    def program_throttle_register(self, value: int, *, privileged: bool) -> None:
        """Program the 12-bit thermal-control register.

        The register lives in PCI configuration space, so only the kernel
        module analogue (``repro.quartz.kernel_module``) may pass
        ``privileged=True``.
        """
        if not privileged:
            raise HardwareError(
                "thermal control registers are in PCI config space and "
                "require privileged (kernel) access"
            )
        if not 0 <= value <= THROTTLE_REGISTER_MAX:
            raise HardwareError(
                f"throttle register value {value} outside 12-bit range"
            )
        self._throttle_register = value
        self._reallocate()

    @property
    def effective_bandwidth(self) -> float:
        """Service bandwidth in bytes/ns after (combined) throttling.

        Linear in register space (the property Figure 8 validates), with a
        tiny floor so a zero register still makes forward progress.
        """
        fraction = (self._throttle_register + 1) / (THROTTLE_REGISTER_MAX + 1)
        return max(self.peak_bw * fraction, 1e-6)

    # -- separate read/write throttling (the footnote-2 extension) --------
    def program_rw_throttle_registers(
        self, read_value: int, write_value: int, *, privileged: bool
    ) -> None:
        """Program the separate read and write throttle registers.

        Raises :class:`UnsupportedFeatureError` on parts where the
        registers are not wired up — the condition the paper hit
        (Section 2.1, footnote 2).
        """
        from repro.errors import UnsupportedFeatureError

        if not privileged:
            raise HardwareError(
                "thermal control registers are in PCI config space and "
                "require privileged (kernel) access"
            )
        if not self.rw_throttle_supported:
            raise UnsupportedFeatureError(
                "separate read/write bandwidth throttle registers are "
                "documented but not functional on this part "
                "(paper Section 2.1, footnote 2)"
            )
        for value in (read_value, write_value):
            if not 0 <= value <= THROTTLE_REGISTER_MAX:
                raise HardwareError(
                    f"throttle register value {value} outside 12-bit range"
                )
        self._read_register = read_value
        self._write_register = write_value
        self._reallocate()

    @property
    def rw_throttle_registers(self) -> tuple[int, int]:
        """Current (read, write) register values."""
        return self._read_register, self._write_register

    def _kind_bandwidth(self, kind: str) -> float:
        register = (
            self._read_register if kind == "read" else self._write_register
        )
        fraction = (register + 1) / (THROTTLE_REGISTER_MAX + 1)
        return max(min(self.peak_bw * fraction, self.effective_bandwidth), 1e-6)

    # ------------------------------------------------------------------
    # Flow service
    # ------------------------------------------------------------------
    def submit(self, total_bytes: float, rate_cap: float,
               label: str = "flow", kind: str = "read") -> MemoryFlow:
        """Start servicing a new flow; returns immediately."""
        flow = MemoryFlow(self.sim, total_bytes, rate_cap, label=label, kind=kind)
        if flow.remaining_bytes <= 0.0:
            flow.done.fire(flow)
            return flow
        self._flows.append(flow)
        self._reallocate()
        return flow

    def withdraw(self, flow: MemoryFlow) -> float:
        """Stop servicing *flow* (e.g. its core took a signal).

        Returns the bytes still outstanding.  The flow's ``done`` condition
        never fires; the caller resubmits the remainder later.
        """
        if flow not in self._flows:
            raise HardwareError(f"cannot withdraw unknown/finished flow {flow!r}")
        self._advance_all()
        self._detach(flow)
        flow.withdrawn = True
        self._reallocate()
        return flow.remaining_bytes

    @property
    def active_flow_count(self) -> int:
        """Flows currently being serviced."""
        return len(self._flows)

    @property
    def utilization(self) -> float:
        """Fraction of effective bandwidth currently assigned."""
        if not self._flows:
            return 0.0
        return min(
            1.0, sum(f.assigned_rate for f in self._flows) / self.effective_bandwidth
        )

    # ------------------------------------------------------------------
    # Internals: progressive-filling allocation
    # ------------------------------------------------------------------
    def _advance_all(self) -> None:
        """Credit every active flow for time elapsed at its assigned rate."""
        now = self.sim.now
        for flow in self._flows:
            elapsed = now - flow._last_update_ns
            if elapsed > 0:
                moved = min(flow.remaining_bytes, elapsed * flow.assigned_rate)
                flow.transferred += moved
                self.total_bytes_served += moved
            flow._last_update_ns = now

    def _detach(self, flow: MemoryFlow) -> None:
        if flow._completion_event is not None:
            flow._completion_event.cancel()
            flow._completion_event = None
        self._flows.remove(flow)

    @staticmethod
    def _water_fill(
        flows: list[MemoryFlow], caps: dict[int, float], capacity: float
    ) -> dict[int, float]:
        """Progressive filling: per-flow rate within a shared capacity."""
        assigned: dict[int, float] = {}
        pending = sorted(flows, key=lambda f: caps[f.flow_id])
        remaining = capacity
        count = len(pending)
        for index, flow in enumerate(pending):
            fair_share = remaining / (count - index)
            rate = min(caps[flow.flow_id], fair_share)
            assigned[flow.flow_id] = rate
            remaining -= rate
        return assigned

    def _reallocate(self) -> None:
        """Recompute max-min fair rates and reschedule completions.

        Two-stage allocation: first each kind (read/write) water-fills
        within its own register-scaled capacity, then the results become
        rate caps in a combined fill against the overall capacity — so
        the combined register still binds when the per-kind registers are
        left open.
        """
        self._advance_all()
        kind_limits: dict[int, float] = {}
        for kind in ("read", "write"):
            kind_flows = [flow for flow in self._flows if flow.kind == kind]
            if not kind_flows:
                continue
            caps = {flow.flow_id: flow.rate_cap for flow in kind_flows}
            kind_limits.update(
                self._water_fill(kind_flows, caps, self._kind_bandwidth(kind))
            )
        assigned = self._water_fill(
            self._flows, kind_limits, self.effective_bandwidth
        )
        for flow in self._flows:
            flow.assigned_rate = assigned[flow.flow_id]
        for flow in self._flows:
            if flow._completion_event is not None:
                flow._completion_event.cancel()
                flow._completion_event = None
            if flow.assigned_rate <= 0:
                continue
            eta = flow.remaining_bytes / flow.assigned_rate
            flow._completion_event = self.sim.schedule(
                eta, lambda f=flow: self._complete(f)
            )

    def _complete(self, flow: MemoryFlow) -> None:
        self._advance_all()
        # Guard against float drift: snap to done.
        self.total_bytes_served += flow.remaining_bytes
        flow.transferred = flow.total_bytes
        self._detach(flow)
        flow.done.fire(flow)
        self._reallocate()
